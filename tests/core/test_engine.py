"""Tests for the discrete-event simulation engine."""

import pytest

from repro import obs
from repro.core.engine import Simulator
from repro.core.errors import SimulationError


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending() == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        early = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        early.cancel()
        assert sim.peek() == 2.0


class TestRunControl:
    def test_run_until_stops_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run_until(3.0)
        assert fired == ["a"]
        assert sim.now == 3.0

    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "edge")
        sim.run_until(3.0)
        assert fired == ["edge"]

    def test_run_until_backwards_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, sim.run)
            sim.run()

    def test_run_until_simultaneous_events(self):
        sim = Simulator()
        fired = []
        for i in range(4):
            sim.schedule(2.0, fired.append, i)
        sim.schedule(2.0 + 1e-9, fired.append, "after")
        sim.run_until(2.0)
        assert fired == [0, 1, 2, 3]  # all ties fire, FIFO, boundary inclusive
        assert sim.now == 2.0
        sim.run_until(3.0)
        assert fired[-1] == "after"


class TestLiveCountAndPurge:
    def test_pending_tracks_schedule_cancel_step(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending() == 5
        events[0].cancel()
        assert sim.pending() == 4
        sim.step()  # fires the event at t=2 (t=1 was cancelled)
        assert sim.pending() == 3
        sim.run()
        assert sim.pending() == 0

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()  # already fired: flag only
        assert sim.pending() == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1

    def test_mass_cancel_purges_heap(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
        for event in events[:900]:
            event.cancel()
        # Lazy purge kicked in: the heap no longer holds the cancelled bulk.
        assert sim.pending() == 100
        assert len(sim._heap) < 300
        fired = 0
        while sim.step():
            fired += 1
        assert fired == 100

    def test_purged_events_never_fire(self):
        sim = Simulator()
        fired = []
        keep = [sim.schedule(float(i + 1), fired.append, i) for i in range(200)]
        for event in keep[::2]:
            event.cancel()
        sim.run()
        assert fired == list(range(1, 200, 2))

    def test_peek_updates_bookkeeping(self):
        sim = Simulator()
        early = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        early.cancel()
        assert sim.peek() == 2.0
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0


class TestEngineTelemetry:
    def test_per_callback_metrics_recorded(self):
        obs.reset()
        obs.enable()

        def ping():
            pass

        sim = Simulator()
        sim.schedule(1.0, ping)
        sim.schedule(2.0, ping)
        sim.run()
        events = obs.metrics.registry.get("engine.events")
        assert events.value(callback=ping.__qualname__) == 2.0
        hist = obs.metrics.registry.get("engine.callback_wall_s")
        assert hist.count(callback=ping.__qualname__) == 2
        depth = obs.metrics.registry.get("engine.queue_depth")
        assert depth.value() == 0.0

    def test_disabled_records_nothing(self):
        obs.reset()
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert obs.metrics.registry.names() == []

    def test_callback_exception_still_counted(self):
        obs.reset()
        obs.enable()

        def boom():
            raise RuntimeError("bad")

        sim = Simulator()
        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        events = obs.metrics.registry.get("engine.events")
        assert events.value(callback=boom.__qualname__) == 1.0
