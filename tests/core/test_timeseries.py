"""Tests for the regular-grid time series container."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.core.timeseries import TimeSeries


def make_series(n=100, t0=0.0, dt=1.0):
    return TimeSeries(t0, dt, np.arange(n, dtype=float))


class TestBasics:
    def test_length_and_bounds(self):
        ts = make_series(50, t0=10.0, dt=2.0)
        assert len(ts) == 50
        assert ts.t1 == 110.0

    def test_times(self):
        ts = make_series(3, t0=5.0, dt=0.5)
        np.testing.assert_allclose(ts.times(), [5.0, 5.5, 6.0])

    def test_index_of_and_at(self):
        ts = make_series(10)
        assert ts.index_of(3.7) == 3
        assert ts.at(3.7) == 3.0

    def test_index_out_of_range(self):
        ts = make_series(10)
        with pytest.raises(DataError):
            ts.index_of(10.0)

    def test_invalid_dt(self):
        with pytest.raises(DataError):
            TimeSeries(0.0, 0.0, np.zeros(3))


class TestSlice:
    def test_slice_middle(self):
        ts = make_series(10)
        sub = ts.slice(2.0, 5.0)
        np.testing.assert_array_equal(sub.values, [2.0, 3.0, 4.0])
        assert sub.t0 == 2.0

    def test_slice_clips(self):
        ts = make_series(5)
        sub = ts.slice(-10.0, 100.0)
        assert len(sub) == 5

    def test_empty_slice(self):
        ts = make_series(5)
        assert len(ts.slice(4.0, 4.0)) == 0


class TestReductions:
    def test_where(self):
        ts = make_series(6)
        intervals = ts.where(lambda v: v >= 4)
        assert list(intervals) == [(4.0, 6.0)]

    def test_where_shape_check(self):
        ts = make_series(5)
        with pytest.raises(DataError):
            ts.where(lambda v: np.array([True]))

    def test_downsample_mean(self):
        ts = make_series(6)
        down = ts.downsample(2)
        np.testing.assert_allclose(down.values, [0.5, 2.5, 4.5])
        assert down.dt == 2.0

    def test_downsample_drops_partial_tail(self):
        ts = make_series(7)
        assert len(ts.downsample(2)) == 3

    def test_downsample_custom_reduce(self):
        ts = make_series(4)
        down = ts.downsample(2, reduce=lambda blocks: blocks.max(axis=1))
        np.testing.assert_allclose(down.values, [1.0, 3.0])

    def test_windowed_fraction_matches_paper_rule(self):
        """15 of 15 seconds loud -> fraction 1; 3 of 15 -> 0.2."""
        ts = TimeSeries(0.0, 1.0, np.zeros(30))
        mask = np.zeros(30, dtype=bool)
        mask[:15] = True          # window 1 fully loud
        mask[15:18] = True        # window 2 loud 3/15 = 0.2
        fractions = ts.windowed_fraction(15.0, mask)
        np.testing.assert_allclose(fractions.values, [1.0, 0.2])

    def test_windowed_fraction_rejects_short_window(self):
        ts = make_series(10, dt=2.0)
        with pytest.raises(DataError):
            ts.windowed_fraction(1.0, np.zeros(10, dtype=bool))
