"""Tests for deterministic named RNG streams."""

import numpy as np

from repro.core.rng import RngRegistry, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("crew.movement") == stable_hash("crew.movement")

    def test_distinct_names_distinct_hashes(self):
        assert stable_hash("a") != stable_hash("b")

    def test_64_bit_range(self):
        assert 0 <= stable_hash("anything") < 2**64


class TestRegistry:
    def test_same_name_same_generator(self):
        rngs = RngRegistry(1)
        assert rngs.get("x") is rngs.get("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(42).get("crew").random(8)
        b = RngRegistry(42).get("crew").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).get("crew").random(8)
        b = RngRegistry(2).get("crew").random(8)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        rngs = RngRegistry(7)
        a = rngs.get("a").random(8)
        b = rngs.get("b").random(8)
        assert not np.array_equal(a, b)

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        plain = RngRegistry(9)
        expected = plain.get("target").random(4)

        noisy = RngRegistry(9)
        noisy.get("other").random(1000)  # extra draws elsewhere
        np.testing.assert_array_equal(noisy.get("target").random(4), expected)

    def test_fresh_resets(self):
        rngs = RngRegistry(3)
        first = rngs.get("s").random(4)
        again = rngs.fresh("s").random(4)
        np.testing.assert_array_equal(first, again)

    def test_spawn_independent(self):
        parent = RngRegistry(5)
        child = parent.spawn("sensing")
        a = parent.get("x").random(4)
        b = child.get("x").random(4)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = RngRegistry(5).spawn("sensing").get("x").random(4)
        b = RngRegistry(5).spawn("sensing").get("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_names_sorted(self):
        rngs = RngRegistry(1)
        rngs.get("zeta")
        rngs.get("alpha")
        assert rngs.names() == ["alpha", "zeta"]
