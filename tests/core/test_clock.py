"""Tests for mission, Martian, and device clocks."""

import pytest

from repro.core.clock import EARTH_DAY_S, MARS_SOL_S, ClockModel, MartianClock, MissionClock
from repro.core.errors import ConfigError


class TestMissionClock:
    def test_day_one_starts_at_zero(self):
        clock = MissionClock()
        assert clock.absolute(1, 0.0) == 0.0

    def test_round_trip(self):
        clock = MissionClock()
        t = clock.absolute(4, 12345.0)
        assert clock.day_of(t) == 4
        assert clock.seconds_of_day(t) == pytest.approx(12345.0)

    def test_day_boundaries(self):
        clock = MissionClock()
        assert clock.day_of(EARTH_DAY_S - 1e-6) == 1
        assert clock.day_of(EARTH_DAY_S) == 2

    def test_invalid_day_rejected(self):
        with pytest.raises(ConfigError):
            MissionClock().absolute(0)

    def test_out_of_range_offset_rejected(self):
        with pytest.raises(ConfigError):
            MissionClock().absolute(1, EARTH_DAY_S + 1.0)


class TestMartianClock:
    def test_sol_longer_than_day(self):
        assert MARS_SOL_S > EARTH_DAY_S

    def test_daily_shift_is_about_40_minutes(self):
        shift = MartianClock().daily_shift_s()
        assert 39 * 60 < shift < 40 * 60

    def test_sol_indexing(self):
        clock = MartianClock()
        assert clock.sol_of(0.0) == 1
        assert clock.sol_of(MARS_SOL_S + 1.0) == 2

    def test_seconds_of_sol_wraps(self):
        clock = MartianClock()
        assert clock.seconds_of_sol(MARS_SOL_S) == pytest.approx(0.0)

    def test_epoch_offset(self):
        clock = MartianClock(epoch_offset_s=100.0)
        assert clock.seconds_of_sol(0.0) == pytest.approx(100.0)


class TestClockModel:
    def test_perfect_clock(self):
        clock = ClockModel()
        assert clock.local_time(1000.0) == 1000.0
        assert clock.error_at(1000.0) == 0.0

    def test_drift_accumulates(self):
        clock = ClockModel(drift_ppm=100.0)  # 100 us per second
        assert clock.error_at(10_000.0) == pytest.approx(1.0)

    def test_offset(self):
        clock = ClockModel(offset_s=5.0)
        assert clock.local_time(0.0) == 5.0

    def test_inverse(self):
        clock = ClockModel(offset_s=3.0, drift_ppm=50.0)
        t = 123456.0
        assert clock.true_time(clock.local_time(t)) == pytest.approx(t)

    def test_correct_zeroes_error(self):
        clock = ClockModel(offset_s=4.0, drift_ppm=20.0)
        t = 50_000.0
        clock.correct(reference_local=t, own_local=clock.local_time(t))
        assert clock.error_at(t) == pytest.approx(0.0, abs=1e-9)

    def test_error_regrows_after_correction(self):
        clock = ClockModel(drift_ppm=200.0)
        clock.correct(reference_local=1000.0, own_local=clock.local_time(1000.0))
        assert abs(clock.error_at(11_000.0)) == pytest.approx(2.0, rel=1e-3)
