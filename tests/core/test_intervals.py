"""Unit and property tests for the interval-set algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DataError
from repro.core.intervals import IntervalSet, union_all


def interval_sets(max_intervals: int = 6, hi: float = 100.0):
    pair = st.tuples(
        st.floats(0.0, hi, allow_nan=False), st.floats(0.0, hi, allow_nan=False)
    ).map(lambda t: (min(t), max(t)))
    return st.lists(pair, max_size=max_intervals).map(IntervalSet)


class TestConstruction:
    def test_empty(self):
        assert not IntervalSet()
        assert IntervalSet().total() == 0.0
        assert len(IntervalSet.empty()) == 0

    def test_single(self):
        s = IntervalSet.single(1.0, 3.0)
        assert list(s) == [(1.0, 3.0)]
        assert s.total() == 2.0

    def test_rejects_inverted(self):
        with pytest.raises(DataError):
            IntervalSet([(3.0, 1.0)])

    def test_drops_empty_intervals(self):
        assert len(IntervalSet([(1.0, 1.0), (2.0, 2.0)])) == 0

    def test_merges_overlapping(self):
        s = IntervalSet([(0.0, 2.0), (1.0, 3.0)])
        assert list(s) == [(0.0, 3.0)]

    def test_merges_touching(self):
        s = IntervalSet([(0.0, 1.0), (1.0, 2.0)])
        assert list(s) == [(0.0, 2.0)]

    def test_sorts(self):
        s = IntervalSet([(5.0, 6.0), (0.0, 1.0)])
        assert list(s) == [(0.0, 1.0), (5.0, 6.0)]

    def test_equality_and_hash(self):
        a = IntervalSet([(0.0, 1.0), (1.0, 2.0)])
        b = IntervalSet([(0.0, 2.0)])
        assert a == b
        assert hash(a) == hash(b)


class TestQueries:
    def test_contains(self):
        s = IntervalSet([(0.0, 1.0), (2.0, 3.0)])
        assert s.contains(0.5)
        assert s.contains(0.0)
        assert not s.contains(1.0)  # half-open
        assert not s.contains(1.5)
        assert s.contains(2.5)

    def test_span(self):
        assert IntervalSet([(1.0, 2.0), (5.0, 6.0)]).span() == (1.0, 6.0)

    def test_span_empty_raises(self):
        with pytest.raises(DataError):
            IntervalSet().span()


class TestMaskRoundTrip:
    def test_from_mask_basic(self):
        mask = np.array([False, True, True, False, True])
        s = IntervalSet.from_mask(mask)
        assert list(s) == [(1.0, 3.0), (4.0, 5.0)]

    def test_to_mask_inverts(self):
        mask = np.array([True, False, True, True, False, False, True])
        s = IntervalSet.from_mask(mask, t0=10.0, dt=2.0)
        np.testing.assert_array_equal(s.to_mask(7, t0=10.0, dt=2.0), mask)

    def test_from_mask_all_false(self):
        assert not IntervalSet.from_mask(np.zeros(5, dtype=bool))

    def test_from_mask_all_true(self):
        s = IntervalSet.from_mask(np.ones(4, dtype=bool), t0=1.0, dt=0.5)
        assert list(s) == [(1.0, 3.0)]

    @given(st.lists(st.booleans(), max_size=64))
    def test_round_trip_property(self, bits):
        mask = np.array(bits, dtype=bool)
        s = IntervalSet.from_mask(mask)
        np.testing.assert_array_equal(s.to_mask(len(bits)), mask)


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0.0, 2.0)])
        b = IntervalSet([(1.0, 3.0)])
        assert list(a.union(b)) == [(0.0, 3.0)]

    def test_intersect(self):
        a = IntervalSet([(0.0, 2.0), (4.0, 6.0)])
        b = IntervalSet([(1.0, 5.0)])
        assert list(a.intersect(b)) == [(1.0, 2.0), (4.0, 5.0)]

    def test_intersect_disjoint(self):
        assert not IntervalSet([(0.0, 1.0)]).intersect(IntervalSet([(2.0, 3.0)]))

    def test_complement(self):
        s = IntervalSet([(1.0, 2.0)])
        assert list(s.complement(0.0, 3.0)) == [(0.0, 1.0), (2.0, 3.0)]

    def test_complement_of_empty(self):
        assert list(IntervalSet().complement(0.0, 2.0)) == [(0.0, 2.0)]

    def test_difference(self):
        a = IntervalSet([(0.0, 10.0)])
        b = IntervalSet([(2.0, 3.0), (5.0, 6.0)])
        assert list(a.difference(b)) == [(0.0, 2.0), (3.0, 5.0), (6.0, 10.0)]

    def test_clip(self):
        s = IntervalSet([(0.0, 10.0)])
        assert list(s.clip(2.0, 4.0)) == [(2.0, 4.0)]

    def test_filter_min_duration(self):
        s = IntervalSet([(0.0, 0.5), (1.0, 5.0)])
        assert list(s.filter_min_duration(1.0)) == [(1.0, 5.0)]

    def test_shift(self):
        s = IntervalSet([(1.0, 2.0)]).shift(10.0)
        assert list(s) == [(11.0, 12.0)]

    def test_union_all(self):
        s = union_all([IntervalSet([(0.0, 1.0)]), IntervalSet([(0.5, 2.0)])])
        assert list(s) == [(0.0, 2.0)]

    @given(interval_sets(), interval_sets())
    def test_intersection_subset_property(self, a, b):
        inter = a.intersect(b)
        assert inter.total() <= min(a.total(), b.total()) + 1e-9

    @given(interval_sets(), interval_sets())
    def test_union_superset_property(self, a, b):
        union = a.union(b)
        assert union.total() >= max(a.total(), b.total()) - 1e-9
        assert union.total() <= a.total() + b.total() + 1e-9

    @given(interval_sets())
    def test_complement_partitions_window(self, s):
        clipped = s.clip(0.0, 100.0)
        comp = s.complement(0.0, 100.0)
        assert clipped.total() + comp.total() == pytest.approx(100.0)
        assert not clipped.intersect(comp)

    @given(interval_sets(), interval_sets())
    def test_de_morgan(self, a, b):
        lo, hi = 0.0, 100.0
        left = a.union(b).complement(lo, hi)
        right = a.complement(lo, hi).intersect(b.complement(lo, hi))
        assert left == right
