"""Tests for the keyed dataset store."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.core.storage import DataStore


class TestArrays:
    def test_put_get(self):
        store = DataStore()
        store.put_arrays(("gt", "A", "2"), room=np.arange(5))
        np.testing.assert_array_equal(store.get_arrays(("gt", "A", "2"))["room"], np.arange(5))

    def test_missing_key_raises(self):
        with pytest.raises(DataError):
            DataStore().get_arrays(("nope",))

    def test_has_arrays(self):
        store = DataStore()
        assert not store.has_arrays(("x",))
        store.put_arrays(("x",), a=np.zeros(1))
        assert store.has_arrays(("x",))

    def test_replace(self):
        store = DataStore()
        store.put_arrays(("x",), a=np.zeros(2))
        store.put_arrays(("x",), b=np.ones(2))
        assert list(store.get_arrays(("x",))) == ["b"]

    def test_keys_prefix(self):
        store = DataStore()
        store.put_arrays(("gt", "A"), a=np.zeros(1))
        store.put_arrays(("gt", "B"), a=np.zeros(1))
        store.put_arrays(("obs", "A"), a=np.zeros(1))
        assert list(store.keys(("gt",))) == [("gt", "A"), ("gt", "B")]


class TestMeta:
    def test_round_trip(self):
        store = DataStore()
        store.put_meta(("cfg",), {"days": 14})
        assert store.get_meta(("cfg",)) == {"days": 14}

    def test_unserializable_rejected(self):
        store = DataStore()
        with pytest.raises(TypeError):
            store.put_meta(("bad",), object())

    def test_missing_meta_raises(self):
        with pytest.raises(DataError):
            DataStore().get_meta(("nope",))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = DataStore()
        store.put_arrays(("gt", "A", "2"), room=np.arange(4, dtype=np.int8), x=np.ones(4))
        store.put_meta(("run",), {"seed": 7})
        store.save_dir(tmp_path / "ds")

        loaded = DataStore.load_dir(tmp_path / "ds")
        np.testing.assert_array_equal(
            loaded.get_arrays(("gt", "A", "2"))["room"], np.arange(4, dtype=np.int8)
        )
        assert loaded.get_meta(("run",)) == {"seed": 7}

    def test_load_missing_dir(self, tmp_path):
        with pytest.raises(DataError):
            DataStore.load_dir(tmp_path / "missing")

    def test_reserved_key_char_rejected(self, tmp_path):
        store = DataStore()
        store.put_arrays(("a__b",), x=np.zeros(1))
        with pytest.raises(DataError):
            store.save_dir(tmp_path / "ds")
