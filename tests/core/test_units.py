"""Tests for unit helpers."""

import pytest

from repro.core.units import GIB, gib, hhmm, hhmmss, parse_hhmm


class TestFormatting:
    def test_hhmm(self):
        assert hhmm(0) == "00:00"
        assert hhmm(45000) == "12:30"
        assert hhmm(15 * 3600 + 20 * 60) == "15:20"

    def test_hhmmss(self):
        assert hhmmss(3661) == "01:01:01"


class TestParsing:
    def test_parse_hhmm(self):
        assert parse_hhmm("12:30") == 45000.0
        assert parse_hhmm("00:00") == 0.0

    def test_parse_with_seconds(self):
        assert parse_hhmm("01:01:01") == 3661.0

    def test_round_trip(self):
        for text in ("07:00", "15:20", "23:59"):
            assert hhmm(parse_hhmm(text)) == text

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            parse_hhmm("noon")
        with pytest.raises(ValueError):
            parse_hhmm("12:75")


class TestBytes:
    def test_gib(self):
        assert gib(GIB) == 1.0
        assert gib(150 * GIB) == pytest.approx(150.0)
