"""Tests for mission configuration validation and derived values."""

import pytest

from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = MissionConfig()
        assert cfg.days == 14
        assert cfg.badges_from_day == 2
        assert cfg.crew_size == 6
        assert cfg.n_beacons == 27
        assert cfg.earth_link_delay_s == 20 * 60.0

    def test_instrumented_days(self):
        cfg = MissionConfig()
        assert cfg.instrumented_days == list(range(2, 15))
        assert len(cfg.instrumented_days) == 13  # the paper's 13 days of data

    def test_frames_per_day(self):
        cfg = MissionConfig()
        assert cfg.frames_per_day == 14 * 3600

    def test_daytime_start_seconds(self):
        assert MissionConfig().daytime_start_s == 7 * 3600.0


class TestValidation:
    def test_zero_days_rejected(self):
        with pytest.raises(ConfigError):
            MissionConfig(days=0)

    def test_badges_after_mission_rejected(self):
        with pytest.raises(ConfigError):
            MissionConfig(days=3, badges_from_day=4)

    def test_negative_frame_dt_rejected(self):
        with pytest.raises(ConfigError):
            MissionConfig(frame_dt=-1.0)

    def test_non_integer_frames_rejected(self):
        with pytest.raises(ConfigError):
            MissionConfig(frame_dt=7.0, daytime_hours=13.9999)

    def test_compliance_ordering_enforced(self):
        with pytest.raises(ConfigError):
            MissionConfig(wear_compliance_start=0.4, wear_compliance_end=0.6)

    def test_daytime_must_fit_in_day(self):
        with pytest.raises(ConfigError):
            MissionConfig(daytime_start="20:00", daytime_hours=10.0)

    def test_tiny_crew_rejected(self):
        with pytest.raises(ConfigError):
            MissionConfig(crew_size=1)

    def test_bad_time_string_rejected(self):
        with pytest.raises((ConfigError, ValueError)):
            MissionConfig(daytime_start="25:99")


class TestEvents:
    def test_event_active_inside_mission(self):
        cfg = MissionConfig(days=14)
        assert cfg.event_active("death_day")
        assert cfg.event_active("famine_day")

    def test_event_inactive_outside_mission(self):
        cfg = MissionConfig(days=3)
        assert not cfg.event_active("death_day")

    def test_events_none_disables(self):
        cfg = MissionConfig(events=None)
        assert not cfg.event_active("death_day")

    def test_consolation_after_death_enforced(self):
        with pytest.raises(ConfigError):
            ScriptedEventsConfig(death_time="16:00", consolation_time="15:00").validate()

    def test_reuse_after_death_enforced(self):
        with pytest.raises(ConfigError):
            ScriptedEventsConfig(death_day=4, badge_reuse_day=3).validate()

    def test_with_days(self):
        cfg = MissionConfig().with_days(5)
        assert cfg.days == 5
        assert cfg.seed == MissionConfig().seed
