"""Tests for environment analytics and the localization accuracy report."""

import pytest

from repro.analytics.environment import (
    daily_ambient_noise,
    quiet_noise_days,
    room_temperatures_from_observations,
    warmest_room,
)
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import SensingModels, make_fleet, sense_day
from repro.core.rng import RngRegistry
from repro.experiments.accuracy import localization_accuracy


class TestTemperatures:
    @pytest.fixture(scope="class")
    def temperatures(self, truth, mission_cfg):
        rngs = RngRegistry(55)
        assignment = BadgeAssignment(cfg=mission_cfg, roster=truth.roster)
        models = SensingModels.default(mission_cfg, truth.plan)
        fleet = make_fleet(assignment, rngs)
        observations, __ = sense_day(truth, 2, assignment, models, fleet, rngs)
        return room_temperatures_from_observations(observations, truth.plan)

    def test_kitchen_is_the_cosiest(self, temperatures):
        """The paper: the kitchen was 'the cosiest room with the highest
        temperatures' -- recovered purely from badge thermometers."""
        assert warmest_room(temperatures) == "kitchen"

    def test_values_plausible(self, temperatures):
        assert all(15.0 < t < 26.0 for t in temperatures.values())

    def test_covers_visited_rooms(self, temperatures):
        assert {"kitchen", "office", "main"} <= set(temperatures)


class TestAmbientNoise:
    def test_per_day_levels(self, sensing):
        noise = daily_ambient_noise(sensing)
        assert set(noise) == set(sensing.days)
        assert all(25.0 < level < 60.0 for level in noise.values())

    def test_quiet_days_subset(self, sensing):
        flagged = quiet_noise_days(sensing, margin_db=0.5)
        assert set(flagged) <= set(sensing.days)


class TestAccuracyReport:
    def test_report(self, sensing):
        report = localization_accuracy(sensing)
        assert report.room_accuracy > 0.995          # the paper's "perfect"
        assert report.known_fraction > 0.95
        assert report.n_frames > 100_000
        assert "kitchen" in report.room_accuracy_by_room
        # Every shielded room is essentially perfect; the open main hall
        # suffers doorway leakage while people stride past doors.
        for room, accuracy in report.room_accuracy_by_room.items():
            assert accuracy > (0.85 if room == "main" else 0.95), room

    def test_str_renders(self, sensing):
        text = str(localization_accuracy(sensing))
        assert "room accuracy" in text
