"""Golden test for the batched sensing API redesign.

The fleet-batched hot path (:func:`repro.badges.pipeline.sense_day` +
:meth:`repro.localization.pipeline.Localizer.localize_fleet`) must be
**bit-identical** to driving every model through its legacy per-badge
wrapper (:func:`repro.badges.pipeline.sense_day_badgewise` +
:meth:`~repro.localization.pipeline.Localizer.localize_day`).  Per
badge, each model consumes its day-scoped RNG stream in the documented
order, so batching across badges may not move a single draw — this test
is the contract's enforcement.

Cache fingerprints are config-derived, so the redesign must also leave
them untouched: a cache populated before the batched API landed still
addresses the same artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.analytics.dataset import BadgeDaySummary
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import (
    SensingModels,
    make_fleet,
    sense_day,
    sense_day_badgewise,
)
from repro.badges.sdcard import SdCardAccountant
from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry, mission_sensing_registry
from repro.crew.behavior import simulate_mission
from repro.exec import hashing
from repro.localization.pipeline import Localizer

# This module *deliberately* drives the deprecated batch-of-one wrappers
# to enforce their bit-equivalence contract; the warnings are expected.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def cfg():
    return MissionConfig(days=2, seed=13, events=None)


@pytest.fixture(scope="module")
def truth(cfg):
    return simulate_mission(cfg)


@pytest.fixture(scope="module")
def mission_parts(cfg, truth):
    assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
    models = SensingModels.default(cfg, truth.plan)
    localizer = Localizer(truth.plan, models.beacons)
    return assignment, models, localizer


def _summaries(cfg, truth, mission_parts, batched: bool):
    """Run the instrumented days through one of the two paths."""
    assignment, models, localizer = mission_parts
    rngs = mission_sensing_registry(cfg.seed)
    fleet = make_fleet(assignment, rngs)
    sdcard = SdCardAccountant()
    sensor = sense_day if batched else sense_day_badgewise
    out: dict[tuple[int, int], BadgeDaySummary] = {}
    pairwise: dict[int, object] = {}
    for day in cfg.instrumented_days:
        observations, pw = sensor(
            truth, day, assignment, models, fleet, rngs, sdcard
        )
        pairwise[day] = pw
        badge_ids = list(observations)
        if batched:
            locs = localizer.localize_fleet(
                [observations[b].ble_rssi for b in badge_ids],
                [observations[b].active for b in badge_ids],
            )
        else:
            locs = [
                localizer.localize_day(
                    observations[b].ble_rssi, observations[b].active
                )
                for b in badge_ids
            ]
        for badge_id, loc in zip(badge_ids, locs):
            obs = observations[badge_id]
            out[(badge_id, day)] = BadgeDaySummary.from_observations(obs, loc)
    return out, pairwise


def _digest(summary: BadgeDaySummary) -> str:
    """Byte-level digest of every field of one summary."""
    h = hashlib.blake2b(digest_size=16)
    for f in dataclasses.fields(summary):
        value = getattr(summary, f.name)
        h.update(f.name.encode())
        if isinstance(value, np.ndarray):
            h.update(str(value.dtype).encode())
            h.update(value.tobytes())
        else:
            h.update(repr(value).encode())
    return h.hexdigest()


@pytest.fixture(scope="module")
def both_paths(cfg, truth, mission_parts):
    batched = _summaries(cfg, truth, mission_parts, batched=True)
    badgewise = _summaries(cfg, truth, mission_parts, batched=False)
    return batched, badgewise


class TestGoldenEquivalence:
    def test_same_badge_days(self, both_paths):
        (batched, _), (badgewise, _) = both_paths
        assert set(batched) == set(badgewise)
        assert batched  # a silent empty mission would vacuously pass

    def test_summaries_byte_identical(self, both_paths):
        (batched, _), (badgewise, _) = both_paths
        for key in batched:
            assert _digest(batched[key]) == _digest(badgewise[key]), key

    def test_pairwise_byte_identical(self, both_paths):
        (_, pw_batched), (_, pw_badgewise) = both_paths
        for day in pw_batched:
            a, b = pw_batched[day], pw_badgewise[day]
            assert set(a.subghz_rssi) == set(b.subghz_rssi)
            for pair in a.subghz_rssi:
                assert (
                    a.subghz_rssi[pair].tobytes() == b.subghz_rssi[pair].tobytes()
                ), pair
                assert (
                    a.ir_contact[pair].tobytes() == b.ir_contact[pair].tobytes()
                ), pair

    def test_localize_day_wraps_localize_fleet(self, cfg, truth, mission_parts):
        """A batch of one is the same bits as a row of a fleet batch."""
        assignment, models, localizer = mission_parts
        rngs = RngRegistry(cfg.seed)
        fleet = make_fleet(assignment, rngs)
        observations, _ = sense_day(
            truth, 2, assignment, models, fleet, rngs, SdCardAccountant()
        )
        badge_ids = list(observations)
        fleet_locs = localizer.localize_fleet(
            [observations[b].ble_rssi for b in badge_ids],
            [observations[b].active for b in badge_ids],
        )
        for badge_id, fleet_loc in zip(badge_ids, fleet_locs):
            solo = localizer.localize_day(
                observations[badge_id].ble_rssi, observations[badge_id].active
            )
            for field in ("room", "x", "y"):
                assert (
                    getattr(fleet_loc, field).tobytes()
                    == getattr(solo, field).tobytes()
                ), (badge_id, field)


class TestWrappersDeprecated:
    """DESIGN §13: the batch-of-one wrappers warn before removal."""

    def test_sense_day_badgewise_warns(self, cfg, truth, mission_parts):
        assignment, models, _ = mission_parts
        rngs = mission_sensing_registry(cfg.seed)
        fleet = make_fleet(assignment, rngs)
        with pytest.warns(DeprecationWarning, match="sense_day_badgewise"):
            sense_day_badgewise(
                truth, 2, assignment, models, fleet, rngs, SdCardAccountant()
            )


class TestCacheFingerprintsUnchanged:
    """The API redesign must not move any config-derived cache key."""

    def test_fingerprints_are_config_pure(self, cfg):
        assert hashing.truth_fingerprint(cfg) == hashing.truth_fingerprint(
            MissionConfig(days=2, seed=13, events=None)
        )
        assert hashing.sensing_fingerprint(cfg) == hashing.sensing_fingerprint(
            MissionConfig(days=2, seed=13, events=None)
        )

    def test_schema_version_not_bumped_by_redesign(self):
        # The batched path produces the same bits as the per-badge path,
        # so cached artifacts stay valid and the schema stays at 1.
        assert hashing.SCHEMA_VERSION == 1
