"""End-to-end integration tests over the short fixture mission.

These exercise the full simulate -> sense -> localize -> analyze stack
and pin the cross-module behaviours that no unit test can see.
"""

import numpy as np
import pytest

from repro.analytics.speech import daily_speech_fraction
from repro.analytics.transitions import transition_matrix
from repro.analytics.walking import daily_walking_fraction
from repro.experiments.mission import run_mission


class TestPipelineConsistency:
    def test_summaries_for_every_instrumented_day(self, sensing, mission_cfg):
        assert sensing.days == mission_cfg.instrumented_days

    def test_reference_badge_every_day(self, sensing, mission_cfg):
        ref = sensing.assignment.reference_id
        for day in mission_cfg.instrumented_days:
            assert (ref, day) in sensing.summaries

    def test_room_detection_accuracy(self, sensing):
        correct = total = 0
        for summary in sensing.summaries.values():
            if summary.true_room is None:
                continue
            mask = summary.active & (summary.room >= 0)
            correct += int((summary.room[mask] == summary.true_room[mask]).sum())
            total += int(mask.sum())
        assert correct / total > 0.995

    def test_analytics_only_see_observations(self, sensing):
        """Analyses run on summaries whose only truth field is the
        clearly-marked evaluation aid."""
        summary = sensing.summary(0, 2)
        observation_fields = {
            "active", "worn", "room", "x", "y", "accel_rms", "voice_db",
            "dominant_pitch_hz", "pitch_stability", "sound_db",
        }
        for field in observation_fields:
            assert getattr(summary, field) is not None

    def test_no_data_for_dead_astronaut(self, sensing, mission_cfg):
        death = mission_cfg.events.death_day
        c_badge = 2
        reuse = mission_cfg.events.badge_reuse_day
        for day in range(death + 1, reuse):
            assert (c_badge, day) not in sensing.summaries

    def test_walking_and_speech_series_cover_crew(self, sensing, truth):
        walking = daily_walking_fraction(sensing)
        speech = daily_speech_fraction(sensing)
        assert set(walking) == set(truth.roster.ids)
        assert set(speech) == set(truth.roster.ids)

    def test_transitions_nontrivial(self, sensing):
        __, counts = transition_matrix(sensing)
        assert counts.sum() > 50


class TestDeterminism:
    def test_rerun_identical(self, mission_cfg, truth, sensing):
        again = run_mission(mission_cfg, truth=truth)
        a = sensing.summary(1, 3)
        b = again.sensing.summary(1, 3)
        np.testing.assert_array_equal(a.room, b.room)
        np.testing.assert_array_equal(a.voice_db, b.voice_db)
        np.testing.assert_array_equal(a.worn, b.worn)

    def test_different_seed_differs(self, mission_cfg):
        import dataclasses

        other_cfg = dataclasses.replace(mission_cfg, seed=mission_cfg.seed + 1)
        other = run_mission(other_cfg.with_days(2))
        base = run_mission(mission_cfg.with_days(2))
        a = base.sensing.summary(1, 2)
        b = other.sensing.summary(1, 2)
        assert not np.array_equal(a.voice_db, b.voice_db)


class TestGroundTruthAgreement:
    def test_estimated_occupancy_tracks_truth(self, sensing, truth, mission_cfg):
        """Sensor-derived kitchen time must track ground-truth kitchen
        time of the wearers within ~20%."""
        day = 2
        kitchen = truth.plan.index_of("kitchen")
        est = sum(
            int(((sensing.summary(b, day).room == kitchen)
                 & sensing.summary(b, day).worn).sum())
            for b in sensing.badges_on(day)
        )
        mapping = sensing.assignment.actual(day)
        true = sum(
            int((truth.trace(astro, day).room == kitchen).sum())
            for astro in mapping.values()
        )
        assert est <= true  # badge not always worn
        assert est > 0.4 * true
