"""End-to-end chaos test: a seeded mission under a scripted fault plan.

The acceptance scenario for the fault subsystem: one mission config with
a node crash, an Earth-link blackout, a beacon outage, a lossy-channel
window, a badge battery depletion, and an SD-card cap, run through the
full pipeline.  Asserts the reliability invariants (exactly-once-or-
dead-lettered, failover without split-brain), graceful sensing
degradation, and two-run determinism at the same seed.
"""

import pytest

from repro.core.config import MissionConfig
from repro.core.units import DAY, HOUR
from repro.experiments.mission import run_mission
from repro.faults.plan import FaultEvent, FaultPlan

BATTERY_BADGE = 1
SDCARD_BADGE = 2
DEAD_BEACONS = (0, 1)

CHAOS_PLAN = FaultPlan.build(
    # Day 1 (bus-level): crash the primary for an hour, black out the
    # Earth link for four, degrade every link for two.
    FaultEvent(time_s=6 * HOUR, action="crash", target="svc-a", duration_s=1 * HOUR),
    FaultEvent(time_s=10 * HOUR, action="blackout", duration_s=4 * HOUR),
    FaultEvent(time_s=12 * HOUR, action="lossy", duration_s=2 * HOUR, value=0.3),
    # Day 2 (sensing-level): a badge battery dies at 10:00.
    FaultEvent(time_s=1 * DAY + 10 * HOUR, action="badge-battery",
               target=str(BATTERY_BADGE)),
    # Day 3: two beacons dark through the whole daytime.
    FaultEvent(time_s=2 * DAY + 6 * HOUR, action="beacon-outage",
               target=",".join(str(b) for b in DEAD_BEACONS), duration_s=16 * HOUR),
    # Whole mission: one badge's SD card is nearly worn out.
    FaultEvent(time_s=0.0, action="sdcard-cap", target=str(SDCARD_BADGE), value=1e9),
)


def _chaos_config():
    return MissionConfig(days=3, seed=7, events=None, fault_plan=CHAOS_PLAN)


@pytest.fixture(scope="module")
def chaos_result():
    return run_mission(_chaos_config())


@pytest.mark.tier2
class TestReliableDeliveryUnderChaos:
    def test_no_silent_loss(self, chaos_result):
        """Every reliable send is acked or dead-lettered — never lost."""
        report = chaos_result.reliability
        assert report is not None
        assert report.pending == 0
        for kind, entry in report.delivery.items():
            assert entry["sent"] == entry["acked"] + entry["dead"], kind

    def test_bus_accounting_exact(self, chaos_result):
        report = chaos_result.reliability
        assert report.bus_sent == report.bus_delivered + report.bus_dropped

    def test_delivery_success_reported_per_kind(self, chaos_result):
        report = chaos_result.reliability
        assert {"submit", "status"} <= set(report.delivery)
        for kind in ("submit", "status"):
            assert 0.0 < report.delivery_success(kind) <= 1.0

    def test_faults_were_injected(self, chaos_result):
        report = chaos_result.reliability
        assert report.faults_injected == 3  # crash + blackout + lossy
        assert report.faults_skipped == 0


@pytest.mark.tier2
class TestFailoverUnderChaos:
    def test_takeover_and_failback_without_split_brain(self, chaos_result):
        report = chaos_result.reliability
        assert report.takeovers(), "backup never took over during the crash"
        assert report.failbacks(), "promoted backup never yielded after recovery"
        assert not report.split_brain_at_end
        assert report.primary_at_end == "svc-a"

    def test_availability_and_mttr(self, chaos_result):
        report = chaos_result.reliability
        assert report.availability["svc-a"] == pytest.approx(1.0 - HOUR / (3 * DAY))
        assert report.availability["svc-b"] == 1.0
        assert report.mttr_s == pytest.approx(HOUR)
        assert report.n_outages == 1


@pytest.mark.tier2
class TestSensingDegradation:
    def test_rooms_detected_during_beacon_outage(self, chaos_result):
        """Day 3 runs with two beacons dark; detection must continue."""
        sensing = chaos_result.sensing
        for badge_id in (0, 3):
            summary = sensing.summaries[(badge_id, 3)]
            detected = (summary.room >= 0).sum()
            assert detected > 0, f"badge {badge_id} lost all rooms on outage day"

    def test_battery_depletion_stops_recording_midday(self, chaos_result):
        summary = chaos_result.sensing.summaries[(BATTERY_BADGE, 2)]
        cut = int(3 * HOUR)  # fault at 10:00, daytime starts 07:00, 1 s frames
        assert not summary.active[cut:].any()
        # The next morning the badge is recharged and records again.
        assert chaos_result.sensing.summaries[(BATTERY_BADGE, 3)].active.any()

    def test_sdcard_cap_exhausts_recording(self, chaos_result):
        sd = chaos_result.sdcard
        assert sd.capacity_for(SDCARD_BADGE) == 1e9
        assert sd.badge_total(SDCARD_BADGE) <= 1e9 + sd.total_rate_bps
        # Day 2 fills the worn card; day 3 has no budget left.
        assert not chaos_result.sensing.summaries[(SDCARD_BADGE, 3)].active.any()
        assert chaos_result.sensing.summaries[(SDCARD_BADGE, 2)].active.any()

    def test_unfaulted_badges_unaffected(self, chaos_result):
        summary = chaos_result.sensing.summaries[(4, 2)]
        assert summary.active.any()
        assert chaos_result.sdcard.badge_total(4) > 1e9  # default capacity


@pytest.mark.tier2
class TestDeterminism:
    def test_identical_reliability_across_runs(self, chaos_result):
        again = run_mission(_chaos_config())
        assert chaos_result.reliability.to_dict() == again.reliability.to_dict()

    def test_identical_sensing_across_runs(self, chaos_result):
        import numpy as np

        again = run_mission(_chaos_config())
        assert set(again.sensing.summaries) == set(chaos_result.sensing.summaries)
        for key in ((BATTERY_BADGE, 2), (SDCARD_BADGE, 3), (0, 3)):
            one = chaos_result.sensing.summaries[key]
            two = again.sensing.summaries[key]
            np.testing.assert_array_equal(one.room, two.room)
            np.testing.assert_array_equal(one.active, two.active)
        assert again.sdcard.total_bytes() == chaos_result.sdcard.total_bytes()
