"""End-to-end telemetry: an instrumented 2-day mission plus bus accounting.

The slow full-mission cases are marked ``tier2`` so a fast CI lane can
deselect them with ``-m "not tier2"``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import MissionConfig, obs, run_mission
from repro.core.engine import Simulator
from repro.obs import export
from repro.support.bus import Network, Node


@pytest.fixture(scope="module")
def telemetry_cfg() -> MissionConfig:
    return MissionConfig(days=2, seed=23, events=None)


@pytest.fixture(scope="module")
def instrumented(telemetry_cfg):
    """One telemetry-enabled 2-day mission; yields (result, snapshot)."""
    obs.reset()
    obs.enable()
    try:
        result = run_mission(telemetry_cfg)
    finally:
        obs.reset()
    return result


@pytest.mark.tier2
class TestInstrumentedMission:
    def test_mission_span_with_stage_children(self, instrumented):
        snap = instrumented.telemetry
        assert snap is not None
        spans = snap["spans"]
        missions = [s for s in spans if s["name"] == "mission"]
        assert len(missions) == 1
        mission = missions[0]
        assert mission["wall_s"] > 0
        children = {s["name"] for s in spans if s["parent_id"] == mission["span_id"]}
        assert "crew.simulate_mission" in children   # crew-sim stage
        assert "sensing.day" in children             # sensing stage
        assert "localization.day" in children        # localization stage

    def test_badge_day_spans_nested_under_sensing(self, instrumented):
        spans = instrumented.telemetry["spans"]
        by_id = {s["span_id"]: s for s in spans}
        badge_days = [s for s in spans if s["name"] == "sensing.badge_day"]
        assert badge_days, "expected one span per badge-day"
        for s in badge_days:
            assert by_id[s["parent_id"]]["name"] == "sensing.day"

    def test_breakdown_covers_stages(self, instrumented):
        breakdown = instrumented.telemetry["span_breakdown"]
        for stage in ("mission", "crew.day", "sensing.badge_day",
                      "localization.day"):
            assert breakdown[stage]["count"] >= 1
            assert breakdown[stage]["wall_s"] > 0.0

    def test_pipeline_metrics_recorded(self, instrumented):
        metric_snap = instrumented.telemetry["metrics"]
        days = [s for s in metric_snap["sensing.badge_days"]["series"]]
        assert sum(s["value"] for s in days) >= 1
        loc = metric_snap["localization.known_fraction"]["series"][0]
        assert loc["count"] >= 1
        assert 0.0 <= loc["p50"] <= 1.0

    def test_telemetry_report_renders(self, instrumented):
        report = instrumented.to_text()
        assert "mission" in report
        assert "Stage breakdown" in report

    def test_snapshot_json_round_trips(self, instrumented):
        text = json.dumps(instrumented.telemetry, sort_keys=True, default=float)
        assert json.loads(text) == json.loads(text)
        restored = json.loads(text)
        assert restored["span_breakdown"]["mission"]["count"] == 1

    def test_disabled_run_emits_nothing(self, telemetry_cfg):
        obs.reset()  # telemetry off
        result = run_mission(telemetry_cfg)
        assert result.telemetry is None
        assert result.to_dict()["telemetry"] is None
        assert obs.tracing.collector.spans == []
        assert obs.metrics.registry.names() == []
        assert obs.logging.buffer.records == []
        # The run itself still produced the dataset.
        assert result.sensing.summaries


class _Chatter(Node):
    def handle_default(self, message):
        pass


class TestBusAccounting:
    def test_delivered_plus_dropped_equals_sent(self):
        """Exact bus accounting under loss, partition, and crashes."""
        obs.reset()
        obs.enable()
        sim = Simulator()
        network = Network(sim, loss_prob=0.2, rng=np.random.default_rng(5))
        nodes = [_Chatter(name, sim) for name in ("hab", "earth", "airlock")]
        for node in nodes:
            network.register(node)
        obs.set_sim_clock(lambda: sim.now)

        for i in range(40):
            nodes[0].send("earth", "status", i)
            nodes[1].send("hab", "command", i)
        network.partition("hab", "earth")
        network.crash("airlock")
        for i in range(40):
            nodes[0].send("earth", "status", i)   # partitioned
            nodes[2].send("hab", "telemetry", i)  # src crashed
            nodes[0].send("airlock", "ping", i)   # dst crashed (or lost)
        sim.run()

        assert network.in_flight() == 0
        assert network.delivered + network.dropped == network.sent
        assert network.sent == 200

        # The same invariant holds metric-side, per kind.
        sent = obs.metrics.registry.get("bus.sent")
        delivered = obs.metrics.registry.get("bus.delivered")
        dropped = obs.metrics.registry.get("bus.dropped")
        for kind in ("status", "command", "telemetry", "ping"):
            kind_dropped = sum(
                s["value"]
                for s in dropped.snapshot()["series"]
                if s["labels"]["kind"] == kind
            )
            assert delivered.value(kind=kind) + kind_dropped == sent.value(kind=kind)

        # Export round-trips through JSON.
        snap = export.from_json(export.to_json())
        assert snap["metrics"]["bus.sent"]["series"]
        # Fault injections landed in the structured log with sim time.
        crash_logs = obs.logging.buffer.matching("node-crashed")
        assert crash_logs and crash_logs[0].sim_time is not None
        obs.reset()
