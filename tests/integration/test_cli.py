"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture(scope="module")
def tiny_args():
    return ["--days", "2", "--seed", "21", "--no-events"]


class TestCli:
    def test_run_prints_table(self, capsys, tiny_args):
        assert main(["run", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "company" in out and "GiB" in out

    def test_save_and_analyze_round_trip(self, capsys, tiny_args, tmp_path):
        path = str(tmp_path / "ds")
        assert main(["save", *tiny_args, path]) == 0
        saved = capsys.readouterr().out
        assert "badge-days" in saved

        assert main(["analyze", path]) == 0
        analyzed = capsys.readouterr().out
        assert "company" in analyzed

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])
