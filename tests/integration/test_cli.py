"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture(scope="module")
def tiny_args():
    return ["--days", "2", "--seed", "21", "--no-events"]


class TestCli:
    def test_run_prints_table(self, capsys, tiny_args):
        assert main(["run", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "company" in out and "GiB" in out

    def test_save_and_analyze_round_trip(self, capsys, tiny_args, tmp_path):
        path = str(tmp_path / "ds")
        assert main(["save", *tiny_args, path]) == 0
        saved = capsys.readouterr().out
        assert "badge-days" in saved

        assert main(["analyze", path]) == 0
        analyzed = capsys.readouterr().out
        assert "company" in analyzed

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestQualityCli:
    def test_corruption_campaign_reports(self, capsys):
        args = ["quality", "--days", "3", "--seed", "21", "--no-events",
                "--campaign-seed", "1"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "data-corruption events" in out
        assert "data quality:" in out

    def test_clean_gate_all_ok(self, capsys):
        args = ["quality", "--days", "2", "--seed", "21", "--no-events",
                "--clean"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "coverage 100.0%" in out

    def test_json_dump_is_valid(self, capsys):
        import json

        args = ["quality", "--days", "2", "--seed", "21", "--no-events",
                "--clean", "--json"]
        assert main(args) == 0
        out = capsys.readouterr().out
        payload = json.loads(out.splitlines()[-1])
        assert payload["coverage"] == 1.0

    def test_analyze_gate_off(self, capsys, tiny_args, tmp_path):
        path = str(tmp_path / "ds")
        assert main(["save", *tiny_args, path]) == 0
        capsys.readouterr()
        assert main(["analyze", path, "--gate", "off"]) == 0
        assert "company" in capsys.readouterr().out
