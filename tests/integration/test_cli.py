"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture(scope="module")
def tiny_args():
    return ["--days", "2", "--seed", "21", "--no-events"]


class TestCli:
    def test_run_prints_table(self, capsys, tiny_args):
        assert main(["run", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "company" in out and "GiB" in out

    def test_save_and_analyze_round_trip(self, capsys, tiny_args, tmp_path):
        path = str(tmp_path / "ds")
        assert main(["save", *tiny_args, path]) == 0
        saved = capsys.readouterr().out
        assert "badge-days" in saved

        assert main(["analyze", path]) == 0
        analyzed = capsys.readouterr().out
        assert "company" in analyzed

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestQualityCli:
    def test_corruption_campaign_reports(self, capsys):
        args = ["quality", "--days", "3", "--seed", "21", "--no-events",
                "--campaign-seed", "1"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "data-corruption events" in out
        assert "data quality:" in out

    def test_clean_gate_all_ok(self, capsys):
        args = ["quality", "--days", "2", "--seed", "21", "--no-events",
                "--clean"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "coverage 100.0%" in out

    def test_json_dump_is_valid(self, capsys):
        import json

        args = ["quality", "--days", "2", "--seed", "21", "--no-events",
                "--clean", "--json"]
        assert main(args) == 0
        out = capsys.readouterr().out
        payload = json.loads(out.splitlines()[-1])
        assert payload["coverage"] == 1.0

    def test_analyze_gate_off(self, capsys, tiny_args, tmp_path):
        path = str(tmp_path / "ds")
        assert main(["save", *tiny_args, path]) == 0
        capsys.readouterr()
        assert main(["analyze", path, "--gate", "off"]) == 0
        assert "company" in capsys.readouterr().out


class TestFaultsCli:
    def test_seed_sweep_archives_reports(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "reports"
        args = ["faults", "--days", "2", "--seed", "21", "--no-events",
                "--campaign-seed", "0", "1", "--out", str(out_dir), "--json"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("campaign seed") >= 2
        for seed in (0, 1):
            payload = json.loads((out_dir / f"faults-seed-{seed}.json").read_text())
            assert payload["horizon_s"] == 2 * 86400.0
            assert "availability" in payload
        # Multi-seed --json dumps a seed-keyed map.
        tail = out[out.rindex("\n{"):]
        assert set(json.loads(tail)) == {"0", "1"}


class TestReliabilityCli:
    def test_predict_prints_bands_and_json(self, capsys):
        import json

        args = ["reliability", "predict", "--days", "3",
                "--campaign-seed", "0", "--json"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "CTMC reliability prediction" in out
        payload = json.loads(out[out.index("\n{"):])
        assert payload["confidence"] == 0.998
        assert "relay" in payload["availability"]

    def test_validate_reference_campaign_passes(self, capsys):
        args = ["reliability", "validate", "--days", "2", "--campaign-seed", "0"]
        assert main(args) == 0  # exit 1 would mean a metric left its band
        out = capsys.readouterr().out
        assert "model validation" in out and "PASS" in out
        assert "fault campaign over" in out  # the empirical report too

    def test_search_emits_ranked_regimes(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "regimes"
        args = ["reliability", "search", "--days", "2", "--regimes", "8",
                "--top", "2", "--out", str(out_dir), "--json"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "predicted-worst" in out
        for rank in (1, 2):
            payload = json.loads((out_dir / f"regime-{rank}.json").read_text())
            assert payload["regime"]["rank"] == rank
            assert "prediction" in payload
        regimes = json.loads(out[out.rindex("\n["):])
        assert [r["rank"] for r in regimes] == [1, 2]
