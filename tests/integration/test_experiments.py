"""Tests for the experiment drivers (figures, tables, ablations)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    ablate_stay_filter,
    ablate_time_sync,
)
from repro.experiments.figures import (
    fig2, fig3, fig4, fig5, fig6,
    format_fig2, format_fig3, format_fig5, format_series,
)
from repro.experiments.tables import (
    build_deployment_stats,
    build_section5_claims,
    build_table1,
)


class TestFigures:
    def test_fig2(self, result):
        names, counts = fig2(result)
        assert counts.shape == (8, 8)
        assert "kitchen" in format_fig2(names, counts)

    def test_fig3_heatmap(self, result):
        heatmap = fig3(result, "A")
        assert heatmap.total_seconds() > 3600.0
        assert heatmap.cell_m == pytest.approx(0.28)
        art = format_fig3(heatmap)
        assert len(art.splitlines()) > 5

    def test_fig3_impaired_center_bias(self, result):
        """Fig 3's visible finding: A keeps to room centers more than a
        mobile crewmate does (compared within each one's main work room)."""
        a_map = fig3(result, "A")
        d_map = fig3(result, "D")
        storage = result.truth.plan.room("storage").rect
        workshop = result.truth.plan.room("workshop").rect
        a_ratio = a_map.center_vs_corner_ratio(storage)
        d_ratio = d_map.center_vs_corner_ratio(workshop)
        assert a_ratio > d_ratio

    def test_fig4(self, result):
        series = fig4(result, days=(2, 3))
        assert all(set(days) <= {2, 3} for days in series.values())
        assert "d2" in format_series(series)

    def test_fig5(self, result, mission_cfg):
        timeline = fig5(result)
        assert timeline.day == mission_cfg.events.death_day
        assert format_fig5(result, timeline)

    def test_fig6(self, result):
        series = fig6(result)
        values = [v for per_day in series.values() for v in per_day.values()]
        assert all(0.0 <= v <= 1.0 for v in values)


class TestTables:
    def test_table1_renders(self, result):
        table = build_table1(result)
        text = str(table)
        # All six astronauts and all four columns render; on the short
        # fixture C has enough coverage to be scored (the full-mission
        # benchmark is where C becomes "n/a" as in the paper).
        for astro in "ABCDEF":
            assert astro in text
        assert table.talking["C"] == pytest.approx(1.0)

    def test_deployment_stats(self, result):
        stats = build_deployment_stats(result)
        assert stats.total_gib > 5.0

    def test_section5_claims(self, result):
        claims = build_section5_claims(result)
        assert claims.af_private_h >= claims.de_private_h
        assert "private talk" in str(claims)


class TestAblations:
    def test_stay_filter_monotone(self, mission_cfg, truth):
        cfg = mission_cfg.with_days(2)
        import dataclasses

        cfg = dataclasses.replace(cfg, events=None)
        from repro.crew.behavior import simulate_mission

        short_truth = simulate_mission(cfg)
        sweep = ablate_stay_filter(cfg, short_truth)
        counts = [sweep[t] for t in sorted(sweep)]
        assert counts == sorted(counts, reverse=True)
        assert sweep[0.0] > sweep[20.0]

    def test_time_sync_degrades_with_skew(self, result):
        sweep = ablate_time_sync(result, skews_s=(0.0, 20.0))
        assert sweep[0.0] == 1.0
        assert sweep[20.0] < sweep[0.0]
