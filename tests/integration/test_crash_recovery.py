"""Tier-2 chaos: real SIGKILLs against a live mission, then resume.

Two acceptance scenarios for the crash-safety subsystem:

* the whole driver process group (driver + pool workers) is SIGKILLed
  mid-mission; a ``--resume`` run restores the journaled days and
  completes **bit-identical** to an uninterrupted serial run;
* a single pool worker is SIGKILLed out from under a live in-process
  mission; the supervisor salvages, respawns, and the mission completes
  bit-identically without any resume at all.

These spawn real subprocesses and kill them, so they live in tier 2
(scheduled/manual CI), not the per-push tier-1 suite.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import ExecutionConfig, MissionConfig
from repro.experiments.mission import run_mission

from tests.exec.test_executor import assert_bit_identical

REPO = Path(__file__).resolve().parents[2]

DRIVER = """\
import sys
from repro.core.config import ExecutionConfig, MissionConfig
from repro.experiments.mission import run_mission

cfg = MissionConfig(days=4, seed=5, frame_dt=5.0, events=None)
run_mission(cfg, execution=ExecutionConfig(
    n_workers=2, checkpoint_dir=sys.argv[1], retry_backoff_s=0.01,
))
print("MISSION-COMPLETED", flush=True)
"""


def _cfg():
    return MissionConfig(days=4, seed=5, frame_dt=5.0, events=None)


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted serial run — the bit-identity reference."""
    return run_mission(_cfg())


def _driver_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _wait_for_checkpoint(ckpt: Path, proc: subprocess.Popen,
                         timeout_s: float = 180.0) -> list[Path]:
    """Block until the journal holds at least one day record."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        found = sorted(ckpt.glob("journal-*/day*.ckpt"))
        if found:
            return found
        if proc.poll() is not None:
            raise AssertionError(
                f"driver exited (rc={proc.returncode}) before journaling "
                f"anything:\n{proc.stdout.read()}"
            )
        time.sleep(0.01)
    raise AssertionError("no checkpoint appeared within the timeout")


@pytest.mark.tier2
class TestDriverKilledMidMission:
    def test_sigkill_then_resume_is_bit_identical(self, baseline, tmp_path):
        ckpt = tmp_path / "ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-c", DRIVER, str(ckpt)],
            env=_driver_env(), cwd=str(REPO), start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            _wait_for_checkpoint(ckpt, proc)
            # SIGKILL the whole group: driver AND its pool workers die
            # with no chance to flush or clean up — the real crash.
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.stdout.close()
        assert proc.returncode != 0  # killed, not completed

        resumed = run_mission(_cfg(), execution=ExecutionConfig(
            checkpoint_dir=str(ckpt), resume=True,
        ))
        checkpoint = resumed.cache_stats["checkpoint"]
        assert checkpoint["resumed_days"], "nothing was restored from the journal"
        assert set(checkpoint["resumed_days"]) <= {2, 3, 4}
        assert_bit_identical(baseline, resumed)

    def test_cli_resume_after_kill(self, tmp_path):
        """The operator-facing path: ``repro run --resume`` finishes the
        mission a SIGKILLed CLI run left behind."""
        ckpt = tmp_path / "ckpt"
        args = [sys.executable, "-m", "repro", "run", "--days", "4",
                "--seed", "5", "--no-events", "--workers", "2",
                "--checkpoint", str(ckpt)]
        proc = subprocess.Popen(
            args, env=_driver_env(), cwd=str(REPO), start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            _wait_for_checkpoint(ckpt, proc)
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.stdout.close()

        done = subprocess.run(
            args + ["--resume"], env=_driver_env(), cwd=str(REPO),
            capture_output=True, text=True, timeout=600,
        )
        assert done.returncode == 0, done.stdout + done.stderr
        assert "resumed" in done.stdout
        assert "day(s) from checkpoint" in done.stdout


def _pool_worker_pids(parent_pid: int) -> list[int]:
    """Direct children of ``parent_pid`` that look like pool workers
    (resource trackers and other helpers are excluded)."""
    workers = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        pid = int(entry)
        try:
            with open(f"/proc/{pid}/stat") as fh:
                fields = fh.read().rsplit(")", 1)[1].split()
            if int(fields[1]) != parent_pid:
                continue
            cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
        except (OSError, IndexError, ValueError):
            continue
        if b"resource_tracker" in cmdline:
            continue
        workers.append(pid)
    return workers


@pytest.mark.tier2
class TestWorkerKilledMidMission:
    def test_external_worker_sigkill_recovers_bit_identical(self, baseline):
        """A pool worker OOM-killed by the outside world: the supervisor
        must salvage, respawn, and still produce exact results."""
        from repro import obs

        box = {}

        def drive():
            box["result"] = run_mission(_cfg(), execution=ExecutionConfig(
                n_workers=2, retry_backoff_s=0.01,
            ))

        obs.reset()
        obs.enable()
        try:
            thread = threading.Thread(target=drive)
            thread.start()
            deadline = time.monotonic() + 180.0
            killed = None
            while time.monotonic() < deadline and thread.is_alive():
                workers = _pool_worker_pids(os.getpid())
                if workers:
                    try:
                        os.kill(workers[0], signal.SIGKILL)
                    except ProcessLookupError:
                        continue  # worker exited first; try again
                    killed = workers[0]
                    break
                time.sleep(0.005)
            thread.join(timeout=600)
            assert not thread.is_alive(), "mission never finished after the kill"
            assert killed is not None, "no pool worker ever appeared"
            snapshot = obs.metrics.registry.snapshot()
        finally:
            obs.reset()

        result = box["result"]
        assert_bit_identical(baseline, result)
        # The kill really was absorbed by the supervisor, not dodged.
        respawns = snapshot.get("exec.pool_respawns")
        fallbacks = snapshot.get("exec.fallback")
        assert respawns is not None or fallbacks is not None, (
            "worker SIGKILL left no trace: neither a pool respawn nor a "
            "serial fallback was recorded"
        )
