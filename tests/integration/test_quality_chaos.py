"""Tier-2 chaos: a full-scale corruption campaign through the whole path.

A reference-size mission (full crew, default frame rate) under a seeded
campaign mixing bus faults, sensing faults, *and* every data-corruption
kind, run through ``run_mission`` with the quality gate engaged and then
through every analytics entry point and all the paper figures.  This is
the deployment the paper actually had — radios flaking, batteries dying,
storage rotting — and the acceptance bar is that the analysis layer
digests it without a single uncaught exception while reporting honest
coverage.
"""

import dataclasses

import pytest

from repro.core.config import MissionConfig
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6
from repro.experiments.mission import run_mission
from repro.faults.campaign import FaultCampaign

from tests.quality.conftest import run_every_analysis

pytestmark = pytest.mark.tier2


def _everything_campaign(days: int, seed: int = 0) -> FaultCampaign:
    return dataclasses.replace(
        FaultCampaign.reference(days=days, seed=seed),
        bitrot_days=3, truncated_days=2, duplicated_days=2,
        stuck_days=2, clock_desyncs=2,
    )


@pytest.fixture(scope="module")
def chaos_quality_result():
    days = 4
    plan = _everything_campaign(days).generate()
    cfg = MissionConfig(days=days, seed=13, events=None, fault_plan=plan)
    return run_mission(cfg)


class TestFullScaleCorruption:
    def test_gate_engaged_with_dirty_verdicts(self, chaos_quality_result):
        report = chaos_quality_result.quality
        assert report is not None
        assert report.n_repaired + report.n_quarantined > 0
        assert report.coverage() < 1.0

    def test_reliability_and_quality_coexist(self, chaos_quality_result):
        # Bus-level fault reporting is unaffected by the data layer.
        assert chaos_quality_result.reliability is not None
        text = chaos_quality_result.to_text()
        assert "data quality:" in text

    def test_every_analysis_completes(self, chaos_quality_result):
        results = run_every_analysis(chaos_quality_result.sensing)
        assert results
        for name, result in results.items():
            coverage = getattr(result, "coverage", 1.0)
            assert 0.0 <= coverage <= 1.0, name

    def test_every_figure_completes(self, chaos_quality_result):
        result = chaos_quality_result
        names, counts = fig2(result)
        assert counts.shape == (len(names), len(names))
        fig3(result, result.assignment.roster.ids[0])
        fig4(result)
        fig5(result)
        fig6(result)

    def test_report_reproduces_byte_for_byte(self, chaos_quality_result):
        days = 4
        plan = _everything_campaign(days).generate()
        cfg = MissionConfig(days=days, seed=13, events=None, fault_plan=plan)
        again = run_mission(cfg)
        assert again.quality.to_json() == chaos_quality_result.quality.to_json()
