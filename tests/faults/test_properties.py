"""Property-based tests: campaign generation and reporting invariants.

Hypothesis drives arbitrary (seeded) fault campaigns through plan
generation and — for a 1-day horizon — the full support scenario, then
asserts the contracts everything downstream leans on:

* ``FaultCampaign.generate()`` is a pure function of the campaign: the
  same seed yields a byte-identical plan, a different seed a different
  draw (for any campaign that draws at all);
* every generated event lies inside the horizon with a positive (>= the
  1 s floor) duration where one applies;
* a :class:`ReliabilityReport` from any seeded run keeps availability in
  ``[0, 1]``, MTTR positive when present, censored counts non-negative,
  and conserves messages: per-kind ``sent == acked + dead`` up to the
  globally reported pending count, and bus ``sent == delivered +
  dropped``.

Runs under the fixed ``faults-tier1`` profile (derandomized, capped
examples) so tier-1 cost and outcome are deterministic.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MissionConfig
from repro.faults.campaign import FaultCampaign
from repro.faults.scenario import run_support_scenario

FIXED = settings.get_profile("faults-tier1")

DURATION_ACTIONS = {"crash", "link-down", "lossy", "blackout", "beacon-outage"}


@st.composite
def campaigns(draw):
    """A small seeded campaign with randomized rates (1-day horizon)."""
    base = FaultCampaign.reference(
        days=1,
        seed=draw(st.integers(min_value=0, max_value=2 ** 31 - 1)),
    )
    return dataclasses.replace(
        base,
        crashes_per_day=draw(st.floats(0.0, 6.0)),
        flaps_per_day=draw(st.floats(0.0, 6.0)),
        lossy_windows_per_day=draw(st.floats(0.0, 4.0)),
        lossy_prob=draw(st.floats(0.0, 0.9)),
        blackouts_per_day=draw(st.floats(0.0, 3.0)),
        mean_downtime_s=draw(st.floats(10.0, 7200.0)),
    )


class TestPlanGeneration:
    @FIXED
    @given(campaign=campaigns())
    def test_generation_is_byte_stable(self, campaign):
        assert campaign.generate() == campaign.generate()

    @FIXED
    @given(campaign=campaigns(), other_seed=st.integers(0, 2 ** 31 - 1))
    def test_seed_controls_the_draw(self, campaign, other_seed):
        reseeded = dataclasses.replace(campaign, seed=other_seed)
        plan, other = campaign.generate(), reseeded.generate()
        if reseeded.seed != campaign.seed and plan.events and other.events:
            # Two empty draws are legitimately equal; two non-empty ones
            # from different seeds never are (times are continuous).
            assert plan != other

    @FIXED
    @given(campaign=campaigns())
    def test_events_lie_inside_horizon(self, campaign):
        for event in campaign.generate().events:
            assert 0.0 <= event.time_s <= campaign.horizon_s
            if event.action in DURATION_ACTIONS:
                assert event.duration_s >= 1.0  # the campaign's floor


class TestReportInvariants:
    @FIXED
    @given(
        campaign_seed=st.integers(min_value=0, max_value=2 ** 16),
        mission_seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    def test_report_invariants_hold(self, campaign_seed, mission_seed):
        campaign = FaultCampaign.reference(days=1, seed=campaign_seed)
        cfg = MissionConfig(days=1, seed=mission_seed,
                            badges_from_day=1, events=None)
        report = run_support_scenario(cfg, campaign.generate())

        for node, value in report.availability.items():
            assert 0.0 <= value <= 1.0, node
        if report.mttr_s is not None:
            assert report.mttr_s > 0.0
        assert report.n_outages >= 0
        assert report.n_censored_outages >= 0
        if report.n_outages == 0:
            assert report.mttr_s is None

        # Message conservation: what was sent is acked, dead-lettered,
        # or still pending — per kind up to the global pending count,
        # exactly in aggregate.
        gap = 0
        for kind, entry in report.delivery.items():
            assert entry["sent"] >= entry["acked"] + entry["dead"], kind
            gap += entry["sent"] - entry["acked"] - entry["dead"]
            success = report.delivery_success(kind)
            if entry["sent"] == 0:
                assert success is None
            else:
                assert 0.0 <= success <= 1.0
        assert gap == report.pending
        assert report.bus_sent == report.bus_delivered + report.bus_dropped

        # The dict form round-trips deterministically.
        assert report.to_dict() == report.to_dict()
