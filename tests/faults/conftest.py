"""Fixtures for the fault-layer tests.

Registers the fixed hypothesis profile the tier-1 property suite runs
under: derandomized (every CI run explores the identical example
sequence) and capped, so the suite's cost and outcome are deterministic.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings

settings.register_profile(
    "faults-tier1",
    derandomize=True,
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
