"""Tests for randomized fault campaigns."""

import dataclasses

import pytest

from repro.core.errors import ConfigError
from repro.core.units import DAY
from repro.faults.campaign import FaultCampaign


class TestDeterminism:
    def test_same_seed_same_plan(self):
        camp = FaultCampaign.reference(days=7, seed=42)
        assert camp.generate() == camp.generate()

    def test_different_seeds_differ(self):
        a = FaultCampaign.reference(days=7, seed=1).generate()
        b = FaultCampaign.reference(days=7, seed=2).generate()
        assert a != b

    def test_plan_is_sorted(self):
        plan = FaultCampaign.reference(days=7, seed=0).generate()
        times = [e.time_s for e in plan.events]
        assert times == sorted(times)


class TestGeneration:
    def test_zero_rates_empty_plan(self):
        camp = FaultCampaign(
            seed=0, horizon_s=7 * DAY,
            crashes_per_day=0.0, flaps_per_day=0.0, lossy_windows_per_day=0.0,
            blackouts_per_day=0.0, beacon_outages_per_day=0.0,
            battery_depletions=0, sdcard_exhaustions=0,
        )
        assert camp.generate().is_empty()

    def test_events_within_horizon(self):
        plan = FaultCampaign.reference(days=5, seed=3).generate()
        assert all(0.0 <= e.time_s < 5 * DAY for e in plan.events)

    def test_reference_covers_fault_classes(self):
        # High enough rates that every class appears at some seed.
        camp = dataclasses.replace(
            FaultCampaign.reference(days=14, seed=0),
            crashes_per_day=2.0, flaps_per_day=2.0, lossy_windows_per_day=2.0,
            blackouts_per_day=2.0, beacon_outages_per_day=2.0,
        )
        actions = {e.action for e in camp.generate().events}
        assert {"crash", "link-down", "lossy", "blackout",
                "beacon-outage", "badge-battery", "sdcard-cap"} <= actions

    def test_targets_come_from_campaign_sets(self):
        camp = FaultCampaign.reference(days=14, seed=7)
        plan = camp.generate()
        for event in plan.events:
            if event.action == "crash":
                assert event.target in camp.nodes
            elif event.action == "beacon-outage":
                assert 0 <= int(event.target) < camp.n_beacons
            elif event.action in ("badge-battery", "sdcard-cap"):
                assert event.badge_id() in camp.badge_ids

    def test_crashes_need_nodes(self):
        camp = FaultCampaign(seed=0, horizon_s=DAY, crashes_per_day=10.0,
                             flaps_per_day=0.0, lossy_windows_per_day=0.0,
                             blackouts_per_day=0.0, beacon_outages_per_day=0.0)
        assert all(e.action != "crash" for e in camp.generate().events)


class TestValidation:
    def test_horizon_positive(self):
        with pytest.raises(ConfigError):
            FaultCampaign(horizon_s=0.0)

    def test_lossy_prob_bounds(self):
        with pytest.raises(ConfigError):
            FaultCampaign(lossy_prob=1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultCampaign(crashes_per_day=-1.0)

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigError):
            FaultCampaign(mean_downtime_s=0.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            FaultCampaign(battery_depletions=-1)


class TestWorkerCrashes:
    def test_generated_and_bounded_by_horizon(self):
        camp = dataclasses.replace(
            FaultCampaign.reference(days=5, seed=4), worker_crashes=3
        )
        plan = camp.generate()
        crashes = plan.exec_events()
        assert len(crashes) == 3
        assert all(e.action == "worker-crash" for e in crashes)
        assert all(0.0 <= e.time_s < 5 * DAY for e in crashes)
        assert plan.worker_crash_days() <= set(range(1, 6))

    def test_adding_crashes_keeps_existing_plan_byte_stable(self):
        """worker-crash draws come last: a campaign extended with them
        reproduces its historical bus/sensing events exactly."""
        base = FaultCampaign.reference(days=7, seed=11)
        extended = dataclasses.replace(base, worker_crashes=4)
        plain = base.generate().events
        with_crashes = [e for e in extended.generate().events
                        if e.action != "worker-crash"]
        assert list(plain) == with_crashes

    def test_exec_events_never_count_as_sensing(self):
        camp = FaultCampaign(
            seed=0, horizon_s=3 * DAY,
            crashes_per_day=0.0, flaps_per_day=0.0, lossy_windows_per_day=0.0,
            blackouts_per_day=0.0, beacon_outages_per_day=0.0,
            battery_depletions=0, sdcard_exhaustions=0, worker_crashes=2,
        )
        plan = camp.generate()
        assert not plan.sensing_events()
        assert not plan.bus_events()
        assert len(plan.exec_events()) == 2
        assert not plan.is_empty()

    def test_negative_worker_crashes_rejected(self):
        with pytest.raises(ConfigError):
            FaultCampaign(worker_crashes=-1)
