"""Tests for the fault injector and reliability reporting."""

import pytest

from repro.core.config import MissionConfig
from repro.core.engine import Simulator
from repro.faults.campaign import FaultCampaign
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.report import availability_from_downtime
from repro.faults.scenario import run_support_scenario
from repro.support.bus import Network, Node
from repro.support.mission_control import EarthLink


@pytest.fixture()
def stack():
    sim = Simulator()
    network = Network(sim, default_latency_s=0.1)
    for name in ("x", "y"):
        network.register(Node(name, sim))
    return sim, network


class TestCrashWindows:
    def test_crash_recovers_after_duration(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=5.0, action="crash", target="x", duration_s=10.0),
        ))
        sim.run_until(6.0)
        assert network.is_down("x")
        sim.run()
        assert not network.is_down("x")
        assert injector.downtime["x"] == [(5.0, 15.0)]

    def test_overlapping_crashes_collapse(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=5.0, action="crash", target="x", duration_s=10.0),
            FaultEvent(time_s=8.0, action="crash", target="x", duration_s=20.0),
        ))
        sim.run()
        # Second crash found the node already down; one interval, first
        # recovery wins.
        assert injector.downtime["x"] == [(5.0, 15.0)]

    def test_persistent_crash_closed_at_horizon(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=5.0, action="crash", target="x"),
        ))
        sim.run()
        assert injector.downtime["x"] == [(5.0, None)]
        assert injector.closed_downtime(100.0)["x"] == [(5.0, 100.0)]

    def test_unknown_node_skipped(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=1.0, action="crash", target="ghost", duration_s=5.0),
        ))
        sim.run()
        assert injector.skipped == 1
        assert injector.injected == 0


class TestLinkAndLossy:
    def test_link_flap_heals(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=1.0, action="link-down", target="x<->y", duration_s=4.0),
        ))
        x = network.node("x")
        sim.schedule_at(2.0, x.send, "y", "during")
        sim.schedule_at(6.0, x.send, "y", "after")
        sim.run()
        assert network.dropped == 1
        assert network.delivered == 1

    def test_lossy_window_restores_base_prob(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=1.0, action="lossy", duration_s=5.0, value=0.5),
        ))
        sim.run_until(2.0)
        assert network.loss_prob == 0.5
        sim.run()
        assert network.loss_prob == 0.0

    def test_nested_lossy_windows(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=1.0, action="lossy", duration_s=10.0, value=0.3),
            FaultEvent(time_s=2.0, action="lossy", duration_s=2.0, value=0.6),
        ))
        sim.run_until(3.0)
        assert network.loss_prob == 0.6
        sim.run_until(6.0)
        assert network.loss_prob > 0.0  # outer window still open
        sim.run()
        assert network.loss_prob == 0.0

    def test_blackout_without_earth_link_skipped(self, stack):
        sim, network = stack
        injector = FaultInjector(network)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=1.0, action="blackout", duration_s=5.0),
        ))
        sim.run()
        assert injector.skipped == 1

    def test_blackout_partitions_earth_link(self):
        sim = Simulator()
        network = Network(sim, default_latency_s=0.1)
        link = EarthLink.build(network, sim, one_way_delay_s=10.0)
        injector = FaultInjector(network, earth_link=link)
        injector.schedule(sim, FaultPlan.build(
            FaultEvent(time_s=1.0, action="blackout", duration_s=50.0),
        ))
        sim.schedule_at(5.0, link.mission_control.issue, "t", "a")   # dropped
        sim.schedule_at(60.0, link.mission_control.issue, "t", "b")  # arrives
        sim.run()
        assert len(link.habitat_agent.applied_commands) == 1
        assert link.habitat_agent.applied_commands[0].action == "b"


class TestAvailability:
    def test_availability_and_mttr(self):
        downtime = {"x": [(10.0, 30.0), (50.0, 60.0)]}
        availability, mttr, n, censored = availability_from_downtime(
            downtime, ["x", "y"], 100.0)
        assert availability["x"] == pytest.approx(0.7)
        assert availability["y"] == 1.0
        assert mttr == pytest.approx(15.0)
        assert n == 2
        assert censored == 0

    def test_no_outages_no_mttr(self):
        availability, mttr, n, censored = availability_from_downtime({}, ["x"], 100.0)
        assert availability == {"x": 1.0}
        assert mttr is None and n == 0 and censored == 0

    def test_open_outage_counts_downtime_but_not_mttr(self):
        """Right-censoring: an outage still open at the horizon charges
        availability for its observed downtime without polluting MTTR."""
        downtime = {"x": [(10.0, 20.0), (80.0, None)]}
        availability, mttr, n, censored = availability_from_downtime(
            downtime, ["x"], 100.0)
        assert availability["x"] == pytest.approx(0.7)  # 10 closed + 20 open
        assert mttr == pytest.approx(10.0)              # closed outage only
        assert n == 1
        assert censored == 1

    def test_recovery_past_horizon_is_censored(self):
        """A repair observed only during the post-horizon drain is not a
        within-horizon repair; downtime is clamped at the horizon."""
        downtime = {"x": [(90.0, 130.0)]}
        availability, mttr, n, censored = availability_from_downtime(
            downtime, ["x"], 100.0)
        assert availability["x"] == pytest.approx(0.9)
        assert mttr is None
        assert n == 0
        assert censored == 1

    def test_all_censored_availability_floor(self):
        downtime = {"x": [(0.0, None)]}
        availability, mttr, n, censored = availability_from_downtime(
            downtime, ["x"], 100.0)
        assert availability["x"] == 0.0
        assert mttr is None and n == 0 and censored == 1


class TestScenario:
    def test_scenario_deterministic_and_drained(self):
        cfg = MissionConfig(days=2, seed=5)
        plan = FaultCampaign.reference(days=2, seed=9).generate()
        one = run_support_scenario(cfg, plan)
        two = run_support_scenario(cfg, plan)
        assert one.to_dict() == two.to_dict()
        assert one.pending == 0
        assert one.bus_sent == one.bus_delivered + one.bus_dropped

    def test_scenario_report_text(self):
        cfg = MissionConfig(days=2, seed=5)
        plan = FaultPlan.build(
            FaultEvent(time_s=3600.0, action="crash", target="svc-a", duration_s=1800.0),
        )
        report = run_support_scenario(cfg, plan)
        text = report.to_text()
        assert "availability" in text
        assert "delivery[submit]" in text
        assert report.availability["svc-a"] < 1.0
        assert report.mttr_s == pytest.approx(1800.0)
