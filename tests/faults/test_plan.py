"""Tests for scripted fault plans."""

import pytest

from repro.core.config import MissionConfig
from repro.core.errors import ConfigError
from repro.core.units import DAY, HOUR
from repro.faults.plan import BUS_ACTIONS, SENSING_ACTIONS, FaultEvent, FaultPlan


class TestEventValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="meteor-strike").validate()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=-1.0, action="lossy", value=0.1).validate()

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="blackout", duration_s=0.0).validate()

    def test_crash_needs_target(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="crash").validate()

    def test_lossy_value_must_be_probability(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="lossy", value=1.5).validate()

    def test_sdcard_cap_needs_positive_bytes(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="sdcard-cap", target="1").validate()

    def test_end_s(self):
        event = FaultEvent(time_s=10.0, action="blackout", duration_s=5.0)
        assert event.end_s == 15.0
        assert FaultEvent(time_s=10.0, action="crash", target="n").end_s is None


class TestTargetParsing:
    def test_bidirectional_link(self):
        event = FaultEvent(time_s=0.0, action="link-down", target="a<->b")
        assert event.link_endpoints() == ("a", "b", True)

    def test_directed_link(self):
        event = FaultEvent(time_s=0.0, action="link-down", target="a->b")
        assert event.link_endpoints() == ("a", "b", False)

    def test_bad_link_target(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="link-down", target="ab").link_endpoints()

    def test_beacon_ids(self):
        event = FaultEvent(time_s=0.0, action="beacon-outage", target="3,7,12")
        assert event.beacon_ids() == (3, 7, 12)

    def test_bad_beacon_target(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="beacon-outage", target="x").beacon_ids()

    def test_badge_id(self):
        assert FaultEvent(time_s=0.0, action="badge-battery", target="4").badge_id() == 4


class TestPlan:
    def test_build_sorts_by_time(self):
        plan = FaultPlan.build(
            FaultEvent(time_s=20.0, action="blackout"),
            FaultEvent(time_s=10.0, action="crash", target="n"),
        )
        assert [e.time_s for e in plan.events] == [10.0, 20.0]

    def test_build_validates(self):
        with pytest.raises(ConfigError):
            FaultPlan.build(FaultEvent(time_s=0.0, action="nope"))

    def test_bus_sensing_split_is_a_partition(self):
        assert not (BUS_ACTIONS & SENSING_ACTIONS)
        plan = FaultPlan.build(
            FaultEvent(time_s=0.0, action="crash", target="n", duration_s=1.0),
            FaultEvent(time_s=1.0, action="beacon-outage", target="1", duration_s=1.0),
        )
        assert len(plan.bus_events()) == 1
        assert len(plan.sensing_events()) == 1

    def test_merged(self):
        one = FaultPlan.build(FaultEvent(time_s=5.0, action="blackout"))
        two = FaultPlan.build(FaultEvent(time_s=1.0, action="crash", target="n"))
        merged = one.merged(two)
        assert len(merged.events) == 2
        assert merged.events[0].time_s == 1.0

    def test_empty_plan(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan.build(FaultEvent(time_s=0.0, action="blackout")).is_empty()

    def test_plan_is_hashable(self):
        plan = FaultPlan.build(FaultEvent(time_s=0.0, action="blackout"))
        assert hash(plan) == hash(FaultPlan.build(FaultEvent(time_s=0.0, action="blackout")))


class TestSensingQueries:
    START = 7 * HOUR          # 07:00 daytime start
    DAYTIME = 14 * HOUR

    def test_dead_beacons_overlapping_day(self):
        plan = FaultPlan.build(FaultEvent(
            time_s=1 * DAY + self.START + HOUR,   # day 2, 08:00
            action="beacon-outage", target="3,5", duration_s=2 * HOUR,
        ))
        assert plan.dead_beacons_on_day(2, self.START, self.DAYTIME) == {3, 5}
        assert plan.dead_beacons_on_day(1, self.START, self.DAYTIME) == frozenset()
        assert plan.dead_beacons_on_day(3, self.START, self.DAYTIME) == frozenset()

    def test_persistent_outage_spans_remaining_days(self):
        plan = FaultPlan.build(FaultEvent(
            time_s=1 * DAY, action="beacon-outage", target="0",
        ))
        for day in (2, 3, 10):
            assert plan.dead_beacons_on_day(day, self.START, self.DAYTIME) == {0}

    def test_battery_cut_frame_within_day(self):
        # Day 2, one hour into daytime, 1-second frames.
        plan = FaultPlan.build(FaultEvent(
            time_s=1 * DAY + self.START + HOUR, action="badge-battery", target="4",
        ))
        n = int(self.DAYTIME)
        assert plan.battery_cut_frame(4, 2, self.START, n, 1.0) == int(HOUR)
        assert plan.battery_cut_frame(4, 3, self.START, n, 1.0) is None
        assert plan.battery_cut_frame(5, 2, self.START, n, 1.0) is None

    def test_battery_before_daytime_kills_whole_day(self):
        plan = FaultPlan.build(FaultEvent(
            time_s=1 * DAY + HOUR, action="badge-battery", target="4",  # 01:00
        ))
        assert plan.battery_cut_frame(4, 2, self.START, 100, 1.0) == 0

    def test_sdcard_caps_and_faulted_badges(self):
        plan = FaultPlan.build(
            FaultEvent(time_s=0.0, action="sdcard-cap", target="2", value=1e6),
            FaultEvent(time_s=5.0, action="badge-battery", target="3"),
        )
        assert plan.sdcard_caps() == {2: 1e6}
        assert plan.faulted_badges() == {2, 3}


class TestMissionConfigIntegration:
    def test_config_accepts_plan(self):
        plan = FaultPlan.build(FaultEvent(time_s=DAY, action="blackout", duration_s=HOUR))
        cfg = MissionConfig(days=3, fault_plan=plan)
        assert cfg.fault_plan is plan

    def test_config_rejects_event_beyond_mission(self):
        plan = FaultPlan.build(FaultEvent(time_s=5 * DAY, action="blackout"))
        with pytest.raises(ConfigError):
            MissionConfig(days=3, fault_plan=plan)

    def test_config_stays_hashable(self):
        plan = FaultPlan.build(FaultEvent(time_s=0.0, action="blackout"))
        assert isinstance(hash(MissionConfig(days=2, fault_plan=plan)), int)


class TestExecFaults:
    def test_worker_crash_needs_no_target(self):
        FaultEvent(time_s=0.0, action="worker-crash").validate()

    def test_worker_crash_days_maps_time_to_day(self):
        plan = FaultPlan.build(
            FaultEvent(time_s=0.0, action="worker-crash"),          # day 1
            FaultEvent(time_s=1.5 * DAY, action="worker-crash"),    # day 2
            FaultEvent(time_s=2.999 * DAY, action="worker-crash"),  # day 3
        )
        assert plan.worker_crash_days() == frozenset({1, 2, 3})
        assert len(plan.exec_events()) == 3

    def test_exec_events_excluded_from_bus_and_sensing(self):
        plan = FaultPlan.build(
            FaultEvent(time_s=DAY, action="worker-crash"),
            FaultEvent(time_s=DAY, action="blackout", duration_s=HOUR),
            FaultEvent(time_s=DAY, action="badge-battery", target="1"),
        )
        assert {e.action for e in plan.bus_events()} == {"blackout"}
        assert {e.action for e in plan.sensing_events()} == {"badge-battery"}
        assert {e.action for e in plan.exec_events()} == {"worker-crash"}
