"""Tests for the data-corruption fault kinds and their application."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import MissionConfig
from repro.core.errors import ConfigError
from repro.core.units import DAY, HOUR
from repro.experiments.mission import run_mission
from repro.faults.campaign import FaultCampaign
from repro.faults.data import apply_data_faults
from repro.faults.plan import DATA_ACTIONS, FaultEvent, FaultPlan


@pytest.fixture(scope="module")
def tiny_sensing():
    cfg = MissionConfig(days=2, crew_size=2, frame_dt=60.0, seed=9, events=None)
    return run_mission(cfg).sensing


def data_plan(*events: FaultEvent) -> FaultPlan:
    return FaultPlan.build(*events)


class TestEventValidation:
    def test_data_actions_need_a_badge_target(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="data-bitrot", value=0.1).validate()

    @pytest.mark.parametrize("action", ["data-bitrot", "data-duplicate", "data-stuck"])
    def test_fraction_must_be_in_unit_interval(self, action):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action=action, target="1", value=1.5).validate()
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action=action, target="1", value=0.0).validate()

    def test_truncate_keeps_a_fraction_below_one(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="data-truncate", target="1",
                       value=1.0).validate()
        FaultEvent(time_s=0.0, action="data-truncate", target="1",
                   value=0.0).validate()

    def test_clock_skew_must_be_nonzero(self):
        with pytest.raises(ConfigError):
            FaultEvent(time_s=0.0, action="data-clock-skew", target="1",
                       value=0.0).validate()
        FaultEvent(time_s=0.0, action="data-clock-skew", target="1",
                   value=-300.0).validate()


class TestPlanAccessors:
    def test_data_events_selected_and_grouped(self):
        plan = data_plan(
            FaultEvent(time_s=2 * HOUR, action="data-bitrot", target="1", value=0.1),
            FaultEvent(time_s=DAY + HOUR, action="data-truncate", target="1", value=0.5),
            FaultEvent(time_s=3 * HOUR, action="data-stuck", target="2", value=0.2),
            FaultEvent(time_s=0.0, action="blackout", duration_s=HOUR),
        )
        events = plan.data_events()
        assert {e.action for e in events} <= DATA_ACTIONS
        assert len(events) == 3
        grouped = plan.data_events_by_badge_day()
        assert set(grouped) == {(1, 1), (1, 2), (2, 1)}

    def test_data_events_never_count_as_bus_or_sensing(self):
        plan = data_plan(
            FaultEvent(time_s=HOUR, action="data-bitrot", target="0", value=0.1),
        )
        assert plan.bus_events() == []
        assert plan.sensing_events() == []
        assert plan.exec_events() == []


class TestCampaignDraws:
    def test_corruption_campaign_covers_every_kind(self):
        plan = FaultCampaign.corruption(days=14, seed=0).generate()
        assert {e.action for e in plan.events} == DATA_ACTIONS

    def test_zero_data_counts_keep_plans_byte_stable(self):
        """Data draws come after every other class: a campaign extended
        with them reproduces its historical events exactly."""
        base = FaultCampaign.reference(days=7, seed=11)
        extended = dataclasses.replace(
            base, bitrot_days=2, truncated_days=1, duplicated_days=1,
            stuck_days=2, clock_desyncs=1,
        )
        plain = base.generate().events
        without_data = [e for e in extended.generate().events
                        if e.action not in DATA_ACTIONS]
        assert list(plain) == without_data

    def test_same_seed_same_plan(self):
        camp = FaultCampaign.corruption(days=7, seed=5)
        assert camp.generate() == camp.generate()

    def test_negative_data_counts_rejected(self):
        with pytest.raises(ConfigError):
            FaultCampaign(bitrot_days=-1)

    def test_targets_come_from_badge_set(self):
        camp = FaultCampaign.corruption(days=7, seed=3, n_badges=4)
        for event in camp.generate().events:
            assert event.badge_id() in camp.badge_ids


class TestApplication:
    def test_no_data_events_returns_same_object(self, tiny_sensing):
        plan = data_plan(FaultEvent(time_s=0.0, action="blackout", duration_s=HOUR))
        assert apply_data_faults(tiny_sensing, plan, seed=0) is tiny_sensing

    def test_input_is_never_mutated(self, tiny_sensing):
        key = min(tiny_sensing.summaries)
        before = tiny_sensing.summaries[key].accel_rms.copy()
        plan = data_plan(
            FaultEvent(time_s=(key[1] - 1) * DAY + HOUR, action="data-bitrot",
                       target=str(key[0]), value=0.2),
        )
        struck = apply_data_faults(tiny_sensing, plan, seed=0)
        np.testing.assert_array_equal(tiny_sensing.summaries[key].accel_rms, before)
        assert struck is not tiny_sensing

    def test_same_seed_corrupts_identically(self, tiny_sensing):
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-bitrot", target="1",
                       value=0.15),
            FaultEvent(time_s=DAY + 5 * HOUR, action="data-stuck", target="0",
                       value=0.3),
        )
        a = apply_data_faults(tiny_sensing, plan, seed=4)
        b = apply_data_faults(tiny_sensing, plan, seed=4)
        for key in a.summaries:
            np.testing.assert_array_equal(
                a.summaries[key].accel_rms, b.summaries[key].accel_rms)
            np.testing.assert_array_equal(
                a.summaries[key].voice_db, b.summaries[key].voice_db)

    def test_different_seeds_corrupt_differently(self, tiny_sensing):
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-bitrot", target="1",
                       value=0.15),
        )
        a = apply_data_faults(tiny_sensing, plan, seed=1)
        b = apply_data_faults(tiny_sensing, plan, seed=2)
        key = (1, 2)
        assert not np.array_equal(
            a.summaries[key].accel_rms, b.summaries[key].accel_rms,
            equal_nan=True,
        )

    def test_missing_badge_day_is_a_noop(self, tiny_sensing):
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-bitrot", target="55",
                       value=0.2),
        )
        assert (55, 2) not in tiny_sensing.summaries
        struck = apply_data_faults(tiny_sensing, plan, seed=0)
        assert set(struck.summaries) == set(tiny_sensing.summaries)

    def test_truncate_shortens_every_channel(self, tiny_sensing):
        key = (1, 2)
        n = tiny_sensing.summaries[key].n_frames
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-truncate", target="1",
                       value=0.5),
        )
        struck = apply_data_faults(tiny_sensing, plan, seed=0)
        s = struck.summaries[key]
        assert s.n_frames == n // 2
        for name in ("active", "worn", "room", "x", "accel_rms", "sound_db"):
            assert getattr(s, name).shape[0] == n // 2
        if s.true_room is not None:
            assert s.true_room.shape[0] == n // 2

    def test_duplicate_lengthens_the_day(self, tiny_sensing):
        key = (1, 2)
        n = tiny_sensing.summaries[key].n_frames
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-duplicate", target="1",
                       value=0.1),
        )
        struck = apply_data_faults(tiny_sensing, plan, seed=0)
        assert struck.summaries[key].n_frames > n

    def test_clock_skew_shifts_t0(self, tiny_sensing):
        key = (1, 2)
        t0 = tiny_sensing.summaries[key].t0
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-clock-skew", target="1",
                       value=-7200.0),
        )
        struck = apply_data_faults(tiny_sensing, plan, seed=0)
        assert struck.summaries[key].t0 == t0 - 7200.0

    def test_stuck_latches_the_accelerometer(self, tiny_sensing):
        key = (1, 2)
        plan = data_plan(
            FaultEvent(time_s=DAY + HOUR, action="data-stuck", target="1",
                       value=0.4),
        )
        struck = apply_data_faults(tiny_sensing, plan, seed=0)
        accel = struck.summaries[key].accel_rms
        values, counts = np.unique(accel[np.isfinite(accel)], return_counts=True)
        n = struck.summaries[key].n_frames
        assert counts.max() >= int(0.4 * n)
