"""Unit and property tests for RF propagation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.habitat.floorplan import lunares_floorplan
from repro.radio.propagation import BLE_2G4, SUBGHZ_868, PropagationModel


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


class TestPathLoss:
    def test_increases_with_distance(self):
        model = PropagationModel()
        d = np.array([1.0, 2.0, 5.0, 10.0])
        loss = model.path_loss_db(d)
        assert (np.diff(loss) > 0).all()

    def test_reference_distance_loss(self):
        model = PropagationModel(reference_loss_db=40.0)
        assert model.path_loss_db(np.array([1.0]))[0] == pytest.approx(40.0)

    def test_near_field_clamped(self):
        model = PropagationModel(min_distance_m=0.3)
        loss_close = model.path_loss_db(np.array([0.01]))[0]
        loss_at_clamp = model.path_loss_db(np.array([0.3]))[0]
        assert loss_close == loss_at_clamp

    def test_exponent_scales_slope(self):
        shallow = PropagationModel(path_loss_exponent=2.0)
        steep = PropagationModel(path_loss_exponent=3.0)
        d = np.array([10.0])
        assert steep.path_loss_db(d)[0] > shallow.path_loss_db(d)[0]

    @given(st.floats(0.5, 100.0), st.floats(0.5, 100.0))
    def test_monotonicity_property(self, d1, d2):
        model = PropagationModel()
        l1 = model.path_loss_db(np.array([d1]))[0]
        l2 = model.path_loss_db(np.array([d2]))[0]
        if d1 < d2:
            assert l1 <= l2
        elif d1 > d2:
            assert l1 >= l2


class TestReceivedPower:
    def test_deterministic_without_rng(self, plan):
        model = PropagationModel(shadow_sigma_db=3.0)
        kitchen = plan.room("kitchen")
        rx = np.array([[9.0, 5.0], [10.0, 6.0]])
        rooms = plan.locate_many(rx)
        a = model.received_dbm(plan, -59.0, kitchen.rect.center, kitchen.index, rx, rooms)
        b = model.received_dbm(plan, -59.0, kitchen.rect.center, kitchen.index, rx, rooms)
        np.testing.assert_array_equal(a, b)

    def test_shadowing_adds_noise(self, plan):
        model = PropagationModel(shadow_sigma_db=3.0)
        kitchen = plan.room("kitchen")
        rx = np.tile(np.array([[9.0, 5.0]]), (200, 1))
        rooms = plan.locate_many(rx)
        rng = np.random.default_rng(0)
        noisy = model.received_dbm(plan, -59.0, kitchen.rect.center, kitchen.index, rx, rooms, rng)
        assert noisy.std() == pytest.approx(3.0, rel=0.3)

    def test_same_room_stronger_than_cross_room(self, plan):
        model = PropagationModel(shadow_sigma_db=0.0)
        kitchen = plan.room("kitchen")
        rx = np.array([
            list(kitchen.rect.shrink(1.0).center),
            list(plan.room("bedroom").rect.center),
        ])
        rooms = plan.locate_many(rx)
        power = model.received_dbm(plan, -59.0, kitchen.rect.center, kitchen.index, rx, rooms)
        assert power[0] > power[1] + 30.0

    def test_band_defaults(self):
        assert SUBGHZ_868.path_loss_exponent < BLE_2G4.path_loss_exponent
        assert SUBGHZ_868.walls.wall_db < BLE_2G4.walls.wall_db


class TestValidation:
    def test_bad_exponent(self):
        with pytest.raises(ConfigError):
            PropagationModel(path_loss_exponent=0.0)

    def test_bad_sigma(self):
        with pytest.raises(ConfigError):
            PropagationModel(shadow_sigma_db=-1.0)
