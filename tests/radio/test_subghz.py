"""Tests for 868 MHz badge-to-badge proximity."""

import numpy as np
import pytest

from repro.habitat.floorplan import lunares_floorplan
from repro.radio.subghz import SubGhzModel


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


def make_pair(plan, room_a, room_b, frames=300):
    a = plan.room(room_a).rect.shrink(1.0).center
    b = plan.room(room_b).rect.shrink(1.0).center
    xy = {
        0: np.tile(np.array(a, dtype=np.float64), (frames, 1)),
        1: np.tile(np.array(b, dtype=np.float64), (frames, 1)),
    }
    rooms = {
        0: np.full(frames, plan.index_of(room_a), dtype=np.int8),
        1: np.full(frames, plan.index_of(room_b), dtype=np.int8),
    }
    active = {0: np.ones(frames, dtype=bool), 1: np.ones(frames, dtype=bool)}
    return xy, rooms, active


class TestPairwise:
    def test_same_room_strong_contact(self, plan):
        xy, rooms, active = make_pair(plan, "kitchen", "kitchen")
        out = SubGhzModel().pairwise(plan, xy, rooms, active, np.random.default_rng(0))
        rssi = out[(0, 1)]
        assert (~np.isnan(rssi)).mean() > 0.8
        assert np.nanmean(rssi) > -80

    def test_cross_room_weaker(self, plan):
        same_xy, same_rooms, active = make_pair(plan, "kitchen", "kitchen")
        cross_xy, cross_rooms, _ = make_pair(plan, "kitchen", "office")
        model = SubGhzModel()
        same = model.pairwise(plan, same_xy, same_rooms, active, np.random.default_rng(0))
        cross = model.pairwise(plan, cross_xy, cross_rooms, active, np.random.default_rng(0))
        assert np.nanmean(same[(0, 1)]) > np.nanmean(cross[(0, 1)]) + 15

    def test_all_pairs_present(self, plan):
        frames = 50
        xy = {i: np.zeros((frames, 2)) + i for i in range(4)}
        rooms = {i: np.full(frames, plan.main_index, dtype=np.int8) for i in range(4)}
        active = {i: np.ones(frames, dtype=bool) for i in range(4)}
        out = SubGhzModel().pairwise(plan, xy, rooms, active, np.random.default_rng(0))
        assert set(out) == {(i, j) for i in range(4) for j in range(i + 1, 4)}

    def test_inactive_badge_silent(self, plan):
        xy, rooms, active = make_pair(plan, "kitchen", "kitchen")
        active[1][:] = False
        out = SubGhzModel().pairwise(plan, xy, rooms, active, np.random.default_rng(0))
        assert np.isnan(out[(0, 1)]).all()

    def test_detection_prob_zero_means_silence(self, plan):
        xy, rooms, active = make_pair(plan, "kitchen", "kitchen")
        model = SubGhzModel(detection_prob=1e-12)
        out = model.pairwise(plan, xy, rooms, active, np.random.default_rng(0))
        assert np.isnan(out[(0, 1)]).all()
