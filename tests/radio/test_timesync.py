"""Tests for opportunistic time synchronization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ClockModel
from repro.radio.timesync import TimeSyncSimulator, apply_clock_skew


def run_sync(drift_ppm=50.0, visits_station=True, frames=20_000):
    clock = ClockModel(offset_s=0.0, drift_ppm=drift_ppm)
    xy = np.tile(np.array([50.0, 50.0]), (frames, 1))  # far from station
    if visits_station:
        # Visit the station (at origin) every ~2000 frames for 60 s.
        for start in range(1000, frames, 2000):
            xy[start : start + 60] = [0.0, 0.0]
    active = np.ones(frames, dtype=bool)
    sync = TimeSyncSimulator(station_xy=(0.0, 0.0), sync_range_m=5.0, min_spacing_s=300.0)
    return sync.run_day(clock, xy, active, t0=0.0, dt=1.0)


class TestSync:
    def test_errors_bounded_with_visits(self):
        errors, events = run_sync()
        assert len(events) > 5
        # Between 300-spaced syncs and 2000 s gaps at 50 ppm: < 0.15 s.
        assert np.abs(errors[2000:]).max() < 0.2

    def test_error_grows_without_visits(self):
        errors, events = run_sync(visits_station=False)
        assert events == []
        assert abs(errors[-1]) == pytest.approx(50e-6 * 20_000, rel=0.01)

    def test_sync_resets_error(self):
        errors, events = run_sync(drift_ppm=200.0)
        for event in events:
            idx = int(event.time_s)
            assert abs(errors[idx]) < 1e-6

    def test_min_spacing_respected(self):
        __, events = run_sync()
        times = [e.time_s for e in events]
        assert all(b - a >= 300.0 for a, b in zip(times, times[1:]))

    def test_inactive_badge_never_syncs(self):
        clock = ClockModel(drift_ppm=100.0)
        xy = np.zeros((5000, 2))  # parked on the station
        active = np.zeros(5000, dtype=bool)
        sync = TimeSyncSimulator(station_xy=(0.0, 0.0))
        __, events = sync.run_day(clock, xy, active, 0.0, 1.0)
        assert events == []


class TestApplyClockSkew:
    def test_zero_error_identity(self):
        values = np.arange(100)
        out = apply_clock_skew(values, np.zeros(100), dt=1.0)
        np.testing.assert_array_equal(out, values)

    def test_subframe_error_identity(self):
        values = np.arange(100)
        out = apply_clock_skew(values, np.full(100, 0.4), dt=1.0)
        np.testing.assert_array_equal(out, values)

    def test_constant_shift(self):
        values = np.arange(10)
        out = apply_clock_skew(values, np.full(10, 3.0), dt=1.0)
        np.testing.assert_array_equal(out[3:], values[:7])

    @settings(max_examples=25, deadline=None)
    @given(st.floats(-5.0, 5.0))
    def test_preserves_value_set_property(self, error):
        values = np.arange(50)
        out = apply_clock_skew(values, np.full(50, error), dt=1.0)
        assert set(out).issubset(set(values))
