"""Tests for BLE beacon scanning."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.habitat.beacons import place_beacons
from repro.habitat.floorplan import lunares_floorplan
from repro.radio.ble import BleScanModel

# The batch-of-1 wrapper is deprecated but kept for one release; these
# tests exercise it deliberately (test_scan_wrapper_is_deprecated pins
# the warning itself).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


@pytest.fixture(scope="module")
def beacons(plan):
    return place_beacons(plan, 27)


def kitchen_scan(plan, beacons, frames=500, detection_prob=0.93, seed=0):
    kitchen = plan.room("kitchen")
    xy = np.tile(np.array(kitchen.rect.center, dtype=np.float64), (frames, 1))
    rooms = np.full(frames, kitchen.index, dtype=np.int8)
    active = np.ones(frames, dtype=bool)
    model = BleScanModel(detection_prob=detection_prob)
    return model.scan(plan, beacons, xy, rooms, active, np.random.default_rng(seed))


class TestScan:
    def test_shape(self, plan, beacons):
        rssi = kitchen_scan(plan, beacons, frames=100)
        assert rssi.shape == (100, 27)

    def test_same_room_beacons_heard(self, plan, beacons):
        rssi = kitchen_scan(plan, beacons)
        kitchen_idx = plan.index_of("kitchen")
        own = [k for k, b in enumerate(beacons) if b.room == kitchen_idx]
        heard_frac = (~np.isnan(rssi[:, own])).mean()
        assert heard_frac > 0.85

    def test_own_room_loudest_on_average(self, plan, beacons):
        rssi = kitchen_scan(plan, beacons)
        kitchen_idx = plan.index_of("kitchen")
        rooms = np.array([b.room for b in beacons])
        with np.errstate(all="ignore"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                means = np.nanmean(rssi, axis=0)
        best = int(np.nanargmax(np.nan_to_num(means, nan=-np.inf)))
        assert rooms[best] == kitchen_idx

    def test_inactive_frames_empty(self, plan, beacons):
        kitchen = plan.room("kitchen")
        xy = np.tile(np.array(kitchen.rect.center), (10, 1))
        rooms = np.full(10, kitchen.index, dtype=np.int8)
        active = np.zeros(10, dtype=bool)
        rssi = BleScanModel().scan(plan, beacons, xy, rooms, active, np.random.default_rng(0))
        assert np.isnan(rssi).all()

    def test_nan_positions_empty(self, plan, beacons):
        xy = np.full((10, 2), np.nan)
        rooms = np.full(10, -1, dtype=np.int8)
        active = np.ones(10, dtype=bool)
        rssi = BleScanModel().scan(plan, beacons, xy, rooms, active, np.random.default_rng(0))
        assert np.isnan(rssi).all()

    def test_detection_prob_controls_misses(self, plan, beacons):
        dense = kitchen_scan(plan, beacons, detection_prob=1.0)
        sparse = kitchen_scan(plan, beacons, detection_prob=0.5)
        assert np.isnan(sparse).mean() > np.isnan(dense).mean()

    def test_sensitivity_floor(self, plan, beacons):
        rssi = kitchen_scan(plan, beacons)
        assert np.nanmin(rssi) >= BleScanModel().sensitivity_dbm

    def test_invalid_detection_prob(self):
        with pytest.raises(ConfigError):
            BleScanModel(detection_prob=0.0)

    def test_scan_wrapper_is_deprecated(self, plan, beacons):
        kitchen = plan.room("kitchen")
        xy = np.tile(np.array(kitchen.rect.center), (10, 1))
        rooms = np.full(10, kitchen.index, dtype=np.int8)
        active = np.ones(10, dtype=bool)
        with pytest.warns(DeprecationWarning, match="scan_fleet"):
            BleScanModel().scan(
                plan, beacons, xy, rooms, active, np.random.default_rng(0)
            )
