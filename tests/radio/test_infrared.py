"""Tests for IR face-to-face contact detection."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.radio.infrared import IrModel


def make_inputs(distance=0.5, frames=2000, worn=True, walking=False, same_room=True):
    xy = {
        0: np.tile(np.array([0.0, 0.0]), (frames, 1)),
        1: np.tile(np.array([distance, 0.0]), (frames, 1)),
    }
    rooms = {
        0: np.zeros(frames, dtype=np.int8),
        1: np.zeros(frames, dtype=np.int8) if same_room else np.ones(frames, dtype=np.int8),
    }
    worn_masks = {i: np.full(frames, worn) for i in range(2)}
    walking_masks = {i: np.full(frames, walking) for i in range(2)}
    return xy, rooms, worn_masks, walking_masks


class TestContactProbability:
    def test_close_range_maximal(self):
        model = IrModel()
        p = model.contact_prob(np.array([0.3]))
        assert p[0] == pytest.approx(model.max_contact_prob)

    def test_beyond_range_zero(self):
        model = IrModel()
        assert model.contact_prob(np.array([5.0]))[0] == 0.0

    def test_monotone_decreasing(self):
        model = IrModel()
        d = np.linspace(0.1, 3.0, 30)
        p = model.contact_prob(d)
        assert (np.diff(p) <= 1e-12).all()


class TestPairwise:
    def test_close_stationary_pair_contacts(self):
        out = IrModel().pairwise(*make_inputs(distance=0.5), rng=np.random.default_rng(0))
        frac = out[(0, 1)].mean()
        assert frac == pytest.approx(IrModel().max_contact_prob, rel=0.1)

    def test_distance_reduces_contact(self):
        near = IrModel().pairwise(*make_inputs(0.5), rng=np.random.default_rng(0))
        far = IrModel().pairwise(*make_inputs(1.8), rng=np.random.default_rng(0))
        assert far[(0, 1)].mean() < 0.5 * near[(0, 1)].mean()

    def test_walking_blocks_contact(self):
        out = IrModel().pairwise(*make_inputs(walking=True), rng=np.random.default_rng(0))
        assert not out[(0, 1)].any()

    def test_unworn_blocks_contact(self):
        out = IrModel().pairwise(*make_inputs(worn=False), rng=np.random.default_rng(0))
        assert not out[(0, 1)].any()

    def test_cross_room_blocks_contact(self):
        out = IrModel().pairwise(*make_inputs(same_room=False), rng=np.random.default_rng(0))
        assert not out[(0, 1)].any()

    def test_validation(self):
        with pytest.raises(ConfigError):
            IrModel(close_range_m=3.0, max_range_m=2.0)
        with pytest.raises(ConfigError):
            IrModel(max_contact_prob=0.0)
