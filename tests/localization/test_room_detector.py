"""Tests for room detection and the majority filter."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.localization.room_detector import RoomDetector, majority_filter


class TestMajorityFilter:
    def test_removes_single_frame_blip(self):
        rooms = np.array([1, 1, 1, 2, 1, 1, 1], dtype=np.int8)
        out = majority_filter(rooms, window=3)
        assert (out == 1).all()

    def test_keeps_genuine_transition(self):
        rooms = np.array([1] * 10 + [2] * 10, dtype=np.int8)
        out = majority_filter(rooms, window=3)
        assert (out[:9] == 1).all() and (out[11:] == 2).all()

    def test_fills_brief_unknowns(self):
        rooms = np.array([1, 1, -1, 1, 1], dtype=np.int8)
        out = majority_filter(rooms, window=3)
        assert (out == 1).all()

    def test_all_unknown_stays_unknown(self):
        rooms = np.full(5, -1, dtype=np.int8)
        out = majority_filter(rooms, window=3)
        assert (out == -1).all()

    def test_window_one_identity(self):
        rooms = np.array([1, 2, 1], dtype=np.int8)
        np.testing.assert_array_equal(majority_filter(rooms, 1), rooms)

    def test_even_window_rejected(self):
        with pytest.raises(ConfigError):
            majority_filter(np.zeros(5, dtype=np.int8), window=4)


class TestRoomDetector:
    def test_maps_strongest_beacon_to_room(self):
        beacon_rooms = np.array([0, 1, 2])
        detector = RoomDetector(beacon_rooms, vote_window=1)
        rssi = np.array([[-80.0, -50.0, -90.0]] * 5)
        active = np.ones(5, dtype=bool)
        assert (detector.detect(rssi, active) == 1).all()

    def test_inactive_frames_unknown(self):
        detector = RoomDetector(np.array([0, 1]), vote_window=3)
        rssi = np.full((10, 2), -50.0)
        active = np.ones(10, dtype=bool)
        active[4:7] = False
        out = detector.detect(rssi, active)
        assert (out[4:7] == -1).all()
        assert (out[:4] >= 0).all()

    def test_silence_is_unknown(self):
        detector = RoomDetector(np.array([0, 1]), vote_window=1)
        rssi = np.full((5, 2), np.nan)
        out = detector.detect(rssi, np.ones(5, dtype=bool))
        assert (out == -1).all()

    def test_leakage_blip_filtered(self):
        """A 2-frame wrong-room blip (doorway leakage) is absorbed."""
        detector = RoomDetector(np.array([3, 5]), vote_window=5)
        rssi = np.full((20, 2), -90.0)
        rssi[:, 0] = -50.0          # room 3 dominates
        rssi[8:10, 1] = -40.0       # brief leakage toward room 5
        out = detector.detect(rssi, np.ones(20, dtype=bool))
        assert (out == 3).all()

    def test_vote_window_validation(self):
        with pytest.raises(ConfigError):
            RoomDetector(np.array([0]), vote_window=2)
