"""Tests for occupancy heatmaps."""

import numpy as np
import pytest

from repro.core.errors import ConfigError, DataError
from repro.habitat.geometry import Rect
from repro.localization.heatmap import CELL_SIZE_M, Heatmap, build_heatmap


@pytest.fixture()
def bounds():
    return Rect(0.0, 0.0, 5.6, 2.8)


class TestBasics:
    def test_paper_cell_size(self):
        assert CELL_SIZE_M == 0.28

    def test_shape(self, bounds):
        hm = Heatmap.empty(bounds)
        assert hm.shape == (10, 20)

    def test_add_accumulates_time(self, bounds):
        hm = Heatmap.empty(bounds)
        hm.add(np.array([1.0, 1.0, 1.0]), np.array([1.0, 1.0, 1.0]), dt=2.0)
        assert hm.time_at(1.0, 1.0) == 6.0
        assert hm.total_seconds() == 6.0

    def test_nan_skipped(self, bounds):
        hm = Heatmap.empty(bounds)
        hm.add(np.array([np.nan, 1.0]), np.array([1.0, np.nan]))
        assert hm.total_seconds() == 0.0

    def test_out_of_bounds_skipped(self, bounds):
        hm = Heatmap.empty(bounds)
        hm.add(np.array([100.0]), np.array([1.0]))
        assert hm.total_seconds() == 0.0

    def test_shape_mismatch(self, bounds):
        hm = Heatmap.empty(bounds)
        with pytest.raises(DataError):
            hm.add(np.zeros(2), np.zeros(3))

    def test_invalid_cell(self, bounds):
        with pytest.raises(ConfigError):
            Heatmap.empty(bounds, cell_m=0.0)

    def test_log_counts(self, bounds):
        hm = Heatmap.empty(bounds)
        hm.add(np.array([1.0]), np.array([1.0]), dt=999.0)
        log = hm.log_counts()
        assert log.max() == pytest.approx(3.0)
        assert log.min() == 0.0

    def test_occupied_cells(self, bounds):
        hm = build_heatmap(np.array([0.1, 5.0]), np.array([0.1, 2.0]), bounds)
        assert hm.occupied_cells() == 2


class TestCenterCornerRatio:
    def test_center_bound_occupant(self, bounds):
        room = Rect(0.0, 0.0, 4.0, 2.8)
        hm = Heatmap.empty(bounds)
        rng = np.random.default_rng(0)
        center = room.shrink(1.2).sample(rng, 2000)
        hm.add(center[:, 0], center[:, 1])
        ratio_center = hm.center_vs_corner_ratio(room)
        assert ratio_center > 3.0

    def test_uniform_occupant_lower_ratio(self, bounds):
        room = Rect(0.0, 0.0, 4.0, 2.8)
        hm = Heatmap.empty(bounds)
        rng = np.random.default_rng(0)
        uniform = room.sample(rng, 2000)
        hm.add(uniform[:, 0], uniform[:, 1])
        assert hm.center_vs_corner_ratio(room) < 3.0

    def test_empty_room_infinite(self, bounds):
        hm = Heatmap.empty(bounds)
        assert hm.center_vs_corner_ratio(Rect(0, 0, 1, 1)) == np.inf
