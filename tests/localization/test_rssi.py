"""Tests for RSSI conditioning."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.localization.rssi import ema_smooth, strongest_beacon


class TestEmaSmooth:
    def test_constant_signal_unchanged(self):
        rssi = np.full((20, 3), -60.0)
        out = ema_smooth(rssi)
        np.testing.assert_allclose(out, rssi)

    def test_reduces_variance(self):
        rng = np.random.default_rng(0)
        rssi = -60.0 + rng.normal(0, 4, size=(500, 1))
        out = ema_smooth(rssi, alpha=0.3)
        assert np.nanstd(out[10:]) < np.nanstd(rssi[10:])

    def test_carries_over_short_gaps(self):
        rssi = np.full((10, 1), -60.0)
        rssi[4:6, 0] = np.nan
        out = ema_smooth(rssi, max_gap=3)
        assert np.isfinite(out[4:6]).all()

    def test_resets_after_long_gap(self):
        rssi = np.full((20, 1), -60.0)
        rssi[5:15, 0] = np.nan
        out = ema_smooth(rssi, max_gap=3)
        assert np.isnan(out[10, 0])

    def test_leading_nans_stay_nan(self):
        rssi = np.full((5, 1), np.nan)
        rssi[3:, 0] = -50.0
        out = ema_smooth(rssi)
        assert np.isnan(out[:3]).all()
        assert out[3, 0] == -50.0

    def test_alpha_validation(self):
        with pytest.raises(ConfigError):
            ema_smooth(np.zeros((2, 2)), alpha=0.0)

    def test_alpha_one_passthrough(self):
        rng = np.random.default_rng(1)
        rssi = rng.normal(-60, 3, size=(50, 2))
        np.testing.assert_allclose(ema_smooth(rssi, alpha=1.0), rssi)


class TestStrongestBeacon:
    def test_basic(self):
        rssi = np.array([[-70.0, -50.0, -90.0]])
        assert strongest_beacon(rssi)[0] == 1

    def test_nan_ignored(self):
        rssi = np.array([[np.nan, -80.0, np.nan]])
        assert strongest_beacon(rssi)[0] == 1

    def test_all_nan_is_minus_one(self):
        rssi = np.full((3, 4), np.nan)
        assert (strongest_beacon(rssi) == -1).all()
