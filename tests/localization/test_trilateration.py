"""Tests for ranging and position estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.localization.trilateration import (
    gauss_newton_refine,
    rssi_to_distance,
    weighted_centroid,
)


class TestRanging:
    def test_inverts_path_loss(self):
        # RSSI at 1 m equals tx power; at 10 m it is 10*n dB lower.
        assert rssi_to_distance(np.array([-59.0]))[0] == pytest.approx(1.0)
        assert rssi_to_distance(np.array([-59.0 - 22.0]))[0] == pytest.approx(10.0)

    def test_monotone(self):
        rssi = np.array([-50.0, -60.0, -70.0])
        d = rssi_to_distance(rssi)
        assert d[0] < d[1] < d[2]

    def test_bad_exponent(self):
        with pytest.raises(ConfigError):
            rssi_to_distance(np.array([-60.0]), path_loss_exponent=0.0)


class TestWeightedCentroid:
    def test_equidistant_gives_centroid(self):
        beacons = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 2.0]])
        rssi = np.full((1, 3), -65.0)
        est = weighted_centroid(rssi, beacons)
        np.testing.assert_allclose(est[0], beacons.mean(axis=0), atol=1e-9)

    def test_pulls_toward_strong_beacon(self):
        beacons = np.array([[0.0, 0.0], [10.0, 0.0]])
        rssi = np.array([[-50.0, -80.0]])
        est = weighted_centroid(rssi, beacons)
        assert est[0, 0] < 1.0

    def test_mask_limits_contributors(self):
        beacons = np.array([[0.0, 0.0], [10.0, 0.0]])
        rssi = np.array([[-50.0, -50.0]])
        mask = np.array([[True, False]])
        est = weighted_centroid(rssi, beacons, weight_mask=mask)
        np.testing.assert_allclose(est[0], [0.0, 0.0], atol=1e-9)

    def test_no_beacons_nan(self):
        beacons = np.array([[0.0, 0.0]])
        rssi = np.array([[np.nan]])
        est = weighted_centroid(rssi, beacons)
        assert np.isnan(est).all()

    def test_accuracy_on_synthetic_room(self):
        """Noise-free RSSI from 3 beacons localizes within ~1 m."""
        rng = np.random.default_rng(0)
        beacons = np.array([[0.5, 0.5], [3.5, 0.5], [2.0, 2.5]])
        truth = rng.uniform(0.8, 2.8, size=(100, 2))
        d = np.hypot(
            truth[:, None, 0] - beacons[None, :, 0],
            truth[:, None, 1] - beacons[None, :, 1],
        )
        rssi = -59.0 - 22.0 * np.log10(np.maximum(d, 0.3))
        est = weighted_centroid(rssi, beacons)
        err = np.hypot(est[:, 0] - truth[:, 0], est[:, 1] - truth[:, 1])
        assert np.median(err) < 1.0


class TestGaussNewton:
    def test_exact_ranges_converge(self):
        beacons = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        truth = np.array([1.5, 2.0])
        ranges = np.hypot(beacons[:, 0] - truth[0], beacons[:, 1] - truth[1])
        est = gauss_newton_refine(np.array([2.0, 2.0]), ranges, beacons, iterations=20)
        np.testing.assert_allclose(est, truth, atol=1e-3)

    def test_improves_over_centroid(self):
        beacons = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [4.0, 4.0]])
        truth = np.array([0.8, 0.7])
        ranges = np.hypot(beacons[:, 0] - truth[0], beacons[:, 1] - truth[1])
        start = beacons.mean(axis=0)
        refined = gauss_newton_refine(start, ranges, beacons, iterations=25)
        assert np.hypot(*(refined - truth)) < np.hypot(*(start - truth))

    def test_single_beacon_returns_initial(self):
        est = gauss_newton_refine(np.array([1.0, 1.0]), np.array([2.0]),
                                  np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(est, [1.0, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            gauss_newton_refine(np.zeros(2), np.zeros(3), np.zeros((2, 2)))

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.5, 3.5), st.floats(0.5, 3.5))
    def test_noise_free_recovery_property(self, x, y):
        beacons = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [4.0, 4.0]])
        truth = np.array([x, y])
        ranges = np.hypot(beacons[:, 0] - truth[0], beacons[:, 1] - truth[1])
        est = gauss_newton_refine(np.array([2.0, 2.0]), ranges, beacons, iterations=30)
        assert np.hypot(*(est - truth)) < 0.05
