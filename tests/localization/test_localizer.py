"""End-to-end localizer tests against ground truth (session fixtures)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.habitat.beacons import place_beacons
from repro.localization.pipeline import Localizer

# The batch-of-1 wrapper is deprecated but kept for one release; these
# tests exercise it deliberately (test_localize_day_wrapper_is_deprecated
# pins the warning itself).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestLocalizerOnMission:
    def test_room_detection_effectively_perfect(self, sensing):
        """The paper: "the room the badge located in was detected
        perfectly"."""
        correct = total = 0
        for summary in sensing.summaries.values():
            if summary.true_room is None:
                continue
            mask = summary.active & (summary.room >= 0)
            correct += int((summary.room[mask] == summary.true_room[mask]).sum())
            total += int(mask.sum())
        assert total > 0
        assert correct / total > 0.995

    def test_known_fraction_high_while_active(self, sensing):
        for summary in sensing.summaries.values():
            active = summary.active
            known = (summary.room >= 0) & active
            assert known.sum() / max(active.sum(), 1) > 0.95

    def test_positions_inside_detected_rooms(self, sensing, truth):
        summary = sensing.summary(1, 2)
        ok = (summary.room >= 0) & ~np.isnan(summary.x)
        pts = np.column_stack([summary.x[ok], summary.y[ok]]).astype(np.float64)
        located = truth.plan.locate_many(pts)
        assert (located == summary.room[ok]).mean() > 0.999

    def test_position_error_subcell(self, sensing, truth, mission_cfg):
        """Median position error below ~2 heatmap cells."""
        from repro.badges.wear import WearModel
        from repro.core.rng import RngRegistry

        summary = sensing.summary(1, 2)
        rngs = RngRegistry(mission_cfg.seed).spawn("sensing")
        wear = WearModel(mission_cfg, truth.plan).simulate_day(
            truth.trace("B", 2), rngs.get("badges.1.day2"),
            truth.roster.profile("B").wear_diligence,
        )
        mask = wear.active & (summary.room >= 0) & ~np.isnan(summary.x)
        err = np.hypot(
            summary.x[mask] - wear.badge_xy[mask, 0],
            summary.y[mask] - wear.badge_xy[mask, 1],
        )
        assert np.median(err) < 0.6

    def test_inactive_frames_unknown(self, sensing):
        summary = sensing.summary(0, 2)
        assert (summary.room[~summary.active] == -1).all()
        assert np.isnan(summary.x[~summary.active]).all()


class TestDeadBeaconMasking:
    """Graceful degradation: dead beacons are masked, detection continues."""

    @pytest.fixture()
    def loc(self, truth):
        return Localizer(truth.plan, place_beacons(truth.plan, 9))

    @pytest.fixture()
    def scan(self):
        rng = np.random.default_rng(0)
        rssi = rng.uniform(-90.0, -50.0, size=(60, 9)).astype(np.float32)
        return rssi, np.ones(60, dtype=bool)

    def test_masked_beacons_recorded(self, loc, scan):
        rssi, active = scan
        result = loc.localize_day(rssi, active, dead_beacons=[3, 7, 3])
        assert result.masked_beacons == (3, 7)

    def test_input_rssi_not_mutated(self, loc, scan):
        rssi, active = scan
        before = rssi.copy()
        loc.localize_day(rssi, active, dead_beacons=[2])
        np.testing.assert_array_equal(rssi, before)

    def test_detection_continues_with_dead_beacons(self, loc, scan):
        rssi, active = scan
        result = loc.localize_day(rssi, active, dead_beacons=[0, 1, 2])
        assert (result.room >= 0).sum() > 0  # still detecting rooms

    def test_no_dead_beacons_identical_to_default(self, loc, scan):
        rssi, active = scan
        base = loc.localize_day(rssi, active)
        masked = loc.localize_day(rssi, active, dead_beacons=[])
        np.testing.assert_array_equal(base.room, masked.room)

    def test_out_of_range_ids_ignored(self, loc, scan):
        rssi, active = scan
        result = loc.localize_day(rssi, active, dead_beacons=[-1, 99, 4])
        assert result.masked_beacons == (4,)

class TestLocalizerConstruction:
    def test_requires_beacons(self, truth):
        with pytest.raises(ConfigError):
            Localizer(truth.plan, [])

    def test_smoothing_option_runs(self, truth, mission_cfg):
        beacons = place_beacons(truth.plan, 9)
        loc = Localizer(truth.plan, beacons, smooth_window=7)
        n = 50
        rssi = np.full((n, 9), -70.0, dtype=np.float32)
        active = np.ones(n, dtype=bool)
        result = loc.localize_day(rssi, active)
        assert result.room.shape == (n,)
        assert result.known_fraction() > 0.9

    def test_localize_day_wrapper_is_deprecated(self, truth):
        loc = Localizer(truth.plan, place_beacons(truth.plan, 9))
        rssi = np.full((10, 9), -70.0, dtype=np.float32)
        active = np.ones(10, dtype=bool)
        with pytest.warns(DeprecationWarning, match="localize_fleet"):
            loc.localize_day(rssi, active)
