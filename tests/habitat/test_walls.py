"""Tests for the wall attenuation model."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.habitat.floorplan import OUTSIDE, lunares_floorplan
from repro.habitat.walls import WallModel


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


@pytest.fixture(scope="module")
def walls():
    return WallModel()


def atten_at(walls, plan, rx_point, tx_room_name):
    rx = np.array([rx_point])
    rx_room = plan.locate_many(rx)
    tx = plan.room(tx_room_name)
    return float(walls.attenuation_db(plan, rx, rx_room, tx.rect.center, tx.index)[0])


class TestAttenuation:
    def test_same_room_zero(self, walls, plan):
        kitchen = plan.room("kitchen").rect.center
        assert atten_at(walls, plan, kitchen, "kitchen") == 0.0

    def test_one_wall(self, walls, plan):
        hall_point = plan.room("main").rect.center
        assert atten_at(walls, plan, hall_point, "kitchen") == pytest.approx(walls.wall_db)

    def test_two_walls(self, walls, plan):
        bedroom = plan.room("bedroom").rect.center
        assert atten_at(walls, plan, bedroom, "restroom") == pytest.approx(2 * walls.wall_db)

    def test_door_leakage_reduces_attenuation(self, walls, plan):
        door = plan.room("kitchen").doors[0].position
        near_door_in_hall = (door[0], door[1] - 0.5)
        assert plan.locate(near_door_in_hall) == plan.main_index
        leaky = atten_at(walls, plan, near_door_in_hall, "kitchen")
        assert leaky == pytest.approx(walls.wall_db - walls.door_leak_db)

    def test_far_from_door_full_wall(self, walls, plan):
        far_in_hall = (0.5, 2.0)
        assert atten_at(walls, plan, far_in_hall, "kitchen") == pytest.approx(walls.wall_db)

    def test_outside_receiver(self, walls, plan):
        rx = np.array([[100.0, 100.0]])
        room = np.array([OUTSIDE], dtype=np.int8)
        tx = plan.room("airlock")
        out = walls.attenuation_db(plan, rx, room, tx.rect.center, tx.index)
        assert out[0] == walls.outside_db

    def test_outside_transmitter(self, walls, plan):
        rx = np.array([plan.room("kitchen").rect.center])
        room = plan.locate_many(rx)
        out = walls.attenuation_db(plan, rx, room, (100.0, 100.0), OUTSIDE)
        assert out[0] == walls.outside_db


class TestValidation:
    def test_leak_cannot_exceed_wall(self):
        with pytest.raises(ConfigError):
            WallModel(wall_db=10.0, door_leak_db=20.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            WallModel(wall_db=-1.0)

    def test_wall_count_point(self, walls, plan):
        assert walls.wall_count_point(
            plan, plan.room("kitchen").rect.center, plan.room("kitchen").rect.center
        ) == 0
        assert walls.wall_count_point(
            plan, plan.room("kitchen").rect.center, (100.0, 100.0)
        ) == 3
