"""Tests for beacon placement."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.habitat.beacons import (
    beacon_positions,
    beacon_rooms,
    place_beacons,
    rooms_covered,
)
from repro.habitat.floorplan import lunares_floorplan
from repro.habitat.rooms import MAIN_HALL, ROOM_NAMES


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


class TestPlacement:
    def test_paper_count(self, plan):
        assert len(place_beacons(plan, 27)) == 27

    def test_all_rooms_covered_at_27(self, plan):
        covered = rooms_covered(place_beacons(plan, 27), plan)
        assert covered == set(ROOM_NAMES) | {MAIN_HALL}

    def test_positions_inside_their_rooms(self, plan):
        for beacon in place_beacons(plan, 27):
            assert plan.locate(beacon.position) == beacon.room

    def test_positions_off_walls(self, plan):
        for beacon in place_beacons(plan, 27, margin_m=0.7):
            room = plan.rooms[beacon.room].rect
            x, y = beacon.position
            assert x - room.x0 >= 0.7 - 1e-9 and room.x1 - x >= 0.7 - 1e-9

    def test_deterministic(self, plan):
        a = place_beacons(plan, 27)
        b = place_beacons(plan, 27)
        assert [x.position for x in a] == [x.position for x in b]

    def test_ids_sequential(self, plan):
        ids = [b.beacon_id for b in place_beacons(plan, 12)]
        assert ids == list(range(12))

    def test_distinct_positions(self, plan):
        positions = {b.position for b in place_beacons(plan, 27)}
        assert len(positions) == 27

    def test_zero_rejected(self, plan):
        with pytest.raises(ConfigError):
            place_beacons(plan, 0)

    def test_helpers(self, plan):
        beacons = place_beacons(plan, 9)
        assert beacon_positions(beacons).shape == (9, 2)
        assert beacon_rooms(beacons).shape == (9,)
        assert beacon_rooms(beacons).dtype == np.int8

    def test_fewer_beacons_fewer_rooms(self, plan):
        covered = rooms_covered(place_beacons(plan, 3), plan)
        assert len(covered) == 3
