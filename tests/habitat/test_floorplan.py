"""Tests for the Lunares floor plan."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.habitat.floorplan import OUTSIDE, lunares_floorplan
from repro.habitat.rooms import MAIN_HALL, ROOM_NAMES


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


class TestLayout:
    def test_room_set_matches_paper_fig2(self, plan):
        names = {room.name for room in plan.rooms}
        assert names == set(ROOM_NAMES) | {MAIN_HALL}

    def test_index_order(self, plan):
        for i, name in enumerate(ROOM_NAMES):
            assert plan.index_of(name) == i
        assert plan.main_index == len(ROOM_NAMES)

    def test_rooms_do_not_overlap(self, plan):
        rooms = list(plan.rooms)
        for i, a in enumerate(rooms):
            for b in rooms[i + 1:]:
                assert not a.rect.overlaps(b.rect), (a.name, b.name)

    def test_every_room_has_hall_door(self, plan):
        for room in plan.rooms:
            if room.name == MAIN_HALL:
                continue
            assert room.connects_to(MAIN_HALL)

    def test_restroom_is_badge_prohibited(self, plan):
        assert plan.room("restroom").badge_prohibited
        assert not plan.room("kitchen").badge_prohibited

    def test_hangar_outside_bounds(self, plan):
        assert plan.locate(plan.hangar.center) == OUTSIDE

    def test_invalid_name_raises(self, plan):
        with pytest.raises(ConfigError):
            plan.room("garage")

    def test_name_of_outside(self, plan):
        assert plan.name_of(OUTSIDE) == "outside"


class TestLocate:
    def test_room_centers(self, plan):
        for room in plan.rooms:
            assert plan.locate(room.rect.center) == room.index

    def test_locate_many_matches_scalar(self, plan):
        rng = np.random.default_rng(0)
        pts = plan.bounds.sample(rng, 200)
        vectorized = plan.locate_many(pts)
        scalar = [plan.locate((float(x), float(y))) for x, y in pts]
        np.testing.assert_array_equal(vectorized, scalar)

    def test_nan_is_outside(self, plan):
        out = plan.locate_many(np.array([[np.nan, 1.0]]))
        assert out[0] == OUTSIDE

    def test_peripheral_wins_shared_boundary(self, plan):
        kitchen = plan.room("kitchen")
        door = kitchen.doors[0].position
        assert plan.locate(door) == kitchen.index


class TestTopology:
    def test_wall_matrix_symmetric(self, plan):
        walls = plan.wall_matrix()
        np.testing.assert_array_equal(walls, walls.T)

    def test_wall_matrix_values(self, plan):
        walls = plan.wall_matrix()
        k = plan.index_of("kitchen")
        m = plan.main_index
        b = plan.index_of("bedroom")
        assert walls[k, k] == 0
        assert walls[k, m] == 1
        assert walls[k, b] == 2  # peripheral pairs cross two walls

    def test_path_same_room_direct(self, plan):
        waypoints = plan.path("kitchen", "kitchen", (9.0, 5.0), (10.0, 6.0))
        assert waypoints == [(9.0, 5.0), (10.0, 6.0)]

    def test_path_crosses_hall(self, plan):
        waypoints = plan.path(
            "office", "kitchen",
            plan.room("office").rect.center, plan.room("kitchen").rect.center,
        )
        rooms_on_path = {plan.locate(p) for p in waypoints}
        assert plan.main_index in rooms_on_path

    def test_path_waypoints_stay_inside(self, plan):
        waypoints = plan.path(
            "bedroom", "airlock",
            plan.room("bedroom").rect.center, plan.room("airlock").rect.center,
        )
        for p in waypoints:
            assert plan.locate(p) != OUTSIDE


class TestValidation:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(ConfigError):
            lunares_floorplan(room_w=-1.0)
