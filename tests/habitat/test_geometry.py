"""Unit and property tests for geometry primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.habitat.geometry import (
    Rect,
    bounding_box,
    distance,
    distances_to,
    segment_points,
)

coords = st.floats(-50.0, 50.0, allow_nan=False)


def rects():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
    )


class TestDistance:
    def test_pythagoras(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert distance((2, 2), (2, 2)) == 0.0

    def test_vectorized_matches_scalar(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        d = distances_to(pts, (0.0, 0.0))
        np.testing.assert_allclose(d, [0.0, 5.0, np.sqrt(2)])


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ConfigError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_properties(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4 and r.height == 3 and r.area == 12
        assert r.center == (2.0, 1.5)

    def test_contains_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains((0, 0)) and r.contains((2, 2))
        assert not r.contains((2.1, 1))

    def test_contains_many(self):
        r = Rect(0, 0, 1, 1)
        pts = np.array([[0.5, 0.5], [2.0, 0.5], [1.0, 1.0]])
        np.testing.assert_array_equal(r.contains_many(pts), [True, False, True])

    def test_clamp(self):
        r = Rect(0, 0, 2, 2)
        assert r.clamp((5, -1)) == (2, 0)
        assert r.clamp((1, 1)) == (1, 1)

    def test_shrink(self):
        inner = Rect(0, 0, 4, 4).shrink(1.0)
        assert (inner.x0, inner.y0, inner.x1, inner.y1) == (1, 1, 3, 3)

    def test_shrink_collapses_gracefully(self):
        tiny = Rect(0, 0, 1, 1).shrink(10.0)
        assert tiny.area == 0.0
        assert tiny.center == (0.5, 0.5)

    def test_overlaps_and_touches(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 3, 3))
        assert not a.overlaps(Rect(2, 0, 4, 2))   # edge share is not overlap
        assert a.touches(Rect(2, 0, 4, 2))
        assert not a.touches(Rect(3, 3, 4, 4))

    @given(rects(), st.data())
    def test_sample_inside_property(self, r, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        pts = r.sample(rng, 16)
        assert r.contains_many(pts).all()

    @given(rects(), coords, coords)
    def test_clamp_inside_property(self, r, x, y):
        assert r.contains(r.clamp((x, y)))


class TestBoundingBox:
    def test_covers_all(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)])
        assert (box.x0, box.y0, box.x1, box.y1) == (0, -2, 6, 1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bounding_box([])


class TestSegmentPoints:
    def test_includes_endpoints(self):
        pts = segment_points((0, 0), (10, 0), step=1.0)
        np.testing.assert_allclose(pts[0], [0, 0])
        np.testing.assert_allclose(pts[-1], [10, 0])

    def test_spacing(self):
        pts = segment_points((0, 0), (10, 0), step=1.0)
        gaps = np.diff(pts[:, 0])
        assert (gaps <= 1.0 + 1e-9).all()

    def test_zero_length(self):
        pts = segment_points((1, 1), (1, 1), step=0.5)
        assert len(pts) == 2

    def test_bad_step(self):
        with pytest.raises(ConfigError):
            segment_points((0, 0), (1, 1), step=0.0)
