"""Tests for per-room environmental fields."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.habitat.environment import BASE_PRESSURE_HPA, DEFAULT_CLIMATES, Environment, RoomClimate


@pytest.fixture(scope="module")
def env():
    return Environment()


class TestClimates:
    def test_kitchen_is_warmest(self):
        temps = {room: c.temperature_c for room, c in DEFAULT_CLIMATES.items()}
        assert max(temps, key=temps.get) == "kitchen"

    def test_all_fig2_rooms_have_climates(self):
        from repro.habitat.rooms import MAIN_HALL, ROOM_NAMES

        assert set(DEFAULT_CLIMATES) == set(ROOM_NAMES) | {MAIN_HALL}

    def test_unknown_room_raises(self, env):
        with pytest.raises(ConfigError):
            env.climate("garage")

    def test_invalid_climate_rejected(self):
        with pytest.raises(ConfigError):
            RoomClimate(temperature_c=20.0, light_lux_day=-1.0, noise_floor_db=30.0)


class TestTemperature:
    def test_wobbles_around_setpoint(self, env):
        t = np.linspace(0.0, 200_000.0, 500)
        temps = env.temperature_c("kitchen", t)
        base = env.climate("kitchen").temperature_c
        assert np.all(np.abs(temps - base) <= 0.6 + 1e-9)
        assert temps.std() > 0.1  # actually varies


class TestLight:
    def test_night_level(self, env):
        # Find a Martian-night timestamp.
        t = np.linspace(0.0, 200_000.0, 2000)
        day_mask = env.is_martian_day(t)
        assert day_mask.any() and (~day_mask).any()
        lux = env.light_lux("office", t)
        assert np.all(lux[~day_mask] == env.night_light_lux)
        assert np.all(lux[day_mask] == env.climate("office").light_lux_day)

    def test_day_window_validation(self):
        with pytest.raises(ConfigError):
            Environment(day_window=(0.9, 0.1))


class TestPressure:
    def test_near_base(self, env):
        p = env.pressure_hpa(np.linspace(0, 10_000, 100))
        assert np.all(np.abs(p - BASE_PRESSURE_HPA) <= 1.5 + 1e-9)

    def test_noise_floor(self, env):
        assert env.noise_floor_db("workshop") > env.noise_floor_db("bedroom")
