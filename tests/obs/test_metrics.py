"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import math

import pytest

from repro import obs
from repro.obs import metrics


@pytest.fixture()
def on():
    obs.reset()
    obs.enable()
    yield
    obs.reset()


class TestCounter:
    def test_inc_and_value(self, on):
        c = metrics.counter("test.count")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_labels_split_series(self, on):
        c = metrics.counter("test.by_kind")
        c.inc(kind="alert")
        c.inc(kind="alert")
        c.inc(kind="heartbeat")
        assert c.value(kind="alert") == 2.0
        assert c.value(kind="heartbeat") == 1.0
        assert c.total() == 3.0

    def test_label_order_insensitive(self, on):
        c = metrics.counter("test.pairs")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1.0

    def test_negative_increment_rejected(self, on):
        with pytest.raises(ValueError):
            metrics.counter("test.neg").inc(-1.0)

    def test_noop_when_disabled(self):
        obs.reset()
        c = metrics.counter("test.off")
        c.inc(100.0)
        assert c.value() == 0.0

    def test_registry_get_or_create_returns_same(self, on):
        assert metrics.counter("test.same") is metrics.counter("test.same")

    def test_type_clash_rejected(self, on):
        metrics.counter("test.clash")
        with pytest.raises(TypeError):
            metrics.gauge("test.clash")


class TestGauge:
    def test_set_and_add(self, on):
        g = metrics.gauge("test.depth")
        g.set(5.0)
        g.add(2.0)
        assert g.value() == 7.0

    def test_unset_is_none(self, on):
        assert metrics.gauge("test.unset").value() is None

    def test_noop_when_disabled(self):
        obs.reset()
        g = metrics.gauge("test.off_gauge")
        g.set(9.0)
        assert g.value() is None


class TestHistogram:
    def test_count_and_sum(self, on):
        h = metrics.histogram("test.lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(6.0)

    def test_percentiles(self, on):
        h = metrics.histogram("test.pct")
        for v in range(1, 101):          # 1..100
            h.observe(float(v))
        assert h.percentile(50.0) == pytest.approx(50.5)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0
        assert h.percentile(95.0) == pytest.approx(95.05)

    def test_percentile_empty_is_nan(self, on):
        h = metrics.histogram("test.empty")
        assert math.isnan(h.percentile(50.0))

    def test_percentile_out_of_range(self, on):
        with pytest.raises(ValueError):
            metrics.histogram("test.range").percentile(101.0)

    def test_reservoir_caps_values_but_not_count(self, on):
        h = metrics.histogram("test.cap")
        cap = metrics._HistogramSeries.CAP
        for v in range(cap + 50):
            h.observe(float(v))
        series = h._series[()]
        assert series.count == cap + 50
        assert len(series.values) == cap
        assert series.max == float(cap + 49)

    def test_noop_when_disabled(self):
        obs.reset()
        h = metrics.histogram("test.off_hist")
        h.observe(1.0)
        assert h.count() == 0


class TestRegistryReset:
    def test_reset_between_tests(self, on):
        metrics.counter("test.reset_me").inc()
        assert "test.reset_me" in metrics.registry.names()
        metrics.registry.reset()
        assert metrics.registry.names() == []

    def test_obs_reset_clears_and_disables(self, on):
        metrics.counter("test.reset_all").inc()
        obs.reset()
        assert not obs.enabled()
        assert metrics.registry.names() == []

    def test_snapshot_shape(self, on):
        metrics.counter("test.snap", "help text").inc(kind="x")
        snap = metrics.registry.snapshot()
        assert snap["test.snap"]["type"] == "counter"
        assert snap["test.snap"]["series"] == [
            {"labels": {"kind": "x"}, "value": 1.0}
        ]
