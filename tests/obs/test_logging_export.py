"""Tests for structured logging and the export layer."""

import json

import pytest

from repro import obs
from repro.obs import export, metrics
from repro.obs import logging as obs_logging


@pytest.fixture()
def on():
    obs.reset()
    obs.enable()
    yield
    obs.reset()


class TestLogging:
    def test_records_event_and_fields(self, on):
        log = obs.get_logger("test.mod")
        log.info("badge-seen", badge=3, rssi=-61.5)
        (r,) = obs_logging.buffer.records
        assert r.logger == "test.mod"
        assert r.level == "info"
        assert r.event == "badge-seen"
        assert r.fields == {"badge": 3, "rssi": -61.5}

    def test_get_logger_cached(self, on):
        assert obs.get_logger("same") is obs.get_logger("same")

    def test_min_level_filters(self, on):
        obs_logging.buffer.min_level = "warning"
        log = obs.get_logger("test.lvl")
        log.debug("quiet")
        log.info("quiet-too")
        log.error("loud")
        assert [r.event for r in obs_logging.buffer.records] == ["loud"]

    def test_noop_when_disabled(self):
        obs.reset()
        obs.get_logger("test.off").error("nothing")
        assert obs_logging.buffer.records == []

    def test_sim_time_from_clock_and_field(self, on):
        obs.set_sim_clock(lambda: 5.0)
        log = obs.get_logger("test.time")
        log.info("clocked")
        log.info("explicit", sim_time=90_000.0)
        clocked, explicit = obs_logging.buffer.records
        assert clocked.sim_time == 5.0
        assert explicit.sim_time == 90_000.0
        assert "sim_time" not in explicit.fields

    def test_format_sim_time(self):
        assert obs_logging.format_sim_time(None) == "--"
        assert obs_logging.format_sim_time(0.0) == "day 01 00:00:00"
        # 1 day + 2h 03m 04s into the mission
        t = 86_400.0 + 2 * 3600 + 3 * 60 + 4
        assert obs_logging.format_sim_time(t) == "day 02 02:03:04"

    def test_matching_and_at_level(self, on):
        log = obs.get_logger("test.q")
        log.warning("link-partitioned", src="a")
        log.info("link-healed", src="a")
        assert len(obs_logging.buffer.matching("link-")) == 2
        assert len(obs_logging.buffer.at_level("warning")) == 1


class TestExport:
    def test_to_dict_has_all_sections(self, on):
        metrics.counter("x.count").inc()
        with obs.span("x.stage"):
            obs.get_logger("x").info("hello")
        snap = export.to_dict()
        assert set(snap) == {"metrics", "spans", "span_breakdown", "logs"}
        assert snap["metrics"]["x.count"]["series"][0]["value"] == 1.0
        assert snap["spans"][0]["name"] == "x.stage"
        assert snap["logs"][0]["event"] == "hello"

    def test_json_round_trip(self, on):
        metrics.counter("rt.count").inc(3.0, kind="k")
        metrics.histogram("rt.hist").observe(1.5)
        with obs.span("rt.span", day=1):
            pass
        obs.get_logger("rt").warning("evt", n=2)
        text = export.to_json()
        assert export.from_json(text) == json.loads(text)
        restored = export.from_json(text)
        assert restored["metrics"]["rt.count"]["series"][0]["labels"] == {"kind": "k"}
        assert restored["span_breakdown"]["rt.span"]["count"] == 1

    def test_text_report_mentions_everything(self, on):
        metrics.counter("bus.sent").inc(kind="alert")
        with obs.span("mission"):
            pass
        obs.get_logger("bus").warning("node-crashed", node="earth")
        report = export.to_text()
        assert "Stage breakdown" in report
        assert "mission" in report
        assert "bus.sent" in report
        assert "node-crashed" in report

    def test_empty_report_renders(self, on):
        report = export.to_text()
        assert "(no spans recorded)" in report
        assert "(no metrics recorded)" in report
