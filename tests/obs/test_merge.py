"""Cross-process telemetry merge: metrics, spans, logs, snapshots."""

import pytest

from repro import obs
from repro.obs import export, metrics, tracing


@pytest.fixture
def on():
    obs.reset()
    obs.enable()
    yield
    obs.reset()


def _worker_style_snapshot():
    """Build a snapshot the way a pool worker would, then clear stores."""
    metrics.counter("w.count").inc(3.0, kind="a")
    metrics.gauge("w.gauge").set(7.0)
    hist = metrics.histogram("w.hist")
    for v in (1.0, 2.0, 3.0, 4.0):
        hist.observe(v)
    with obs.span("w.day", day=2):
        with obs.span("w.inner"):
            pass
    obs.get_logger("w").info("worker-event", day=2)
    snap = export.to_dict(include_histogram_values=True)
    metrics.registry.reset()
    tracing.collector.reset()
    obs.logging.buffer.reset()
    return snap


class TestMetricsMerge:
    def test_counters_add(self, on):
        metrics.counter("w.count").inc(2.0, kind="a")
        snap = export.to_dict(include_histogram_values=True)
        metrics.registry.merge_snapshot(snap["metrics"])
        assert metrics.counter("w.count").value(kind="a") == 4.0

    def test_histograms_merge_exactly_with_values(self, on):
        hist = metrics.histogram("w.hist")
        hist.observe(10.0)
        snap = metrics.registry.snapshot(include_values=True)
        metrics.registry.reset()
        metrics.registry.merge_snapshot(snap)
        merged = metrics.histogram("w.hist")
        assert merged.count() == 1
        assert merged.sum() == 10.0
        assert merged.percentile(50.0) == 10.0

    def test_merge_without_values_keeps_counts(self, on):
        hist = metrics.histogram("w.hist")
        hist.observe(5.0)
        snap = metrics.registry.snapshot()  # no raw values
        metrics.registry.reset()
        metrics.registry.merge_snapshot(snap)
        assert metrics.histogram("w.hist").count() == 1
        assert metrics.histogram("w.hist").sum() == 5.0


class TestSpanMerge:
    def test_worker_spans_reparent_under_driver_span(self, on):
        snap = _worker_style_snapshot()
        with obs.span("mission") as mission:
            export.merge_snapshot(snap, parent_span_id=mission.span_id)
        spans = {s.name: s for s in tracing.collector.spans}
        assert spans["w.day"].parent_id == spans["mission"].span_id
        assert spans["w.inner"].parent_id == spans["w.day"].span_id
        # Fresh ids from this process's counter: all distinct.
        ids = [s.span_id for s in tracing.collector.spans]
        assert len(ids) == len(set(ids))

    def test_merged_spans_keep_durations(self, on):
        snap = _worker_style_snapshot()
        export.merge_snapshot(snap)
        breakdown = tracing.collector.breakdown()
        assert breakdown["w.day"]["count"] == 1
        assert breakdown["w.day"]["wall_s"] >= 0.0

    def test_merge_does_not_disturb_open_span_stack(self, on):
        snap = _worker_style_snapshot()
        with obs.span("mission"):
            export.merge_snapshot(snap)
            assert tracing.current_span().name == "mission"


class TestLogAndSnapshotMerge:
    def test_log_records_survive_with_fields(self, on):
        snap = _worker_style_snapshot()
        export.merge_snapshot(snap)
        records = obs.logging.buffer.matching("worker-event")
        assert len(records) == 1
        assert records[0].fields == {"day": 2}

    def test_merge_noop_when_disabled(self, on):
        snap = _worker_style_snapshot()
        obs.reset()  # disables telemetry
        export.merge_snapshot(snap)
        assert tracing.collector.spans == []
        assert metrics.registry.names() == []

    def test_snapshot_has_uniform_report_surface(self, on):
        snap = _worker_style_snapshot()
        assert isinstance(snap, export.TelemetrySnapshot)
        assert isinstance(snap.to_dict(), dict)
        assert "Stage breakdown" in snap.to_text()
        assert snap["span_breakdown"]["w.day"]["count"] == 1

    def test_to_text_report_alias_is_gone(self, on):
        assert not hasattr(export, "to_text_report")
