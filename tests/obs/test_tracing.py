"""Tests for span tracing: nesting, durations, disabled-mode no-ops."""

import pytest

from repro import obs
from repro.obs import tracing


@pytest.fixture()
def on():
    obs.reset()
    obs.enable()
    yield
    obs.reset()


class TestSpans:
    def test_span_records_wall_duration(self, on):
        with obs.span("work"):
            pass
        (s,) = tracing.collector.by_name("work")
        assert s.wall_s is not None and s.wall_s >= 0.0

    def test_nesting_sets_parent(self, on):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
            assert obs.current_span() is outer
        (inner,) = tracing.collector.by_name("inner")
        (outer,) = tracing.collector.by_name("outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracing.collector.children_of(outer) == [inner]

    def test_roots(self, on):
        with obs.span("a"):
            with obs.span("b"):
                pass
        with obs.span("c"):
            pass
        assert {s.name for s in tracing.collector.roots()} == {"a", "c"}

    def test_attrs_recorded(self, on):
        with obs.span("tagged", badge=3, day=2):
            pass
        (s,) = tracing.collector.by_name("tagged")
        assert s.attrs == {"badge": 3, "day": 2}

    def test_exception_marks_span_and_unwinds_stack(self, on):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (s,) = tracing.collector.by_name("doomed")
        assert s.attrs["error"] == "RuntimeError"
        assert obs.current_span() is None

    def test_sim_time_durations(self, on):
        clock = {"t": 100.0}
        obs.set_sim_clock(lambda: clock["t"])
        with obs.span("simmed"):
            clock["t"] = 160.0
        (s,) = tracing.collector.by_name("simmed")
        assert s.sim_s == pytest.approx(60.0)

    def test_sim_time_none_without_clock(self, on):
        with obs.span("wall_only"):
            pass
        (s,) = tracing.collector.by_name("wall_only")
        assert s.sim_s is None

    def test_breakdown_aggregates_by_name(self, on):
        for _ in range(3):
            with obs.span("stage"):
                pass
        breakdown = tracing.collector.breakdown()
        assert breakdown["stage"]["count"] == 3
        assert breakdown["stage"]["wall_s"] >= 0.0


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        obs.reset()
        s1 = obs.span("anything", big=1)
        s2 = obs.span("else")
        assert s1 is s2 is tracing.NOOP_SPAN

    def test_disabled_span_records_nothing(self):
        obs.reset()
        with obs.span("invisible"):
            pass
        assert tracing.collector.spans == []
        assert obs.current_span() is None

    def test_reset_clears_spans_and_stack(self, on):
        with obs.span("kept"):
            pass
        obs.reset()
        assert tracing.collector.spans == []
