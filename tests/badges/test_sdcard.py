"""Tests for SD-card storage accounting."""

import pytest

from repro.badges.sdcard import DEFAULT_RATES_BPS, SdCardAccountant
from repro.core.errors import ConfigError
from repro.core.units import GIB


class TestAccounting:
    def test_record_day(self):
        sd = SdCardAccountant()
        written = sd.record_day(0, 2, 1000.0)
        assert written == pytest.approx(1000.0 * sd.total_rate_bps)

    def test_totals(self):
        sd = SdCardAccountant()
        sd.record_day(0, 2, 100.0)
        sd.record_day(0, 3, 100.0)
        sd.record_day(1, 2, 100.0)
        assert sd.badge_total(0) == pytest.approx(200.0 * sd.total_rate_bps)
        assert sd.total_bytes() == pytest.approx(300.0 * sd.total_rate_bps)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            SdCardAccountant().record_day(0, 2, -1.0)

    def test_paper_scale(self):
        """13 days x 7 badges at ~85% duty should land near 150 GiB."""
        sd = SdCardAccountant()
        for day in range(2, 15):
            for badge in range(7):
                sd.record_day(badge, day, 0.85 * 14 * 3600.0)
        assert 120 <= sd.total_gib() <= 185

    def test_microphone_dominates(self):
        assert DEFAULT_RATES_BPS["microphone"] == max(DEFAULT_RATES_BPS.values())

    def test_over_capacity_detection(self):
        sd = SdCardAccountant(capacity_bytes=1 * GIB)
        sd.record_day(0, 2, 14 * 3600.0)  # ~2 GiB in one day
        assert sd.over_capacity() == [0]

    def test_under_capacity_ok(self):
        sd = SdCardAccountant()
        sd.record_day(0, 2, 3600.0)
        assert sd.over_capacity() == []

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError):
            SdCardAccountant(rates_bps={"microphone": -1.0})
