"""Tests for SD-card storage accounting."""

import pytest

from repro.badges.sdcard import DEFAULT_RATES_BPS, SdCardAccountant
from repro.core.errors import ConfigError
from repro.core.units import GIB


class TestAccounting:
    def test_record_day(self):
        sd = SdCardAccountant()
        written = sd.record_day(0, 2, 1000.0)
        assert written == pytest.approx(1000.0 * sd.total_rate_bps)

    def test_totals(self):
        sd = SdCardAccountant()
        sd.record_day(0, 2, 100.0)
        sd.record_day(0, 3, 100.0)
        sd.record_day(1, 2, 100.0)
        assert sd.badge_total(0) == pytest.approx(200.0 * sd.total_rate_bps)
        assert sd.total_bytes() == pytest.approx(300.0 * sd.total_rate_bps)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            SdCardAccountant().record_day(0, 2, -1.0)

    def test_paper_scale(self):
        """13 days x 7 badges at ~85% duty should land near 150 GiB."""
        sd = SdCardAccountant()
        for day in range(2, 15):
            for badge in range(7):
                sd.record_day(badge, day, 0.85 * 14 * 3600.0)
        assert 120 <= sd.total_gib() <= 185

    def test_microphone_dominates(self):
        assert DEFAULT_RATES_BPS["microphone"] == max(DEFAULT_RATES_BPS.values())

    def test_over_capacity_detection(self):
        sd = SdCardAccountant(capacity_bytes=1 * GIB)
        sd.record_day(0, 2, 14 * 3600.0)  # ~2 GiB in one day
        assert sd.over_capacity() == [0]

    def test_under_capacity_ok(self):
        sd = SdCardAccountant()
        sd.record_day(0, 2, 3600.0)
        assert sd.over_capacity() == []

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError):
            SdCardAccountant(rates_bps={"microphone": -1.0})


class TestRunningCounters:
    def test_overwrite_adjusts_by_delta(self):
        """Re-recording a badge-day (fault masking) must not double-count."""
        sd = SdCardAccountant()
        sd.record_day(0, 2, 1000.0)
        sd.record_day(0, 2, 400.0)  # day truncated after the fact
        assert sd.badge_total(0) == pytest.approx(400.0 * sd.total_rate_bps)
        assert sd.total_bytes() == pytest.approx(400.0 * sd.total_rate_bps)

    def test_counters_match_resummed_written(self):
        sd = SdCardAccountant()
        for day in range(2, 10):
            for badge in range(4):
                sd.record_day(badge, day, 100.0 * day)
        sd.record_day(2, 5, 0.0)  # one overwrite
        assert sd.total_bytes() == pytest.approx(sum(sd.written.values()))
        for badge in range(4):
            expected = sum(v for (b, _), v in sd.written.items() if b == badge)
            assert sd.badge_total(badge) == pytest.approx(expected)

    def test_counters_rebuilt_from_written(self):
        sd = SdCardAccountant(written={(0, 2): 100.0, (0, 3): 50.0, (1, 2): 25.0})
        assert sd.badge_total(0) == pytest.approx(150.0)
        assert sd.total_bytes() == pytest.approx(175.0)


class TestCapacityOverrides:
    def test_override_applies_to_one_badge(self):
        sd = SdCardAccountant(capacity_bytes=10 * GIB)
        sd.set_capacity(1, 1 * GIB)
        assert sd.capacity_for(0) == 10 * GIB
        assert sd.capacity_for(1) == 1 * GIB

    def test_remaining_clamps_at_zero(self):
        sd = SdCardAccountant()
        sd.set_capacity(0, 1000.0)
        sd.record_day(0, 2, 3600.0)
        assert sd.remaining(0) == 0.0

    def test_over_capacity_respects_override(self):
        sd = SdCardAccountant()
        sd.set_capacity(0, 1000.0)
        sd.record_day(0, 2, 3600.0)
        sd.record_day(1, 2, 3600.0)
        assert sd.over_capacity() == [0]

    def test_invalid_override_rejected(self):
        with pytest.raises(ConfigError):
            SdCardAccountant().set_capacity(0, 0.0)
        with pytest.raises(ConfigError):
            SdCardAccountant(capacity_overrides={0: -1.0})
