"""Tests for the per-sensor synthesis models."""

import numpy as np
import pytest

from repro.badges.sensors.accelerometer import AccelerometerModel
from repro.badges.sensors.imu import ImuModel
from repro.badges.sensors.microphone import MicrophoneModel, SpeechSources
from repro.core.config import MissionConfig
from repro.crew.behavior import simulate_mission
from repro.crew.tasks import Activity
from repro.habitat.environment import Environment
from repro.habitat.floorplan import lunares_floorplan


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


class TestAccelerometer:
    def setup_method(self):
        self.model = AccelerometerModel()
        self.n = 5000

    def synth(self, walking=False, worn=True, active=True, seed=0):
        n = self.n
        return self.model.synthesize(
            np.full(n, walking), np.full(n, worn), np.full(n, active),
            np.full(n, int(Activity.WORK), dtype=np.int8), np.random.default_rng(seed),
        )

    def test_walking_above_threshold(self):
        accel = self.synth(walking=True)
        assert (accel > 1.2).mean() > 0.98

    def test_stationary_below_threshold(self):
        accel = self.synth(walking=False)
        assert (accel > 1.2).mean() < 0.02

    def test_desk_is_nearly_still(self):
        accel = self.synth(worn=False)
        assert np.nanmean(accel) < 0.1

    def test_inactive_is_nan(self):
        accel = self.synth(active=False)
        assert np.isnan(accel).all()

    def test_nonnegative(self):
        assert (self.synth(walking=False) >= 0).all()

    def test_bumps_occur(self):
        model = AccelerometerModel(bump_prob=0.2)
        accel = model.synthesize(
            np.zeros(self.n, dtype=bool), np.ones(self.n, dtype=bool),
            np.ones(self.n, dtype=bool), np.full(self.n, int(Activity.WORK), dtype=np.int8),
            np.random.default_rng(0),
        )
        assert (accel > 1.2).mean() > 0.1


class TestImu:
    def test_gyro_walking_higher(self):
        model = ImuModel()
        n = 2000
        walking = np.zeros(n, dtype=bool)
        walking[: n // 2] = True
        gyro, heading = model.synthesize(
            walking, np.ones(n, dtype=bool), np.ones(n, dtype=bool),
            np.random.default_rng(0),
        )
        assert np.nanmean(gyro[: n // 2]) > 3 * np.nanmean(gyro[n // 2:])
        assert ((heading >= 0) & (heading < 2 * np.pi)).all()


class TestMicrophone:
    @pytest.fixture(scope="class")
    def day_inputs(self, plan):
        cfg = MissionConfig(days=3, seed=2, events=None)
        truth = simulate_mission(cfg)
        sources = SpeechSources.from_truth(truth, 2)
        return truth, sources, plan

    def test_speaker_badge_hears_itself(self, day_inputs, plan):
        truth, sources, __ = day_inputs
        trace = truth.trace("F", 2)
        n = trace.n_frames
        badge_xy = np.column_stack([trace.x, trace.y]).astype(np.float64)
        badge_xy[np.isnan(badge_xy)] = 0.0
        mic = MicrophoneModel().synthesize(
            sources, badge_xy, trace.room, np.ones(n, dtype=bool),
            plan.wall_matrix(),
            np.full(plan.n_rooms, 35.0), np.random.default_rng(0),
        )
        own = trace.speaking & (trace.room >= 0)
        assert np.nanmedian(mic.voice_db[own]) > 70.0

    def test_silence_when_nobody_talks(self, day_inputs, plan):
        truth, sources, __ = day_inputs
        trace = truth.trace("F", 2)
        n = trace.n_frames
        badge_xy = np.column_stack([trace.x, trace.y]).astype(np.float64)
        badge_xy[np.isnan(badge_xy)] = 0.0
        mic = MicrophoneModel().synthesize(
            sources, badge_xy, trace.room, np.ones(n, dtype=bool),
            plan.wall_matrix(), np.full(plan.n_rooms, 35.0), np.random.default_rng(0),
        )
        anyone = sources.speaking.any(axis=0)
        silent = ~anyone & (trace.room >= 0)
        assert not np.isfinite(mic.voice_db[silent]).any() or (
            mic.voice_db[silent][np.isfinite(mic.voice_db[silent])] < 60
        ).all()

    def test_machine_speech_high_stability(self, day_inputs, plan):
        truth, sources, __ = day_inputs
        if not sources.is_machine.any():
            pytest.skip("no TTS on this seed")
        trace = truth.trace("A", 2)
        n = trace.n_frames
        badge_xy = np.column_stack([trace.x, trace.y]).astype(np.float64)
        badge_xy[np.isnan(badge_xy)] = 0.0
        mic = MicrophoneModel().synthesize(
            sources, badge_xy, trace.room, np.ones(n, dtype=bool),
            plan.wall_matrix(), np.full(plan.n_rooms, 35.0), np.random.default_rng(0),
        )
        tts_only = trace.machine_speech & ~sources.speaking[:6].any(axis=0)
        if tts_only.sum() < 50:
            pytest.skip("not enough solo TTS frames")
        stability = mic.pitch_stability[tts_only]
        assert np.nanmedian(stability) > 0.8

    def test_sound_floor_from_room_noise(self, day_inputs, plan):
        truth, sources, __ = day_inputs
        n = 100
        badge_xy = np.tile(np.array(plan.room("bedroom").rect.center), (n, 1))
        rooms = np.full(n, plan.index_of("bedroom"), dtype=np.int8)
        empty = SpeechSources(
            xy=np.zeros((1, n, 2)), room=np.full((1, n), -1, dtype=np.int8),
            speaking=np.zeros((1, n), dtype=bool),
            loudness=np.zeros((1, n), dtype=np.float32),
            pitch_hz=np.array([120.0]), is_machine=np.array([False]),
        )
        mic = MicrophoneModel().synthesize(
            empty, badge_xy, rooms, np.ones(n, dtype=bool),
            plan.wall_matrix(), np.full(plan.n_rooms, 30.0), np.random.default_rng(0),
        )
        assert np.nanmean(mic.sound_db) == pytest.approx(30.0, abs=2.0)
        assert not np.isfinite(mic.voice_db).any()
