"""Tests for the wear-compliance model."""

import numpy as np
import pytest

from repro.badges.battery import BatteryModel
from repro.badges.wear import WearModel
from repro.core.config import MissionConfig
from repro.crew.behavior import simulate_mission
from repro.crew.tasks import Activity
from repro.habitat.floorplan import lunares_floorplan


@pytest.fixture(scope="module")
def setup():
    cfg = MissionConfig(days=4, seed=3, events=None)
    truth = simulate_mission(cfg)
    model = WearModel(cfg, truth.plan)
    return cfg, truth, model


def simulate(setup, astro="B", day=2, seed=0, diligence=1.0):
    cfg, truth, model = setup
    return model.simulate_day(truth.trace(astro, day), np.random.default_rng(seed), diligence)


class TestInvariants:
    def test_worn_subset_of_active(self, setup):
        wear = simulate(setup)
        assert not (wear.worn & ~wear.active).any()

    def test_positions_always_defined(self, setup):
        wear = simulate(setup)
        assert not np.isnan(wear.badge_xy).any()
        assert (wear.badge_room >= 0).all()

    def test_worn_badge_follows_astronaut(self, setup):
        cfg, truth, model = setup
        trace = truth.trace("B", 2)
        wear = simulate(setup)
        idx = np.flatnonzero(wear.worn)[:500]
        np.testing.assert_allclose(wear.badge_xy[idx, 0], trace.x[idx], atol=1e-5)

    def test_unworn_badge_is_stationary(self, setup):
        wear = simulate(setup)
        off = ~wear.worn
        runs = np.flatnonzero(off[1:] & off[:-1])
        if runs.size:
            dx = np.abs(np.diff(wear.badge_xy[:, 0]))[runs[:1000]]
            assert dx.max() < 1e-5

    def test_never_worn_in_restroom(self, setup):
        cfg, truth, model = setup
        trace = truth.trace("D", 2)
        wear = model.simulate_day(trace, np.random.default_rng(1))
        in_restroom = trace.activity == int(Activity.RESTROOM)
        assert not wear.worn[in_restroom].any()

    def test_never_worn_during_eva(self, setup):
        cfg, truth, model = setup
        for astro in truth.roster.ids:
            trace = truth.trace(astro, 3)  # EVA day (3 % 3 == 0)
            eva = trace.activity == int(Activity.EVA)
            if not eva.any():
                continue
            wear = model.simulate_day(trace, np.random.default_rng(2))
            assert not wear.worn[eva].any()
            # Badge left inside the habitat while the wearer is outside.
            assert (wear.badge_room[eva] >= 0).all()


class TestCompliance:
    def test_day_level_target_reached(self, setup):
        cfg, truth, model = setup
        target = model.compliance_on(2)
        fractions = []
        for seed in range(5):
            fractions.append(simulate(setup, seed=seed).worn_fraction)
        assert np.mean(fractions) <= target + 0.05

    def test_compliance_decays(self):
        cfg = MissionConfig(days=14)
        model = WearModel(cfg, lunares_floorplan())
        assert model.compliance_on(2) == pytest.approx(cfg.wear_compliance_start)
        assert model.compliance_on(14) == pytest.approx(cfg.wear_compliance_end)
        assert model.compliance_on(8) < model.compliance_on(3)

    def test_diligence_scales_target(self, setup):
        careful = np.mean([simulate(setup, seed=s).worn_fraction for s in range(4)])
        careless = np.mean(
            [simulate(setup, seed=s, diligence=0.6).worn_fraction for s in range(4)]
        )
        assert careless < careful - 0.1

    def test_settled_mask(self):
        room = np.array([1, 1, 1, 1, 2, 2, 1, 1, 1], dtype=np.int8)
        mask = WearModel._settled_mask(room, min_frames=2)
        np.testing.assert_array_equal(
            mask, [False, False, True, True, False, False, False, False, True]
        )


class TestBattery:
    def test_plan_day_windows_ordered(self):
        battery = BatteryModel()
        rng = np.random.default_rng(0)
        for _ in range(50):
            windows = battery.plan_day(14 * 3600.0, rng)
            for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
                assert a1 <= b0
            for w0, w1 in windows:
                assert 0 <= w0 < w1 <= 14 * 3600.0

    def test_low_morning_charge_forces_intervention(self):
        battery = BatteryModel(morning_charge_lo=0.3, morning_charge_hi=0.4)
        rng = np.random.default_rng(1)
        windows = battery.plan_day(14 * 3600.0, rng)
        assert windows  # cannot survive the day on 40%

    def test_full_runtime_long_enough_no_windows(self):
        battery = BatteryModel(
            full_runtime_s=30 * 3600.0, morning_charge_lo=0.99, morning_charge_hi=1.0
        )
        windows = battery.plan_day(14 * 3600.0, np.random.default_rng(2))
        assert windows == []
