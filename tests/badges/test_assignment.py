"""Tests for badge-astronaut assignment and its anomalies."""

import pytest

from repro.badges.assignment import BadgeAssignment
from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.errors import ConfigError
from repro.crew.roster import icares_roster


@pytest.fixture(scope="module")
def assignment():
    cfg = MissionConfig(days=14)
    return BadgeAssignment(cfg=cfg, roster=icares_roster())


class TestAssumed:
    def test_one_badge_per_astronaut(self, assignment):
        assumed = assignment.assumed()
        assert assumed == {0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "F"}

    def test_reference_id(self, assignment):
        assert assignment.reference_id == 12


class TestActual:
    def test_normal_day_matches_assumed(self, assignment):
        assert assignment.actual(2) == assignment.assumed()

    def test_swap_day(self, assignment):
        day = assignment.cfg.events.badge_swap_day
        actual = assignment.actual(day)
        assert actual[0] == "B" and actual[1] == "A"

    def test_swap_only_one_day(self, assignment):
        day = assignment.cfg.events.badge_swap_day
        assert assignment.actual(day + 1)[0] == "A"

    def test_c_badge_idle_after_death(self, assignment):
        death = assignment.cfg.events.death_day
        reuse = assignment.cfg.events.badge_reuse_day
        for day in range(death + 1, reuse):
            assert 2 not in assignment.actual(day)

    def test_f_reuses_c_badge(self, assignment):
        reuse = assignment.cfg.events.badge_reuse_day
        actual = assignment.actual(reuse)
        assert actual[2] == "F"
        assert 5 not in actual  # F's own badge retired

    def test_invalid_day(self, assignment):
        with pytest.raises(ConfigError):
            assignment.actual(0)

    def test_no_events_no_anomalies(self):
        cfg = MissionConfig(days=14, events=None)
        assignment = BadgeAssignment(cfg=cfg, roster=icares_roster())
        for day in cfg.instrumented_days:
            assert assignment.actual(day) == assignment.assumed()


class TestDerived:
    def test_wearer_days(self, assignment):
        days = assignment.wearer_days(2)  # C's badge
        death = assignment.cfg.events.death_day
        reuse = assignment.cfg.events.badge_reuse_day
        assert days[death] == "C"
        assert death + 1 not in days
        assert days[reuse] == "F"

    def test_mislabeled_days(self, assignment):
        mislabeled = assignment.mislabeled_days()
        swap = assignment.cfg.events.badge_swap_day
        reuse = assignment.cfg.events.badge_reuse_day
        assert swap in mislabeled
        assert mislabeled[swap] == {0: "B", 1: "A"}
        assert all(day in mislabeled for day in range(reuse, 15))

    def test_custom_event_days(self):
        events = ScriptedEventsConfig(death_day=3, badge_swap_day=2, badge_reuse_day=5)
        cfg = MissionConfig(days=7, events=events)
        assignment = BadgeAssignment(cfg=cfg, roster=icares_roster())
        assert assignment.actual(2)[0] == "B"
        assert assignment.actual(5)[2] == "F"
