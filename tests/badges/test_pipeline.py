"""Tests for the day-level badge sensing pipeline (uses session fixtures)."""

import numpy as np
import pytest

from repro.badges.assignment import BadgeAssignment
from repro.badges.badge import badge_fleet
from repro.badges.pipeline import SensingModels, make_fleet, sense_day
from repro.core.rng import RngRegistry


@pytest.fixture(scope="module")
def day2(truth, mission_cfg):
    rngs = RngRegistry(99)
    assignment = BadgeAssignment(cfg=mission_cfg, roster=truth.roster)
    models = SensingModels.default(mission_cfg, truth.plan)
    fleet = make_fleet(assignment, rngs)
    obs, pairwise = sense_day(truth, 2, assignment, models, fleet, rngs)
    return assignment, obs, pairwise


class TestSenseDay:
    def test_badges_present(self, day2, truth):
        assignment, obs, __ = day2
        crew_badges = set(range(truth.roster.size))
        assert crew_badges <= set(obs)
        assert assignment.reference_id in obs

    def test_array_lengths(self, day2, mission_cfg):
        __, obs, __ = day2
        n = mission_cfg.frames_per_day
        for o in obs.values():
            assert o.active.shape == (n,)
            assert o.ble_rssi.shape[0] == n
            assert o.voice_db.shape == (n,)

    def test_reference_badge_always_active(self, day2):
        assignment, obs, __ = day2
        ref = obs[assignment.reference_id]
        assert ref.active.all()
        assert not ref.worn.any()

    def test_reference_clock_is_truth(self, day2):
        assignment, obs, __ = day2
        assert (obs[assignment.reference_id].clock_error_s == 0).all()

    def test_crew_clocks_bounded_by_sync(self, day2):
        assignment, obs, __ = day2
        for badge_id in range(6):
            assert np.abs(obs[badge_id].clock_error_s).max() < 0.5

    def test_pairwise_keys(self, day2, truth):
        __, __, pairwise = day2
        n = truth.roster.size
        assert len(pairwise.ir_contact) == n * (n - 1) // 2
        assert set(pairwise.ir_contact) == set(pairwise.subghz_rssi)

    def test_ir_contacts_happen(self, day2):
        __, __, pairwise = day2
        total = sum(mask.sum() for mask in pairwise.ir_contact.values())
        assert total > 1000  # meals alone guarantee face-to-face time

    def test_true_room_attached(self, day2):
        __, obs, __ = day2
        assert obs[0].true_room is not None

    def test_drop_ble_frees_matrix(self, day2):
        __, obs, __ = day2
        o = obs[1]
        o.drop_ble()
        assert o.ble_rssi.size == 0


class TestFleet:
    def test_make_fleet_fails_f_badge(self, truth, mission_cfg):
        assignment = BadgeAssignment(cfg=mission_cfg, roster=truth.roster)
        fleet = make_fleet(assignment, RngRegistry(1))
        f_badge = truth.roster.index("F")
        reuse = mission_cfg.events.badge_reuse_day
        assert not fleet[f_badge].alive_on(reuse)
        assert fleet[f_badge].alive_on(reuse - 1)

    def test_badge_fleet_structure(self):
        fleet = badge_fleet(6, np.random.default_rng(0))
        assert len(fleet) == 13  # 6 primary + 6 backup + reference
        assert fleet[12].is_reference
        assert fleet[7].is_backup and not fleet[2].is_backup

    def test_fleet_clocks_differ(self):
        fleet = badge_fleet(6, np.random.default_rng(0))
        drifts = {fleet[i].clock.drift_ppm for i in range(12)}
        assert len(drifts) == 12
