"""Unit tests for the validating ingest gate."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.quality import (
    VERDICT_OK,
    VERDICT_QUARANTINED,
    VERDICT_REPAIRED,
    QualityPolicy,
    gate_sensing,
    validate_sensing,
)

from tests.quality.conftest import mutable_copy


def crew_key(sensing):
    """A (badge_id, day) belonging to a crew badge (not the reference)."""
    ref = sensing.assignment.reference_id
    return min(k for k in sensing.summaries if k[0] != ref)


class TestCleanDataset:
    def test_every_verdict_ok(self, small_sensing):
        report = validate_sensing(small_sensing)
        assert report.all_ok
        assert report.n_ok == len(small_sensing.summaries)
        assert report.n_repaired == 0 and report.n_quarantined == 0

    def test_coverage_is_exactly_one(self, small_sensing):
        assert validate_sensing(small_sensing).coverage() == 1.0

    def test_gate_serves_the_same_objects(self, small_sensing):
        gated, report = gate_sensing(small_sensing)
        assert report.all_ok
        for key, summary in small_sensing.summaries.items():
            assert gated.summaries[key] is summary
        for day, pairwise in small_sensing.pairwise.items():
            assert gated.pairwise[day] is pairwise

    def test_report_attached_to_gated_dataset(self, small_sensing):
        gated, report = gate_sensing(small_sensing)
        assert gated.quality is report

    def test_report_json_is_reproducible(self, small_sensing):
        a = validate_sensing(small_sensing).to_json()
        b = validate_sensing(small_sensing).to_json()
        assert a == b

    def test_validate_does_not_mutate(self, small_sensing):
        key = crew_key(small_sensing)
        before = small_sensing.summaries[key].accel_rms.copy()
        validate_sensing(small_sensing)
        np.testing.assert_array_equal(small_sensing.summaries[key].accel_rms, before)


class TestRepairs:
    def corrupt(self, small_sensing, **channel_edits):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        summary = sensing.summaries[key]
        for name, edit in channel_edits.items():
            edit(getattr(summary, name))
        return sensing, key

    def test_nan_run_is_masked_not_served(self, small_sensing):
        def edit(accel):
            accel[100:160] = np.nan

        sensing, key = self.corrupt(small_sensing, accel_rms=edit)
        # Only frames that were recording count as corrupt.
        expected = int(sensing.summaries[key].active[100:160].sum())
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_REPAIRED
        assert {i.kind for i in verdict.issues} == {"nan-in-active"}
        assert verdict.repairs["masked-nan"] == expected
        assert not gated.summaries[key].active[100:160].any()
        assert verdict.coverage < 1.0

    def test_impossible_values_masked(self, small_sensing):
        def edit(accel):
            accel[:50] = -5.0

        sensing, key = self.corrupt(small_sensing, accel_rms=edit)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_REPAIRED
        assert verdict.repairs["masked-impossible"] == 50
        assert not gated.summaries[key].active[:50].any()
        assert (gated.summaries[key].room[:50] == -1).all()

    def test_stuck_sensor_masked(self, small_sensing):
        def edit_accel(accel):
            accel[200:400] = 0.123

        def edit_active(active):
            active[200:400] = True

        sensing, key = self.corrupt(
            small_sensing, accel_rms=edit_accel, active=edit_active)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert "stuck-values" in {i.kind for i in verdict.issues}
        assert verdict.repairs["masked-stuck"] >= 200

    def test_duplicated_frames_dropped(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        dupe = {
            name: np.concatenate([getattr(s, name), getattr(s, name)[:100]])
            for name in ("active", "worn", "room", "x", "y", "accel_rms",
                         "voice_db", "dominant_pitch_hz", "pitch_stability",
                         "sound_db")
        }
        if s.true_room is not None:
            dupe["true_room"] = np.concatenate([s.true_room, s.true_room[:100]])
        sensing.summaries[key] = dataclasses.replace(s, **dupe)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_REPAIRED
        assert verdict.repairs["deduplicated"] == 100
        expected = sensing.cfg.frames_per_day
        assert gated.summaries[key].n_frames == expected
        # Dropping surplus frames loses nothing that was expected.
        assert verdict.coverage == 1.0

    def test_truncated_day_padded_inactive(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        keep = s.n_frames // 2
        cut = {
            name: getattr(s, name)[:keep]
            for name in ("active", "worn", "room", "x", "y", "accel_rms",
                         "voice_db", "dominant_pitch_hz", "pitch_stability",
                         "sound_db")
        }
        if s.true_room is not None:
            cut["true_room"] = s.true_room[:keep]
        sensing.summaries[key] = dataclasses.replace(s, **cut)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_REPAIRED
        assert verdict.repairs["padded"] == s.n_frames - keep
        padded = gated.summaries[key]
        assert padded.n_frames == sensing.cfg.frames_per_day
        assert not padded.active[keep:].any()
        assert verdict.coverage == pytest.approx(keep / s.n_frames)

    def test_clock_skew_reset(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        sensing.summaries[key] = dataclasses.replace(s, t0=s.t0 + 7200.0)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_REPAIRED
        assert verdict.repairs["clock-reset"] == 1
        assert gated.summaries[key].t0 == s.t0

    def test_out_of_range_room_cleared(self, small_sensing):
        def edit(room):
            room[10:20] = 99

        sensing, key = self.corrupt(small_sensing, room=edit)
        gated, report = gate_sensing(sensing)
        assert report.verdict_for(*key).repairs["room-cleared"] == 10
        assert (gated.summaries[key].room[10:20] == -1).all()

    def test_out_of_bounds_coords_clamped(self, small_sensing):
        def edit(x):
            x[5:15] = 1e6

        sensing, key = self.corrupt(small_sensing, x=edit)
        gated, report = gate_sensing(sensing)
        assert report.verdict_for(*key).repairs["clamped"] >= 1
        policy = QualityPolicy.for_sensing(sensing)
        assert float(np.nanmax(gated.summaries[key].x)) <= policy.bounds[2]

    def test_wrong_dtype_recast(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        sensing.summaries[key] = dataclasses.replace(
            s, active=s.active.astype(np.int8))
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_REPAIRED
        assert verdict.repairs["recast"] == 1
        assert gated.summaries[key].active.dtype == np.bool_
        # Recasting loses no frames.
        assert verdict.coverage == 1.0


class TestQuarantine:
    def test_foreign_badge_quarantined(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries.pop(key)
        sensing.summaries[(77, key[1])] = dataclasses.replace(s, badge_id=77)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(77, key[1])
        assert verdict.verdict == VERDICT_QUARANTINED
        assert verdict.issues[0].kind == "foreign-badge-day"
        assert (77, key[1]) not in gated.summaries

    def test_broken_clock_quarantined(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        sensing.summaries[key] = dataclasses.replace(s, dt=s.dt * 2)
        gated, report = gate_sensing(sensing)
        assert report.verdict_for(*key).verdict == VERDICT_QUARANTINED
        assert key not in gated.summaries

    def test_empty_badge_day_quarantined(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        empty = {
            name: getattr(s, name)[:0]
            for name in ("active", "worn", "room", "x", "y", "accel_rms",
                         "voice_db", "dominant_pitch_hz", "pitch_stability",
                         "sound_db")
        }
        if s.true_room is not None:
            empty["true_room"] = s.true_room[:0]
        sensing.summaries[key] = dataclasses.replace(s, **empty)
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_QUARANTINED
        assert verdict.frames_usable == 0

    def test_mostly_corrupt_day_quarantined(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        s.active[:] = True
        s.accel_rms[:] = np.nan
        gated, report = gate_sensing(sensing)
        verdict = report.verdict_for(*key)
        assert verdict.verdict == VERDICT_QUARANTINED
        assert "mostly-corrupt" in {i.kind for i in verdict.issues}
        assert key not in gated.summaries

    def test_quarantine_zeroes_day_coverage(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        sensing.summaries[key] = dataclasses.replace(s, dt=s.dt * 2)
        report = validate_sensing(sensing)
        assert report.coverage() < 1.0
        assert report.verdict_for(*key).coverage == 0.0

    def test_strict_raises_on_quarantine(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        s = sensing.summaries[key]
        sensing.summaries[key] = dataclasses.replace(s, dt=s.dt * 2)
        with pytest.raises(DataError):
            gate_sensing(sensing, strict=True)

    def test_strict_passes_clean_data(self, small_sensing):
        gated, report = gate_sensing(small_sensing, strict=True)
        assert report.all_ok


class TestPairwiseGate:
    def test_pairs_of_quarantined_badge_dropped(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        key = crew_key(sensing)
        badge, day = key
        s = sensing.summaries[key]
        sensing.summaries[key] = dataclasses.replace(s, dt=s.dt * 2)
        n_pairs = sum(
            1 for (i, j) in sensing.pairwise[day].ir_contact if badge in (i, j)
        )
        assert n_pairs > 0
        gated, report = gate_sensing(sensing)
        assert report.pairwise_dropped == n_pairs
        assert all(
            badge not in pair for pair in gated.pairwise[day].ir_contact
        )

    def test_ragged_contact_stream_repaired(self, small_sensing):
        sensing = mutable_copy(small_sensing)
        day = small_sensing.days[0]
        pair = min(sensing.pairwise[day].ir_contact)
        contact = sensing.pairwise[day].ir_contact[pair]
        sensing.pairwise[day].ir_contact[pair] = contact[: len(contact) // 2]
        gated, report = gate_sensing(sensing)
        assert report.pairwise_repaired == 1
        fixed = gated.pairwise[day].ir_contact[pair]
        assert fixed.shape[0] == sensing.cfg.frames_per_day
        assert not fixed[len(contact) // 2:].any()
