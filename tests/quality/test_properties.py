"""Property-based tests: random corruption cannot crash the pipeline.

Hypothesis drives arbitrary sequences of the damage a real deployment
produces (garbage values, truncation, duplication, dtype drift, clock
skew, dead badge-days) into a copy of a clean dataset, then asserts the
system-level contract:

* :func:`validate_sensing` renders a legal verdict for every badge-day
  it saw, with coverage in ``[0, 1]``, and reports byte-identically on
  repeated inspection;
* :func:`gate_sensing` serves a dataset on which **every** analytics
  entry point completes without an uncaught exception, each result's
  coverage within ``[0, 1]``;
* a gated dataset re-enters the gate with every verdict ``ok``
  (repairs converge — the gate never ping-pongs).

Runs under the fixed ``quality-tier1`` profile (derandomized, capped
examples) so tier-1 cost and outcome are deterministic.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality import VERDICTS, gate_sensing, validate_sensing
from repro.quality.gate import FLOAT_CHANNELS

from tests.quality.conftest import mutable_copy, run_every_analysis

FIXED = settings.get_profile("quality-tier1")

#: Values bit-rot plausibly writes into a float stream.
GARBAGE = (float("nan"), float("inf"), float("-inf"), -1e12, 1e12, -5.0)

CORRUPTION_KINDS = (
    "garbage", "bad-room", "truncate", "duplicate", "empty",
    "clock-skew", "break-dt", "recast", "force-active", "drop",
)


@st.composite
def corruptions(draw):
    """One corruption op: ``(victim index, kind, parameters)``."""
    kind = draw(st.sampled_from(CORRUPTION_KINDS))
    victim = draw(st.integers(min_value=0, max_value=31))
    start = draw(st.floats(0.0, 0.9))
    length = draw(st.floats(0.01, 1.0))
    channel = draw(st.sampled_from(FLOAT_CHANNELS))
    garbage = draw(st.sampled_from(GARBAGE))
    return (victim, kind, start, length, channel, garbage)


def corrupt(sensing, ops):
    """Apply corruption ops to (a mutable copy of) a clean dataset."""
    keys = sorted(sensing.summaries)
    for victim, kind, start, length, channel, garbage in ops:
        key = keys[victim % len(keys)]
        if key not in sensing.summaries:  # dropped by an earlier op
            continue
        summary = sensing.summaries[key]
        n = summary.n_frames
        if n == 0 and kind not in ("drop", "clock-skew", "break-dt"):
            continue
        s = int(start * n)
        e = min(n, s + max(1, int(length * n)))
        if kind == "garbage":
            getattr(summary, channel)[s:e] = garbage
        elif kind == "bad-room":
            summary.room[s:e] = 119
        elif kind == "truncate":
            arrays = {
                name: getattr(summary, name)[:s]
                for name in ("active", "worn", "room") + FLOAT_CHANNELS
            }
            if summary.true_room is not None:
                arrays["true_room"] = summary.true_room[:s]
            sensing.summaries[key] = dataclasses.replace(summary, **arrays)
        elif kind == "duplicate":
            arrays = {}
            for name in ("active", "worn", "room") + FLOAT_CHANNELS:
                a = getattr(summary, name)
                arrays[name] = np.concatenate([a, a[s:e]])
            if summary.true_room is not None:
                arrays["true_room"] = np.concatenate(
                    [summary.true_room, summary.true_room[s:e]])
            sensing.summaries[key] = dataclasses.replace(summary, **arrays)
        elif kind == "empty":
            arrays = {
                name: getattr(summary, name)[:0]
                for name in ("active", "worn", "room") + FLOAT_CHANNELS
            }
            if summary.true_room is not None:
                arrays["true_room"] = summary.true_room[:0]
            sensing.summaries[key] = dataclasses.replace(summary, **arrays)
        elif kind == "clock-skew":
            sensing.summaries[key] = dataclasses.replace(
                summary, t0=summary.t0 + (garbage if np.isfinite(garbage) else 7200.0))
        elif kind == "break-dt":
            sensing.summaries[key] = dataclasses.replace(
                summary, dt=summary.dt * 3)
        elif kind == "recast":
            sensing.summaries[key] = dataclasses.replace(
                summary,
                active=summary.active.astype(np.int8),
                **{channel: getattr(summary, channel).astype(np.float64)},
            )
        elif kind == "force-active":
            summary.active[s:e] = True
        elif kind == "drop":
            del sensing.summaries[key]
    return sensing


class TestProperties:
    @FIXED
    @given(ops=st.lists(corruptions(), min_size=0, max_size=6))
    def test_verdicts_are_legal_and_coverage_bounded(self, small_sensing, ops):
        corrupted = corrupt(mutable_copy(small_sensing), ops)
        report = validate_sensing(corrupted)
        assert len(report.verdicts) == len(corrupted.summaries)
        for verdict in report.verdicts:
            assert verdict.verdict in VERDICTS
            assert 0.0 <= verdict.coverage <= 1.0
            assert 0 <= verdict.frames_usable <= verdict.frames_expected
        assert 0.0 <= report.coverage() <= 1.0

    @FIXED
    @given(ops=st.lists(corruptions(), min_size=0, max_size=6))
    def test_report_is_reproducible(self, small_sensing, ops):
        corrupted = corrupt(mutable_copy(small_sensing), ops)
        assert validate_sensing(corrupted).to_json() \
            == validate_sensing(corrupted).to_json()

    @FIXED
    @given(ops=st.lists(corruptions(), min_size=1, max_size=6))
    def test_every_analysis_survives_gated_corruption(self, small_sensing, ops):
        corrupted = corrupt(mutable_copy(small_sensing), ops)
        gated, report = gate_sensing(corrupted)
        results = run_every_analysis(gated)
        for name, result in results.items():
            coverage = getattr(result, "coverage", 1.0)
            assert 0.0 <= coverage <= 1.0, f"{name}: coverage {coverage}"

    @FIXED
    @given(ops=st.lists(corruptions(), min_size=1, max_size=6))
    def test_gate_is_idempotent(self, small_sensing, ops):
        """Repairs converge: a gated dataset re-enters the gate all-ok."""
        corrupted = corrupt(mutable_copy(small_sensing), ops)
        gated, _ = gate_sensing(corrupted)
        second = validate_sensing(gated)
        assert second.all_ok, [
            (v.badge_id, v.day, [i.kind for i in v.issues])
            for v in second.verdicts if v.verdict != "ok"
        ]

    @FIXED
    @given(ops=st.lists(corruptions(), min_size=0, max_size=6))
    def test_coverage_is_one_minus_lost_fraction(self, small_sensing, ops):
        """Coverage == 1 - mean lost fraction, by construction.

        Per badge-day the lost fraction is 1 for a quarantined day and
        ``(masked + padded) / expected`` otherwise; the report-level
        coverage metric must be exactly one minus the mean of those —
        no corruption sequence may break the accounting identity.
        """
        corrupted = corrupt(mutable_copy(small_sensing), ops)
        report = validate_sensing(corrupted)
        if not report.verdicts:
            assert report.coverage() == 1.0
            return
        lost = 0.0
        for v in report.verdicts:
            if v.verdict == "quarantined" or v.frames_expected <= 0:
                lost += 1.0
            else:
                lost += (v.frames_expected - v.frames_usable) / v.frames_expected
        assert report.coverage() == pytest.approx(
            1.0 - lost / len(report.verdicts), abs=1e-12)
        # The unusable frames of a served day are exactly the masked
        # union plus padding: bounded below by the largest single mask
        # category and above by the sum of all of them.
        mask_kinds = ("masked-nan", "masked-impossible", "masked-stuck")
        for v in report.verdicts:
            if v.verdict == "quarantined":
                assert v.frames_usable == 0
                continue
            unusable = v.frames_expected - v.frames_usable
            masked = unusable - v.repairs.get("padded", 0)
            counts = [v.repairs.get(kind, 0) for kind in mask_kinds]
            assert masked >= max(counts, default=0)
            assert masked <= sum(counts)
            assert 0 <= masked <= v.frames_expected

    @FIXED
    @given(ops=st.lists(corruptions(), min_size=1, max_size=6))
    def test_gate_never_mutates_its_input(self, small_sensing, ops):
        corrupted = corrupt(mutable_copy(small_sensing), ops)
        before = {
            key: {name: getattr(s, name).copy()
                  for name in ("active", "room", "accel_rms")}
            for key, s in corrupted.summaries.items()
        }
        gate_sensing(corrupted)
        for key, channels in before.items():
            for name, arr in channels.items():
                np.testing.assert_array_equal(
                    getattr(corrupted.summaries[key], name), arr)


class TestCleanRegression:
    """A clean dataset is bit-identical through the gate, analytics
    included — the gate must be free on the happy path."""

    def test_clean_analytics_bit_identical(self, small_sensing):
        gated, report = gate_sensing(small_sensing)
        assert report.all_ok
        plain = run_every_analysis(small_sensing)
        through_gate = run_every_analysis(gated)
        assert set(plain) == set(through_gate)
        for name in plain:
            a, b = plain[name], through_gate[name]
            if isinstance(a, (dict, list, tuple, float, int)):
                assert _equal(a, b), name
            else:
                assert repr(a) == repr(b), name
        for result in through_gate.values():
            assert getattr(result, "coverage", 1.0) == 1.0


def _equal(a, b):
    if isinstance(a, dict):
        return set(a) == set(b) and all(_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b, equal_nan=True)
    if isinstance(a, float) and np.isnan(a):
        return isinstance(b, float) and np.isnan(b)
    return a == b
