"""Acceptance tests: the full sensing→gate→analysis path on dirty data.

The PR's contract, end to end:

* a seeded corruption :class:`~repro.faults.campaign.FaultCampaign` run
  through :func:`run_mission` and **all** Figure 2–6 / Table I analyses
  completes without an uncaught exception, reports coverage below 1,
  and the same seed reproduces the identical
  :class:`~repro.quality.report.DataQualityReport` byte for byte;
* a clean mission passes the gate with every verdict ``ok``, coverage
  exactly 1.0, and analytics outputs bit-identical to the ungated run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import MissionConfig
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6
from repro.experiments.mission import run_mission
from repro.faults.campaign import FaultCampaign
from repro.quality import validate_sensing

from tests.quality.conftest import run_every_analysis


def corrupted_config(seed: int = 0) -> MissionConfig:
    campaign = FaultCampaign.corruption(days=3, seed=seed, n_badges=2)
    return MissionConfig(
        days=3, crew_size=2, frame_dt=60.0, seed=5, events=None,
        fault_plan=campaign.generate(),
    )


@pytest.fixture(scope="module")
def corrupted_result():
    return run_mission(corrupted_config())


class TestCorruptionCampaign:
    def test_gate_engaged_and_found_damage(self, corrupted_result):
        report = corrupted_result.quality
        assert report is not None
        assert report.n_repaired + report.n_quarantined > 0
        assert corrupted_result.sensing.quality is report

    def test_coverage_below_one(self, corrupted_result):
        assert corrupted_result.quality.coverage() < 1.0

    def test_every_analysis_completes_with_partial_coverage(
            self, corrupted_result):
        results = run_every_analysis(corrupted_result.sensing)
        coverages = [getattr(r, "coverage", 1.0) for r in results.values()]
        assert all(0.0 <= c <= 1.0 for c in coverages)
        # The damage is visible, not silently absorbed: the mission-wide
        # analyses all report the same sub-1 usable-data fraction.
        assert min(coverages) < 1.0

    def test_all_figures_complete(self, corrupted_result):
        names, counts = fig2(corrupted_result)
        assert counts.shape == (len(names), len(names))
        fig3(corrupted_result, corrupted_result.assignment.roster.ids[0])
        fig4(corrupted_result)
        fig5(corrupted_result)
        fig6(corrupted_result)

    def test_table1_reports_its_coverage(self, corrupted_result):
        from repro.analytics.reports import table1

        table = table1(corrupted_result.sensing)
        assert table.coverage < 1.0
        assert "of the expected data" in table.to_text()
        assert table.to_dict()["coverage"] == table.coverage

    def test_same_seed_reproduces_report_byte_for_byte(self, corrupted_result):
        again = run_mission(corrupted_config())
        assert again.quality.to_json() == corrupted_result.quality.to_json()

    def test_different_campaign_seed_differs(self, corrupted_result):
        other = run_mission(corrupted_config(seed=1))
        assert other.quality.to_json() != corrupted_result.quality.to_json()

    def test_quality_surfaces_in_mission_result(self, corrupted_result):
        assert corrupted_result.to_dict()["quality"]["coverage"] < 1.0
        assert "data quality:" in corrupted_result.to_text()


class TestCleanMission:
    @pytest.fixture(scope="class")
    def clean_cfg(self):
        return MissionConfig(days=3, crew_size=2, frame_dt=60.0, seed=5,
                             events=None)

    def test_auto_mode_skips_the_gate_when_nothing_is_dirty(self, clean_cfg):
        result = run_mission(clean_cfg)
        assert result.quality is None
        assert result.sensing.quality is None

    def test_gated_clean_mission_all_ok(self, clean_cfg):
        result = run_mission(clean_cfg, quality="gate")
        assert result.quality is not None
        assert result.quality.all_ok
        assert result.quality.coverage() == 1.0

    def test_strict_mode_passes_clean_data(self, clean_cfg):
        result = run_mission(clean_cfg, quality="strict")
        assert result.quality.all_ok

    def test_gated_analytics_bit_identical_to_ungated(self, clean_cfg):
        ungated = run_mission(clean_cfg, quality="off")
        gated = run_mission(clean_cfg, quality="gate")
        for key, summary in ungated.sensing.summaries.items():
            twin = gated.sensing.summaries[key]
            for name in ("active", "worn", "room", "x", "y", "accel_rms",
                         "voice_db", "sound_db"):
                import numpy as np
                np.testing.assert_array_equal(
                    getattr(summary, name), getattr(twin, name))
        a = run_every_analysis(ungated.sensing)
        b = run_every_analysis(gated.sensing)
        for name in a:
            assert repr(a[name]) == repr(b[name]), name

    def test_invalid_quality_mode_rejected(self, clean_cfg):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            run_mission(clean_cfg, quality="paranoid")


class TestObsWiring:
    def test_gate_counts_and_spans_surface_in_telemetry(self):
        from repro import obs

        obs.enable()
        try:
            result = run_mission(corrupted_config())
        finally:
            telemetry = obs.export.to_dict()
            obs.disable()
        metrics = telemetry["metrics"]
        assert metrics["quality.badge_days"]["type"] == "counter"
        verdicts = {
            s["labels"]["verdict"]: s["value"]
            for s in metrics["quality.badge_days"]["series"]
        }
        assert sum(verdicts.values()) == len(result.quality.verdicts)
        assert "faults.data_events" in metrics
        assert "quality.repairs" in metrics
        spans = {s["name"] for s in telemetry["spans"]}
        assert "quality.gate" in spans
        assert result.quality is not None


class TestStandaloneValidate:
    def test_validate_matches_mission_gate_verdicts(self, corrupted_result):
        """validate_sensing on the pre-gate dataset reproduces the
        verdicts run_mission attached (same gate, same policy)."""
        cfg = corrupted_config()
        ungated = run_mission(
            dataclasses.replace(cfg), quality="off").sensing
        report = validate_sensing(ungated)
        assert report.to_json() == corrupted_result.quality.to_json()
