"""Fixtures for the quality-gate tests: one tiny mission, reused.

The gate tests corrupt *copies* of the dataset, so a single simulated
mission (2 crew, 3 days, 60 s frames -> 840 frames per badge-day) can
back the whole package, including the property-based suite.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, settings

from repro.analytics.dataset import MissionSensing
from repro.badges.pipeline import PairwiseDay
from repro.core.config import MissionConfig
from repro.experiments.mission import run_mission
from repro.quality.gate import ALL_CHANNELS

#: The fixed profile the tier-1 property suite runs under: derandomized
#: (every CI run explores the identical example sequence) and capped, so
#: the suite's cost and outcome are deterministic.
settings.register_profile(
    "quality-tier1",
    derandomize=True,
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="package")
def small_cfg() -> MissionConfig:
    return MissionConfig(days=3, crew_size=2, frame_dt=60.0, seed=5, events=None)


@pytest.fixture(scope="package")
def small_sensing(small_cfg):
    return run_mission(small_cfg).sensing


def mutable_copy(sensing: MissionSensing) -> MissionSensing:
    """A deep-enough copy whose arrays can be corrupted freely."""
    new = MissionSensing(
        cfg=sensing.cfg, plan=sensing.plan, assignment=sensing.assignment
    )
    for key, summary in sensing.summaries.items():
        arrays = {name: getattr(summary, name).copy() for name in ALL_CHANNELS}
        if summary.true_room is not None:
            arrays["true_room"] = summary.true_room.copy()
        new.summaries[key] = dataclasses.replace(summary, **arrays)
    for day, pairwise in sensing.pairwise.items():
        copy = PairwiseDay(day=pairwise.day)
        copy.ir_contact = {k: v.copy() for k, v in pairwise.ir_contact.items()}
        copy.subghz_rssi = {k: v.copy() for k, v in pairwise.subghz_rssi.items()}
        new.pairwise[day] = copy
    return new


def run_every_analysis(sensing: MissionSensing) -> dict[str, object]:
    """Exercise every public analytics entry point on one dataset.

    Returns ``{name: result}`` so callers can make further assertions
    (coverage bounds, determinism).  Any uncaught exception is the
    test failure — the point of the quality gate is that no dataset it
    serves can crash an analysis.
    """
    from repro.analytics.anomalies import (
        badge_swap_suspicions,
        machine_speech_share,
        quiet_days,
        unplanned_gatherings,
    )
    from repro.analytics.centrality import company_and_authority
    from repro.analytics.environment import daily_ambient_noise, quiet_noise_days
    from repro.analytics.interactions import (
        company_seconds,
        ir_contact_seconds,
        pair_copresence_seconds,
        pair_meeting_seconds,
        pairwise_matrix,
        private_talk_seconds,
    )
    from repro.analytics.meetings import detect_meetings, whole_crew_meetings
    from repro.analytics.occupancy import (
        room_occupancy_seconds,
        stay_durations_by_room,
        typical_stay_hours,
    )
    from repro.analytics.reports import deployment_stats, table1
    from repro.analytics.speakers import enroll_profiles, sex_classification_report
    from repro.analytics.speech import daily_speech_fraction, mission_speech_fraction
    from repro.analytics.timeline import day_timeline
    from repro.analytics.transitions import top_transitions, transition_matrix
    from repro.analytics.walking import daily_walking_fraction, mission_walking_fraction

    results: dict[str, object] = {}
    results["occupancy.stays"] = stay_durations_by_room(sensing)
    results["occupancy.seconds"] = room_occupancy_seconds(sensing)
    results["occupancy.typical"] = typical_stay_hours(sensing, "kitchen")
    names, counts = transition_matrix(sensing)
    results["transitions.matrix"] = transition_matrix(sensing)
    results["transitions.top"] = top_transitions(names, counts)
    results["interactions.company"] = company_seconds(sensing)
    pairs = pair_copresence_seconds(sensing)
    results["interactions.copresence"] = pairs
    results["interactions.private"] = private_talk_seconds(sensing)
    results["interactions.meeting"] = pair_meeting_seconds(sensing)
    results["interactions.ir"] = ir_contact_seconds(sensing)
    results["interactions.matrix"] = pairwise_matrix(
        pairs, tuple(sensing.assignment.roster.ids))
    results["walking.daily"] = daily_walking_fraction(sensing)
    results["walking.mission"] = mission_walking_fraction(sensing)
    results["speech.daily"] = daily_speech_fraction(sensing)
    results["speech.mission"] = mission_speech_fraction(sensing)
    results["speakers.profiles"] = enroll_profiles(sensing)
    results["speakers.sex"] = sex_classification_report(sensing)
    results["centrality"] = company_and_authority(sensing)
    results["environment.noise"] = daily_ambient_noise(sensing)
    results["environment.quiet"] = quiet_noise_days(sensing)
    results["anomalies.quiet_days"] = quiet_days(sensing)
    results["anomalies.swaps"] = badge_swap_suspicions(sensing)
    results["anomalies.machine"] = machine_speech_share(sensing)
    results["reports.table1"] = table1(sensing)
    results["reports.deployment"] = deployment_stats(sensing)
    for day in sensing.cfg.instrumented_days:
        results[f"meetings.day{day}"] = detect_meetings(sensing, day)
        results[f"meetings.crew.day{day}"] = whole_crew_meetings(sensing, day)
        results[f"anomalies.gatherings.day{day}"] = unplanned_gatherings(
            sensing, day, scheduled_windows=[])
        results[f"timeline.day{day}"] = day_timeline(sensing, day)
    return results
