"""Tests for the message bus."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigError, ProtocolError
from repro.support.bus import Message, Network, Node


class Recorder(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.received = []

    def handle_default(self, message):
        self.received.append(message)

    def handle_ping(self, message):
        self.received.append(("ping", message.payload))
        self.send(message.src, "pong", message.payload)


@pytest.fixture()
def net():
    sim = Simulator()
    network = Network(sim, default_latency_s=0.1)
    a, b = Recorder("a", sim), Recorder("b", sim)
    network.register(a)
    network.register(b)
    return sim, network, a, b


class TestDelivery:
    def test_basic_send(self, net):
        sim, network, a, b = net
        a.send("b", "hello", 42)
        sim.run()
        assert b.received[0].payload == 42

    def test_latency_applied(self, net):
        sim, network, a, b = net
        network.set_link_latency("a", "b", 5.0)
        a.send("b", "hello")
        sim.run()
        assert sim.now == pytest.approx(5.0)

    def test_dispatch_to_handler(self, net):
        sim, network, a, b = net
        a.send("b", "ping", "x")
        sim.run()
        assert ("ping", "x") in b.received
        assert any(m.kind == "pong" for m in a.received)

    def test_broadcast(self, net):
        sim, network, a, b = net
        c = Recorder("c", sim)
        network.register(c)
        network.broadcast("a", "note")
        sim.run()
        assert len(b.received) == 1 and len(c.received) == 1
        assert not a.received  # no self-delivery

    def test_unknown_destination_dropped(self, net):
        sim, network, a, __ = net
        a.send("ghost", "hello")
        sim.run()
        assert network.dropped == 1

    def test_duplicate_name_rejected(self, net):
        sim, network, *_ = net
        with pytest.raises(ConfigError):
            network.register(Recorder("a", sim))

    def test_unattached_node_cannot_send(self):
        node = Recorder("lonely", Simulator())
        with pytest.raises(ProtocolError):
            node.send("x", "hello")


class TestFailures:
    def test_partition_blocks(self, net):
        sim, network, a, b = net
        network.partition("a", "b")
        a.send("b", "hello")
        sim.run()
        assert not b.received
        assert network.dropped == 1

    def test_heal_restores(self, net):
        sim, network, a, b = net
        network.partition("a", "b")
        network.heal("a", "b")
        a.send("b", "hello")
        sim.run()
        assert b.received

    def test_crashed_node_receives_nothing(self, net):
        sim, network, a, b = net
        network.crash("b")
        a.send("b", "hello")
        sim.run()
        assert not b.received

    def test_crashed_node_cannot_send(self, net):
        sim, network, a, b = net
        network.crash("a")
        a.send("b", "hello")
        sim.run()
        assert not b.received

    def test_recover(self, net):
        sim, network, a, b = net
        network.crash("b")
        network.recover("b")
        a.send("b", "hello")
        sim.run()
        assert b.received

    def test_lossy_link(self):
        import numpy as np

        sim = Simulator()
        network = Network(sim, loss_prob=0.5, rng=np.random.default_rng(0))
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.register(a)
        network.register(b)
        for _ in range(200):
            a.send("b", "hello")
        sim.run()
        assert 50 < len(b.received) < 150

    def test_every_repeats_until_crash(self, net):
        sim, network, a, b = net
        ticks = []
        a.every(1.0, ticks.append, 1)
        sim.run_until(5.5)
        assert len(ticks) == 5
        network.crash("a")
        sim.run_until(10.0)
        assert len(ticks) == 5

    def test_every_stops_rescheduling_after_crash(self, net):
        """A crashed node's periodic tick must not keep the queue alive
        forever: run() on a drained scenario terminates."""
        sim, network, a, b = net
        a.every(1.0, lambda: None)
        sim.schedule(3.5, network.crash, "a")
        sim.run()  # would never return if tick kept rescheduling itself
        assert sim.pending() == 0
        assert sim.now == pytest.approx(4.0)  # last scheduled tick, suppressed

    def test_every_handle_cancel(self, net):
        sim, network, a, b = net
        ticks = []
        task = a.every(1.0, ticks.append, 1)
        sim.run_until(2.5)
        assert len(ticks) == 2
        task.cancel()
        sim.run()
        assert len(ticks) == 2
        assert sim.pending() == 0

    def test_every_handle_cancel_idempotent(self, net):
        sim, network, a, b = net
        task = a.every(1.0, lambda: None)
        task.cancel()
        task.cancel()
        sim.run()
        assert task.cancelled


class TestAccounting:
    def test_sent_counts_every_send(self, net):
        sim, network, a, b = net
        a.send("b", "hello")
        a.send("ghost", "hello")
        sim.run()
        assert network.sent == 2
        assert network.delivered == 1
        assert network.dropped == 1

    def test_crashed_source_counted_as_dropped(self, net):
        sim, network, a, b = net
        network.crash("a")
        a.send("b", "hello")
        sim.run()
        assert network.sent == 1
        assert network.dropped == 1
        assert network.delivered == 0

    def test_invariant_across_all_drop_reasons(self):
        import numpy as np

        sim = Simulator()
        network = Network(sim, loss_prob=0.3, rng=np.random.default_rng(2))
        nodes = [Recorder(name, sim) for name in "abcd"]
        for node in nodes:
            network.register(node)
        network.partition("a", "b")
        network.crash("c")
        for _ in range(50):
            nodes[0].send("b", "blocked")      # partitioned
            nodes[0].send("c", "to-crashed")   # dst crashed (or lost)
            nodes[2].send("a", "from-crashed")  # src crashed
            nodes[0].send("ghost", "nowhere")  # unknown destination
            nodes[3].send("a", "normal")       # lossy but mostly delivered
        sim.run()
        assert network.sent == 250
        assert network.in_flight() == 0
        assert network.delivered + network.dropped == network.sent
        assert network.delivered > 0

    def test_per_kind_metrics_and_drop_reasons(self, net):
        from repro import obs

        sim, network, a, b = net
        obs.reset()
        obs.enable()
        network.crash("a")
        a.send("b", "alert")
        network.recover("a")
        network.partition("a", "b")
        a.send("b", "alert")
        network.heal("a", "b")
        a.send("b", "alert")
        sim.run()
        dropped = obs.metrics.registry.get("bus.dropped")
        assert dropped.value(kind="alert", reason="src-crashed") == 1.0
        assert dropped.value(kind="alert", reason="partitioned") == 1.0
        sent = obs.metrics.registry.get("bus.sent")
        delivered = obs.metrics.registry.get("bus.delivered")
        assert sent.value(kind="alert") == 3.0
        assert delivered.value(kind="alert") == 1.0
        latency = obs.metrics.registry.get("bus.latency_s")
        assert latency.count(kind="alert") == 1
        assert latency.sum(kind="alert") == pytest.approx(0.1)
        # Fault injections were logged with sim-time stamps.
        events = [r.event for r in obs.logging.buffer.records]
        assert "node-crashed" in events
        assert "link-partitioned" in events
        assert "link-healed" in events
        assert "node-recovered" in events
        obs.reset()


class LifecycleNode(Recorder):
    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.lifecycle = []

    def on_crash(self):
        self.lifecycle.append(("crash", self.sim.now))

    def on_recover(self):
        self.lifecycle.append(("recover", self.sim.now))


class TestCrashRecoverCycles:
    def test_lifecycle_hooks_fire_in_order(self):
        sim = Simulator()
        network = Network(sim)
        node = LifecycleNode("n", sim)
        network.register(node)
        sim.schedule(1.0, network.crash, "n")
        sim.schedule(2.0, network.recover, "n")
        sim.schedule(3.0, network.crash, "n")
        sim.schedule(4.0, network.recover, "n")
        sim.run()
        assert node.lifecycle == [
            ("crash", 1.0), ("recover", 2.0), ("crash", 3.0), ("recover", 4.0),
        ]

    def test_is_down_tracks_cycles(self, net):
        sim, network, a, b = net
        assert not network.is_down("a")
        network.crash("a")
        assert network.is_down("a")
        network.recover("a")
        assert not network.is_down("a")

    def test_delivery_resumes_after_each_cycle(self, net):
        sim, network, a, b = net
        for cycle in range(3):
            t = 10.0 * cycle
            sim.schedule_at(t + 1.0, network.crash, "b")
            sim.schedule_at(t + 2.0, a.send, "b", "during-crash", cycle)
            sim.schedule_at(t + 5.0, network.recover, "b")
            sim.schedule_at(t + 6.0, a.send, "b", "after-recover", cycle)
        sim.run()
        kinds = [m.kind for m in b.received]
        assert kinds.count("after-recover") == 3
        assert "during-crash" not in kinds
        assert network.delivered == 3 and network.dropped == 3

    def test_restarted_periodic_task_after_recover(self, net):
        """every() stops on crash; a restarted task resumes ticking."""
        sim, network, a, b = net
        ticks = []
        a.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, network.crash, "a")
        sim.run_until(5.0)
        assert len(ticks) == 2
        network.recover("a")
        a.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(8.5)
        assert len(ticks) == 5

    def test_reliable_messages_span_a_crash_cycle(self, net):
        sim, network, a, b = net
        network.crash("b")
        a.send_reliable("b", "hello", "x")
        sim.schedule(0.3, network.recover, "b")
        sim.run()
        assert any(m.payload == "x" for m in b.received)
        assert a.reliable.acked == {"hello": 1}


class TestMessage:
    def test_repr(self):
        assert "a->b" in repr(Message("a", "b", "kind"))

    def test_repr_shows_reliable_id(self):
        assert "id=a#0" in repr(Message("a", "b", "kind", msg_id="a#0"))
