"""Tests for the message bus."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigError, ProtocolError
from repro.support.bus import Message, Network, Node


class Recorder(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.received = []

    def handle_default(self, message):
        self.received.append(message)

    def handle_ping(self, message):
        self.received.append(("ping", message.payload))
        self.send(message.src, "pong", message.payload)


@pytest.fixture()
def net():
    sim = Simulator()
    network = Network(sim, default_latency_s=0.1)
    a, b = Recorder("a", sim), Recorder("b", sim)
    network.register(a)
    network.register(b)
    return sim, network, a, b


class TestDelivery:
    def test_basic_send(self, net):
        sim, network, a, b = net
        a.send("b", "hello", 42)
        sim.run()
        assert b.received[0].payload == 42

    def test_latency_applied(self, net):
        sim, network, a, b = net
        network.set_link_latency("a", "b", 5.0)
        a.send("b", "hello")
        sim.run()
        assert sim.now == pytest.approx(5.0)

    def test_dispatch_to_handler(self, net):
        sim, network, a, b = net
        a.send("b", "ping", "x")
        sim.run()
        assert ("ping", "x") in b.received
        assert any(m.kind == "pong" for m in a.received)

    def test_broadcast(self, net):
        sim, network, a, b = net
        c = Recorder("c", sim)
        network.register(c)
        network.broadcast("a", "note")
        sim.run()
        assert len(b.received) == 1 and len(c.received) == 1
        assert not a.received  # no self-delivery

    def test_unknown_destination_dropped(self, net):
        sim, network, a, __ = net
        a.send("ghost", "hello")
        sim.run()
        assert network.dropped == 1

    def test_duplicate_name_rejected(self, net):
        sim, network, *_ = net
        with pytest.raises(ConfigError):
            network.register(Recorder("a", sim))

    def test_unattached_node_cannot_send(self):
        node = Recorder("lonely", Simulator())
        with pytest.raises(ProtocolError):
            node.send("x", "hello")


class TestFailures:
    def test_partition_blocks(self, net):
        sim, network, a, b = net
        network.partition("a", "b")
        a.send("b", "hello")
        sim.run()
        assert not b.received
        assert network.dropped == 1

    def test_heal_restores(self, net):
        sim, network, a, b = net
        network.partition("a", "b")
        network.heal("a", "b")
        a.send("b", "hello")
        sim.run()
        assert b.received

    def test_crashed_node_receives_nothing(self, net):
        sim, network, a, b = net
        network.crash("b")
        a.send("b", "hello")
        sim.run()
        assert not b.received

    def test_crashed_node_cannot_send(self, net):
        sim, network, a, b = net
        network.crash("a")
        a.send("b", "hello")
        sim.run()
        assert not b.received

    def test_recover(self, net):
        sim, network, a, b = net
        network.crash("b")
        network.recover("b")
        a.send("b", "hello")
        sim.run()
        assert b.received

    def test_lossy_link(self):
        import numpy as np

        sim = Simulator()
        network = Network(sim, loss_prob=0.5, rng=np.random.default_rng(0))
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.register(a)
        network.register(b)
        for _ in range(200):
            a.send("b", "hello")
        sim.run()
        assert 50 < len(b.received) < 150

    def test_every_repeats_until_crash(self, net):
        sim, network, a, b = net
        ticks = []
        a.every(1.0, ticks.append, 1)
        sim.run_until(5.5)
        assert len(ticks) == 5
        network.crash("a")
        sim.run_until(10.0)
        assert len(ticks) == 5


class TestMessage:
    def test_repr(self):
        assert "a->b" in repr(Message("a", "b", "kind"))
