"""Tests for the delayed Earth link (the day-12 scenario)."""

import pytest

from repro.core.engine import Simulator
from repro.support.bus import Network
from repro.support.mission_control import DEFAULT_ONE_WAY_DELAY_S, EarthLink


@pytest.fixture()
def link():
    sim = Simulator()
    net = Network(sim)
    return sim, EarthLink.build(net, sim, one_way_delay_s=1200.0)


class TestDelay:
    def test_default_is_20_minutes(self):
        assert DEFAULT_ONE_WAY_DELAY_S == 1200.0

    def test_command_arrives_after_delay(self, link):
        sim, earth_link = link
        earth_link.mission_control.issue("topic", "go")
        sim.run_until(1199.0)
        assert not earth_link.habitat_agent.applied_commands
        sim.run_until(1201.0)
        assert earth_link.habitat_agent.applied_commands

    def test_ack_round_trip(self, link):
        sim, earth_link = link
        cmd = earth_link.mission_control.issue("topic", "go")
        sim.run()
        assert cmd.command_id in earth_link.mission_control.acknowledged
        assert sim.now >= 2400.0  # full RTT


class TestContradiction:
    def test_day12_scenario(self, link):
        """The crew decides; a stale contradicting command arrives;
        a reprimand follows 40 minutes of light-time later."""
        sim, earth_link = link
        earth_link.mission_control.issue("rover-route", "south")
        sim.run_until(600.0)
        earth_link.habitat_agent.decide_locally("rover-route", "north")
        sim.run()
        contradictions = earth_link.habitat_agent.contradictions
        assert len(contradictions) == 1
        assert contradictions[0].staleness_s == pytest.approx(1200.0)
        assert earth_link.mission_control.reprimands
        assert earth_link.habitat_agent.reprimands_received == 1

    def test_agreeing_command_applies(self, link):
        sim, earth_link = link
        earth_link.habitat_agent.decide_locally("topic", "go")
        earth_link.mission_control.issue("topic", "go")
        sim.run()
        assert not earth_link.habitat_agent.contradictions
        assert earth_link.habitat_agent.applied_commands

    def test_command_without_local_decision_applies(self, link):
        sim, earth_link = link
        earth_link.mission_control.issue("fresh-topic", "go")
        sim.run()
        assert earth_link.habitat_agent.applied_commands
        assert earth_link.habitat_agent.decisions["fresh-topic"].action == "go"


class TestIdempotency:
    def test_duplicate_command_applied_once(self, link):
        """A command retransmitted over the lossy Earth link must apply
        exactly once (and not re-trigger contradiction detection)."""
        sim, earth_link = link
        agent = earth_link.habitat_agent
        cmd = earth_link.mission_control.issue("topic", "go")
        sim.run()
        from repro.support.bus import Message
        agent.on_message(Message("earth", "habitat", "command", cmd))
        sim.run()
        assert len(agent.applied_commands) == 1
        assert agent.duplicate_commands == 1

    def test_duplicate_still_reacked(self, link):
        """Re-ack duplicates: the retransmission means Earth never saw
        the first ack."""
        sim, earth_link = link
        agent = earth_link.habitat_agent
        cmd = earth_link.mission_control.issue("topic", "go")
        sim.run()
        earth_link.mission_control.acknowledged.clear()
        from repro.support.bus import Message
        agent.on_message(Message("earth", "habitat", "command", cmd))
        sim.run()
        assert cmd.command_id in earth_link.mission_control.acknowledged

    def test_duplicate_contradiction_reported_once(self, link):
        sim, earth_link = link
        agent = earth_link.habitat_agent
        earth_link.mission_control.issue("route", "south")
        sim.run_until(600.0)
        agent.decide_locally("route", "north")
        sim.run()
        assert len(agent.contradictions) == 1
        from repro.support.bus import Message
        cmd = earth_link.mission_control.sent_commands[0]
        agent.on_message(Message("earth", "habitat", "command", cmd))
        sim.run()
        assert len(agent.contradictions) == 1
        assert len(earth_link.mission_control.reprimands) == 1


class TestBlackout:
    def test_blackout_drops_commands(self, link):
        sim, earth_link = link
        earth_link.blackout()
        earth_link.mission_control.issue("topic", "go")
        sim.run()
        assert not earth_link.habitat_agent.applied_commands

    def test_restore_allows_new_commands(self, link):
        sim, earth_link = link
        earth_link.blackout()
        earth_link.mission_control.issue("topic", "go")
        sim.run()
        earth_link.restore()
        earth_link.mission_control.issue("topic", "go-again")
        sim.run()
        assert earth_link.habitat_agent.applied_commands
