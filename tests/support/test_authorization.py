"""Tests for multi-party authorization."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ProtocolError
from repro.support.authorization import (
    AuthorizationService,
    EarthVoter,
    ProposalState,
)
from repro.support.bus import Network

CREW = ["A", "B", "D", "E", "F"]


@pytest.fixture()
def auth():
    sim = Simulator()
    net = Network(sim)
    service = AuthorizationService("auth", sim, crew=CREW, timeout_s=3600.0)
    net.register(service)
    voter = EarthVoter("earth", sim, "auth")
    net.register(voter)
    net.set_link_latency("auth", "earth", 1200.0)
    net.set_link_latency("earth", "auth", 1200.0)
    return sim, net, service, voter


class TestNormalPath:
    def test_unanimous_plus_earth_approves(self, auth):
        sim, net, service, voter = auth
        proposal = service.propose("B", "raise sampling rate")
        for astro in ("A", "D", "E", "F"):
            service.vote(proposal.proposal_id, astro, True)
        sim.run_until(3000.0)
        assert proposal.state is ProposalState.APPROVED
        assert proposal.decided_at >= 2400.0  # waited for the Earth RTT

    def test_crew_votes_alone_insufficient(self, auth):
        sim, net, service, voter = auth
        net.partition("auth", "earth")
        proposal = service.propose("B", "change")
        for astro in ("A", "D", "E", "F"):
            service.vote(proposal.proposal_id, astro, True)
        sim.run_until(3000.0)
        assert proposal.state is ProposalState.PENDING

    def test_any_rejection_rejects(self, auth):
        sim, net, service, voter = auth
        proposal = service.propose("B", "risky change")
        service.vote(proposal.proposal_id, "E", False)
        assert proposal.state is ProposalState.REJECTED

    def test_earth_rejection_rejects(self, auth):
        sim, net, service, __ = auth
        net.node("earth").approve_all = False
        proposal = service.propose("B", "change")
        for astro in ("A", "D", "E", "F"):
            service.vote(proposal.proposal_id, astro, True)
        sim.run_until(3000.0)
        assert proposal.state is ProposalState.REJECTED

    def test_timeout_expires(self, auth):
        sim, net, service, __ = auth
        net.partition("auth", "earth")
        proposal = service.propose("B", "change")
        sim.run_until(4000.0)
        assert proposal.state is ProposalState.EXPIRED


class TestEmergencyPath:
    def test_majority_approves_without_earth(self, auth):
        sim, net, service, __ = auth
        net.partition("auth", "earth")  # Earth unreachable
        proposal = service.propose("B", "vent module 3", emergency=True)
        service.vote(proposal.proposal_id, "A", True)
        service.vote(proposal.proposal_id, "D", True)
        assert proposal.state is ProposalState.APPROVED
        assert proposal.decided_at < 10.0  # no 40-minute wait

    def test_minority_insufficient(self, auth):
        sim, net, service, __ = auth
        proposal = service.propose("B", "emergency", emergency=True)
        service.vote(proposal.proposal_id, "A", True)
        assert proposal.state is ProposalState.PENDING

    def test_emergency_quorum_is_majority(self, auth):
        __, __, service, __ = auth
        assert service.emergency_quorum == 3


class TestValidation:
    def test_unknown_proposer(self, auth):
        __, __, service, __ = auth
        with pytest.raises(ProtocolError):
            service.propose("Z", "change")

    def test_unknown_voter(self, auth):
        __, __, service, __ = auth
        proposal = service.propose("B", "change")
        with pytest.raises(ProtocolError):
            service.vote(proposal.proposal_id, "Z", True)

    def test_vote_after_decision_ignored(self, auth):
        sim, __, service, __ = auth
        proposal = service.propose("B", "change")
        service.vote(proposal.proposal_id, "E", False)
        service.vote(proposal.proposal_id, "A", True)
        assert proposal.state is ProposalState.REJECTED

    def test_unknown_proposal(self, auth):
        __, __, service, __ = auth
        with pytest.raises(ProtocolError):
            service.vote(999, "A", True)
