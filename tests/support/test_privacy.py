"""Tests for privacy controls."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.support.privacy import PrivacyManager


@pytest.fixture()
def manager():
    return PrivacyManager()


class TestRequests:
    def test_grant_and_lookup(self, manager):
        manager.request("A", "microphone", 100.0, 700.0, reason="medical")
        suppressed = manager.suppressed_set("A", "microphone")
        assert suppressed.total() == 600.0

    def test_non_suppressible_sensor_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.request("A", "accelerometer", 0.0, 100.0)

    def test_oversized_window_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.request("A", "microphone", 0.0, 3 * 3600.0)

    def test_budget_enforced(self, manager):
        manager.request("A", "microphone", 0.0, 2 * 3600.0)
        with pytest.raises(ConfigError):
            manager.request("A", "microphone", 10_000.0, 10_000.0 + 2 * 3600.0)

    def test_budget_per_astronaut_and_sensor(self, manager):
        manager.request("A", "microphone", 0.0, 2 * 3600.0)
        manager.request("B", "microphone", 0.0, 2 * 3600.0)  # other astronaut
        manager.request("A", "localization", 0.0, 2 * 3600.0)  # other sensor

    def test_audit_trail(self, manager):
        manager.request("A", "microphone", 0.0, 60.0, reason="call home")
        assert any("call home" in line for line in manager.audit)


class TestRedaction:
    def test_redacts_window(self, manager):
        manager.request("A", "microphone", 10.0, 20.0)
        values = np.arange(30, dtype=float)
        out = manager.redact("A", "microphone", values, t0=0.0, dt=1.0)
        assert np.isnan(out[10:20]).all()
        assert np.isfinite(out[:10]).all() and np.isfinite(out[20:]).all()

    def test_no_windows_returns_input(self, manager):
        values = np.arange(5, dtype=float)
        out = manager.redact("A", "microphone", values, 0.0, 1.0)
        np.testing.assert_array_equal(out, values)

    def test_other_astronaut_untouched(self, manager):
        manager.request("A", "microphone", 0.0, 10.0)
        values = np.ones(10)
        out = manager.redact("B", "microphone", values, 0.0, 1.0)
        assert np.isfinite(out).all()

    def test_custom_fill(self, manager):
        manager.request("A", "localization", 0.0, 5.0)
        values = np.ones(10)
        out = manager.redact("A", "localization", values, 0.0, 1.0, fill=-1.0)
        assert (out[:5] == -1.0).all()
