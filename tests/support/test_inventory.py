"""Tests for spares provisioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.support.inventory import (
    ICARES_FLEET,
    DeviceSpec,
    provision_manifest,
    spares_needed,
    survival_probability,
)

BADGE = DeviceSpec(name="badge", units_in_service=6,
                   failure_rate_per_day=0.01, mass_kg=0.111)


class TestSurvival:
    def test_no_failures_certain(self):
        spec = DeviceSpec(name="x", units_in_service=3,
                          failure_rate_per_day=0.0, mass_kg=1.0)
        assert survival_probability(spec, 500.0, 0) == pytest.approx(1.0)

    def test_more_spares_more_survival(self):
        p0 = survival_probability(BADGE, 14.0, 0)
        p1 = survival_probability(BADGE, 14.0, 1)
        p6 = survival_probability(BADGE, 14.0, 6)
        assert p0 < p1 < p6

    def test_longer_mission_less_survival(self):
        short = survival_probability(BADGE, 14.0, 2)
        long = survival_probability(BADGE, 500.0, 2)
        assert long < short

    def test_zero_spares_is_poisson_zero(self):
        import math

        mean = 6 * 0.01 * 14.0
        assert survival_probability(BADGE, 14.0, 0) == pytest.approx(math.exp(-mean))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 20), st.floats(1.0, 1000.0))
    def test_probability_bounds_property(self, spares, days):
        p = survival_probability(BADGE, days, spares)
        assert 0.0 <= p <= 1.0


class TestSparesNeeded:
    def test_icares_badges_need_about_one_spare_each(self):
        """The deployment carried 6 backups for 6 badges over 14 days;
        Poisson provisioning at 99.9% lands in the same ballpark."""
        spares = spares_needed(BADGE, 14.0, target_availability=0.999)
        assert 2 <= spares <= 6

    def test_meets_target(self):
        spares = spares_needed(BADGE, 14.0, 0.99)
        assert survival_probability(BADGE, 14.0, spares) >= 0.99
        if spares > 0:
            assert survival_probability(BADGE, 14.0, spares - 1) < 0.99

    def test_mars_mission_needs_more(self):
        assert spares_needed(BADGE, 500.0, 0.99) > spares_needed(BADGE, 14.0, 0.99)

    def test_bad_target(self):
        with pytest.raises(ConfigError):
            spares_needed(BADGE, 14.0, 1.5)


class TestManifest:
    def test_icares_fleet(self):
        lines, cost = provision_manifest(ICARES_FLEET, mission_days=14.0)
        assert len(lines) == 3
        assert all(line.availability >= 0.99 for line in lines)
        assert cost > 0

    def test_cost_scales_with_launch_price(self):
        __, cheap = provision_manifest(ICARES_FLEET, 14.0, launch_cost_per_kg=1000.0)
        __, pricey = provision_manifest(ICARES_FLEET, 14.0, launch_cost_per_kg=10_000.0)
        assert pricey == pytest.approx(10 * cheap)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeviceSpec(name="x", units_in_service=0,
                       failure_rate_per_day=0.1, mass_kg=1.0)
