"""Tests for primary/backup replication."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Network
from repro.support.replication import Replica, ReplicatedService


@pytest.fixture()
def service():
    sim = Simulator()
    net = Network(sim, default_latency_s=0.01)
    svc = ReplicatedService.build(net, sim, heartbeat_s=1.0, failover_timeout_s=3.5)
    return sim, net, svc


class TestReplication:
    def test_updates_replicate_to_backup(self, service):
        sim, net, svc = service
        svc.submit("u1")
        svc.submit("u2")
        sim.run_until(1.0)
        assert svc.backup.state == ["u1", "u2"]

    def test_backup_rejects_writes(self, service):
        sim, net, svc = service
        assert not svc.backup.submit("direct")
        assert svc.backup.rejected_updates == 1

    def test_no_failover_while_primary_alive(self, service):
        sim, net, svc = service
        sim.run_until(30.0)
        assert svc.primary.is_primary and not svc.backup.is_primary


class TestFailover:
    def test_backup_takes_over(self, service):
        sim, net, svc = service
        svc.submit("u1")
        sim.run_until(5.0)
        net.crash("svc-a")
        sim.run_until(15.0)
        assert svc.backup.is_primary
        assert svc.current_primary() is svc.backup

    def test_state_survives_failover(self, service):
        sim, net, svc = service
        svc.submit("u1")
        sim.run_until(5.0)
        net.crash("svc-a")
        sim.run_until(15.0)
        assert svc.submit("u2")
        assert svc.backup.state == ["u1", "u2"]

    def test_failover_within_timeout_bound(self, service):
        sim, net, svc = service
        sim.run_until(5.0)
        net.crash("svc-a")
        sim.run_until(5.0 + 3.5 + 1.5)
        assert svc.backup.took_over_at is not None
        assert svc.backup.took_over_at - 5.0 <= 3.5 + 1.1

    def test_total_failure_rejects_writes(self, service):
        sim, net, svc = service
        net.crash("svc-a")
        net.crash("svc-b")
        sim.run_until(10.0)
        assert svc.current_primary() is None
        assert not svc.submit("u")

    def test_split_brain_resolves_on_heal(self, service):
        sim, net, svc = service
        sim.run_until(2.0)
        net.partition("svc-a", "svc-b")
        sim.run_until(10.0)  # backup promotes itself during the partition
        assert svc.primary.is_primary and svc.backup.is_primary
        net.heal("svc-a", "svc-b")
        sim.run_until(20.0)
        assert svc.primary.is_primary != svc.backup.is_primary


class TestRecovery:
    def test_recovered_backup_does_not_instantly_take_over(self, service):
        """The heartbeat clock must reset on recovery: comparing against
        the pre-crash timestamp would declare the primary dead at once."""
        sim, net, svc = service
        sim.run_until(5.0)
        net.crash("svc-b")
        sim.run_until(60.0)  # long outage >> failover timeout
        net.recover("svc-b")
        sim.run_until(61.0)  # one monitor tick after recovery
        assert not svc.backup.is_primary
        assert svc.backup.took_over_at is None

    def test_recovered_backup_still_fails_over_eventually(self, service):
        """Recovery must restart the monitor, not just reset the clock."""
        sim, net, svc = service
        net.crash("svc-b")
        sim.run_until(10.0)
        net.recover("svc-b")
        sim.run_until(12.0)
        net.crash("svc-a")
        sim.run_until(20.0)
        assert svc.backup.is_primary

    def test_recovered_backup_heartbeats_again(self, service):
        """A recovered *primary-side peer* must resume heartbeating, or
        the backup would failover despite the primary being healthy."""
        sim, net, svc = service
        net.crash("svc-a")
        sim.run_until(10.0)  # backup takes over
        assert svc.backup.is_primary
        net.recover("svc-a")
        sim.run_until(30.0)
        # svc-a heartbeats resumed; svc-b (lexicographically larger,
        # promoted) yields: exactly one primary, no split brain.
        assert svc.primary.is_primary and not svc.backup.is_primary

    def test_failback_records_transitions(self, service):
        sim, net, svc = service
        net.crash("svc-a")
        sim.run_until(10.0)
        net.recover("svc-a")
        sim.run_until(30.0)
        assert [what for _, what in svc.backup.transitions] == ["take-over", "yield"]

    def test_state_syncs_after_recovery(self, service):
        sim, net, svc = service
        svc.submit("u1")
        sim.run_until(1.0)
        net.crash("svc-b")
        sim.run_until(2.0)
        svc.submit("u2")  # accepted while the backup is down
        sim.run_until(3.0)
        net.recover("svc-b")
        sim.run_until(5.0)
        assert svc.backup.state == ["u1", "u2"]

    def test_failover_and_failback_under_partition(self, service):
        """Partition -> both primary; heal -> one; crash cycle -> same."""
        sim, net, svc = service
        net.partition("svc-a", "svc-b")
        sim.run_until(10.0)
        assert svc.primary.is_primary and svc.backup.is_primary
        net.heal("svc-a", "svc-b")
        sim.run_until(20.0)
        assert svc.primary.is_primary != svc.backup.is_primary
        net.crash("svc-a")
        sim.run_until(30.0)
        net.recover("svc-a")
        sim.run_until(50.0)
        assert svc.current_primary() is not None
        assert svc.primary.is_primary != svc.backup.is_primary

    def test_remote_submit_via_bus(self, service):
        sim, net, svc = service
        svc.primary.send(svc.primary.name, "noop")  # warm the bus
        relay_write = lambda: svc.backup.send("svc-a", "submit", "remote-u")
        sim.schedule(1.0, relay_write)
        sim.run_until(2.0)
        assert "remote-u" in svc.primary.state


class TestValidation:
    def test_timeout_must_exceed_heartbeat(self):
        with pytest.raises(ConfigError):
            Replica("r", Simulator(), peer="p", is_primary=True,
                    heartbeat_s=2.0, failover_timeout_s=1.0)
