"""Tests for the rescheduling advisor."""

import pytest

from repro.core.errors import ConfigError
from repro.support.scheduling import ReschedulingAdvisor
from repro.support.stream import StreamWindow


def window(badge_id=1, worn=1.0, speech=0.3, accel=0.35):
    return StreamWindow(badge_id=badge_id, t0=0.0, t1=300.0,
                        worn_fraction=worn, speech_fraction=speech,
                        mean_accel=accel, room_mode=2)


def feed(advisor, badge_id, n=8, **kwargs):
    for _ in range(n):
        advisor.observe(window(badge_id=badge_id, **kwargs))


class TestLoads:
    def test_fresh_social_member_scores_low(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1)
        load = advisor.loads()[0]
        assert load.fatigue < 0.2 and load.isolation < 0.2

    def test_fatigued_member_scores_high(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, accel=0.02)
        assert advisor.loads()[0].fatigue > 0.8

    def test_isolated_member_scores_high(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, speech=0.0)
        assert advisor.loads()[0].isolation > 0.8

    def test_unworn_badge_no_false_fatigue(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, worn=0.1, accel=0.0)
        load = advisor.loads()[0]
        assert load.fatigue == 0.0
        assert load.wear < 0.2

    def test_history_bounded(self):
        advisor = ReschedulingAdvisor(window_history=4)
        feed(advisor, 1, n=20)
        assert len(advisor._windows[1]) == 4


class TestAdvice:
    def test_no_advice_when_all_fresh(self):
        advisor = ReschedulingAdvisor()
        for badge in (1, 2, 3):
            feed(advisor, badge)
        assert advisor.advise() == []

    def test_advance_break_for_fatigue(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, accel=0.02)
        kinds = {a.kind for a in advisor.advise()}
        assert "advance-break" in kinds

    def test_pair_up_for_isolation(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, speech=0.0)
        kinds = {a.kind for a in advisor.advise()}
        assert "pair-up" in kinds

    def test_swap_task_for_imbalance(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, accel=0.02)   # exhausted
        feed(advisor, 2, accel=0.6)    # fresh
        swap = [a for a in advisor.advise() if a.kind == "swap-task"]
        assert swap and swap[0].badge_id == 1
        assert "badge-2" in swap[0].detail

    def test_check_in_for_unworn(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, worn=0.1)
        kinds = {a.kind for a in advisor.advise()}
        assert kinds == {"check-in"}

    def test_sorted_by_urgency(self):
        advisor = ReschedulingAdvisor()
        feed(advisor, 1, accel=0.02, speech=0.0)
        urgencies = [a.urgency for a in advisor.advise()]
        assert urgencies == sorted(urgencies, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReschedulingAdvisor(window_history=1)
