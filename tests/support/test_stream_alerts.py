"""Tests for sensor streaming and the alert engine."""

import numpy as np
import pytest

from repro.analytics.dataset import BadgeDaySummary
from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.alerts import AlertEngine, AlertRules
from repro.support.bus import Network
from repro.support.stream import SensorStream, StreamWindow, summarize_window


def make_summary(n=3600, voice_db=65.0, accel=0.3, worn=True):
    voice = np.full(n, voice_db, dtype=np.float32)
    return BadgeDaySummary(
        badge_id=7, day=2, t0=0.0, dt=1.0,
        active=np.ones(n, dtype=bool), worn=np.full(n, worn),
        room=np.full(n, 3, dtype=np.int8),
        x=np.zeros(n, dtype=np.float32), y=np.zeros(n, dtype=np.float32),
        accel_rms=np.full(n, accel, dtype=np.float32), voice_db=voice,
        dominant_pitch_hz=np.full(n, 120.0, dtype=np.float32),
        pitch_stability=np.full(n, 0.4, dtype=np.float32),
        sound_db=voice,
    )


class TestSummarizeWindow:
    def test_fields(self):
        window = summarize_window(make_summary(), 0.0, 600.0)
        assert window.duration == 600.0
        assert window.worn_fraction == 1.0
        assert window.speech_fraction == 1.0
        assert window.room_mode == 3

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError):
            summarize_window(make_summary(), 100.0, 100.0)

    def test_quiet_window(self):
        window = summarize_window(make_summary(voice_db=40.0), 0.0, 600.0)
        assert window.speech_fraction == 0.0


class TestStreamToAlerts:
    def run_stream(self, summary, rules=None):
        sim = Simulator()
        net = Network(sim)
        engine = AlertEngine("alerts", sim, rules=rules)
        net.register(engine)
        stream = SensorStream("stream-7", sim, summary, ["alerts"],
                             window_s=300.0, time_scale=100.0)
        net.register(stream)
        stream.start()
        sim.run()
        return stream, engine

    def test_all_windows_published(self):
        stream, engine = self.run_stream(make_summary(n=3600))
        assert stream.windows_published == 12
        assert engine.inbox_count == 12

    def test_passivity_alert_fires(self):
        summary = make_summary(voice_db=40.0)  # never any speech
        __, engine = self.run_stream(summary)
        assert engine.alerts_of_kind("passivity")

    def test_fatigue_alert_fires(self):
        summary = make_summary(accel=0.02)
        __, engine = self.run_stream(summary)
        assert engine.alerts_of_kind("fatigue")

    def test_active_talker_no_alerts(self):
        summary = make_summary(voice_db=70.0, accel=0.5)
        __, engine = self.run_stream(summary)
        assert not engine.alerts

    def test_unworn_badge_wear_alert_only(self):
        summary = make_summary(worn=False, voice_db=40.0, accel=0.02)
        __, engine = self.run_stream(summary)
        kinds = {a.kind for a in engine.alerts}
        assert kinds == {"wear-compliance"}

    def test_alert_fires_once_until_cleared(self):
        summary = make_summary(voice_db=40.0)
        __, engine = self.run_stream(summary)
        assert len(engine.alerts_of_kind("passivity")) == 1

    def test_clear_reenables(self):
        sim = Simulator()
        engine = AlertEngine("alerts", sim)
        net = Network(sim)
        net.register(engine)
        window = StreamWindow(badge_id=1, t0=0, t1=300, worn_fraction=1.0,
                              speech_fraction=0.0, mean_accel=0.3, room_mode=2)
        for _ in range(engine.rules.passivity_windows):
            engine._history.setdefault(1, []).append(window)
        engine._evaluate(1, engine._history[1])
        assert len(engine.alerts) == 1
        engine.clear("passivity", "badge-1")
        engine._evaluate(1, engine._history[1])
        assert len(engine.alerts) == 2

    def test_rules_validation(self):
        with pytest.raises(ConfigError):
            AlertRules(passivity_windows=0)
