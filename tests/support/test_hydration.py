"""Tests for hydration tracking."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Network
from repro.support.hydration import (
    FluidEvent,
    HydrationTracker,
    fluid_events_from_truth,
)


@pytest.fixture()
def tracker():
    sim = Simulator()
    t = HydrationTracker("hydro", sim, astronauts=["A", "B"])
    Network(sim).register(t)
    return t


class TestBalance:
    def test_intake_raises_balance(self, tracker):
        tracker.ingest(FluidEvent(100.0, "A", "intake", 220.0))
        assert tracker.balance("A") > 200.0

    def test_urine_lowers_balance(self, tracker):
        tracker.ingest(FluidEvent(100.0, "A", "urine", 280.0))
        assert tracker.balance("A") < -270.0

    def test_insensible_loss_over_time(self, tracker):
        tracker.advance_to(2 * 3600.0)
        assert tracker.balance("A") == pytest.approx(-120.0, rel=0.01)

    def test_unknown_astronaut_ignored(self, tracker):
        tracker.ingest(FluidEvent(0.0, "Z", "intake", 220.0))
        assert "Z" not in tracker.states

    def test_unknown_kind_rejected(self, tracker):
        with pytest.raises(ConfigError):
            tracker.ingest(FluidEvent(0.0, "A", "sweat", 100.0))


class TestAlerts:
    def test_dehydration_alert(self, tracker):
        for k in range(3):
            tracker.ingest(FluidEvent(100.0 * k, "A", "urine", 280.0))
        alerts = [a for a in tracker.alerts if a.subject == "A"]
        assert alerts and alerts[0].kind == "dehydration"

    def test_alert_once_until_rehydrated(self, tracker):
        for k in range(5):
            tracker.ingest(FluidEvent(100.0 * k, "A", "urine", 280.0))
        assert len([a for a in tracker.alerts if a.subject == "A"]) == 1

    def test_rehydration_resets(self, tracker):
        for k in range(3):
            tracker.ingest(FluidEvent(100.0 * k, "A", "urine", 280.0))
        for k in range(10):
            tracker.ingest(FluidEvent(400.0 + 10 * k, "A", "intake", 220.0))
        assert tracker.balance("A") > 0
        for k in range(12):
            tracker.ingest(FluidEvent(600.0 + 10 * k, "A", "urine", 280.0))
        assert len([a for a in tracker.alerts if a.subject == "A"]) == 2

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            HydrationTracker("h", Simulator(), ["A"], deficit_alert_ml=100.0)


class TestEventsFromTruth:
    def test_events_derived(self, truth):
        events = fluid_events_from_truth(truth, 2)
        kinds = {e.kind for e in events}
        assert kinds == {"intake", "urine"}
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_meals_produce_intake_for_everyone(self, truth):
        events = fluid_events_from_truth(truth, 2)
        drinkers = {e.astro_id for e in events if e.kind == "intake"}
        assert drinkers == set(truth.roster.ids)

    def test_full_day_pipeline_balances(self, truth):
        sim = Simulator()
        tracker = HydrationTracker("hydro", sim, list(truth.roster.ids))
        Network(sim).register(tracker)
        for event in fluid_events_from_truth(truth, 2):
            tracker.ingest(event)
        # Nobody should be wildly out of balance on a normal day.
        for astro in truth.roster.ids:
            assert -2000.0 < tracker.balance(astro) < 4000.0
