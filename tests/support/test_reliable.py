"""Tests for reliable delivery: acks, retries, DLQ, dedup, breaker."""

import numpy as np
import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Network, Node
from repro.support.reliable import (
    ACK_KIND,
    CircuitBreaker,
    DeadLetter,
    PendingReliable,
    ReliableStats,
)


class Counting(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.handled = []

    def handle_job(self, message):
        self.handled.append(message.payload)


def make_net(loss_prob=0.0, seed=0):
    sim = Simulator()
    network = Network(sim, default_latency_s=0.1, loss_prob=loss_prob,
                      rng=np.random.default_rng(seed))
    a, b = Counting("a", sim), Counting("b", sim)
    network.register(a)
    network.register(b)
    return sim, network, a, b


class TestHappyPath:
    def test_delivered_and_acked(self):
        sim, network, a, b = make_net()
        msg_id = a.send_reliable("b", "job", 1)
        sim.run()
        assert b.handled == [1]
        assert a.reliable.acked == {"job": 1}
        assert a.reliable_pending() == 0
        assert msg_id == "a#0"

    def test_no_retries_without_loss(self):
        sim, network, a, b = make_net()
        for k in range(20):
            a.send_reliable("b", "job", k)
        sim.run()
        assert a.reliable.retries == 0
        assert a.reliable.delivery_success("job") == 1.0
        assert b.duplicates_suppressed == 0

    def test_ack_adds_no_delivery_latency(self):
        """The payload arrives after one link latency, ack or not."""
        sim, network, a, b = make_net()
        a.send_reliable("b", "job", 1)
        sim.run_until(0.1)
        assert b.handled == [1]

    def test_message_ids_unique_per_sender(self):
        sim, network, a, b = make_net()
        ids = {a.send_reliable("b", "job", k) for k in range(10)}
        assert len(ids) == 10


class TestRetries:
    def test_lossy_link_exactly_once_dispatch(self):
        sim, network, a, b = make_net(loss_prob=0.4, seed=3)
        for k in range(50):
            a.send_reliable("b", "job", k, max_attempts=10)
        sim.run()
        stats = a.reliable
        assert stats.sent["job"] == 50
        assert stats.acked.get("job", 0) + stats.dead.get("job", 0) == 50
        assert a.reliable_pending() == 0
        # At-least-once on the wire, exactly-once at the handler.
        assert stats.retries > 0
        assert sorted(b.handled) == sorted(set(b.handled))

    def test_retry_after_single_drop(self):
        sim, network, a, b = make_net()
        network.partition("a", "b", bidirectional=False)
        a.send_reliable("b", "job", 7)
        sim.run_until(0.2)
        network.heal("a", "b", bidirectional=False)
        sim.run()
        assert b.handled == [7]
        assert a.reliable.retries >= 1
        assert a.reliable.acked == {"job": 1}

    def test_backoff_grows_exponentially(self):
        pending = PendingReliable(
            msg_id="x", dst="b", kind="job", payload=None, max_attempts=6,
            ack_timeout_s=1.0, backoff_base_s=2.0, first_sent_s=0.0,
        )
        pending.attempts = 1
        first = pending.backoff_s(jitter=1.0)
        pending.attempts = 3
        third = pending.backoff_s(jitter=1.0)
        assert first == pytest.approx(2.0)
        assert third == pytest.approx(8.0)

    def test_duplicate_reacked_and_suppressed(self):
        """Losing the ack (not the message) forces a retransmission; the
        receiver must suppress the duplicate but re-ack it."""
        sim, network, a, b = make_net()
        network.partition("b", "a", bidirectional=False)  # acks blocked
        a.send_reliable("b", "job", 1)
        sim.run_until(1.0)
        network.heal("b", "a", bidirectional=False)
        sim.run()
        assert b.handled == [1]  # dispatched once
        assert b.duplicates_suppressed >= 1
        assert a.reliable.acked == {"job": 1}


class TestDeadLetters:
    def test_max_attempts_dead_letters(self):
        sim, network, a, b = make_net()
        network.crash("b")
        a.send_reliable("b", "job", 9, max_attempts=3)
        sim.run()
        assert a.reliable_pending() == 0
        assert len(a.dead_letters) == 1
        letter = a.dead_letters[0]
        assert letter.reason == "max-attempts"
        assert letter.attempts == 3
        assert letter.payload == 9
        assert a.reliable.dead == {"job": 1}

    def test_delivery_after_recovery_not_dead_lettered(self):
        sim, network, a, b = make_net()
        network.crash("b")
        sim.schedule(0.5, network.recover, "b")
        a.send_reliable("b", "job", 1, max_attempts=6)
        sim.run()
        assert b.handled == [1]
        assert not a.dead_letters

    def test_invariant_sent_equals_acked_plus_dead(self):
        sim, network, a, b = make_net(loss_prob=0.5, seed=5)
        network.crash("b")
        sim.schedule(2.0, network.recover, "b")
        for k in range(30):
            a.send_reliable("b", "job", k, max_attempts=4)
        sim.run()
        stats = a.reliable
        assert stats.sent["job"] == 30
        assert stats.acked.get("job", 0) + stats.dead.get("job", 0) == 30
        assert a.reliable_pending() == 0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        assert breaker.allow(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == "closed"
        breaker.record_failure(2.0)
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow(3.0)

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)  # half-open probe
        assert breaker.state == "half-open"
        breaker.record_success(10.5)
        assert breaker.state == "closed"
        assert breaker.allow(11.0)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.5)
        assert breaker.state == "open"
        assert not breaker.allow(15.0)
        assert breaker.opens == 2

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(cooldown_s=0.0)

    def test_open_breaker_fast_fails_sends(self):
        sim, network, a, b = make_net()
        a.configure_breaker("b", failure_threshold=1, cooldown_s=1000.0)
        network.crash("b")
        a.send_reliable("b", "job", 1, max_attempts=2)
        sim.run()  # both attempts time out; breaker opens
        assert a._breakers["b"].state == "open"
        a.send_reliable("b", "job", 2)
        assert a.dead_letters[-1].reason == "circuit-open"
        assert a.reliable_pending() == 0

    def test_breaker_recovers_via_half_open_probe(self):
        sim, network, a, b = make_net()
        a.configure_breaker("b", failure_threshold=1, cooldown_s=5.0)
        network.crash("b")
        a.send_reliable("b", "job", 1, max_attempts=1)
        sim.run()
        assert a._breakers["b"].state == "open"
        network.recover("b")
        sim.schedule_at(10.0, a.send_reliable, "b", "job", 2)
        sim.run()
        assert 2 in b.handled
        assert a._breakers["b"].state == "closed"


class TestStats:
    def test_delivery_success_none_without_traffic(self):
        """No traffic is not a delivery claim: n/a, not a perfect 1.0."""
        stats = ReliableStats()
        assert stats.delivery_success("never-sent") is None

    def test_delivery_success_one_with_traffic(self):
        stats = ReliableStats()
        stats.record_sent("job"); stats.record_acked("job")
        assert stats.delivery_success("job") == 1.0

    def test_merge_into(self):
        one, two, total = ReliableStats(), ReliableStats(), ReliableStats()
        one.record_sent("job"); one.record_acked("job"); one.retries = 2
        two.record_sent("job"); two.record_dead("job")
        one.merge_into(total)
        two.merge_into(total)
        assert total.sent == {"job": 2}
        assert total.acked == {"job": 1}
        assert total.dead == {"job": 1}
        assert total.retries == 2
        assert total.delivery_success("job") == pytest.approx(0.5)

    def test_ack_kind_is_reserved(self):
        sim, network, a, b = make_net()
        a.send("b", ACK_KIND, "a#999")  # stray ack for an unknown id
        sim.run()
        assert not b.handled  # never dispatched to a handler
        assert b.inbox_count == 0

    def test_dead_letter_frozen(self):
        letter = DeadLetter("a#0", "b", "job", None, 3, 0.0, 9.0, "max-attempts")
        with pytest.raises(AttributeError):
            letter.reason = "other"


class TestDeadLetterRequeue:
    """Operator-driven DLQ drain: ``Node.requeue_dead_letters``."""

    def test_empty_queue_is_a_noop(self):
        sim, network, a, b = make_net()
        assert a.requeue_dead_letters() == 0
        assert a.dead_letters == []

    def test_requeue_delivers_in_dead_letter_order(self):
        """FIFO drain: messages are re-sent in dead-lettering order
        (jittered retry timers mean that is not always send order)."""
        sim, network, a, b = make_net()
        network.crash("b")
        for k in range(5):
            a.send_reliable("b", "job", k, max_attempts=2)
        sim.run()
        dlq_order = [letter.payload for letter in a.dead_letters]
        assert sorted(dlq_order) == [0, 1, 2, 3, 4]
        network.recover("b")
        # The default destination breaker opened during the outage.
        # After its cooldown the half-open state admits exactly one
        # probe, so a full drain is two requeue calls: probe + rest.
        requeued = []
        sim.schedule_at(sim.now + 1000.0,
                        lambda: requeued.append(a.requeue_dead_letters()))
        sim.run()  # probe delivered and acked -> breaker closes
        requeued.append(a.requeue_dead_letters())
        sim.run()
        assert requeued == [1, 4]
        assert a.dead_letters == []
        assert b.handled == dlq_order

    def test_requeue_preserves_accounting_invariant(self):
        sim, network, a, b = make_net()
        network.crash("b")
        for k in range(4):
            a.send_reliable("b", "job", k, max_attempts=2)
        sim.run()
        network.recover("b")
        sim.schedule_at(sim.now + 1000.0, a.requeue_dead_letters)
        sim.run()  # breaker probe succeeds
        a.requeue_dead_letters()
        sim.run()
        stats = a.reliable
        # Each requeue counts as a fresh send, so the ledger still closes.
        assert stats.sent["job"] == 8
        assert stats.acked.get("job", 0) + stats.dead.get("job", 0) == 8
        assert a.reliable_pending() == 0

    def test_open_breaker_defers_requeue_until_cooldown(self):
        sim, network, a, b = make_net()
        a.configure_breaker("b", failure_threshold=1, cooldown_s=5.0)
        network.crash("b")
        a.send_reliable("b", "job", 1, max_attempts=1)
        sim.run()
        assert a._breakers["b"].state == "open"
        assert len(a.dead_letters) == 1
        # Still cooling down: the letter stays queued for a later drain.
        assert a.requeue_dead_letters() == 0
        assert len(a.dead_letters) == 1
        network.recover("b")
        results = []
        sim.schedule_at(10.0, lambda: results.append(a.requeue_dead_letters()))
        sim.run()
        assert results == [1]
        assert b.handled == [1]
        assert a._breakers["b"].state == "closed"
        assert a.dead_letters == []

    def test_requeue_dedups_when_only_the_ack_was_lost(self):
        """The receiver handled the message; only acks died.  The requeue
        reuses the original msg_id, so dispatch stays exactly-once."""
        sim, network, a, b = make_net()
        network.partition("b", "a", bidirectional=False)  # acks blocked
        a.send_reliable("b", "job", 42, max_attempts=2)
        sim.run()
        assert b.handled == [42]  # handled despite the dead-lettering
        assert a.dead_letters[0].reason == "max-attempts"
        network.heal("b", "a", bidirectional=False)
        assert a.requeue_dead_letters() == 1
        sim.run()
        assert b.handled == [42]  # NOT handled twice
        assert b.duplicates_suppressed >= 1
        assert a.reliable.acked.get("job", 0) == 1
        assert a.reliable_pending() == 0

    def test_requeued_message_can_dead_letter_again(self):
        sim, network, a, b = make_net()
        network.crash("b")
        a.send_reliable("b", "job", 1, max_attempts=1)
        sim.run()
        assert len(a.dead_letters) == 1
        assert a.requeue_dead_letters(max_attempts=2) == 1
        sim.run()
        assert len(a.dead_letters) == 1
        assert a.dead_letters[0].attempts == 2

    def test_validation(self):
        sim, network, a, b = make_net()
        with pytest.raises(ConfigError):
            a.requeue_dead_letters(max_attempts=0)
        from repro.core.errors import ProtocolError
        from repro.core.engine import Simulator

        lone = Node("lone", Simulator())
        with pytest.raises(ProtocolError):
            lone.requeue_dead_letters()

    def test_requeue_counter_and_gauge(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            sim, network, a, b = make_net()
            network.crash("b")
            a.send_reliable("b", "job", 1, max_attempts=1)
            sim.run()
            network.recover("b")
            a.requeue_dead_letters()
            snap = obs.metrics.registry.snapshot()
            requeued = snap["bus.reliable.requeued"]["series"]
            assert requeued == [{"labels": {"kind": "job"}, "value": 1.0}]
        finally:
            obs.reset()
