"""Tests for the survey substrate."""

import pytest

from repro.core.errors import ConfigError, DataError
from repro.surveys.questionnaire import DIMENSIONS, Questionnaire, SurveyResponse
from repro.surveys.responses import responses_by_day, synthesize_responses
from repro.surveys.validation import validation_report


class TestQuestionnaire:
    def test_paper_dimensions(self):
        assert DIMENSIONS == (
            "satisfaction", "wellbeing", "comfort", "productivity", "distraction"
        )

    def test_validate_answers(self):
        q = Questionnaire()
        answers = {d: 4 for d in DIMENSIONS}
        q.validate_answers(answers)

    def test_missing_answer(self):
        with pytest.raises(DataError):
            Questionnaire().validate_answers({"satisfaction": 4})

    def test_out_of_range(self):
        answers = {d: 4 for d in DIMENSIONS}
        answers["comfort"] = 9
        with pytest.raises(DataError):
            Questionnaire().validate_answers(answers)

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            Questionnaire(scale_min=5, scale_max=2)

    def test_response_lookup(self):
        r = SurveyResponse("A", 2, {d: 4 for d in DIMENSIONS})
        assert r.answer("wellbeing") == 4
        with pytest.raises(DataError):
            r.answer("mood")


class TestSynthesis:
    @pytest.fixture(scope="class")
    def responses(self, truth):
        return synthesize_responses(truth)

    def test_everyone_every_day_except_dead_c(self, responses, truth, mission_cfg):
        by_day = responses_by_day(responses)
        death = mission_cfg.events.death_day
        assert len(by_day[death - 1]) == 6
        assert len(by_day[death + 1]) == 5
        assert not any(r.astro_id == "C" for r in by_day[death + 1])

    def test_all_answers_valid(self, responses):
        q = Questionnaire()
        for response in responses:
            q.validate_answers(response.answers)

    def test_deterministic(self, truth):
        a = synthesize_responses(truth)
        b = synthesize_responses(truth)
        assert [(r.astro_id, r.day, r.answers) for r in a] == [
            (r.astro_id, r.day, r.answers) for r in b
        ]


class TestValidationLoop:
    def test_report_builds(self, sensing, truth):
        responses = synthesize_responses(truth)
        report = validation_report(sensing, responses)
        means = report.mean_r()
        assert set(means) == {
            "speech_vs_distraction", "speech_vs_satisfaction", "walking_vs_productivity"
        }
        assert all(-1.0 <= v <= 1.0 for v in means.values())

    def test_speech_distraction_positively_linked(self, sensing, truth):
        """More detected conversation should co-move with self-reported
        distraction (they share the day-mood driver)."""
        responses = synthesize_responses(truth)
        report = validation_report(sensing, responses)
        assert report.mean_r()["speech_vs_distraction"] > -0.2

    def test_str_renders(self, sensing, truth):
        responses = synthesize_responses(truth)
        assert "Pearson" in str(validation_report(sensing, responses))
