"""Unit tests for the model-guided worst-case regime search."""

import json

import pytest

from repro.core.errors import ConfigError
from repro.faults.campaign import FaultCampaign
from repro.reliability.search import (
    SWEPT_FIELDS,
    sweep_regimes,
    worst_case_campaigns,
)


@pytest.fixture(scope="module")
def base() -> FaultCampaign:
    return FaultCampaign.reference(days=3, seed=0)


class TestSweep:
    def test_deterministic(self, base):
        one = sweep_regimes(base, n_regimes=24, seed=5, top_k=3)
        two = sweep_regimes(base, n_regimes=24, seed=5, top_k=3)
        assert json.dumps([r.to_dict() for r in one], sort_keys=True) == \
               json.dumps([r.to_dict() for r in two], sort_keys=True)

    def test_ranked_descending(self, base):
        regimes = sweep_regimes(base, n_regimes=24, seed=0, top_k=5)
        assert [r.rank for r in regimes] == [1, 2, 3, 4, 5]
        scores = [r.score for r in regimes]
        assert scores == sorted(scores, reverse=True)

    def test_overrides_within_sampled_ranges(self, base):
        for regime in sweep_regimes(base, n_regimes=16, seed=1, top_k=16):
            for name, (lo, hi) in SWEPT_FIELDS.items():
                value = regime.overrides[name]
                baseline = float(getattr(base, name))
                assert lo * baseline <= value <= hi * baseline
            assert 0.05 <= regime.overrides["lossy_prob"] <= 0.9
            # The emitted campaign actually carries the overrides.
            for name, value in regime.overrides.items():
                assert getattr(regime.campaign, name) == pytest.approx(value)

    def test_campaign_seeds_are_pure_function_of_sweep(self, base):
        regimes = sweep_regimes(base, n_regimes=8, seed=3, top_k=8)
        seeds = {r.campaign.seed for r in regimes}
        assert seeds <= {3 * 100_000 + i for i in range(8)}
        assert len(seeds) == 8  # one campaign per sampled regime

    def test_argument_validation(self, base):
        with pytest.raises(ConfigError):
            sweep_regimes(base, n_regimes=0)
        with pytest.raises(ConfigError):
            sweep_regimes(base, n_regimes=4, top_k=5)

    def test_default_base_is_reference(self):
        regimes = sweep_regimes(n_regimes=2, top_k=1)
        assert regimes[0].campaign.horizon_s == \
               FaultCampaign.reference().horizon_s


class TestWorstCase:
    def test_emits_k_runnable_campaigns(self, base):
        campaigns = worst_case_campaigns(base, k=3, n_regimes=16, seed=0)
        assert len(campaigns) == 3
        for campaign in campaigns:
            plan = campaign.generate()
            assert len(plan.events) > 0
            # Seeded: regenerating reproduces the exact plan.
            assert plan == campaign.generate()

    def test_regime_text_mentions_drivers(self, base):
        regime = sweep_regimes(base, n_regimes=8, seed=0, top_k=1)[0]
        text = regime.to_text()
        assert "score=" in text and "min_avail=" in text
        assert f"seed={regime.campaign.seed}" in text
