"""Tier-1 acceptance: fixed-seed sensing campaigns land inside the
coverage model's confidence bands, byte-reproducibly.

The coverage counterpart of ``test_validation.py``: three independent
14-day :meth:`FaultCampaign.coverage_reference` campaigns run through a
*real* gated mission (plan generation → dataset corruption → quality
gate), and every number the resulting :class:`DataQualityReport`
carries — coverage fraction, verdict counts, per-channel masked frames,
per-kind repairs, dead beacon-days, per-kind event draws — is checked
against bands the model derives from the campaign's own sampling
distributions.  Nothing here is tuned to the seeds: the bands come from
the rates, and the seeds were not cherry-picked (0, 1, 2).
"""

import json

import pytest

from repro.faults.campaign import FaultCampaign
from repro.reliability import (
    CoverageModel,
    compare_quality_report,
    default_coverage_config,
    expected_event_counts,
    sweep_coverage_regimes,
    validate_coverage_campaign,
)


def _campaign(seed=0, days=14):
    return FaultCampaign.coverage_reference(days=days, seed=seed)


class TestReferenceCampaigns:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_coverage_campaign_inside_bands(self, seed):
        campaign = _campaign(seed)
        result, report = validate_coverage_campaign(campaign)
        assert result.all_inside, "\n" + result.to_text()
        # The comparison is substantive: the headline coverage metric,
        # every verdict count, the localizer's dead beacon columns, and
        # each fault kind's actual draw count.
        metrics = {check.metric for check in result.checks}
        assert {"badge_days", "coverage", "verdicts[ok]",
                "verdicts[repaired]", "verdicts[quarantined]",
                "dead_beacon_days"} <= metrics
        for kind in expected_event_counts(campaign):
            assert f"events[{kind}]" in metrics
        # Per-channel masked-frame checks exist for the kinds that mask.
        assert any(m.startswith("masked[") for m in metrics)
        assert any(m.startswith("repairs[") for m in metrics)

    def test_validation_byte_reproducible(self):
        campaign = _campaign(0)
        first = json.dumps(
            validate_coverage_campaign(campaign)[0].to_dict(), sort_keys=True)
        second = json.dumps(
            validate_coverage_campaign(campaign)[0].to_dict(), sort_keys=True)
        assert first == second


class TestCompareQualityReport:
    def test_clean_report_fails_heavy_model(self):
        """A model expecting heavy corruption flags a clean mission."""
        light = _campaign(0, days=3)
        _, report = validate_coverage_campaign(light)
        heavy = FaultCampaign(
            seed=0, horizon_s=light.horizon_s, n_beacons=0,
            badge_ids=light.badge_ids,
            crashes_per_day=0.0, flaps_per_day=0.0,
            lossy_windows_per_day=0.0, blackouts_per_day=0.0,
            bitrot_days=40, truncated_days=40,
        )
        result = compare_quality_report(
            CoverageModel(heavy, default_coverage_config(heavy)), report)
        assert not result.all_inside

    def test_result_text_and_dict_agree(self):
        campaign = _campaign(1, days=3)
        result, _ = validate_coverage_campaign(campaign)
        text = result.to_text()
        assert ("PASS" in text) == result.all_inside
        data = result.to_dict()
        assert data["all_inside"] == result.all_inside
        assert len(data["checks"]) == len(result.checks)


class TestCoverageModel:
    def test_expected_coverage_matches_prediction_mean(self):
        model = CoverageModel(_campaign(0))
        prediction = model.predict()
        assert model.expected_coverage() == pytest.approx(
            prediction.coverage.mean)
        assert 0.0 <= prediction.coverage.lo <= prediction.coverage.mean \
            <= prediction.coverage.hi <= 1.0

    def test_no_badges_predicts_full_coverage(self):
        campaign = FaultCampaign(
            seed=0, horizon_s=14 * 86_400.0, n_beacons=0, badge_ids=(),
            crashes_per_day=0.0, flaps_per_day=0.0,
            lossy_windows_per_day=0.0, blackouts_per_day=0.0,
        )
        model = CoverageModel(campaign)
        assert model.p_hit == 0.0
        prediction = model.predict()
        assert prediction.coverage.mean == 1.0
        assert prediction.coverage.lo == prediction.coverage.hi == 1.0
        assert prediction.n_quarantined.mean == 0.0
        assert prediction.dead_beacon_days is None

    def test_hit_probability_matches_cell_geometry(self):
        # Identity the occupancy maths relies on: an event strikes *some*
        # valid cell with probability cells * u_cell == p_hit.
        model = CoverageModel(_campaign(0))
        assert model.cells * model.u_cell == pytest.approx(model.p_hit)

    def test_distinct_cell_pmf_is_a_distribution(self):
        model = CoverageModel(_campaign(0))
        for n in (0, 1, 2, 7, 30):
            pmf = model._distinct_valid_pmf(n)
            assert len(pmf) == min(n, model.cells) + 1
            assert sum(pmf) == pytest.approx(1.0)
            assert all(p >= 0.0 for p in pmf)
        # One draw: struck-a-valid-cell probability is exactly p_hit.
        assert model._distinct_valid_pmf(1)[1] == pytest.approx(model.p_hit)

    def test_distinct_cell_mean_saturates_below_binomial(self):
        """Collisions: distinct cells grow strictly slower than n*p_hit."""
        model = CoverageModel(_campaign(0))
        pmf = model._distinct_valid_pmf(30)
        mean = sum(s * p for s, p in enumerate(pmf))
        assert mean < 30 * model.p_hit
        assert mean <= model.cells

    def test_pmf_quantile(self):
        pmf = [0.1, 0.4, 0.4, 0.1]
        assert CoverageModel._pmf_quantile(pmf, 0.05) == 0
        assert CoverageModel._pmf_quantile(pmf, 0.5) == 1
        assert CoverageModel._pmf_quantile(pmf, 0.95) == 3
        assert CoverageModel._pmf_quantile(pmf, 0.999) == 3

    def test_prediction_byte_reproducible(self):
        first = CoverageModel(_campaign(2)).predict()
        second = CoverageModel(_campaign(2)).predict()
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)


class TestCoverageSweep:
    def test_sweep_is_deterministic(self):
        first = sweep_coverage_regimes(n_regimes=16, seed=3, top_k=3)
        second = sweep_coverage_regimes(n_regimes=16, seed=3, top_k=3)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]

    def test_sweep_ranks_by_badness(self):
        regimes = sweep_coverage_regimes(n_regimes=16, seed=3, top_k=3)
        assert len(regimes) == 3
        assert [r.rank for r in regimes] == [1, 2, 3]
        scores = [r.score for r in regimes]
        assert scores == sorted(scores, reverse=True)
        for regime in regimes:
            # Every regime is a runnable sensing campaign, bus silenced.
            assert regime.campaign.crashes_per_day == 0.0
            assert regime.campaign.badge_ids
