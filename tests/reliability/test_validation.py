"""Tier-1 acceptance: fixed-seed reference campaigns land inside the
CTMC model's confidence bands, byte-reproducibly.

These are the model's ground-truth anchors — three independent 14-day
seeded campaigns run through the *real* support stack, every measured
metric (per-node availability, MTTR, closed-outage count, per-kind
delivery success) checked against bands the model derives from the
campaign's own finite-horizon sampling distributions.  Nothing here is
tuned to the seeds: the bands come from the rates, and the seeds were
not cherry-picked (0, 1, 2).
"""

import json

import pytest

from repro import obs
from repro.faults.campaign import FaultCampaign
from repro.reliability import (
    ReliabilityModel,
    compare_report,
    validate_campaign,
)
from repro.reliability.prediction import Band, ValidationCheck, ValidationResult


class TestReferenceCampaigns:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reference_campaign_inside_bands(self, seed):
        campaign = FaultCampaign.reference(days=14, seed=seed)
        result, report = validate_campaign(campaign)
        assert result.all_inside, "\n" + result.to_text()
        # The comparison is substantive: availability for each node the
        # campaign can crash, MTTR, outage count, both delivery kinds.
        metrics = {check.metric for check in result.checks}
        for node in campaign.nodes:
            assert f"availability[{node}]" in metrics
        assert {"mttr_s", "n_outages", "delivery[submit]",
                "delivery[status]"} <= metrics

    def test_validation_byte_reproducible(self):
        campaign = FaultCampaign.reference(days=14, seed=0)
        first = json.dumps(
            validate_campaign(campaign)[0].to_dict(), sort_keys=True)
        second = json.dumps(
            validate_campaign(campaign)[0].to_dict(), sort_keys=True)
        assert first == second


class TestCompareReport:
    def test_doctored_report_flagged_outside(self):
        campaign = FaultCampaign.reference(days=3, seed=0)
        model = ReliabilityModel(campaign)
        _, report = validate_campaign(campaign)
        report.availability["relay"] = 0.2  # far below any plausible band
        result = compare_report(model, report)
        assert not result.all_inside
        outside = {c.metric for c in result.checks if not c.inside}
        assert "availability[relay]" in outside

    def test_none_empirical_is_vacuously_inside(self):
        band = Band(mean=0.5, lo=0.4, hi=0.6)
        check = ValidationCheck(
            metric="delivery[status]", empirical=None, band=band,
            inside=band.contains(None))
        assert check.inside
        assert check.delta is None

    def test_result_text_and_dict_agree(self):
        campaign = FaultCampaign.reference(days=2, seed=1)
        result, _ = validate_campaign(campaign)
        text = result.to_text()
        assert ("PASS" in text) == result.all_inside
        data = result.to_dict()
        assert data["all_inside"] == result.all_inside
        assert len(data["checks"]) == len(result.checks)


class TestObsExport:
    def test_deltas_and_outcome_exported(self):
        obs.reset()
        obs.enable()
        try:
            campaign = FaultCampaign.reference(days=2, seed=0)
            result, _ = validate_campaign(campaign)
            gauge = obs.metrics.registry.get("reliability.model.delta")
            assert gauge is not None
            exported = {
                dict(key)["metric"] for key in gauge._series
            }
            with_delta = {
                c.metric for c in result.checks if c.delta is not None
            }
            assert exported == with_delta
            counter = obs.metrics.registry.get("reliability.validations")
            outcome = "pass" if result.all_inside else "fail"
            assert counter.value(outcome=outcome) == 1.0
        finally:
            obs.reset()

    def test_no_export_while_disabled(self):
        obs.reset()
        campaign = FaultCampaign.reference(days=1, seed=0)
        validate_campaign(campaign)
        assert obs.metrics.registry.get("reliability.model.delta") is None
