"""Unit tests for the ReliabilityModel: mechanical rate derivation,
workload accounting, band shapes, and the search-scoring fast path."""

import dataclasses

import numpy as np
import pytest

from repro.core.units import DAY
from repro.faults.campaign import FaultCampaign
from repro.faults.scenario import BATCH_PERIOD_S, STATUS_PERIOD_S
from repro.reliability.model import (
    DEFAULT_CONFIDENCE,
    DURATION_SHIFT_S,
    ReliabilityModel,
    _normal_quantile,
)


@pytest.fixture(scope="module")
def campaign() -> FaultCampaign:
    return FaultCampaign.reference(days=14, seed=0)


@pytest.fixture(scope="module")
def model(campaign) -> ReliabilityModel:
    return ReliabilityModel(campaign)


class TestRateDerivation:
    def test_node_rates_are_mechanical(self, campaign, model):
        """lam = crashes_per_day / n_nodes / DAY; mu = 1/(mean + shift) —
        straight from the campaign's parameters, no free knobs."""
        chain = model.node_chains["relay"]
        assert chain.lam == pytest.approx(
            campaign.crashes_per_day / len(campaign.nodes) / DAY)
        assert chain.mu == pytest.approx(
            1.0 / (campaign.mean_downtime_s + DURATION_SHIFT_S))
        assert set(model.node_chains) == set(campaign.nodes)

    def test_link_rates_are_mechanical(self, campaign, model):
        link = next(iter(model.link_chains))
        chain = model.link_chains[link]
        assert chain.lam == pytest.approx(
            campaign.flaps_per_day / len(campaign.links) / DAY)
        assert chain.mu == pytest.approx(
            1.0 / (campaign.mean_flap_s + DURATION_SHIFT_S))

    def test_campaign_without_nodes_has_no_chains(self, campaign):
        bare = dataclasses.replace(campaign, nodes=(), links=())
        model = ReliabilityModel(bare)
        assert not model.node_chains
        assert not model.link_chains
        assert model.mttr_band(DEFAULT_CONFIDENCE) is None
        assert model.system_availability() == 1.0


class TestWorkload:
    def test_n_sent_matches_scenario_schedule(self, model):
        """The model counts messages exactly as the scenario schedules
        them: np.arange(period, horizon, period)."""
        horizon = model.horizon_s
        assert model.n_sent("submit") == len(
            np.arange(BATCH_PERIOD_S, horizon, BATCH_PERIOD_S))
        assert model.n_sent("status") == len(
            np.arange(STATUS_PERIOD_S, horizon, STATUS_PERIOD_S))

    def test_unknown_kind_raises(self, model):
        with pytest.raises(KeyError):
            model.delivery_components("telemetry")


class TestBands:
    def test_bands_are_ordered(self, model):
        prediction = model.predict()
        for band in prediction.availability.values():
            assert band.lo <= band.mean <= band.hi
        assert prediction.mttr_s.lo <= prediction.mttr_s.mean <= prediction.mttr_s.hi
        assert prediction.n_outages.lo <= prediction.n_outages.hi
        for d in prediction.delivery.values():
            assert 0.0 <= d.success.lo <= d.success.hi <= 1.0

    def test_unfaulted_node_band_is_degenerate(self, model):
        band = model.availability_band("earth", DEFAULT_CONFIDENCE)
        assert (band.mean, band.lo, band.hi) == (1.0, 1.0, 1.0)

    def test_bands_narrow_with_confidence(self, model):
        wide = model.availability_band("relay", 0.998)
        narrow = model.availability_band("relay", 0.8)
        assert narrow.hi - narrow.lo < wide.hi - wide.lo

    def test_mttr_band_tightens_with_observed_outages(self, model):
        few = model.mttr_band(DEFAULT_CONFIDENCE, n_outages=2)
        many = model.mttr_band(DEFAULT_CONFIDENCE, n_outages=40)
        assert many.hi - many.lo < few.hi - few.lo
        assert few.mean == many.mean  # conditioning moves spread, not mean

    def test_expected_dead_capped_at_sent(self, campaign):
        drowned = dataclasses.replace(
            campaign, blackouts_per_day=500.0, mean_blackout_s=4 * 3600.0)
        model = ReliabilityModel(drowned)
        assert model.expected_dead("status") == float(model.n_sent("status"))
        prediction = model.delivery_prediction("status", DEFAULT_CONFIDENCE)
        assert prediction.success.mean == 0.0


class TestSystemChain:
    def test_system_ctmc_composes_all_nodes(self, model):
        chain = model.system_ctmc()
        assert len(chain.states) == 2 ** len(model.node_chains)
        # Kronecker-composed steady state agrees with the closed-form
        # product expression used by system_availability.
        pi = chain.steady_state()
        operational = sum(
            p for state, p in zip(chain.states, pi)
            if "relay:down" not in state
            and not all(f"{n}:down" in state for n in ("svc-a", "svc-b"))
        )
        assert operational == pytest.approx(
            model.system_availability(steady=True), abs=1e-9)

    def test_transient_system_availability_above_steady(self, model):
        # Starting all-up, the horizon average sits above the limit.
        assert model.system_availability() >= model.system_availability(steady=True)


class TestScore:
    def test_score_shape_and_bounds(self, model):
        badness, min_avail, delivery_loss = model.score()
        assert badness > 0.0
        assert 0.0 < min_avail <= 1.0
        assert 0.0 <= delivery_loss <= 1.0

    def test_score_monotone_in_crash_rate(self, campaign):
        mild = ReliabilityModel(campaign).score()[0]
        harsh = ReliabilityModel(
            dataclasses.replace(campaign, crashes_per_day=8.0)).score()[0]
        assert harsh > mild


class TestNormalQuantile:
    def test_symmetry_and_known_values(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _normal_quantile(0.975) == pytest.approx(1.95996, abs=1e-3)
        assert _normal_quantile(0.025) == pytest.approx(-1.95996, abs=1e-3)
        # Tail branch.
        assert _normal_quantile(0.999) == pytest.approx(3.0902, abs=1e-3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)
