"""Tier-2 chaos: run the model's predicted-worst regimes empirically.

This is the loop the search exists for — the analytic sweep picks where
the system should hurt the most, and the expensive empirical budget is
spent exactly there.  Each emitted regime is a fixed-seed campaign, so
the runs (and their validation verdicts) are deterministic.
"""

import pytest

from repro.faults.campaign import FaultCampaign
from repro.reliability import validate_campaign, worst_case_campaigns

pytestmark = pytest.mark.tier2


class TestWorstCaseRegimesEmpirically:
    @pytest.fixture(scope="class")
    def campaigns(self):
        base = FaultCampaign.reference(days=3, seed=0)
        return worst_case_campaigns(base, k=3, n_regimes=32, seed=0)

    def test_emits_three_regimes(self, campaigns):
        assert len(campaigns) == 3
        assert len({c.seed for c in campaigns}) == 3

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_regime_survives_and_validates(self, campaigns, index):
        campaign = campaigns[index]
        result, report = validate_campaign(campaign)
        # The regime genuinely stresses the stack...
        assert report.faults_injected > 0
        # ...the stack holds its invariants under it...
        assert report.bus_sent == report.bus_delivered + report.bus_dropped
        for node, value in report.availability.items():
            assert 0.0 <= value <= 1.0, node
        # (split_brain_at_end is NOT asserted: under an active partition
        # at the horizon both replicas legitimately claim primacy — the
        # search exists to surface exactly such states.)
        # ...and the model's bands still hold at the extremes, not just
        # around the reference rates.
        assert result.all_inside, "\n" + result.to_text()
