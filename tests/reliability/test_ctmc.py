"""Unit tests for the CTMC machinery: generators, closed forms, bands."""

import math

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.reliability.ctmc import (
    CTMC,
    TwoStateChain,
    binomial_pmf,
    binomial_quantile,
    compound_downtime_cdf,
    compound_downtime_quantile,
    erlang_cdf,
    poisson_pmf,
    poisson_quantile,
    sample_mean_quantile,
)


class TestCTMC:
    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError, match="generator must be"):
            CTMC(("a", "b"), np.zeros((3, 3)))

    def test_rejects_negative_off_diagonal(self):
        with pytest.raises(ConfigError, match="non-negative"):
            CTMC(("a", "b"), np.array([[1.0, -1.0], [2.0, -2.0]]))

    def test_rejects_rows_not_summing_to_zero(self):
        with pytest.raises(ConfigError, match="sum to zero"):
            CTMC(("a", "b"), np.array([[-1.0, 2.0], [2.0, -2.0]]))

    def test_steady_state_matches_two_state_closed_form(self):
        lam, mu = 0.3, 1.7
        chain = TwoStateChain(lam, mu).to_ctmc()
        pi = chain.steady_state()
        assert pi[chain.index("up")] == pytest.approx(mu / (lam + mu))
        assert pi.sum() == pytest.approx(1.0)

    def test_transient_matches_closed_form(self):
        two = TwoStateChain(0.4, 1.1)
        chain = two.to_ctmc()
        p0 = np.array([1.0, 0.0])  # start up
        for t in (0.1, 1.0, 5.0):
            p = chain.transient(p0, t)
            assert p[0] == pytest.approx(two.availability_at(t), abs=1e-9)

    def test_transient_at_zero_is_initial(self):
        chain = TwoStateChain(0.4, 1.1).to_ctmc()
        p0 = np.array([0.25, 0.75])
        assert np.allclose(chain.transient(p0, 0.0), p0)

    def test_transient_rejects_negative_time(self):
        chain = TwoStateChain(0.4, 1.1).to_ctmc()
        with pytest.raises(ConfigError):
            chain.transient(np.array([1.0, 0.0]), -1.0)

    def test_compose_is_kronecker_sum(self):
        a = TwoStateChain(0.2, 1.0).to_ctmc()
        b = TwoStateChain(0.5, 2.0).to_ctmc()
        joint = a.compose(b)
        assert len(joint.states) == 4
        assert joint.states[0] == "up|up"
        # Independent chains: joint steady state is the product of
        # marginals.
        pi = joint.steady_state()
        pa, pb = a.steady_state(), b.steady_state()
        expected = np.kron(pa, pb)
        assert np.allclose(pi, expected, atol=1e-9)


class TestTwoStateChain:
    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            TwoStateChain(-0.1, 1.0)
        with pytest.raises(ConfigError):
            TwoStateChain(0.1, 0.0)

    def test_unfaulted_component_is_always_up(self):
        chain = TwoStateChain(0.0, 1.0)
        assert chain.steady_state_availability == 1.0
        assert chain.expected_availability(100.0) == 1.0
        assert chain.expected_outages(100.0) == 0.0

    def test_expected_availability_between_transient_and_steady(self):
        chain = TwoStateChain(1e-5, 1e-3)
        a_ss = chain.steady_state_availability
        # Starting up, the horizon average decays from 1 toward steady
        # state and is always between the two.
        for horizon in (10.0, 1e3, 1e5, 1e7):
            a_bar = chain.expected_availability(horizon)
            assert a_ss <= a_bar <= 1.0
        assert chain.expected_availability(1e9) == pytest.approx(a_ss, rel=1e-3)

    def test_expected_availability_rejects_bad_horizon(self):
        with pytest.raises(ConfigError):
            TwoStateChain(0.1, 1.0).expected_availability(0.0)

    def test_expected_outages_is_renewal_rate(self):
        chain = TwoStateChain(0.01, 0.1)
        # One outage per mean cycle 1/lam + 1/mu = 110 s.
        assert chain.expected_outages(1100.0) == pytest.approx(10.0)
        # Always below the naive lam * T (no failure strikes while down).
        assert chain.expected_outages(1100.0) < 0.01 * 1100.0


class TestDistributions:
    def test_poisson_pmf_normalizes(self):
        total = sum(poisson_pmf(k, 3.7) for k in range(60))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_poisson_quantile_brackets_mean(self):
        assert poisson_quantile(0.001, 10.0) < 10 < poisson_quantile(0.999, 10.0)
        assert poisson_quantile(0.5, 0.0) == 0

    def test_erlang_cdf_n1_is_exponential(self):
        assert erlang_cdf(2.0, 1, 2.0) == pytest.approx(1.0 - math.exp(-1.0))
        assert erlang_cdf(-1.0, 3, 1.0) == 0.0
        assert erlang_cdf(5.0, 0, 1.0) == 1.0

    def test_compound_cdf_no_windows_is_point_mass_at_zero(self):
        assert compound_downtime_cdf(0.0, 0.0, 100.0) == 1.0
        assert compound_downtime_quantile(0.999, 0.0, 100.0) == 0.0

    def test_compound_cdf_monotone(self):
        xs = [0.0, 50.0, 200.0, 1000.0, 5000.0]
        cdfs = [compound_downtime_cdf(x, 2.0, 300.0, shift_s=1.0) for x in xs]
        assert cdfs == sorted(cdfs)
        assert cdfs[0] == pytest.approx(math.exp(-2.0), abs=1e-9)  # P(N=0)

    def test_compound_quantile_inverts_cdf(self):
        q = compound_downtime_quantile(0.9, 2.0, 300.0, shift_s=1.0)
        assert compound_downtime_cdf(q, 2.0, 300.0, shift_s=1.0) == pytest.approx(
            0.9, abs=1e-6)

    def test_sample_mean_quantile_n1_median(self):
        # Median of shift + Exp(mean) is shift + mean ln 2.
        q = sample_mean_quantile(0.5, 1, 100.0, shift_s=1.0)
        assert q == pytest.approx(1.0 + 100.0 * math.log(2.0), rel=1e-6)

    def test_sample_mean_quantile_tightens_with_n(self):
        spread_small = (sample_mean_quantile(0.99, 2, 100.0)
                        - sample_mean_quantile(0.01, 2, 100.0))
        spread_large = (sample_mean_quantile(0.99, 50, 100.0)
                        - sample_mean_quantile(0.01, 50, 100.0))
        assert spread_large < spread_small / 3.0

    def test_binomial_pmf_normalizes_and_degenerates(self):
        assert sum(binomial_pmf(k, 12, 0.3) for k in range(13)) \
            == pytest.approx(1.0)
        assert binomial_pmf(-1, 5, 0.3) == 0.0
        assert binomial_pmf(6, 5, 0.3) == 0.0
        assert binomial_pmf(0, 5, 0.0) == 1.0
        assert binomial_pmf(5, 5, 1.0) == 1.0

    def test_binomial_quantile_brackets_mean(self):
        assert binomial_quantile(0.001, 40, 0.5) < 20 \
            < binomial_quantile(0.999, 40, 0.5)
        assert binomial_quantile(0.5, 0, 0.5) == 0
        assert binomial_quantile(0.999, 7, 1.0) == 7

    def test_binomial_quantile_inverts_cdf(self):
        n, p = 30, 0.2
        for q in (0.05, 0.5, 0.95):
            k = binomial_quantile(q, n, p)
            cdf = sum(binomial_pmf(i, n, p) for i in range(k + 1))
            assert cdf >= q
            if k:
                assert cdf - binomial_pmf(k, n, p) < q

    def test_quantile_argument_validation(self):
        with pytest.raises(ConfigError):
            poisson_quantile(1.5, 1.0)
        with pytest.raises(ConfigError):
            binomial_quantile(0.0, 5, 0.5)
        with pytest.raises(ConfigError):
            binomial_quantile(0.5, -1, 0.5)
        with pytest.raises(ConfigError):
            compound_downtime_quantile(0.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            sample_mean_quantile(0.5, 0, 1.0)
