"""Tier-2 chaos: run the model's predicted-worst *coverage* regimes.

The sensing-level counterpart of ``test_search_tier2.py``: the analytic
sweep picks the regimes that destroy the most data, and the expensive
empirical budget — a full gated mission per regime — is spent exactly
there.  Each emitted regime is a fixed-seed campaign, so the runs (and
their validation verdicts) are deterministic.
"""

import pytest

from repro.faults.campaign import FaultCampaign
from repro.reliability import (
    validate_coverage_campaign,
    worst_coverage_campaigns,
)

pytestmark = pytest.mark.tier2


class TestWorstCoverageRegimesEmpirically:
    @pytest.fixture(scope="class")
    def campaigns(self):
        base = FaultCampaign.coverage_reference(days=7, seed=0)
        return worst_coverage_campaigns(base, k=3, n_regimes=64, seed=0)

    def test_emits_three_regimes(self, campaigns):
        assert len(campaigns) == 3
        assert len({c.seed for c in campaigns}) == 3
        for campaign in campaigns:
            # Sensing campaigns: the bus classes stay silenced so the
            # quality gate is the sole judge of the damage.
            assert campaign.crashes_per_day == 0.0
            assert campaign.blackouts_per_day == 0.0

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_regime_survives_and_validates(self, campaigns, index):
        campaign = campaigns[index]
        result, report = validate_coverage_campaign(campaign)
        # The regime genuinely dirties the dataset...
        assert report.n_repaired + report.n_quarantined > 0
        # ...the gate serves a legal report under it...
        assert 0.0 <= report.coverage() <= 1.0
        for verdict in report.verdicts:
            assert 0 <= verdict.frames_usable <= verdict.frames_expected
        # ...and the model's bands still hold at the extremes, not just
        # around the reference rates.
        assert result.all_inside, "\n" + result.to_text()
