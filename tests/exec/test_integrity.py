"""Artifact envelope integrity: checksums, atomicity, quarantine, sweep."""

import os
import pickle

import pytest

from repro.exec import integrity
from repro.exec.integrity import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactUnreadable,
    checksum,
    quarantine,
    read_artifact,
    sweep_stale_tmp,
    write_artifact,
)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "a.pkl"
        payload = {"x": [1, 2, 3], "y": "hello"}
        digest = write_artifact(path, payload, schema=1)
        assert read_artifact(path, schema=1) == payload
        # Returned digest matches the payload's serialized bytes.
        _, _, stored, payload_bytes = pickle.loads(path.read_bytes())
        assert stored == digest == checksum(payload_bytes)

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "a.pkl"
        write_artifact(path, 42, schema=1)
        assert read_artifact(path, schema=1) == 42

    def test_no_tmp_left_behind(self, tmp_path):
        write_artifact(tmp_path / "a.pkl", "payload", schema=1)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_artifact(tmp_path / "absent.pkl", schema=1)


class TestVerification:
    def test_payload_bit_flip_is_corrupt(self, tmp_path):
        path = tmp_path / "a.pkl"
        write_artifact(path, list(range(100)), schema=1)
        blob = bytearray(path.read_bytes())
        # Flip a bit near the end, inside the payload bytes.
        blob[-10] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorrupt):
            read_artifact(path, schema=1)

    def test_truncated_file_is_unreadable(self, tmp_path):
        path = tmp_path / "a.pkl"
        write_artifact(path, list(range(100)), schema=1)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ArtifactError):
            read_artifact(path, schema=1)

    def test_garbage_is_unreadable(self, tmp_path):
        path = tmp_path / "a.pkl"
        path.write_bytes(b"\x00\x01 not a pickle at all")
        with pytest.raises(ArtifactUnreadable):
            read_artifact(path, schema=1)

    def test_foreign_magic_is_unreadable(self, tmp_path):
        path = tmp_path / "a.pkl"
        path.write_bytes(pickle.dumps(("some.other.format", 1, "00", b"")))
        with pytest.raises(ArtifactUnreadable):
            read_artifact(path, schema=1)

    def test_schema_mismatch_is_unreadable(self, tmp_path):
        path = tmp_path / "a.pkl"
        write_artifact(path, "payload", schema=1)
        with pytest.raises(ArtifactUnreadable):
            read_artifact(path, schema=2)

    def test_wrong_envelope_shape_is_unreadable(self, tmp_path):
        path = tmp_path / "a.pkl"
        path.write_bytes(pickle.dumps(("repro.exec.artifact", 1)))
        with pytest.raises(ArtifactUnreadable):
            read_artifact(path, schema=1)

    def test_exceptions_are_data_errors(self):
        from repro.core.errors import DataError

        assert issubclass(ArtifactCorrupt, ArtifactError)
        assert issubclass(ArtifactUnreadable, ArtifactError)
        assert issubclass(ArtifactError, DataError)


class TestQuarantine:
    def test_moves_file_under_quarantine(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"evidence")
        dest = quarantine(path, tmp_path, store="cache")
        assert dest == tmp_path / "quarantine" / "bad.pkl"
        assert not path.exists()
        assert dest.read_bytes() == b"evidence"

    def test_collisions_get_numeric_suffixes(self, tmp_path):
        dests = []
        for content in (b"first", b"second", b"third"):
            path = tmp_path / "bad.pkl"
            path.write_bytes(content)
            dests.append(quarantine(path, tmp_path, store="cache"))
        assert [d.name for d in dests] == ["bad.pkl", "bad.pkl.1", "bad.pkl.2"]
        # Every specimen survives.
        assert dests[0].read_bytes() == b"first"
        assert dests[2].read_bytes() == b"third"

    def test_failed_move_returns_none_and_keeps_file(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"evidence")
        # Pre-create quarantine/ as a *file* so mkdir fails.
        (tmp_path / "quarantine").write_bytes(b"")
        assert quarantine(path, tmp_path, store="cache") is None
        assert path.exists()

    def test_increments_telemetry_counter(self, tmp_path):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            path = tmp_path / "bad.pkl"
            path.write_bytes(b"x")
            quarantine(path, tmp_path, store="checkpoint")
            snap = obs.metrics.registry.snapshot()
            series = snap["exec.quarantined"]["series"]
            assert series == [{"labels": {"store": "checkpoint"}, "value": 1.0}]
        finally:
            obs.reset()


class TestSweep:
    def test_sweeps_recursively_and_counts(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.pkl.x.tmp").write_bytes(b"")
        (tmp_path / "sub" / "b.pkl.y.tmp").write_bytes(b"")
        keep = tmp_path / "real.pkl"
        keep.write_bytes(b"keep me")
        assert sweep_stale_tmp(tmp_path) == 2
        assert keep.exists()
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_empty_root_is_fine(self, tmp_path):
        assert sweep_stale_tmp(tmp_path) == 0

    def test_live_writers_tmp_is_spared(self, tmp_path):
        """Concurrent-writer fix: a temp file whose embedded pid is a
        live process is mid-store, not an orphan — leave it alone."""
        live = tmp_path / f"a.pkl.{os.getpid()}.xyz123.tmp"
        dead = tmp_path / f"a.pkl.{2 ** 22 + 12345}.xyz123.tmp"
        legacy = tmp_path / "a.pkl.nopid.tmp"  # pre-fix name: always swept
        for path in (live, dead, legacy):
            path.write_bytes(b"partial")
        assert sweep_stale_tmp(tmp_path) == 2
        assert live.exists()
        assert not dead.exists()
        assert not legacy.exists()

    def test_write_artifact_tmp_names_carry_the_pid(self, tmp_path, monkeypatch):
        """The sweep contract depends on the writer embedding its pid."""
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(os.path.basename(src))
            return real_replace(src, dst)

        monkeypatch.setattr(integrity.os, "replace", spy)
        write_artifact(tmp_path / "a.pkl", "payload", schema=1)
        (tmp_name,) = seen
        match = integrity._TMP_PID_RE.search(tmp_name)
        assert match is not None
        assert int(match.group(1)) == os.getpid()


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert integrity.pid_alive(os.getpid())

    def test_vast_pid_is_dead(self):
        assert not integrity.pid_alive(2 ** 22 + 12345)

    def test_nonpositive_pids_are_dead(self):
        assert not integrity.pid_alive(0)
        assert not integrity.pid_alive(-1)


class TestAtomicity:
    def test_interrupted_write_leaves_old_artifact_intact(self, tmp_path, monkeypatch):
        """If the writer dies before os.replace, the previous artifact
        still verifies — and the stranded temp file is sweepable."""
        path = tmp_path / "a.pkl"
        write_artifact(path, "old", schema=1)

        real_replace = os.replace

        def boom(src, dst):
            if str(dst) == str(path):
                raise RuntimeError("killed mid-write")
            return real_replace(src, dst)

        monkeypatch.setattr(integrity.os, "replace", boom)
        with pytest.raises(RuntimeError):
            write_artifact(path, "new", schema=1)
        monkeypatch.undo()
        assert read_artifact(path, schema=1) == "old"
        # The failed write cleaned (or left a sweepable) temp file.
        sweep_stale_tmp(tmp_path)
        assert read_artifact(path, schema=1) == "old"
