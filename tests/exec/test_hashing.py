"""Content fingerprints: stability, sensitivity, and stage separation."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import ExecutionConfig, MissionConfig, ScriptedEventsConfig
from repro.core.errors import ConfigError
from repro.exec.hashing import (
    canonical,
    fingerprint,
    sensing_fingerprint,
    truth_compatible,
    truth_fingerprint,
)
from repro.faults import FaultCampaign


class TestCanonical:
    def test_dataclass_becomes_tagged_dict(self):
        out = canonical(ExecutionConfig(n_workers=3))
        assert out["__type__"] == "ExecutionConfig"
        assert out["n_workers"] == 3

    def test_plain_data_passes_through(self):
        assert canonical({"b": (1, 2), "a": None}) == {"a": None, "b": [1, 2]}

    def test_sets_are_order_stable(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1}) == [1, 2, 3]

    def test_numpy_scalars_unwrap(self):
        assert canonical(np.float64(1.5)) == 1.5
        assert canonical(np.int32(7)) == 7

    def test_unhashable_object_rejected(self):
        with pytest.raises(ConfigError):
            canonical(object())

    def test_mission_config_canonicalizes(self):
        # The whole default config — every field must reduce cleanly.
        out = canonical(MissionConfig())
        assert out["__type__"] == "MissionConfig"
        assert out["events"]["__type__"] == "ScriptedEventsConfig"


class TestFingerprint:
    def test_deterministic(self):
        cfg = MissionConfig(days=3, seed=5)
        assert sensing_fingerprint(cfg) == sensing_fingerprint(MissionConfig(days=3, seed=5))
        assert truth_fingerprint(cfg) == truth_fingerprint(MissionConfig(days=3, seed=5))

    def test_stage_separates_keys(self):
        assert fingerprint({"a": 1}, stage="truth") != fingerprint({"a": 1}, stage="sensing")

    @pytest.mark.parametrize("change", [
        {"seed": 6},
        {"days": 4},
        {"frame_dt": 2.0},
        {"events": None},
        {"events": ScriptedEventsConfig(death_day=2)},
    ])
    def test_truth_fields_invalidate_both_stages(self, change):
        base = MissionConfig(days=3, seed=5)
        varied = dataclasses.replace(base, **change)
        assert truth_fingerprint(base) != truth_fingerprint(varied)
        assert sensing_fingerprint(base) != sensing_fingerprint(varied)

    @pytest.mark.parametrize("change", [
        {"n_beacons": 9},
        {"wear_compliance_start": 0.5},
        {"fault_plan": None},  # replaced below with a real plan
    ])
    def test_sensing_knobs_keep_truth_key(self, change):
        if change == {"fault_plan": None}:
            plan = FaultCampaign.reference(days=3, seed=0).generate()
            change = {"fault_plan": plan}
        base = MissionConfig(days=3, seed=5)
        varied = dataclasses.replace(base, **change)
        assert truth_fingerprint(base) == truth_fingerprint(varied)
        assert sensing_fingerprint(base) != sensing_fingerprint(varied)

    def test_truth_compatible(self):
        base = MissionConfig(days=3, seed=5)
        assert truth_compatible(base, dataclasses.replace(base, n_beacons=9))
        assert not truth_compatible(base, dataclasses.replace(base, seed=6))
