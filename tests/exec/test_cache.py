"""MissionCache behaviour: hits, misses, invalidation, robustness."""

import dataclasses
import pickle

import pytest

from repro.core.config import ExecutionConfig, MissionConfig
from repro.exec.cache import MissionCache
from repro.exec.hashing import SCHEMA_VERSION
from repro.experiments.mission import run_mission


@pytest.fixture(scope="module")
def small_cfg():
    # days=2 -> a single instrumented day; frame_dt=5 keeps it quick.
    return MissionConfig(days=2, seed=9, frame_dt=5.0, events=None)


def _summaries_bytes(result):
    out = {}
    for key, s in sorted(result.sensing.summaries.items()):
        out[key] = (s.active.tobytes(), s.room.tobytes(), s.x.tobytes(),
                    s.voice_db.tobytes(), s.bytes_recorded, s.n_sync_events)
    return out


class TestRunMissionCaching:
    def test_cold_then_warm(self, small_cfg, tmp_path):
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        cold = run_mission(small_cfg, execution=execution)
        assert cold.cache_stats == {
            "hits": {"truth": 0, "day": 0},
            "misses": {"truth": 1, "day": 1},
            "quarantined": {"truth": 0, "day": 0},
        }
        warm = run_mission(small_cfg, execution=execution)
        assert warm.cache_stats == {
            "hits": {"truth": 1, "day": 1},
            "misses": {"truth": 0, "day": 0},
            "quarantined": {"truth": 0, "day": 0},
        }
        assert _summaries_bytes(cold) == _summaries_bytes(warm)
        assert cold.sdcard.total_gib() == warm.sdcard.total_gib()

    def test_disabled_cache_never_touches_disk(self, small_cfg, tmp_path):
        execution = ExecutionConfig(cache_dir=str(tmp_path), cache_enabled=False)
        result = run_mission(small_cfg, execution=execution)
        assert result.cache_stats is None
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("change", [
        {"seed": 10},
        {"frame_dt": 7.0},
    ])
    def test_truth_field_change_invalidates_everything(
        self, small_cfg, tmp_path, change
    ):
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        run_mission(small_cfg, execution=execution)
        varied = run_mission(
            dataclasses.replace(small_cfg, **change), execution=execution
        )
        assert varied.cache_stats["hits"] == {"truth": 0, "day": 0}

    def test_sensing_change_reuses_truth(self, small_cfg, tmp_path):
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        base = run_mission(small_cfg, execution=execution)
        varied_cfg = dataclasses.replace(
            small_cfg, wear_compliance_start=0.4, wear_compliance_end=0.4
        )
        varied = run_mission(varied_cfg, execution=execution)
        assert varied.cache_stats["hits"] == {"truth": 1, "day": 0}
        assert varied.cache_stats["misses"]["day"] == 1
        # The rebound truth carries the *current* config.
        assert varied.truth.cfg == varied_cfg
        # And the sensing actually changed (different wear compliance).
        assert _summaries_bytes(base) != _summaries_bytes(varied)

    def test_custom_stack_bypasses_day_cache(self, small_cfg, tmp_path):
        from repro.badges.pipeline import SensingModels
        from repro.crew.behavior import simulate_mission

        truth = simulate_mission(small_cfg)
        models = SensingModels.default(small_cfg, truth.plan)
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        result = run_mission(small_cfg, models=models, execution=execution)
        # Truth stage still caches; day summaries must not, because the
        # override is not part of the cache key.
        assert result.cache_stats["hits"]["day"] == 0
        assert result.cache_stats["misses"]["day"] == 0
        again = run_mission(small_cfg, models=models, execution=execution)
        assert again.cache_stats["hits"]["day"] == 0


class TestCacheRobustness:
    def test_corrupt_artifact_is_a_miss_and_quarantined(self, small_cfg, tmp_path):
        cache = MissionCache(tmp_path)
        path = cache.truth_path(small_cfg)
        path.write_bytes(b"not a pickle")
        assert cache.load_truth(small_cfg) is None
        assert cache.misses["truth"] == 1
        assert cache.quarantined["truth"] == 1
        # Never deleted: the evidence moves to quarantine/.
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_schema_mismatch_is_a_miss(self, small_cfg, tmp_path):
        cache = MissionCache(tmp_path)
        path = cache.truth_path(small_cfg)
        path.write_bytes(
            pickle.dumps(("repro.exec.artifact", SCHEMA_VERSION + 1, "0" * 32, b""))
        )
        assert cache.load_truth(small_cfg) is None
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_bit_flip_detected_quarantined_and_recomputed(self, small_cfg, tmp_path):
        """The acceptance scenario: a flipped bit is never served."""
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        cold = run_mission(small_cfg, execution=execution)
        day_path = MissionCache(tmp_path).day_path(small_cfg, 2)
        blob = bytearray(day_path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        day_path.write_bytes(bytes(blob))
        rerun = run_mission(small_cfg, execution=execution)
        assert rerun.cache_stats["quarantined"]["day"] == 1
        assert rerun.cache_stats["misses"]["day"] == 1
        assert rerun.cache_stats["hits"]["day"] == 0
        assert (tmp_path / "quarantine" / day_path.name).exists()
        # The day was recomputed, not served corrupt: results match.
        assert _summaries_bytes(cold) == _summaries_bytes(rerun)
        # And the recomputed artifact is valid again on the next run.
        warm = run_mission(small_cfg, execution=execution)
        assert warm.cache_stats["hits"]["day"] == 1

    def test_stale_tmp_files_swept_on_init(self, small_cfg, tmp_path):
        """A writer killed between mkstemp and os.replace strands *.tmp
        files; cache startup sweeps them (satellite fix)."""
        subdir = tmp_path / "sensing-deadbeef"
        subdir.mkdir()
        stale = [tmp_path / "truth-x.pkl.abctmp.tmp", subdir / "day02.pkl.xyz.tmp"]
        for path in stale:
            path.write_bytes(b"partial write")
        cache = MissionCache(tmp_path)
        for path in stale:
            assert not path.exists()
        # Real artifacts survive the sweep.
        from repro.crew.behavior import simulate_mission

        truth = simulate_mission(small_cfg)
        cache.store_truth(small_cfg, truth)
        again = MissionCache(tmp_path)
        assert again.load_truth(small_cfg) is not None

    def test_store_survives_concurrent_cache_startup(self, small_cfg, tmp_path,
                                                      monkeypatch):
        """Regression: two concurrent writers must both succeed.

        The race: writer A is between mkstemp and os.replace when
        writer B's cache startup sweep runs; the sweep used to unlink
        A's live temp file, failing A's store with quarantine noise.
        """
        import os

        from repro.crew.behavior import simulate_mission
        from repro.exec import integrity

        cache = MissionCache(tmp_path)
        truth = simulate_mission(small_cfg)
        real_replace = os.replace

        def racing_replace(src, dst):
            MissionCache(tmp_path)  # B starts up mid-write and sweeps
            return real_replace(src, dst)

        monkeypatch.setattr(integrity.os, "replace", racing_replace)
        cache.store_truth(small_cfg, truth)  # A must still land its write
        monkeypatch.undo()
        fresh = MissionCache(tmp_path)
        assert fresh.load_truth(small_cfg) is not None
        assert fresh.stats()["quarantined"]["truth"] == 0
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_store_load_round_trip(self, small_cfg, tmp_path):
        from repro.crew.behavior import simulate_mission

        cache = MissionCache(tmp_path)
        truth = simulate_mission(small_cfg)
        cache.store_truth(small_cfg, truth)
        loaded = cache.load_truth(small_cfg)
        assert loaded is not None
        assert loaded.roster.ids == truth.roster.ids
        assert cache.stats() == {
            "hits": {"truth": 1, "day": 0},
            "misses": {"truth": 0, "day": 0},
            "quarantined": {"truth": 0, "day": 0},
        }
