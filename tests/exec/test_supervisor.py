"""Worker supervision: crash recovery, deadlines, bounded degradation.

These tests inject real executor-level faults — workers that SIGKILL
themselves or stall — and assert the supervisor's contract: no completed
work is ever lost, results stay bit-identical to serial, and every
give-up degrades to serial instead of aborting the mission.
"""

import dataclasses

import pytest

from repro.badges.pipeline import SensingModels
from repro.core.config import ExecutionConfig, MissionConfig
from repro.core.errors import ConfigError
from repro.core.units import DAY
from repro.crew.behavior import simulate_mission
from repro.exec.executor import ExecutorUnavailable
from repro.exec.supervisor import run_days_supervised
from repro.experiments.mission import run_mission
from repro.faults import FaultCampaign
from repro.faults.plan import FaultEvent, FaultPlan
from repro.localization.pipeline import Localizer

from tests.exec.test_executor import assert_bit_identical

FAST = ExecutionConfig(n_workers=2, retry_backoff_s=0.01)


@pytest.fixture(scope="module")
def cfg():
    return MissionConfig(days=3, seed=5, frame_dt=5.0, events=None)


@pytest.fixture(scope="module")
def stack(cfg):
    truth = simulate_mission(cfg)
    models = SensingModels.default(cfg, truth.plan)
    localizer = Localizer(truth.plan, models.beacons)
    return truth, models, localizer


@pytest.fixture(scope="module")
def serial_result(cfg):
    return run_mission(cfg)


def _supervise(cfg, stack, days, execution=FAST, **kwargs):
    truth, models, localizer = stack
    return run_days_supervised(cfg, truth, models, localizer, days,
                               execution, **kwargs)


class TestHappyPath:
    def test_no_faults_completes_all_days(self, cfg, stack):
        outcomes = _supervise(cfg, stack, [2, 3])
        assert sorted(outcomes) == [2, 3]
        assert all(outcomes[d].day == d for d in outcomes)

    def test_on_outcome_sees_every_day(self, cfg, stack):
        seen = []
        _supervise(cfg, stack, [2, 3],
                   on_outcome=lambda o: seen.append(o.day))
        assert sorted(seen) == [2, 3]

    def test_refuses_serial_worker_count(self, cfg, stack):
        with pytest.raises(ConfigError):
            _supervise(cfg, stack, [2], ExecutionConfig())

    def test_refuses_sensing_fault_plans(self, cfg, stack):
        plan = FaultPlan.build(
            FaultEvent(time_s=1.5 * DAY, action="badge-battery", target="1")
        )
        faulted = dataclasses.replace(cfg, fault_plan=plan)
        with pytest.raises(ExecutorUnavailable, match="sensing-fault"):
            _supervise(faulted, stack, [2, 3])


class TestCrashRecovery:
    def test_worker_crash_salvages_and_retries(self, cfg, stack):
        harvested = []
        outcomes = _supervise(
            cfg, stack, [2, 3],
            on_outcome=lambda o: harvested.append(o.day),
            crash_days=frozenset({3}),
        )
        # Both days complete: day 3's injected crash broke the pool,
        # day 2 was salvaged, and the retry computed day 3 for real.
        assert sorted(outcomes) == [2, 3]
        assert sorted(harvested) == [2, 3]

    def test_crash_run_is_bit_identical(self, cfg, serial_result):
        plan = FaultPlan.build(
            FaultEvent(time_s=2.2 * DAY, action="worker-crash")  # day 3
        )
        assert plan.worker_crash_days() == frozenset({3})
        faulted = dataclasses.replace(cfg, fault_plan=plan)
        result = run_mission(faulted, execution=FAST)
        assert_bit_identical(serial_result, result)

    def test_every_day_crashing_once_still_completes(self, cfg, serial_result):
        plan = FaultPlan.build(
            FaultEvent(time_s=1.1 * DAY, action="worker-crash"),  # day 2
            FaultEvent(time_s=2.1 * DAY, action="worker-crash"),  # day 3
        )
        faulted = dataclasses.replace(cfg, fault_plan=plan)
        result = run_mission(faulted, execution=FAST)
        assert_bit_identical(serial_result, result)

    def test_crash_telemetry_counters(self, cfg):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            plan = FaultPlan.build(
                FaultEvent(time_s=1.4 * DAY, action="worker-crash")
            )
            run_mission(dataclasses.replace(cfg, fault_plan=plan),
                        execution=FAST)
            snap = obs.metrics.registry.snapshot()
            assert snap["exec.pool_respawns"]["series"][0]["value"] >= 1
            retry_series = snap["exec.retries"]["series"]
            assert any(s["labels"]["reason"] == "pool-broken" and s["value"] >= 1
                       for s in retry_series)
        finally:
            obs.reset()


class TestDeadlines:
    def test_hung_worker_is_killed_and_retried(self, cfg, stack):
        # Deadline must clear real per-day compute (~1s) plus worker
        # startup, while staying far below the injected 60s hang.
        execution = dataclasses.replace(FAST, day_deadline_s=8.0)
        outcomes = _supervise(cfg, stack, [2, 3], execution,
                              hang_days=frozenset({2}), hang_s=60.0)
        # Injection spent after the first teardown; retry completes.
        assert sorted(outcomes) == [2, 3]

    def test_deadline_budget_exhaustion_raises(self, cfg, stack, monkeypatch):
        # Make the *computation itself* hang every attempt by injecting
        # the hang repeatedly: never spend the injection.
        import repro.exec.supervisor as sup

        execution = dataclasses.replace(FAST, day_deadline_s=0.2,
                                        max_day_retries=1)
        original = sup._spawn_pool

        def always_hanging(workers, payload, crash_days, hang_days, hang_s):
            return original(workers, payload, crash_days,
                            frozenset({2}), 30.0)

        monkeypatch.setattr(sup, "_spawn_pool", always_hanging)
        with pytest.raises(ExecutorUnavailable, match="deadline"):
            _supervise(cfg, stack, [2], execution)

    def test_timeout_counter_increments(self, cfg, stack):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            execution = dataclasses.replace(FAST, day_deadline_s=8.0)
            _supervise(cfg, stack, [2, 3], execution,
                       hang_days=frozenset({3}), hang_s=60.0)
            snap = obs.metrics.registry.snapshot()
            assert snap["exec.timeouts"]["series"][0]["value"] >= 1
        finally:
            obs.reset()


class TestBoundedDegradation:
    def test_pool_failure_limit_raises(self, cfg, stack, monkeypatch):
        """Consecutive no-progress pool failures give up, not loop."""
        import repro.exec.supervisor as sup

        original = sup._spawn_pool
        spawns = []

        def always_crashing(workers, payload, crash_days, hang_days, hang_s):
            spawns.append(workers)
            return original(workers, payload, frozenset({2}), hang_days, hang_s)

        monkeypatch.setattr(sup, "_spawn_pool", always_crashing)
        execution = dataclasses.replace(FAST, pool_failure_limit=2)
        with pytest.raises(ExecutorUnavailable, match="consecutive"):
            _supervise(cfg, stack, [2], execution)
        assert len(spawns) == 2

    def test_mission_degrades_to_serial_and_matches(self, cfg, serial_result,
                                                    monkeypatch):
        """A supervisor give-up finishes the mission serially, keeping
        salvaged days — end result still bit-identical."""
        import repro.experiments.mission as mission_mod

        calls = {"n": 0}
        real = mission_mod.run_days_supervised

        def flaky(cfg_, truth, models, localizer, days, execution, *,
                  on_outcome=None, **kwargs):
            calls["n"] += 1
            # Deliver the first day, then give up.
            partial = real(cfg_, truth, models, localizer, days[:1],
                           execution, on_outcome=on_outcome, **kwargs)
            raise ExecutorUnavailable("injected give-up after partial progress")

        monkeypatch.setattr(mission_mod, "run_days_supervised", flaky)
        result = run_mission(cfg, execution=FAST)
        assert calls["n"] == 1
        assert_bit_identical(serial_result, result)

    def test_fallback_is_signalled_not_silent(self, cfg, monkeypatch):
        """Satellite: every serial downgrade logs + counts exec.fallback."""
        from repro import obs
        import repro.experiments.mission as mission_mod

        def broken(*args, **kwargs):
            raise ExecutorUnavailable("no pool for you")

        monkeypatch.setattr(mission_mod, "run_days_supervised", broken)
        obs.reset()
        obs.enable()
        try:
            run_mission(cfg, execution=FAST)
            snap = obs.metrics.registry.snapshot()
            series = snap["exec.fallback"]["series"]
            assert [s["labels"]["reason"] for s in series] == [
                "executor-unavailable"
            ]
            records = [r for r in obs.logging.buffer.records
                       if r.event == "parallel-fallback"]
            assert records and records[0].fields["reason"] == "executor-unavailable"
        finally:
            obs.reset()

    def test_sensing_fault_fallback_reason(self, monkeypatch):
        from repro import obs

        plan = FaultCampaign.reference(days=3, seed=1).generate()
        cfg = MissionConfig(days=3, seed=5, frame_dt=5.0, events=None,
                            fault_plan=plan)
        obs.reset()
        obs.enable()
        try:
            run_mission(cfg, execution=FAST)
            series = obs.metrics.registry.snapshot()["exec.fallback"]["series"]
            assert [s["labels"]["reason"] for s in series] == [
                "sensing-fault-plan"
            ]
        finally:
            obs.reset()

    def test_auto_stays_serial_on_small_missions(self, cfg, serial_result,
                                                 monkeypatch):
        """ROADMAP item 1: "auto" must not spin up a pool whose fork +
        pickling overhead exceeds the mission's whole day-compute."""
        from repro import obs
        import repro.core.config as config_mod
        import repro.experiments.mission as mission_mod

        monkeypatch.setattr(config_mod.os, "cpu_count", lambda: 8)

        def pool_forbidden(*args, **kwargs):
            raise AssertionError("small auto mission must not start a pool")

        monkeypatch.setattr(mission_mod, "run_days_supervised", pool_forbidden)
        obs.reset()
        obs.enable()
        try:
            result = run_mission(cfg, execution=ExecutionConfig(n_workers="auto"))
            series = obs.metrics.registry.snapshot()["exec.fallback"]["series"]
            assert [s["labels"]["reason"] for s in series] == [
                "auto-small-mission"
            ]
        finally:
            obs.reset()
        assert_bit_identical(serial_result, result)
