"""The parallel executor: bit-identical results, fallbacks, API shape.

The determinism tests are the contract the whole subsystem rests on:
``run_mission(cfg, execution=ExecutionConfig(n_workers=4))`` must equal
the serial run *bitwise*, summary for summary, because the analyses are
regression-tested against exact values.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.config import ExecutionConfig, MissionConfig
from repro.core.errors import ConfigError
from repro.exec.executor import ExecutorUnavailable, run_days_parallel
from repro.experiments.mission import MissionResult, run_mission
from repro.faults import FaultCampaign

SUMMARY_ARRAYS = (
    "active", "worn", "room", "x", "y", "accel_rms", "voice_db",
    "dominant_pitch_hz", "pitch_stability", "sound_db", "true_room",
)


def assert_bit_identical(a: MissionResult, b: MissionResult) -> None:
    assert set(a.sensing.summaries) == set(b.sensing.summaries)
    for key in sorted(a.sensing.summaries):
        sa, sb = a.sensing.summaries[key], b.sensing.summaries[key]
        for name in SUMMARY_ARRAYS:
            va, vb = getattr(sa, name), getattr(sb, name)
            if va is None or vb is None:
                assert va is None and vb is None, (key, name)
            else:
                # tobytes() compares exactly, NaNs and all.
                assert va.dtype == vb.dtype and va.tobytes() == vb.tobytes(), (
                    key, name)
        assert sa.bytes_recorded == sb.bytes_recorded, key
        assert sa.n_sync_events == sb.n_sync_events, key
    assert set(a.sensing.pairwise) == set(b.sensing.pairwise)
    for day in a.sensing.pairwise:
        pa, pb = a.sensing.pairwise[day], b.sensing.pairwise[day]
        assert set(pa.ir_contact) == set(pb.ir_contact)
        for pair in pa.ir_contact:
            assert pa.ir_contact[pair].tobytes() == pb.ir_contact[pair].tobytes()
            assert pa.subghz_rssi[pair].tobytes() == pb.subghz_rssi[pair].tobytes()
    assert a.sdcard.total_gib() == b.sdcard.total_gib()


@pytest.fixture(scope="module")
def cfg():
    return MissionConfig(days=3, seed=5, frame_dt=5.0, events=None)


@pytest.fixture(scope="module")
def serial_result(cfg):
    return run_mission(cfg)


class TestParallelDeterminism:
    def test_parallel_equals_serial_bitwise(self, cfg, serial_result):
        parallel = run_mission(cfg, execution=ExecutionConfig(n_workers=4))
        assert_bit_identical(serial_result, parallel)
        assert parallel.execution.worker_count == 4

    def test_two_workers_equal_serial(self, cfg, serial_result):
        parallel = run_mission(cfg, execution=ExecutionConfig(n_workers=2))
        assert_bit_identical(serial_result, parallel)

    def test_default_execution_is_serial(self, serial_result):
        assert serial_result.execution.n_workers == "serial"
        assert not serial_result.execution.parallel


class TestSerialFallback:
    def test_fault_plan_falls_back_and_matches(self):
        plan = FaultCampaign.reference(days=3, seed=1).generate()
        cfg = MissionConfig(days=3, seed=5, frame_dt=5.0, events=None,
                            fault_plan=plan)
        serial = run_mission(cfg)
        forced = run_mission(cfg, execution=ExecutionConfig(n_workers=4))
        assert_bit_identical(serial, forced)

    def test_run_days_parallel_refuses_fault_plans(self, cfg):
        plan = FaultCampaign.reference(days=3, seed=1).generate()
        faulted = dataclasses.replace(cfg, fault_plan=plan)
        with pytest.raises(ExecutorUnavailable):
            run_days_parallel(faulted, None, None, None, [2, 3], 4)

    def test_unpicklable_override_falls_back(self, cfg, serial_result):
        from repro.badges.pipeline import SensingModels

        class UnpicklableModels(SensingModels):
            def __reduce__(self):
                raise pickle.PicklingError("deliberately unpicklable")

        models = SensingModels.default(cfg, serial_result.truth.plan)
        bad = UnpicklableModels(**{
            f.name: getattr(models, f.name)
            for f in dataclasses.fields(SensingModels)
        })
        result = run_mission(
            cfg, truth=serial_result.truth, models=bad,
            execution=ExecutionConfig(n_workers=4),
        )
        assert_bit_identical(serial_result, result)


class TestExecutionConfig:
    def test_serial_literal(self):
        execution = ExecutionConfig()
        assert execution.worker_count == 1
        assert not execution.parallel
        assert not execution.cache_active

    @pytest.mark.parametrize("bad", [0, -1, "parallel", 2.5])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ConfigError):
            ExecutionConfig(n_workers=bad)

    def test_auto_workers_sizes_to_the_machine(self, monkeypatch):
        import repro.core.config as config_mod

        execution = ExecutionConfig(n_workers="auto")
        monkeypatch.setattr(config_mod.os, "cpu_count", lambda: 2)
        assert execution.worker_count == 1
        assert not execution.parallel
        monkeypatch.setattr(config_mod.os, "cpu_count", lambda: 8)
        assert execution.worker_count == 8
        assert execution.parallel
        monkeypatch.setattr(config_mod.os, "cpu_count", lambda: None)
        assert execution.worker_count == 1

    def test_auto_serial_considers_mission_size(self):
        auto = ExecutionConfig(n_workers="auto")
        threshold = ExecutionConfig.AUTO_POOL_MIN_UNITS
        assert auto.auto_serial(threshold - 1)
        assert not auto.auto_serial(threshold)
        # Explicit pool sizes and "serial" are never second-guessed.
        assert not ExecutionConfig(n_workers=4).auto_serial(1)
        assert not ExecutionConfig(n_workers="serial").auto_serial(1)

    def test_empty_cache_dir_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(cache_dir="")

    def test_cache_enabled_switch(self, tmp_path):
        assert ExecutionConfig(cache_dir=str(tmp_path)).cache_active
        assert not ExecutionConfig(cache_dir=str(tmp_path),
                                   cache_enabled=False).cache_active

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionConfig().n_workers = 4


class TestRedesignedApi:
    def test_overrides_are_keyword_only(self, cfg, serial_result):
        with pytest.raises(TypeError):
            run_mission(cfg, serial_result.truth)

    def test_truth_reuse_still_works(self, cfg, serial_result):
        result = run_mission(cfg, truth=serial_result.truth)
        assert_bit_identical(serial_result, result)

    def test_result_to_dict_is_json_clean(self, serial_result):
        import json

        data = serial_result.to_dict()
        json.dumps(data)  # must not raise
        assert data["days"] == [2, 3]
        assert data["badge_days"] == len(serial_result.sensing.summaries)
        assert data["cache"] is None

    def test_result_to_text_mentions_the_mission(self, serial_result):
        text = serial_result.to_text()
        assert "3 days" in text
        assert "seed 5" in text

    def test_deprecated_report_aliases_are_gone(self, serial_result):
        assert not hasattr(serial_result, "telemetry_report")
        assert not hasattr(serial_result, "reliability_report")
