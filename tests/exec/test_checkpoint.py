"""Checkpoint journal + resume: crash recovery must be bit-identical."""

import pytest

from repro.core.config import ExecutionConfig, MissionConfig
from repro.core.errors import ConfigError
from repro.exec.checkpoint import CheckpointJournal
from repro.experiments.mission import run_mission

from tests.exec.test_executor import assert_bit_identical


@pytest.fixture(scope="module")
def cfg():
    return MissionConfig(days=3, seed=5, frame_dt=5.0, events=None)


@pytest.fixture(scope="module")
def baseline(cfg):
    """Uninterrupted serial run — the bit-identity reference."""
    return run_mission(cfg)


class TestJournalUnit:
    def test_record_load_round_trip(self, cfg, tmp_path, baseline):
        journal = CheckpointJournal(tmp_path, cfg)
        journaled = run_mission(
            cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path))
        )
        assert journal.journaled_days() == [2, 3]
        outcome = journal.load_day(2)
        assert outcome is not None
        assert outcome.day == 2
        assert outcome.telemetry is None
        assert set(outcome.summaries) == {
            b for (b, d) in baseline.sensing.summaries if d == 2
        }
        assert journaled.cache_stats["checkpoint"]["recorded"] == 2

    def test_journal_keyed_by_sensing_fingerprint(self, cfg, tmp_path):
        import dataclasses

        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        other_cfg = dataclasses.replace(
            cfg, wear_compliance_start=0.4, wear_compliance_end=0.4
        )
        other = CheckpointJournal(tmp_path, other_cfg)
        # A changed config finds an empty journal — stale checkpoints
        # can never leak into the wrong mission.
        assert other.journaled_days() == []
        assert other.dir != CheckpointJournal(tmp_path, cfg).dir

    def test_missing_day_is_none(self, cfg, tmp_path):
        journal = CheckpointJournal(tmp_path, cfg)
        assert journal.load_day(2) is None
        assert journal.load_completed([2, 3]) == {}
        assert journal.stats() == {
            "recorded": 0, "resumed_days": [], "quarantined": 0,
        }

    def test_corrupt_record_quarantined_not_served(self, cfg, tmp_path):
        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        journal = CheckpointJournal(tmp_path, cfg)
        path = journal.day_path(2)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0x10
        path.write_bytes(bytes(blob))
        assert journal.load_day(2) is None
        assert journal.quarantined == 1
        assert (tmp_path / "quarantine" / path.name).exists()
        # Day 3 is untouched and still loads.
        restored = journal.load_completed([2, 3])
        assert sorted(restored) == [3]


class TestResume:
    def test_full_resume_is_bit_identical(self, cfg, tmp_path, baseline):
        execution = ExecutionConfig(checkpoint_dir=str(tmp_path))
        run_mission(cfg, execution=execution)
        resumed = run_mission(
            cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path),
                                           resume=True)
        )
        assert_bit_identical(baseline, resumed)
        checkpoint = resumed.cache_stats["checkpoint"]
        assert checkpoint["resumed_days"] == [2, 3]
        # Nothing recomputed, so nothing re-journaled.
        assert checkpoint["recorded"] == 0

    def test_partial_resume_recomputes_the_rest(self, cfg, tmp_path, baseline):
        """The crash scenario: only day 2 made it to the journal."""
        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        journal = CheckpointJournal(tmp_path, cfg)
        journal.day_path(3).unlink()
        resumed = run_mission(
            cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path),
                                           resume=True)
        )
        assert_bit_identical(baseline, resumed)
        checkpoint = resumed.cache_stats["checkpoint"]
        assert checkpoint["resumed_days"] == [2]
        assert checkpoint["recorded"] == 1  # day 3 recomputed and journaled
        assert CheckpointJournal(tmp_path, cfg).journaled_days() == [2, 3]

    def test_corrupt_checkpoint_recomputed_bit_identical(self, cfg, tmp_path,
                                                         baseline):
        """A crash mid-write leaves a bad record: quarantine + recompute."""
        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        path = CheckpointJournal(tmp_path, cfg).day_path(2)
        path.write_bytes(path.read_bytes()[:-7])
        resumed = run_mission(
            cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path),
                                           resume=True)
        )
        assert_bit_identical(baseline, resumed)
        checkpoint = resumed.cache_stats["checkpoint"]
        assert checkpoint["resumed_days"] == [3]
        assert checkpoint["quarantined"] == 1
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_resume_with_parallel_workers(self, cfg, tmp_path, baseline):
        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        CheckpointJournal(tmp_path, cfg).day_path(3).unlink()
        resumed = run_mission(
            cfg, execution=ExecutionConfig(n_workers=2, resume=True,
                                           checkpoint_dir=str(tmp_path)),
        )
        assert_bit_identical(baseline, resumed)

    def test_resume_without_resume_flag_recomputes(self, cfg, tmp_path):
        """checkpoint_dir alone journals but never reads old state."""
        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        again = run_mission(
            cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path))
        )
        checkpoint = again.cache_stats["checkpoint"]
        assert checkpoint["resumed_days"] == []
        assert checkpoint["recorded"] == 2

    def test_custom_stack_disables_journal(self, cfg, tmp_path, baseline):
        from repro.badges.pipeline import SensingModels

        models = SensingModels.default(cfg, baseline.truth.plan)
        result = run_mission(
            cfg, models=models,
            execution=ExecutionConfig(checkpoint_dir=str(tmp_path)),
        )
        assert result.cache_stats is None
        assert CheckpointJournal(tmp_path, cfg).journaled_days() == []


class TestJournalLease:
    """The O_EXCL exclusive lease: one live resumer per fingerprint."""

    def test_second_resumer_gets_busy_error(self, cfg, tmp_path):
        from repro.exec.checkpoint import JournalBusyError

        holder = CheckpointJournal(tmp_path, cfg, exclusive=True, owner="one")
        try:
            with pytest.raises(JournalBusyError, match="held by"):
                CheckpointJournal(tmp_path, cfg, exclusive=True, owner="two")
        finally:
            holder.close()

    def test_close_releases_the_lease(self, cfg, tmp_path):
        holder = CheckpointJournal(tmp_path, cfg, exclusive=True)
        holder.close()
        second = CheckpointJournal(tmp_path, cfg, exclusive=True)
        second.close()
        second.close()  # idempotent

    def test_context_manager_releases(self, cfg, tmp_path):
        with CheckpointJournal(tmp_path, cfg, exclusive=True) as journal:
            assert (journal.dir / "journal.lock").exists()
        assert not (journal.dir / "journal.lock").exists()

    def test_stale_lock_of_dead_holder_is_broken(self, cfg, tmp_path):
        """A kill -9'd holder leaves its marker; the pid check breaks it."""
        import json

        journal = CheckpointJournal(tmp_path, cfg)
        (journal.dir / "journal.lock").write_text(
            json.dumps({"pid": 2 ** 22 + 12345, "owner": "ghost",
                        "acquired_at": 0.0}))
        taker = CheckpointJournal(tmp_path, cfg, exclusive=True)
        taker.close()

    def test_unreadable_lock_is_treated_as_stale(self, cfg, tmp_path):
        journal = CheckpointJournal(tmp_path, cfg)
        (journal.dir / "journal.lock").write_bytes(b"\x00 crash mid-write")
        taker = CheckpointJournal(tmp_path, cfg, exclusive=True)
        taker.close()

    def test_live_holder_is_never_stolen(self, cfg, tmp_path):
        """Our own pid in the marker means the holder is alive."""
        import json

        from repro.exec.checkpoint import JournalBusyError

        journal = CheckpointJournal(tmp_path, cfg)
        (journal.dir / "journal.lock").write_text(
            json.dumps({"pid": __import__("os").getpid(), "owner": "twin",
                        "acquired_at": 0.0}))
        with pytest.raises(JournalBusyError):
            CheckpointJournal(tmp_path, cfg, exclusive=True)

    def test_non_exclusive_journal_ignores_the_lease(self, cfg, tmp_path):
        """Read-side journals (and legacy callers) never contend."""
        holder = CheckpointJournal(tmp_path, cfg, exclusive=True)
        try:
            reader = CheckpointJournal(tmp_path, cfg)
            assert reader.journaled_days() == []
        finally:
            holder.close()

    def test_run_mission_releases_on_exit(self, cfg, tmp_path):
        run_mission(cfg, execution=ExecutionConfig(checkpoint_dir=str(tmp_path)))
        journal = CheckpointJournal(tmp_path, cfg)
        assert not (journal.dir / "journal.lock").exists()
        # The fingerprint is immediately resumable by the next process.
        again = CheckpointJournal(tmp_path, cfg, exclusive=True)
        again.close()

    def test_concurrent_run_mission_raises_busy(self, cfg, tmp_path):
        from repro.exec.checkpoint import JournalBusyError

        holder = CheckpointJournal(tmp_path, cfg, exclusive=True, owner="rival")
        try:
            with pytest.raises(JournalBusyError):
                run_mission(cfg, execution=ExecutionConfig(
                    checkpoint_dir=str(tmp_path)))
        finally:
            holder.close()

    def test_busy_error_is_exported(self):
        from repro.core.errors import DataError
        from repro.exec import JournalBusyError

        assert issubclass(JournalBusyError, DataError)


class TestConfig:
    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(resume=True)

    def test_empty_checkpoint_dir_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(checkpoint_dir="")

    def test_checkpoint_active(self, tmp_path):
        assert ExecutionConfig(checkpoint_dir=str(tmp_path)).checkpoint_active
        assert not ExecutionConfig().checkpoint_active


class TestCli:
    def test_run_resume_mentions_restored_days(self, cfg, tmp_path, capsys):
        from repro.__main__ import main

        ckpt = str(tmp_path / "ckpt")
        base = ["run", "--days", "3", "--seed", "5", "--no-events",
                "--checkpoint", ckpt]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed 2 day(s) from checkpoint: 2, 3" in out
