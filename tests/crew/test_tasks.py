"""Tests for the activity taxonomy."""

from repro.crew.tasks import SILENT_ACTIVITIES, Activity, talk_regime


class TestActivity:
    def test_group_activities(self):
        assert Activity.MEAL.is_group
        assert Activity.BRIEFING.is_group
        assert Activity.CONSOLATION.is_group
        assert not Activity.WORK.is_group

    def test_badge_prohibitions_match_paper(self):
        """No badges during EVAs, in restrooms, during exercise."""
        assert not Activity.EVA.badge_wearable
        assert not Activity.RESTROOM.badge_wearable
        assert not Activity.EXERCISE.badge_wearable
        assert Activity.WORK.badge_wearable
        assert Activity.EVA_PREP.badge_wearable

    def test_silent_activities(self):
        assert Activity.TRANSIT in SILENT_ACTIVITIES
        assert Activity.MEAL not in SILENT_ACTIVITIES


class TestTalkRegimes:
    def test_consolation_quieter_than_meal(self):
        __, __, meal_db = talk_regime(Activity.MEAL)
        __, __, conso_db = talk_regime(Activity.CONSOLATION)
        assert conso_db < meal_db - 3.0

    def test_meal_duty_high(self):
        duty, __, __ = talk_regime(Activity.MEAL)
        assert duty >= 0.7

    def test_unknown_activity_gets_default(self):
        duty, burst, loud = talk_regime(Activity.TRANSIT)
        assert 0 < duty < 1 and burst > 0 and loud > 0

    def test_loudness_supports_2_5m_detection(self):
        """A 68 dB @ 1 m speaker is right at 60 dB from 2.5 m (the
        paper's detection boundary)."""
        import math

        __, __, loud = talk_regime(Activity.MEAL)
        at_2_5m = loud - 20 * math.log10(2.5)
        assert abs(at_2_5m - 60.0) < 1.0
