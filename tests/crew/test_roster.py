"""Tests for profiles and the ICAres-1 roster."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.crew.astronaut import Profile
from repro.crew.roster import CREW_IDS, icares_roster


class TestProfileValidation:
    def test_bad_sex_rejected(self):
        with pytest.raises(ConfigError):
            Profile(astro_id="X", role="r", sex="x", mobility=0.5,
                    talkativeness=0.5, sociability=0.5)

    def test_trait_range_enforced(self):
        with pytest.raises(ConfigError):
            Profile(astro_id="X", role="r", sex="m", mobility=3.0,
                    talkativeness=0.5, sociability=0.5)

    def test_work_room_weights_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            Profile(astro_id="X", role="r", sex="m", mobility=0.5,
                    talkativeness=0.5, sociability=0.5,
                    work_rooms={"office": 0.5, "biolab": 0.2})

    def test_wear_diligence_range(self):
        with pytest.raises(ConfigError):
            Profile(astro_id="X", role="r", sex="m", mobility=0.5,
                    talkativeness=0.5, sociability=0.5, wear_diligence=0.0)


class TestRoster:
    def test_six_astronauts_in_paper_order(self):
        roster = icares_roster()
        assert roster.ids == CREW_IDS

    def test_three_women_three_men(self):
        roster = icares_roster()
        sexes = [p.sex for p in roster.profiles]
        assert sexes.count("f") == 3 and sexes.count("m") == 3

    def test_commander_is_b(self):
        roster = icares_roster()
        assert roster.profile("B").role == "Mission Commander"
        assert roster.profile("B").supervises

    def test_a_is_impaired(self):
        profile = icares_roster().profile("A")
        assert profile.impaired
        assert profile.wander_extent < 0.5
        assert profile.walk_speed < 1.0

    def test_c_is_the_energetic_conversationalist(self):
        roster = icares_roster()
        c = roster.profile("C")
        assert c.talkativeness == max(p.talkativeness for p in roster.profiles)
        assert c.mobility == max(p.mobility for p in roster.profiles)

    def test_mobility_ordering_matches_table1(self):
        """Walking column order: C > F > D > E > B ~ A."""
        roster = icares_roster()
        mob = {p.astro_id: p.mobility for p in roster.profiles}
        assert mob["C"] > mob["F"] > mob["D"] > mob["E"]
        assert mob["A"] < mob["D"]

    def test_affinity_symmetric_nonnegative(self):
        roster = icares_roster()
        assert np.allclose(roster.affinity, roster.affinity.T)
        assert (roster.affinity >= 0).all()
        assert np.allclose(np.diag(roster.affinity), 0.0)

    def test_af_strongest_de_weakest(self):
        roster = icares_roster()
        af = roster.pair_affinity("A", "F")
        de = roster.pair_affinity("D", "E")
        assert af == max(
            roster.pair_affinity(a, b)
            for a in roster.ids for b in roster.ids if a != b
        )
        assert de == min(
            roster.pair_affinity(a, b)
            for a in roster.ids for b in roster.ids if a != b
        )

    def test_truncated_roster(self):
        roster = icares_roster(crew_size=3)
        assert roster.ids == ("A", "B", "C")
        assert roster.affinity.shape == (3, 3)

    def test_invalid_crew_size(self):
        with pytest.raises(ConfigError):
            icares_roster(crew_size=1)
        with pytest.raises(ConfigError):
            icares_roster(crew_size=9)

    def test_index_and_unknown(self):
        roster = icares_roster()
        assert roster.index("D") == 3
        with pytest.raises(ConfigError):
            roster.index("Z")

    def test_pitch_separates_sexes(self):
        roster = icares_roster()
        for p in roster.profiles:
            if p.sex == "f":
                assert p.voice_pitch_hz > 180
            else:
                assert p.voice_pitch_hz < 140
