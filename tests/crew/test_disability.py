"""Tests for the ability-based design module."""

from repro.crew.disability import (
    AbilityProfile,
    AccessibilityAudit,
    interface_adaptations,
)
from repro.crew.roster import icares_roster


class TestAbilityProfile:
    def test_default_full_ability(self):
        abilities = AbilityProfile()
        assert abilities.vision == 1.0 and abilities.fine_motor == 1.0

    def test_impaired_profile(self):
        roster = icares_roster()
        abilities = AbilityProfile.from_profile(roster.profile("A"))
        assert abilities.vision < 0.5
        assert abilities.fine_motor < 0.5

    def test_unimpaired_profile(self):
        roster = icares_roster()
        abilities = AbilityProfile.from_profile(roster.profile("B"))
        assert abilities == AbilityProfile()


class TestAdaptations:
    def test_full_ability_needs_none(self):
        assert interface_adaptations(AbilityProfile()) == []

    def test_low_vision_replaces_visual_channels(self):
        adaptations = interface_adaptations(AbilityProfile(vision=0.2))
        devices = {a.device for a in adaptations}
        assert "e-ink id display" in devices
        assert "status LEDs" in devices

    def test_low_dexterity_replaces_buttons(self):
        adaptations = interface_adaptations(AbilityProfile(fine_motor=0.3))
        devices = {a.device for a in adaptations}
        assert "push buttons" in devices

    def test_every_adaptation_has_substitute(self):
        adaptations = interface_adaptations(
            AbilityProfile(vision=0.0, hearing=0.0, speech=0.0, fine_motor=0.0)
        )
        assert all(a.adaptation for a in adaptations)
        assert len(adaptations) == 6


class TestAudit:
    def test_flags_only_impaired(self):
        roster = icares_roster()
        audit = AccessibilityAudit.run(roster.profiles)
        assert set(audit.findings) == {"A"}

    def test_badge_swap_risk_names_a(self):
        """The e-ink-only badge id is exactly what caused the A/B swap."""
        roster = icares_roster()
        audit = AccessibilityAudit.run(roster.profiles)
        assert audit.badge_swap_risk() == ["A"]
