"""Tests for the conversation model."""

import numpy as np
import pytest

from repro.crew.conversation import ConversationModel, SpeechArrays
from repro.crew.roster import icares_roster
from repro.crew.tasks import Activity


@pytest.fixture(scope="module")
def roster():
    return icares_roster()


@pytest.fixture(scope="module")
def model(roster):
    return ConversationModel(roster.profiles)


def co_located(n_crew=6, frames=1800, room=3, activity=Activity.MEAL):
    rooms = np.full((n_crew, frames), room, dtype=np.int8)
    acts = np.full((n_crew, frames), int(activity), dtype=np.int8)
    return rooms, acts


class TestGeneration:
    def test_meal_is_chatty(self, model, rng):
        rooms, acts = co_located()
        out = model.generate(rooms, acts, rng)
        assert out.speaking.any(axis=0).mean() > 0.6

    def test_single_speaker_at_a_time(self, model, rng):
        rooms, acts = co_located()
        out = model.generate(rooms, acts, rng)
        assert (out.speaking.sum(axis=0) <= 1).all()

    def test_loudness_only_while_speaking(self, model, rng):
        rooms, acts = co_located()
        out = model.generate(rooms, acts, rng)
        assert (out.loudness[~out.speaking] == 0).all()
        assert (out.loudness[out.speaking] > 40).all()

    def test_solo_person_silent(self, model, rng):
        rooms = np.full((6, 600), -1, dtype=np.int8)
        rooms[0] = 5  # alone in a room
        acts = np.full((6, 600), int(Activity.WORK), dtype=np.int8)
        out = model.generate(rooms, acts, rng)
        assert not out.speaking.any()

    def test_separate_rooms_no_cross_talk_dependency(self, model, rng):
        rooms = np.zeros((6, 1200), dtype=np.int8)
        rooms[:3] = 2
        rooms[3:] = 4
        acts = np.full((6, 1200), int(Activity.WORK), dtype=np.int8)
        out = model.generate(rooms, acts, rng)
        assert out.speaking[:3].any() and out.speaking[3:].any()

    def test_talk_factor_scales_duty(self, model):
        rooms, acts = co_located(activity=Activity.WORK, frames=6000)
        high = model.generate(rooms, acts, np.random.default_rng(0), talk_factor=1.0)
        low = model.generate(rooms, acts, np.random.default_rng(0), talk_factor=0.2)
        assert low.speaking.any(axis=0).mean() < 0.6 * high.speaking.any(axis=0).mean()

    def test_talkative_speaker_dominates(self, model, rng):
        rooms, acts = co_located(frames=20_000)
        out = model.generate(rooms, acts, rng)
        shares = out.speaking.mean(axis=1)
        assert np.argmax(shares) == 2  # C

    def test_consolation_quieter_than_meal(self, model, rng):
        rooms, acts_meal = co_located(frames=4000)
        _, acts_conso = co_located(frames=4000, activity=Activity.CONSOLATION)
        meal = model.generate(rooms, acts_meal, np.random.default_rng(5))
        conso = model.generate(rooms, acts_conso, np.random.default_rng(5))
        meal_loud = meal.loudness[meal.speaking].mean()
        conso_loud = conso.loudness[conso.speaking].mean()
        assert conso_loud < meal_loud - 3.0

    def test_transit_to_meal_switch_starts_conversation(self, model, rng):
        """The fixed regression: simultaneous TRANSIT->MEAL transitions."""
        rooms, acts = co_located(frames=1800)
        acts[:, :30] = int(Activity.TRANSIT)
        out = model.generate(rooms, acts, rng)
        assert out.speaking[:, 30:].any()

    def test_deterministic_given_stream(self, model):
        rooms, acts = co_located()
        a = model.generate(rooms, acts, np.random.default_rng(9))
        b = model.generate(rooms, acts, np.random.default_rng(9))
        np.testing.assert_array_equal(a.speaking, b.speaking)


class TestTts:
    def test_impaired_astronaut_gets_machine_speech(self, model, rng):
        rooms = np.full((6, 8000), -1, dtype=np.int8)
        rooms[0] = 4  # A alone in the office
        acts = np.full((6, 8000), int(Activity.WORK), dtype=np.int8)
        out = model.generate(rooms, acts, rng)
        assert out.machine_speech[0].any()
        assert not out.machine_speech[1:].any()

    def test_no_tts_outside_work_rooms(self, model, rng):
        rooms = np.full((6, 4000), 3, dtype=np.int8)  # kitchen
        acts = np.full((6, 4000), int(Activity.WORK), dtype=np.int8)
        out = model.generate(rooms, acts, rng)
        assert not out.machine_speech.any()

    def test_output_is_speech_arrays(self, model, rng):
        rooms, acts = co_located(frames=100)
        out = model.generate(rooms, acts, rng)
        assert isinstance(out, SpeechArrays)
        assert out.speaking.shape == (6, 100)
