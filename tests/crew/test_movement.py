"""Tests for the movement model."""

import numpy as np
import pytest

from repro.core.config import MissionConfig
from repro.crew.movement import DayArrays, MovementModel, sample_anchor, wander_rect
from repro.crew.roster import icares_roster
from repro.crew.schedule import build_day_schedule
from repro.crew.tasks import Activity
from repro.habitat.floorplan import OUTSIDE, lunares_floorplan


@pytest.fixture(scope="module")
def plan():
    return lunares_floorplan()


@pytest.fixture(scope="module")
def roster():
    return icares_roster()


@pytest.fixture(scope="module")
def filled(plan, roster):
    cfg = MissionConfig(days=14)
    rng = np.random.default_rng(0)
    sched = build_day_schedule(cfg, roster, day=2, rng=rng)
    model = MovementModel(plan, dt=cfg.frame_dt)
    return {
        astro: model.fill_day(
            roster.profile(astro), sched.of(astro), cfg.daytime_start_s,
            cfg.frames_per_day, np.random.default_rng(hash(astro) % 2**32),
        )
        for astro in roster.ids
    }, sched, cfg


class TestFillDay:
    def test_positions_inside_rooms(self, filled, plan):
        arrays_by_astro, _, _ = filled
        for arrays in arrays_by_astro.values():
            inside = arrays.room >= 0
            pts = np.column_stack([arrays.x[inside], arrays.y[inside]]).astype(np.float64)
            located = plan.locate_many(pts)
            assert (located == arrays.room[inside]).mean() > 0.999

    def test_no_gaps_when_present(self, filled):
        arrays_by_astro, _, _ = filled
        for arrays in arrays_by_astro.values():
            present = arrays.room >= 0
            assert not np.isnan(arrays.x[present]).any()

    def test_walking_implies_movement(self, filled):
        arrays_by_astro, _, _ = filled
        arrays = arrays_by_astro["C"]
        moving = arrays.walking[1:] & arrays.walking[:-1] & (arrays.room[1:] >= 0)
        dx = np.abs(np.diff(arrays.x))[moving[: len(arrays.x) - 1]]
        assert np.nanmean(dx) > 0.1

    def test_follows_schedule_rooms(self, filled, plan):
        arrays_by_astro, sched, cfg = filled
        arrays = arrays_by_astro["E"]
        t0 = cfg.daytime_start_s
        hits = total = 0
        for slot in sched.of("E"):
            if slot.room is None or slot.duration < 600:
                continue
            mid = int((slot.t0 + slot.duration / 2 - t0) / cfg.frame_dt)
            total += 1
            if arrays.room[mid] == plan.index_of(slot.room):
                hits += 1
        assert hits / total > 0.9  # transit at slot starts tolerated

    def test_eva_outside(self, plan, roster):
        cfg = MissionConfig(days=14)
        sched = build_day_schedule(cfg, roster, day=3, rng=np.random.default_rng(1))
        eva_astro = next(
            a for a in roster.ids
            if any(s.activity == Activity.EVA for s in sched.of(a))
        )
        model = MovementModel(plan)
        arrays = model.fill_day(
            roster.profile(eva_astro), sched.of(eva_astro),
            cfg.daytime_start_s, cfg.frames_per_day, np.random.default_rng(2),
        )
        eva_frames = arrays.activity == int(Activity.EVA)
        assert eva_frames.any()
        assert (arrays.room[eva_frames] == OUTSIDE).all()

    def test_mobility_scales_walking(self, filled):
        arrays_by_astro, _, _ = filled
        assert arrays_by_astro["C"].walking.mean() > 1.5 * arrays_by_astro["A"].walking.mean()


class TestWanderRect:
    def test_impaired_extent_small(self, plan, roster):
        room = plan.room("biolab").rect
        a_rect = wander_rect(roster.profile("A"), room)
        c_rect = wander_rect(roster.profile("C"), room)
        assert a_rect.area < 0.3 * c_rect.area

    def test_centered(self, plan, roster):
        room = plan.room("office").rect
        inner = wander_rect(roster.profile("A"), room)
        assert inner.center == pytest.approx(room.shrink(0.5).center)

    def test_anchor_inside_room(self, plan, roster, rng):
        room = plan.room("kitchen").rect
        for _ in range(50):
            p = sample_anchor(roster.profile("D"), room, Activity.WORK, rng)
            assert room.contains(p)

    def test_group_anchor_near_center(self, plan, roster, rng):
        room = plan.room("kitchen").rect
        cx, cy = room.center
        for _ in range(50):
            p = sample_anchor(roster.profile("D"), room, Activity.MEAL, rng)
            assert np.hypot(p[0] - cx, p[1] - cy) <= 1.2


class TestDayArrays:
    def test_empty_initial_state(self):
        arrays = DayArrays.empty(10)
        assert (arrays.room == OUTSIDE).all()
        assert np.isnan(arrays.x).all()
        assert not arrays.walking.any()
