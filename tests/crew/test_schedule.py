"""Tests for the daily schedule builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MissionConfig
from repro.core.errors import ConfigError
from repro.core.units import HOUR, MINUTE, parse_hhmm
from repro.crew.roster import icares_roster
from repro.crew.schedule import (
    DaySchedule,
    Slot,
    build_day_schedule,
    lunch_time_s,
    override_slots,
    scheduled_meal_times,
)
from repro.crew.tasks import Activity


@pytest.fixture(scope="module")
def cfg():
    return MissionConfig(days=14)


@pytest.fixture(scope="module")
def roster():
    return icares_roster()


def build(cfg, roster, day=2, seed=0, absent=frozenset()):
    return build_day_schedule(cfg, roster, day, np.random.default_rng(seed), absent)


class TestCoverage:
    def test_validates(self, cfg, roster):
        build(cfg, roster).validate()

    def test_every_astronaut_scheduled(self, cfg, roster):
        sched = build(cfg, roster)
        assert set(sched.slots) == set(roster.ids)

    def test_slots_tile_daytime(self, cfg, roster):
        sched = build(cfg, roster)
        for astro in roster.ids:
            slots = sched.of(astro)
            assert slots[0].t0 == cfg.daytime_start_s
            assert slots[-1].t1 == cfg.daytime_start_s + cfg.daytime_s
            for a, b in zip(slots, slots[1:]):
                assert a.t1 == pytest.approx(b.t0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 14))
    def test_coverage_property(self, seed, day):
        cfg = MissionConfig(days=14)
        roster = icares_roster()
        sched = build_day_schedule(cfg, roster, day, np.random.default_rng(seed))
        sched.validate()


class TestStructure:
    def test_three_meals_total_90_minutes(self, cfg, roster):
        sched = build(cfg, roster)
        for astro in roster.ids:
            meal_s = sum(s.duration for s in sched.of(astro) if s.activity == Activity.MEAL)
            assert meal_s == pytest.approx(1.5 * HOUR)

    def test_meals_in_kitchen(self, cfg, roster):
        sched = build(cfg, roster)
        for astro in roster.ids:
            assert all(
                s.room == "kitchen" for s in sched.of(astro) if s.activity == Activity.MEAL
            )

    def test_lunch_at_1230(self, cfg):
        assert lunch_time_s(cfg) == parse_hhmm("12:30")

    def test_meal_times(self, cfg):
        times = scheduled_meal_times(cfg)
        assert times["breakfast"] == parse_hhmm("07:00")
        assert times["dinner"] == parse_hhmm("18:30")

    def test_briefings_in_office(self, cfg, roster):
        sched = build(cfg, roster)
        briefings = [s for s in sched.of("A") if s.activity == Activity.BRIEFING]
        assert len(briefings) == 2
        assert all(s.room == "office" for s in briefings)

    def test_eva_day_has_eva_pair(self, cfg, roster):
        sched = build(cfg, roster, day=3)  # 3 % 3 == 0
        eva_crew = [
            astro for astro in roster.ids
            if any(s.activity == Activity.EVA for s in sched.of(astro))
        ]
        assert len(eva_crew) == 2

    def test_eva_has_prep_and_post_in_airlock(self, cfg, roster):
        sched = build(cfg, roster, day=3)
        for astro in roster.ids:
            slots = sched.of(astro)
            if any(s.activity == Activity.EVA for s in slots):
                kinds = [s.activity for s in slots]
                i = kinds.index(Activity.EVA)
                assert kinds[i - 1] == Activity.EVA_PREP
                assert kinds[i + 1] == Activity.EVA_POST
                assert slots[i - 1].room == "airlock"
                assert slots[i].room is None  # on the surface

    def test_non_eva_day_has_none(self, cfg, roster):
        sched = build(cfg, roster, day=4)
        assert not any(
            s.activity == Activity.EVA for a in roster.ids for s in sched.of(a)
        )

    def test_absent_astronaut_single_slot(self, cfg, roster):
        sched = build(cfg, roster, day=5, absent={"C"})
        slots = sched.of("C")
        assert len(slots) == 1
        assert slots[0].activity == Activity.ABSENT

    def test_skipped_breaks_produce_water_dashes(self, roster):
        cfg = MissionConfig(days=14)
        # Across several seeds, someone must skip a break and dash.
        found = False
        for seed in range(5):
            sched = build(cfg, roster, seed=seed)
            for astro in roster.ids:
                if any(s.label == "water-dash" for s in sched.of(astro)):
                    found = True
        assert found


class TestOverride:
    def test_override_inserts_window(self):
        slots = [Slot(0.0, 100.0, Activity.WORK, "office")]
        out = override_slots(slots, 20.0, 40.0, Activity.BREAK, "kitchen", "chat")
        assert [(s.t0, s.t1) for s in out] == [(0.0, 20.0), (20.0, 40.0), (40.0, 100.0)]
        assert out[1].room == "kitchen"

    def test_override_spanning_slots(self):
        slots = [
            Slot(0.0, 50.0, Activity.WORK, "office"),
            Slot(50.0, 100.0, Activity.WORK, "biolab"),
        ]
        out = override_slots(slots, 40.0, 60.0, Activity.RESTROOM, "restroom")
        assert [(s.t0, s.t1) for s in out] == [(0.0, 40.0), (40.0, 60.0), (60.0, 100.0)]

    def test_override_entire_range(self):
        slots = [Slot(0.0, 10.0, Activity.WORK, "office")]
        out = override_slots(slots, 0.0, 10.0, Activity.ABSENT, None)
        assert len(out) == 1 and out[0].activity == Activity.ABSENT

    def test_override_outside_raises(self):
        slots = [Slot(0.0, 10.0, Activity.WORK, "office")]
        with pytest.raises(ConfigError):
            override_slots(slots, 20.0, 30.0, Activity.BREAK, "kitchen")

    def test_empty_window_raises(self):
        slots = [Slot(0.0, 10.0, Activity.WORK, "office")]
        with pytest.raises(ConfigError):
            override_slots(slots, 5.0, 5.0, Activity.BREAK, "kitchen")

    def test_preserves_contiguity(self):
        sched = DaySchedule(day=1, start_s=0.0, end_s=100.0,
                            slots={"A": [Slot(0.0, 100.0, Activity.WORK, "office")]})
        sched.slots["A"] = override_slots(sched.slots["A"], 10.0, 20.0,
                                          Activity.BREAK, "kitchen")
        sched.validate()


class TestSlot:
    def test_empty_slot_rejected(self):
        with pytest.raises(ConfigError):
            Slot(10.0, 10.0, Activity.WORK, "office")

    def test_duration(self):
        assert Slot(0.0, 30 * MINUTE, Activity.MEAL, "kitchen").duration == 1800.0
