"""Tests for mission-level behavior orchestration (uses session truth)."""

import numpy as np
import pytest

from repro.core.config import MissionConfig
from repro.core.units import parse_hhmm
from repro.crew.behavior import simulate_mission
from repro.crew.tasks import Activity


class TestMissionTruth:
    def test_all_traces_present(self, truth, mission_cfg):
        for astro in truth.roster.ids:
            for day in range(1, mission_cfg.days + 1):
                trace = truth.trace(astro, day)
                assert trace.n_frames == mission_cfg.frames_per_day

    def test_schedules_recorded(self, truth, mission_cfg):
        assert sorted(truth.schedules) == list(range(1, mission_cfg.days + 1))

    def test_death_event_recorded(self, truth, mission_cfg):
        events = truth.events_on(mission_cfg.events.death_day, "death")
        assert len(events) == 1
        assert events[0].info["astronaut"] == "C"

    def test_c_absent_after_death(self, truth, mission_cfg):
        day = mission_cfg.events.death_day + 1
        trace = truth.trace("C", day)
        assert not trace.present().any()
        assert not trace.speaking.any()

    def test_c_present_before_death(self, truth, mission_cfg):
        trace = truth.trace("C", mission_cfg.events.death_day - 1)
        assert trace.present().mean() > 0.7

    def test_c_vanishes_at_death_time(self, truth, mission_cfg):
        trace = truth.trace("C", mission_cfg.events.death_day)
        death_idx = int((parse_hhmm(mission_cfg.events.death_time) - trace.t0) / trace.dt)
        assert not trace.present()[death_idx:].any()

    def test_consolation_gathers_survivors_in_kitchen(self, truth, mission_cfg):
        day = mission_cfg.events.death_day
        kitchen = truth.plan.index_of("kitchen")
        conso_idx = int(
            (parse_hhmm(mission_cfg.events.consolation_time) + 300 - truth.trace("A", day).t0)
        )
        for astro in truth.roster.ids:
            if astro == "C":
                continue
            assert truth.trace(astro, day).room[conso_idx] == kitchen

    def test_restroom_visits_happen(self, truth):
        trace = truth.trace("D", 2)
        assert (trace.activity == int(Activity.RESTROOM)).any()

    def test_commander_visits_other_rooms(self, truth):
        slots = truth.schedules[2].of("B")
        assert any(s.label == "supervision" for s in slots)

    def test_room_matrix_shape(self, truth, mission_cfg):
        matrix = truth.room_matrix(2)
        assert matrix.shape == (truth.roster.size, mission_cfg.frames_per_day)

    def test_deterministic(self, mission_cfg, truth):
        again = simulate_mission(mission_cfg)
        a = truth.trace("F", 3)
        b = again.trace("F", 3)
        np.testing.assert_array_equal(a.room, b.room)
        np.testing.assert_array_equal(a.speaking, b.speaking)

    def test_speaking_only_when_present(self, truth, mission_cfg):
        for astro in truth.roster.ids:
            for day in (2, 3):
                trace = truth.trace(astro, day)
                assert not (trace.speaking & ~trace.present()).any()

    def test_loudness_set_iff_speaking(self, truth):
        trace = truth.trace("B", 2)
        assert (trace.loudness[trace.speaking] > 0).all()
        assert (trace.loudness[~trace.speaking] == 0).all()

    def test_machine_speech_only_near_impaired(self, truth, mission_cfg):
        for day in range(2, mission_cfg.days + 1):
            for astro in truth.roster.ids:
                trace = truth.trace(astro, day)
                if astro != "A":
                    assert not trace.machine_speech.any()


class TestScaling:
    def test_small_crew_mission(self):
        cfg = MissionConfig(days=2, crew_size=3, seed=5, events=None)
        truth = simulate_mission(cfg)
        assert len(truth.traces) == 6  # 3 crew x 2 days

    def test_coarse_frames(self):
        cfg = MissionConfig(days=2, frame_dt=5.0, seed=5, events=None)
        truth = simulate_mission(cfg)
        assert truth.trace("A", 1).n_frames == cfg.frames_per_day
