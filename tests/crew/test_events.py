"""Tests for scripted events and day-level mood factors."""

import numpy as np
import pytest

from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.units import parse_hhmm
from repro.crew.events_script import (
    DECEASED,
    apply_scripted_events,
    day_mobility_factor,
    day_talk_factor,
    deceased_absent,
)
from repro.crew.roster import icares_roster
from repro.crew.schedule import build_day_schedule
from repro.crew.tasks import Activity


@pytest.fixture(scope="module")
def cfg():
    return MissionConfig(days=14)


@pytest.fixture(scope="module")
def roster():
    return icares_roster()


class TestTalkFactor:
    def test_declines_over_mission(self, cfg):
        assert day_talk_factor(cfg, 2) > day_talk_factor(cfg, 9) > day_talk_factor(cfg, 14)

    def test_famine_collapse(self, cfg):
        assert day_talk_factor(cfg, 11) < 0.3
        assert day_talk_factor(cfg, 12) < 0.3

    def test_grief_day(self, cfg):
        assert day_talk_factor(cfg, 5) < day_talk_factor(cfg, 6)

    def test_events_disabled(self):
        cfg = MissionConfig(days=14, events=None)
        assert day_talk_factor(cfg, 11) > 0.3


class TestMobilityFactor:
    def test_calm_day_3(self, cfg):
        assert day_mobility_factor(cfg, 3) < day_mobility_factor(cfg, 2)

    def test_post_death_bustle(self, cfg):
        assert day_mobility_factor(cfg, 5) > day_mobility_factor(cfg, 2)

    def test_famine_lethargy(self, cfg):
        assert day_mobility_factor(cfg, 11) < day_mobility_factor(cfg, 10)


class TestDeathDay:
    def test_deceased_absent_after_death_day(self, cfg):
        assert not deceased_absent(cfg, 4)
        assert deceased_absent(cfg, 5)

    def test_death_day_schedule(self, cfg, roster):
        sched = build_day_schedule(cfg, roster, 4, np.random.default_rng(0))
        records = apply_scripted_events(sched, cfg, roster, 4)
        kinds = {r.kind for r in records}
        assert kinds == {"death", "consolation"}

        death_s = parse_hhmm(cfg.events.death_time)
        c_slots = sched.of(DECEASED)
        after = [s for s in c_slots if s.t0 >= death_s]
        assert all(s.activity == Activity.ABSENT for s in after)
        before = [s for s in c_slots if s.t1 <= death_s]
        assert any(s.activity != Activity.ABSENT for s in before)

    def test_consolation_in_kitchen_for_survivors(self, cfg, roster):
        sched = build_day_schedule(cfg, roster, 4, np.random.default_rng(0))
        apply_scripted_events(sched, cfg, roster, 4)
        conso_s = parse_hhmm(cfg.events.consolation_time)
        for astro in roster.ids:
            if astro == DECEASED:
                continue
            slot = next(s for s in sched.of(astro) if s.t0 <= conso_s < s.t1)
            assert slot.activity == Activity.CONSOLATION
            assert slot.room == "kitchen"

    def test_schedule_still_valid_after_overrides(self, cfg, roster):
        sched = build_day_schedule(cfg, roster, 4, np.random.default_rng(0))
        apply_scripted_events(sched, cfg, roster, 4)
        sched.validate()

    def test_no_events_on_ordinary_day(self, cfg, roster):
        sched = build_day_schedule(cfg, roster, 6, np.random.default_rng(0))
        assert apply_scripted_events(sched, cfg, roster, 6) == []

    def test_famine_and_reprimand_records(self, cfg, roster):
        for day, kind in ((11, "famine"), (12, "reprimand")):
            sched = build_day_schedule(cfg, roster, day, np.random.default_rng(0))
            records = apply_scripted_events(sched, cfg, roster, day)
            assert [r.kind for r in records] == [kind]

    def test_short_mission_skips_out_of_range_events(self, roster):
        cfg = MissionConfig(days=3)
        sched = build_day_schedule(cfg, roster, 3, np.random.default_rng(0))
        assert apply_scripted_events(sched, cfg, roster, 3) == []


class TestCustomEvents:
    def test_custom_death_day(self, roster):
        events = ScriptedEventsConfig(death_day=2, badge_reuse_day=3)
        cfg = MissionConfig(days=5, events=events)
        assert deceased_absent(cfg, 3)
