"""Tests for centrality: HITS implementation and Table I columns."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.centrality import company_and_authority, hits_authority
from repro.core.errors import DataError


class TestHits:
    def test_star_graph_center_wins(self):
        # Node 0 connected to everyone: top authority.
        w = np.zeros((4, 4))
        w[0, 1:] = w[1:, 0] = 1.0
        authority = hits_authority(w)
        assert np.argmax(authority) == 0

    def test_normalized_l1(self):
        w = np.random.default_rng(0).random((5, 5))
        w = (w + w.T) / 2
        authority = hits_authority(w)
        assert authority.sum() == pytest.approx(1.0)

    def test_matches_networkx(self):
        rng = np.random.default_rng(3)
        w = rng.random((6, 6)) * 10
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0.0)
        ours = hits_authority(w, iterations=500)
        graph = nx.from_numpy_array(w)
        __, nx_auth = nx.hits(graph, max_iter=500, normalized=True)
        theirs = np.array([nx_auth[i] for i in range(6)])
        theirs = theirs / theirs.sum()
        np.testing.assert_allclose(ours, theirs, atol=1e-4)

    def test_empty_graph(self):
        assert hits_authority(np.zeros((0, 0))).shape == (0,)

    def test_disconnected_zero_weights(self):
        authority = hits_authority(np.zeros((3, 3)))
        assert (authority == 0).all()

    def test_rejects_non_square(self):
        with pytest.raises(DataError):
            hits_authority(np.zeros((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(DataError):
            hits_authority(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_probability_simplex_property(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.random((n, n))
        w = (w + w.T) / 2
        authority = hits_authority(w)
        assert (authority >= -1e-12).all()
        assert authority.sum() == pytest.approx(1.0)


class TestTable1Centrality:
    def test_c_is_na(self, sensing):
        """C has 3 of 4 instrumented days here -- below no threshold;
        use the full-mission rule: coverage-based n/a."""
        result = company_and_authority(sensing, min_coverage=0.9)
        assert result.company_norm["C"] is None
        assert result.authority_norm["C"] is None

    def test_normalized_max_is_one(self, sensing):
        result = company_and_authority(sensing, min_coverage=0.9)
        values = [v for v in result.company_norm.values() if v is not None]
        assert max(values) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in values)

    def test_company_and_authority_correlate(self, sensing):
        result = company_and_authority(sensing, min_coverage=0.9)
        astros = [a for a, v in result.company_norm.items() if v is not None]
        company = np.array([result.company_norm[a] for a in astros])
        authority = np.array([result.authority_norm[a] for a in astros])
        assert np.corrcoef(company, authority)[0, 1] > 0.5

    def test_company_seconds_positive(self, sensing):
        result = company_and_authority(sensing)
        assert all(v >= 0 for v in result.company_s.values())
