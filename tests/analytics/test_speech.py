"""Tests for the Fig-6 speech analysis."""

import numpy as np
import pytest

from repro.analytics.dataset import BadgeDaySummary
from repro.analytics.speech import (
    daily_speech_fraction,
    loud_voice_mask,
    mission_speech_fraction,
    speech_windows,
)


def make_summary(voice_db, stability=None, active=None, dt=1.0):
    voice = np.asarray(voice_db, dtype=np.float32)
    n = voice.shape[0]
    if stability is None:
        stability = np.full(n, 0.4, dtype=np.float32)
    if active is None:
        active = np.ones(n, dtype=bool)
    zeros = np.zeros(n, dtype=np.float32)
    return BadgeDaySummary(
        badge_id=0, day=2, t0=0.0, dt=dt,
        active=active, worn=np.ones(n, dtype=bool),
        room=np.zeros(n, dtype=np.int8), x=zeros, y=zeros,
        accel_rms=zeros, voice_db=voice,
        dominant_pitch_hz=np.full(n, 120.0, dtype=np.float32),
        pitch_stability=np.asarray(stability, dtype=np.float32), sound_db=zeros,
    )


class TestPaperRule:
    def test_exactly_20_percent_is_speech(self):
        """A 15 s interval with exactly 3 loud seconds (20%) counts."""
        voice = np.full(15, 40.0)
        voice[:3] = 65.0
        windows = speech_windows(make_summary(voice))
        assert windows.is_speech[0]

    def test_below_20_percent_is_not(self):
        voice = np.full(15, 40.0)
        voice[:2] = 65.0
        windows = speech_windows(make_summary(voice))
        assert not windows.is_speech[0]

    def test_level_threshold_60db(self):
        quiet = np.full(15, 59.0)
        loud = np.full(15, 60.0)
        assert not speech_windows(make_summary(quiet)).is_speech[0]
        assert speech_windows(make_summary(loud)).is_speech[0]

    def test_window_count(self):
        windows = speech_windows(make_summary(np.zeros(150)))
        assert len(windows.is_speech) == 10

    def test_unrecorded_window_excluded(self):
        voice = np.full(30, 65.0)
        active = np.ones(30, dtype=bool)
        active[15:] = False
        windows = speech_windows(make_summary(voice, active=active))
        assert windows.recorded[0] and not windows.recorded[1]
        assert windows.fraction() == 1.0


class TestMachineRejection:
    def test_tts_frames_rejected(self):
        voice = np.full(15, 70.0)
        stability = np.full(15, 0.95)  # monotone screen reader
        summary = make_summary(voice, stability=stability)
        assert not speech_windows(summary, reject_machine=True).is_speech[0]
        assert speech_windows(summary, reject_machine=False).is_speech[0]

    def test_human_frames_kept(self):
        summary = make_summary(np.full(15, 70.0))
        assert loud_voice_mask(summary).all()


class TestMissionLevel:
    def test_fig6_band(self, sensing):
        series = daily_speech_fraction(sensing)
        values = [v for per_day in series.values() for v in per_day.values()]
        assert 0.05 < np.mean(values) < 0.9

    def test_c_is_the_top_talker(self, sensing):
        fractions = mission_speech_fraction(sensing)
        assert max(fractions, key=fractions.get) == "C"

    def test_machine_filter_lowers_a(self, sensing):
        """A's badge hears the screen reader; rejecting it lowers A's
        speech fraction but nobody else's materially."""
        with_filter = mission_speech_fraction(sensing, reject_machine=True)
        without = mission_speech_fraction(sensing, reject_machine=False)
        assert without["A"] >= with_filter["A"]
        assert without["E"] == pytest.approx(with_filter["E"], abs=0.02)

    def test_every_astronaut_has_series(self, sensing, truth):
        series = daily_speech_fraction(sensing)
        assert set(series) == set(truth.roster.ids)
