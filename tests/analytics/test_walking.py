"""Tests for the Fig-4 walking analysis."""

import numpy as np
import pytest

from repro.analytics.walking import (
    daily_walking_fraction,
    mission_walking_fraction,
    walking_fraction,
    walking_mask,
)


class TestWalkingMask:
    def test_requires_worn(self, sensing):
        summary = sensing.summary(0, 2)
        mask = walking_mask(summary)
        assert not (mask & ~summary.worn).any()

    def test_threshold_effect(self, sensing):
        summary = sensing.summary(3, 2)
        low = walking_mask(summary, threshold=0.5).sum()
        high = walking_mask(summary, threshold=2.0).sum()
        assert high < low


class TestFractions:
    def test_fig4_band(self, sensing):
        """Paper Fig 4: daily fractions roughly within 0.01-0.12."""
        series = daily_walking_fraction(sensing)
        values = [v for per_day in series.values() for v in per_day.values()]
        assert values
        assert min(values) > 0.005
        assert max(values) < 0.15

    def test_c_most_mobile(self, sensing):
        fractions = mission_walking_fraction(sensing)
        assert max(fractions, key=fractions.get) == "C"

    def test_a_least_mobile(self, sensing):
        fractions = mission_walking_fraction(sensing)
        assert min(fractions, key=fractions.get) == "A"

    def test_energetic_pair_above_reserved_pair(self, sensing):
        """Paper: 'D and F were walking significantly more than B and E'."""
        fractions = mission_walking_fraction(sensing)
        assert min(fractions["D"], fractions["F"]) > max(fractions["B"], fractions["E"])

    def test_c_absent_after_death(self, sensing, mission_cfg):
        series = daily_walking_fraction(sensing)
        assert all(day <= mission_cfg.events.death_day for day in series["C"])

    def test_empty_summary_zero(self, sensing):
        summary = sensing.summary(0, 2)
        clone = type(summary)(
            badge_id=0, day=2, t0=0.0, dt=1.0,
            active=np.zeros(10, dtype=bool), worn=np.zeros(10, dtype=bool),
            room=np.full(10, -1, dtype=np.int8),
            x=np.zeros(10, dtype=np.float32), y=np.zeros(10, dtype=np.float32),
            accel_rms=np.zeros(10, dtype=np.float32),
            voice_db=np.zeros(10, dtype=np.float32),
            dominant_pitch_hz=np.zeros(10, dtype=np.float32),
            pitch_stability=np.zeros(10, dtype=np.float32),
            sound_db=np.zeros(10, dtype=np.float32),
        )
        assert walking_fraction(clone) == 0.0

    def test_corrected_vs_assumed_differ_on_swap_day(self, sensing, mission_cfg):
        swap_day = mission_cfg.events.badge_swap_day
        corrected = daily_walking_fraction(sensing, corrected=True)
        assumed = daily_walking_fraction(sensing, corrected=False)
        # On the swap day, A's corrected series uses B's badge and
        # vice versa, so per-astronaut values differ between modes.
        assert corrected["A"][swap_day] != assumed["A"][swap_day]
