"""Tests for the Fig-5 day timeline."""

import numpy as np
import pytest

from repro.analytics.timeline import crew_in_room_bins, day_timeline
from repro.core.units import parse_hhmm


@pytest.fixture(scope="module")
def timeline(sensing, mission_cfg):
    return day_timeline(sensing, mission_cfg.events.death_day, bin_s=300.0)


class TestStructure:
    def test_tracks_for_all_active_badges(self, timeline, sensing, mission_cfg):
        day = mission_cfg.events.death_day
        assert len(timeline.tracks) == len(sensing.badges_on(day))

    def test_bins_cover_daytime(self, timeline, mission_cfg):
        n_bins = len(timeline.tracks[0].speech_fraction)
        assert n_bins == int(mission_cfg.daytime_s / 300.0)

    def test_speech_fraction_in_unit_range(self, timeline):
        for track in timeline.tracks:
            assert (track.speech_fraction >= 0).all()
            assert (track.speech_fraction <= 1).all()

    def test_bin_times(self, timeline, mission_cfg):
        times = timeline.bin_times()
        assert times[0] == mission_cfg.daytime_start_s
        assert times[1] - times[0] == 300.0

    def test_track_lookup(self, timeline):
        track = timeline.track("B")
        assert track.astro_id == "B"
        with pytest.raises(KeyError):
            timeline.track("Z")


class TestFig5Content:
    def test_lunch_bins_loud_in_kitchen(self, timeline, sensing, truth):
        kitchen = truth.plan.index_of("kitchen")
        lunch_bin = int((parse_hhmm("12:40") - timeline.t0) / timeline.bin_s)
        in_kitchen = crew_in_room_bins(timeline, kitchen)[lunch_bin]
        assert in_kitchen >= 4
        loud = [t.speech_fraction[lunch_bin] for t in timeline.tracks
                if t.dominant_room[lunch_bin] == kitchen]
        assert np.mean(loud) > 0.3

    def test_consolation_bins_in_kitchen_quieter(self, timeline, truth, mission_cfg):
        kitchen = truth.plan.index_of("kitchen")
        conso_bin = int(
            (parse_hhmm(mission_cfg.events.consolation_time) + 600 - timeline.t0)
            / timeline.bin_s
        )
        lunch_bin = int((parse_hhmm("12:40") - timeline.t0) / timeline.bin_s)
        crew_conso = crew_in_room_bins(timeline, kitchen)[conso_bin]
        assert crew_conso >= 4  # survivors gathered
        conso_speech = np.mean([t.speech_fraction[conso_bin] for t in timeline.tracks])
        lunch_speech = np.mean([t.speech_fraction[lunch_bin] for t in timeline.tracks])
        assert conso_speech < lunch_speech

    def test_c_track_goes_dark_after_death(self, timeline, mission_cfg):
        track = timeline.track("C")
        death_bin = int(
            (parse_hhmm(mission_cfg.events.death_time) - timeline.t0) / timeline.bin_s
        )
        assert (track.dominant_room[death_bin + 1:] == -1).all()
