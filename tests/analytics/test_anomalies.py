"""Tests for anomaly detection."""

import pytest

from repro.analytics.anomalies import (
    badge_swap_suspicions,
    machine_speech_share,
    quiet_days,
    unplanned_gatherings,
)
from repro.core.units import parse_hhmm


class TestUnplannedGatherings:
    def test_consolation_flagged(self, sensing, truth, mission_cfg):
        day = mission_cfg.events.death_day
        sched = truth.schedules[day]
        scheduled = [
            (s.t0, s.t1)
            for s in sched.of("B")
            if s.activity.is_group and s.label != "consolation"
        ]
        found = unplanned_gatherings(sensing, day, scheduled)
        conso = parse_hhmm(mission_cfg.events.consolation_time)
        assert any(abs(m.t0 - conso) < 900 for m in found)

    def test_ordinary_day_mostly_clean(self, sensing, truth):
        day = 2
        sched = truth.schedules[day]
        scheduled = [(s.t0, s.t1) for s in sched.of("B") if s.activity.is_group]
        found = unplanned_gatherings(sensing, day, scheduled)
        assert len(found) <= 1  # allow an occasional crowded meal spillover


class TestBadgeSwap:
    def test_swap_day_flagged_under_naive_assignment(self, sensing, mission_cfg):
        suspicions = badge_swap_suspicions(sensing, corrected=False)
        swap_day = mission_cfg.events.badge_swap_day
        flagged = {(s.badge_id, s.day) for s in suspicions}
        assert (0, swap_day) in flagged or (1, swap_day) in flagged

    def test_corrected_assignment_clean_on_swap_day(self, sensing, mission_cfg):
        suspicions = badge_swap_suspicions(sensing, corrected=True)
        swap_day = mission_cfg.events.badge_swap_day
        assert not any(
            s.day == swap_day and s.badge_id in (0, 1) for s in suspicions
        )

    def test_pitch_evidence_is_recorded(self, sensing):
        for suspicion in badge_swap_suspicions(sensing, corrected=False):
            assert suspicion.observed_median_pitch_hz > 0


class TestQuietDays:
    def test_no_famine_in_short_mission(self, sensing):
        # The 5-day fixture has no famine/reprimand; nothing should be
        # dramatically below trend.
        flagged = quiet_days(sensing, threshold=0.25)
        assert flagged == []


class TestMachineSpeech:
    def test_a_badge_highest_share(self, sensing, mission_cfg):
        shares = machine_speech_share(sensing)
        a_days = [v for (b, d), v in shares.items()
                  if b == 0 and d != mission_cfg.events.badge_swap_day]
        e_days = [v for (b, d), v in shares.items() if b == 4]
        assert max(a_days) > max(e_days)

    def test_shares_in_unit_range(self, sensing):
        shares = machine_speech_share(sensing)
        assert all(0.0 <= v <= 1.0 for v in shares.values())
