"""Tests for pairwise interaction analysis."""

import numpy as np
import pytest

from repro.analytics.interactions import (
    company_seconds,
    ir_contact_seconds,
    pair_copresence_seconds,
    pair_meeting_seconds,
    pairwise_matrix,
    private_talk_seconds,
)


class TestCompany:
    def test_everyone_has_company(self, sensing, truth):
        company = company_seconds(sensing)
        for astro in truth.roster.ids:
            assert company.get(astro, 0.0) > 3600.0  # at least meals

    def test_commander_not_least_accompanied(self, sensing):
        """Over a full mission B is the most accompanied (checked by the
        Table I benchmark); the 4-instrumented-day fixture is noisy, so
        here we only pin the robust end of the claim."""
        company = company_seconds(sensing)
        alive = {a: v for a, v in company.items() if a != "C"}
        ranked = sorted(alive, key=alive.get, reverse=True)
        assert ranked.index("B") < len(ranked) - 1

    def test_reserved_e_and_solitary_a_in_lower_half(self, sensing):
        company = company_seconds(sensing)
        alive = {a: v for a, v in company.items() if a != "C"}
        ranked = sorted(alive, key=alive.get)  # ascending
        assert ranked.index("E") < 3
        assert ranked.index("A") < 3


class TestPairwise:
    def test_symmetric_keys(self, sensing):
        pairs = pair_copresence_seconds(sensing)
        for a, b in pairs:
            assert a < b

    def test_af_exceeds_de_in_private_talk(self, sensing):
        """Paper: A-F talked privately ~5 h more than D-E."""
        private = private_talk_seconds(sensing)
        assert private.get(("A", "F"), 0.0) > private.get(("D", "E"), 0.0)

    def test_af_exceeds_de_in_meetings(self, sensing):
        """Paper: A-F spent ~10 h more in all meetings than D-E."""
        meetings = pair_meeting_seconds(sensing)
        assert meetings.get(("A", "F"), 0.0) > meetings.get(("D", "E"), 0.0)

    def test_private_subset_of_meetings(self, sensing):
        private = private_talk_seconds(sensing)
        meetings = pair_meeting_seconds(sensing)
        for pair, seconds in private.items():
            assert seconds <= meetings.get(pair, 0.0) + 1e-6

    def test_meetings_subset_of_copresence(self, sensing):
        copresence = pair_copresence_seconds(sensing)
        meetings = pair_meeting_seconds(sensing)
        for pair, seconds in meetings.items():
            assert seconds <= copresence.get(pair, 0.0) + 1e-6

    def test_ir_contacts_positive_for_close_pairs(self, sensing):
        ir = ir_contact_seconds(sensing)
        assert ir.get(("A", "F"), 0.0) > 0.0

    def test_ir_less_than_copresence(self, sensing):
        ir = ir_contact_seconds(sensing)
        copresence = pair_copresence_seconds(sensing)
        for pair, seconds in ir.items():
            assert seconds < copresence.get(pair, float("inf"))


class TestMatrix:
    def test_pairwise_matrix_symmetric(self, sensing, truth):
        pairs = pair_copresence_seconds(sensing)
        matrix = pairwise_matrix(pairs, truth.roster.ids)
        np.testing.assert_allclose(matrix, matrix.T)
        assert (np.diag(matrix) == 0).all()

    def test_matrix_values_match_dict(self, sensing, truth):
        pairs = pair_copresence_seconds(sensing)
        matrix = pairwise_matrix(pairs, truth.roster.ids)
        i, j = truth.roster.index("A"), truth.roster.index("F")
        assert matrix[i, j] == pytest.approx(pairs[("A", "F")])
