"""Tests for meeting detection (Fig 5)."""

import pytest

from repro.analytics.meetings import detect_meetings, whole_crew_meetings
from repro.core.units import parse_hhmm


class TestDetection:
    def test_meals_detected(self, sensing, truth):
        meetings = detect_meetings(sensing, 2, min_participants=4)
        kitchen = truth.plan.index_of("kitchen")
        meal_times = [parse_hhmm("07:00"), parse_hhmm("12:30"), parse_hhmm("18:30")]
        for meal in meal_times:
            assert any(
                m.room == kitchen and m.t0 - 300 <= meal <= m.t1 for m in meetings
            ), f"no kitchen meeting around {meal}"

    def test_briefings_detected_in_office(self, sensing, truth):
        meetings = detect_meetings(sensing, 2, min_participants=4)
        office = truth.plan.index_of("office")
        assert any(m.room == office for m in meetings)

    def test_sorted_by_time(self, sensing):
        meetings = detect_meetings(sensing, 2)
        starts = [m.t0 for m in meetings]
        assert starts == sorted(starts)

    def test_participants_at_least_quorum(self, sensing):
        for meeting in detect_meetings(sensing, 3, min_participants=3):
            assert len(meeting.badge_ids) >= 3

    def test_min_duration_respected(self, sensing):
        for meeting in detect_meetings(sensing, 2, min_duration_s=600):
            assert meeting.duration >= 600


class TestConsolation:
    def test_consolation_meeting_found(self, sensing, truth, mission_cfg):
        """Everyone (minus C) in the kitchen shortly after the death."""
        day = mission_cfg.events.death_day
        conso = parse_hhmm(mission_cfg.events.consolation_time)
        meetings = detect_meetings(sensing, day, min_participants=4)
        kitchen = truth.plan.index_of("kitchen")
        matches = [
            m for m in meetings
            if m.room == kitchen and abs(m.t0 - conso) < 600
        ]
        assert matches
        assert len(matches[0].badge_ids) >= 4

    def test_consolation_quieter_than_lunch(self, sensing, truth, mission_cfg):
        """Fig 5: 'the conversation was clearly quieter than during
        lunch'."""
        day = mission_cfg.events.death_day
        conso = parse_hhmm(mission_cfg.events.consolation_time)
        lunch = parse_hhmm("12:30")
        kitchen = truth.plan.index_of("kitchen")
        meetings = [m for m in detect_meetings(sensing, day, min_participants=4)
                    if m.room == kitchen]
        conso_m = min(meetings, key=lambda m: abs(m.t0 - conso))
        lunch_m = min(meetings, key=lambda m: abs(m.t0 - lunch))
        # The short fixture merges the consolation with the adjacent
        # afternoon break, so the contrast is attenuated vs the full
        # mission (where it is ~15 dB); it must still point down.
        assert conso_m.mean_voice_db < lunch_m.mean_voice_db - 2.0

    def test_c_badge_attributed_to_f_after_reuse(self, sensing, mission_cfg):
        """F picks up C's badge on the reuse day, so badge 2 reappears
        in meetings -- worn by F."""
        day = mission_cfg.events.badge_reuse_day
        meetings = whole_crew_meetings(sensing, day)
        assert meetings, "crew meals should register as whole-crew meetings"
        assert sensing.wearer_of(2, day) == "F"
        assert all(5 not in meeting.badge_ids for meeting in meetings)
