"""Tests for speaker identification and sex classification."""

import numpy as np
import pytest

from repro.analytics.speakers import (
    VoiceProfile,
    classify_sex,
    enroll_profiles,
    identify_speakers,
    own_speech_mask,
    sex_classification_report,
)
from repro.core.errors import DataError


class TestClassifySex:
    def test_boundary(self):
        out = classify_sex(np.array([120.0, 210.0, 165.0]))
        assert list(out) == ["m", "f", "f"]

    def test_nan_unknown(self):
        assert classify_sex(np.array([np.nan]))[0] == "?"


class TestEnrollment:
    @pytest.fixture(scope="class")
    def profiles(self, sensing):
        return enroll_profiles(sensing)

    def test_everyone_enrolled(self, profiles, truth):
        assert set(profiles) == set(truth.roster.ids)

    def test_enrolled_sex_matches_roster(self, profiles, truth):
        for astro, profile in profiles.items():
            assert profile.sex == truth.roster.profile(astro).sex

    def test_pitch_near_profile(self, profiles, truth):
        for astro, profile in profiles.items():
            expected = truth.roster.profile(astro).voice_pitch_hz
            assert abs(profile.median_pitch_hz - expected) < 15.0

    def test_profiles_have_mass(self, profiles):
        assert all(p.n_frames >= 300 for p in profiles.values())


class TestIdentification:
    def test_own_speech_attributed_to_wearer_sexwise(self, sensing, truth):
        """Frame-level attribution by pitch cannot separate same-sex
        voices perfectly, but it must recover the wearer's *sex* and
        mostly the wearer themselves on own-speech frames."""
        profiles = enroll_profiles(sensing)
        summary = sensing.summary(4, 2)  # E's badge
        attributed = identify_speakers(summary, profiles)
        own = own_speech_mask(summary)
        labels = attributed[own]
        labels = labels[labels != ""]
        assert labels.size > 50
        sexes = [truth.roster.profile(a).sex for a in labels]
        assert sexes.count("m") / len(sexes) > 0.8

    def test_no_profiles_raises(self, sensing):
        with pytest.raises(DataError):
            identify_speakers(sensing.summary(0, 2), {})

    def test_machine_frames_never_attributed(self, sensing):
        profiles = {
            "X": VoiceProfile(astro_id="X", median_pitch_hz=150.0,
                              pitch_iqr_hz=5.0, n_frames=1000)
        }
        summary = sensing.summary(0, 2)  # A's badge hears the TTS
        attributed = identify_speakers(summary, profiles)
        machine = np.nan_to_num(summary.pitch_stability, nan=0.0) >= 0.80
        assert not (attributed[machine] != "").any()


class TestReport:
    def test_sex_classification_accurate(self, sensing):
        """The male/female distinction is strong but not perfect: in a
        huddle, a conversation partner half a meter away can briefly be
        the loudest voice at the badge."""
        report = sex_classification_report(sensing)
        assert report
        assert all(accuracy > 0.75 for accuracy in report.values())
        import numpy as np

        assert np.mean(list(report.values())) > 0.85
