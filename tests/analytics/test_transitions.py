"""Tests for the Fig-2 transition analysis."""

import numpy as np
import pytest

from repro.analytics.transitions import (
    kitchen_inflow_share,
    top_transitions,
    transition_matrix,
)
from repro.habitat.rooms import ROOM_NAMES


@pytest.fixture(scope="module")
def matrix(sensing):
    return transition_matrix(sensing)


class TestMatrix:
    def test_shape_and_names(self, matrix):
        names, counts = matrix
        assert names == list(ROOM_NAMES)
        assert counts.shape == (8, 8)

    def test_no_self_transitions(self, matrix):
        __, counts = matrix
        assert (np.diag(counts) == 0).all()

    def test_nonnegative(self, matrix):
        __, counts = matrix
        assert (counts >= 0).all()

    def test_kitchen_heavily_visited(self, matrix):
        """Meals + water dashes: the kitchen is among the top traffic
        destinations (with the office, which hosts the daily briefings)."""
        names, counts = matrix
        k = names.index("kitchen")
        per_room_inflow = counts.sum(axis=0)
        rank = int((per_room_inflow > per_room_inflow[k]).sum())
        assert rank <= 1

    def test_office_to_kitchen_among_top(self, matrix):
        """The paper's headline pair must rank near the top."""
        names, counts = matrix
        top = top_transitions(names, counts, k=4)
        pairs = {(a, b) for a, b, __ in top}
        assert ("office", "kitchen") in pairs or ("kitchen", "office") in pairs

    def test_stricter_filter_fewer_transitions(self, sensing):
        __, loose = transition_matrix(sensing, min_stay_s=0.0)
        __, strict = transition_matrix(sensing, min_stay_s=20.0)
        assert strict.sum() < loose.sum()

    def test_main_hall_bridging(self, sensing):
        """Excluding the hall links the rooms around it: total passage
        count must be substantial even though every trip crosses it."""
        __, counts = transition_matrix(sensing)
        assert counts.sum() > 100


class TestHelpers:
    def test_top_transitions_sorted(self, matrix):
        names, counts = matrix
        top = top_transitions(names, counts, k=10)
        values = [v for _, _, v in top]
        assert values == sorted(values, reverse=True)

    def test_kitchen_inflow_sums_to_one(self, matrix):
        names, counts = matrix
        shares = kitchen_inflow_share(names, counts)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["kitchen"] == 0.0

    def test_office_and_workshop_lead_inflow(self, matrix):
        names, counts = matrix
        shares = kitchen_inflow_share(names, counts)
        ranked = sorted(shares, key=shares.get, reverse=True)
        assert set(ranked[:2]) <= {"office", "workshop", "biolab"}
