"""Tests for occupancy and stay analysis."""

import numpy as np
import pytest

from repro.analytics.dataset import BadgeDaySummary
from repro.analytics.occupancy import (
    Stay,
    merge_sessions,
    room_occupancy_seconds,
    stay_durations_by_room,
    stays,
    typical_stay_hours,
)


def make_summary(room_sequence, dt=1.0, badge_id=0, day=2):
    room = np.asarray(room_sequence, dtype=np.int8)
    n = room.shape[0]
    zeros = np.zeros(n, dtype=np.float32)
    return BadgeDaySummary(
        badge_id=badge_id, day=day, t0=0.0, dt=dt,
        active=np.ones(n, dtype=bool), worn=np.ones(n, dtype=bool),
        room=room, x=zeros, y=zeros,
        accel_rms=zeros, voice_db=zeros, dominant_pitch_hz=zeros,
        pitch_stability=zeros, sound_db=zeros,
    )


class TestStays:
    def test_basic_runs(self):
        summary = make_summary([1] * 20 + [2] * 30)
        out = stays(summary, min_stay_s=10)
        assert [(s.room, s.t0, s.t1) for s in out] == [(1, 0.0, 20.0), (2, 20.0, 50.0)]

    def test_short_stay_filtered(self):
        summary = make_summary([1] * 20 + [2] * 5 + [3] * 20)
        rooms = [s.room for s in stays(summary, min_stay_s=10)]
        assert rooms == [1, 3]

    def test_unknown_dropped(self):
        summary = make_summary([1] * 20 + [-1] * 20 + [1] * 20)
        out = stays(summary, min_stay_s=10)
        assert len(out) == 2

    def test_zero_threshold_keeps_all(self):
        summary = make_summary([1, 2, 3])
        assert len(stays(summary, min_stay_s=0.0)) == 3

    def test_empty(self):
        assert stays(make_summary([])) == []

    def test_durations(self):
        summary = make_summary([4] * 100, dt=2.0)
        out = stays(summary)
        assert out[0].duration == 200.0


class TestMergeSessions:
    def test_bridges_short_gap(self):
        sessions = merge_sessions(
            [Stay(1, 0.0, 100.0), Stay(2, 100.0, 150.0), Stay(1, 150.0, 300.0)],
            bridge_gap_s=60.0,
        )
        room1 = [s for s in sessions if s.room == 1]
        assert len(room1) == 1
        assert room1[0].duration == 300.0

    def test_respects_long_gap(self):
        sessions = merge_sessions(
            [Stay(1, 0.0, 100.0), Stay(1, 500.0, 600.0)], bridge_gap_s=60.0
        )
        assert len([s for s in sessions if s.room == 1]) == 2

    def test_empty(self):
        assert merge_sessions([], 60.0) == []


class TestMissionLevel:
    def test_biolab_sessions_capped_office_runs_long(self, sensing):
        """The paper's headline: biolab ~2.5 h, office/workshop twice
        that.  Biolab workers take their breaks, so biolab sessions are
        bounded by the meal rhythm; absorbed office/workshop workers run
        straight through, producing much longer maxima."""
        durations = stay_durations_by_room(sensing)
        assert durations.get("office") and durations.get("biolab")
        longest_absorbing = max(durations["office"] + durations.get("workshop", []))
        assert longest_absorbing > max(durations["biolab"]) + 1800.0
        assert np.median(durations["biolab"]) < 3.2 * 3600.0

    def test_typical_stays_in_hours_band(self, sensing):
        biolab = typical_stay_hours(sensing, "biolab")
        assert 1.0 < biolab < 4.0

    def test_unknown_room_zero(self, sensing):
        assert typical_stay_hours(sensing, "airlock") >= 0.0

    def test_occupancy_by_room(self, sensing):
        occupancy = room_occupancy_seconds(sensing)
        assert occupancy["kitchen"] > 0
        # Work rooms dominate total occupancy.
        work = occupancy["office"] + occupancy["workshop"] + occupancy["biolab"]
        assert work > occupancy["kitchen"]
