"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.analytics.dataset_io import load_sensing, save_sensing
from repro.analytics.reports import table1
from repro.analytics.speech import mission_speech_fraction


@pytest.fixture(scope="module")
def round_tripped(sensing, tmp_path_factory):
    path = tmp_path_factory.mktemp("dataset") / "mission"
    save_sensing(sensing, path)
    return load_sensing(path)


class TestRoundTrip:
    def test_config_restored(self, round_tripped, mission_cfg):
        assert round_tripped.cfg == mission_cfg

    def test_summaries_identical(self, round_tripped, sensing):
        assert set(round_tripped.summaries) == set(sensing.summaries)
        a = sensing.summary(1, 3)
        b = round_tripped.summary(1, 3)
        np.testing.assert_array_equal(a.room, b.room)
        np.testing.assert_array_equal(a.voice_db, b.voice_db)
        np.testing.assert_array_equal(a.worn, b.worn)
        assert a.bytes_recorded == b.bytes_recorded

    def test_true_room_preserved(self, round_tripped, sensing):
        a = sensing.summary(0, 2)
        b = round_tripped.summary(0, 2)
        np.testing.assert_array_equal(a.true_room, b.true_room)

    def test_pairwise_identical(self, round_tripped, sensing):
        day = sensing.days[0]
        for pair, contact in sensing.pairwise[day].ir_contact.items():
            np.testing.assert_array_equal(
                contact, round_tripped.pairwise[day].ir_contact[pair]
            )

    def test_analyses_agree(self, round_tripped, sensing):
        """The acid test: every analysis gives identical results on the
        reloaded dataset."""
        assert mission_speech_fraction(round_tripped) == mission_speech_fraction(sensing)
        assert str(table1(round_tripped)) == str(table1(sensing))

    def test_assignment_anomalies_preserved(self, round_tripped, sensing):
        day = sensing.cfg.events.badge_swap_day
        assert round_tripped.assignment.actual(day) == sensing.assignment.actual(day)
