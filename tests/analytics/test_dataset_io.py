"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.analytics.dataset_io import ARTIFACT_NAME, load_sensing, save_sensing
from repro.analytics.reports import table1
from repro.analytics.speech import mission_speech_fraction
from repro.core.errors import ConfigError, DataError


@pytest.fixture(scope="module")
def round_tripped(sensing, tmp_path_factory):
    path = tmp_path_factory.mktemp("dataset") / "mission"
    save_sensing(sensing, path)
    return load_sensing(path)


class TestRoundTrip:
    def test_config_restored(self, round_tripped, mission_cfg):
        assert round_tripped.cfg == mission_cfg

    def test_summaries_identical(self, round_tripped, sensing):
        assert set(round_tripped.summaries) == set(sensing.summaries)
        a = sensing.summary(1, 3)
        b = round_tripped.summary(1, 3)
        np.testing.assert_array_equal(a.room, b.room)
        np.testing.assert_array_equal(a.voice_db, b.voice_db)
        np.testing.assert_array_equal(a.worn, b.worn)
        assert a.bytes_recorded == b.bytes_recorded

    def test_true_room_preserved(self, round_tripped, sensing):
        a = sensing.summary(0, 2)
        b = round_tripped.summary(0, 2)
        np.testing.assert_array_equal(a.true_room, b.true_room)

    def test_pairwise_identical(self, round_tripped, sensing):
        day = sensing.days[0]
        for pair, contact in sensing.pairwise[day].ir_contact.items():
            np.testing.assert_array_equal(
                contact, round_tripped.pairwise[day].ir_contact[pair]
            )

    def test_analyses_agree(self, round_tripped, sensing):
        """The acid test: every analysis gives identical results on the
        reloaded dataset."""
        assert mission_speech_fraction(round_tripped) == mission_speech_fraction(sensing)
        assert str(table1(round_tripped)) == str(table1(sensing))

    def test_assignment_anomalies_preserved(self, round_tripped, sensing):
        day = sensing.cfg.events.badge_swap_day
        assert round_tripped.assignment.actual(day) == sensing.assignment.actual(day)

    def test_clean_load_gates_all_ok(self, round_tripped):
        """The default load routes through the quality gate: a clean
        store arrives with a report attached and every verdict ok."""
        assert round_tripped.quality is not None
        assert round_tripped.quality.all_ok
        assert round_tripped.quality.coverage() == 1.0


class TestIntegrityEnvelope:
    def save(self, sensing, tmp_path):
        path = tmp_path / "mission"
        save_sensing(sensing, path)
        return path

    def test_saved_as_single_artifact(self, sensing, tmp_path):
        path = self.save(sensing, tmp_path)
        assert (path / ARTIFACT_NAME).exists()
        assert not list(path.glob("*.npz"))

    def test_bit_flip_detected_and_quarantined(self, sensing, tmp_path):
        path = self.save(sensing, tmp_path)
        artifact = path / ARTIFACT_NAME
        blob = bytearray(artifact.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        artifact.write_bytes(bytes(blob))
        with pytest.raises(DataError):
            load_sensing(path)
        # The corrupt bytes are preserved for forensics, never deleted.
        assert not artifact.exists()
        quarantined = list((path / "quarantine").iterdir())
        assert len(quarantined) == 1

    def test_truncated_artifact_detected(self, sensing, tmp_path):
        path = self.save(sensing, tmp_path)
        artifact = path / ARTIFACT_NAME
        artifact.write_bytes(artifact.read_bytes()[:100])
        with pytest.raises(DataError):
            load_sensing(path)

    def test_legacy_directory_still_loads(self, sensing, tmp_path):
        from repro.analytics.dataset_io import sensing_to_store

        path = tmp_path / "legacy"
        sensing_to_store(sensing).save_dir(path)  # pre-envelope layout
        loaded = load_sensing(path)
        assert set(loaded.summaries) == set(sensing.summaries)

    def test_quality_off_serves_raw_bytes(self, sensing, tmp_path):
        path = self.save(sensing, tmp_path)
        loaded = load_sensing(path, quality="off")
        assert loaded.quality is None

    def test_quality_strict_passes_clean_store(self, sensing, tmp_path):
        path = self.save(sensing, tmp_path)
        loaded = load_sensing(path, quality="strict")
        assert loaded.quality.all_ok

    def test_unknown_quality_mode_rejected(self, sensing, tmp_path):
        path = self.save(sensing, tmp_path)
        with pytest.raises(ConfigError):
            load_sensing(path, quality="maybe")
