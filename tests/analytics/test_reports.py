"""Tests for Table I and deployment statistics builders."""

import pytest

from repro.analytics.reports import deployment_stats, table1


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self, sensing):
        return table1(sensing)

    def test_all_astronauts_present(self, table, truth):
        assert set(table.company) == set(truth.roster.ids)

    def test_normalized_columns(self, table):
        for column in (table.talking, table.walking):
            values = [v for v in column.values() if v is not None]
            assert max(values) == pytest.approx(1.0)
            assert all(0 <= v <= 1 for v in values)

    def test_c_tops_talking_and_walking(self, table):
        assert table.talking["C"] == pytest.approx(1.0)
        assert table.walking["C"] == pytest.approx(1.0)

    def test_rows_formatting(self, table):
        rows = table.rows()
        assert len(rows) == 6
        c_row = next(r for r in rows if r[0] == "C")
        assert c_row[3] == "1.00"

    def test_str_renders(self, table):
        text = str(table)
        assert "company" in text and "walking" in text
        assert "A" in text


class TestDeploymentStats:
    @pytest.fixture(scope="class")
    def stats(self, sensing):
        return deployment_stats(sensing)

    def test_badge_count(self, stats):
        assert stats.n_badges == 7  # 6 crew badges + reference

    def test_fractions_plausible(self, stats):
        assert 0.4 < stats.worn_fraction < 0.9
        assert stats.active_fraction > stats.worn_fraction

    def test_data_volume_positive(self, stats, mission_cfg):
        assert stats.total_gib > 1.0
        assert stats.n_instrumented_days == len(mission_cfg.instrumented_days)

    def test_compliance_decay_direction(self, stats):
        early, late = stats.compliance_decay()
        assert early >= late - 0.05

    def test_str_renders(self, stats):
        text = str(stats)
        assert "GiB" in text and "worn" in text
