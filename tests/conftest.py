"""Shared fixtures: one short mission simulated once per session.

The 5-day mission keeps every scripted event that fits (death day 4,
badge swap day 3, badge reuse day 5) so integration tests can exercise
the anomalies without paying for the full 14 days.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.crew.behavior import simulate_mission
from repro.experiments.mission import run_mission


@pytest.fixture(scope="session")
def mission_cfg() -> MissionConfig:
    return MissionConfig(
        days=5,
        seed=11,
        events=ScriptedEventsConfig(
            death_day=4,
            badge_swap_day=3,
            badge_reuse_day=5,
            famine_day=11,      # outside the short mission; auto-skipped
            reprimand_day=12,   # outside the short mission; auto-skipped
        ),
    )


@pytest.fixture(scope="session")
def truth(mission_cfg):
    return simulate_mission(mission_cfg)


@pytest.fixture(scope="session")
def result(mission_cfg, truth):
    return run_mission(mission_cfg, truth=truth)


@pytest.fixture(scope="session")
def sensing(result):
    return result.sensing


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Keep the process-global telemetry stores from leaking across tests."""
    from repro import obs

    yield
    obs.reset()
