"""Tier-2 chaos: SIGKILL the fleet service mid-drain, restart, verify.

The ISSUE-10 acceptance scenario end to end, with real processes:

* ≥200 concurrent submissions (8 distinct fingerprints, the rest
  duplicates) are admitted from racing threads;
* a `repro serve --drain` subprocess SIGKILLs itself mid-drain via
  deterministic crash injection (``--chaos-kill-after``);
* a restarted drain recovers every in-flight lease and finishes;
* every fingerprint executed **exactly once** per completion record and
  produced a result artifact **bit-identical** (equal content digest)
  to an uninterrupted baseline drain — zero lost jobs, zero double
  executions, zero dead letters.

Set ``REPRO_SERVICE_CHAOS_DIR`` to persist the service roots (registry
DB + journals) for post-mortem; the nightly CI job uploads them on
failure.
"""

import concurrent.futures
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import MissionConfig
from repro.service import FleetClient, ServiceConfig, serve

REPO = Path(__file__).resolve().parents[2]

N_DISTINCT = 8
N_SUBMISSIONS = 200
KILL_AFTER = 3


def _configs() -> list[MissionConfig]:
    return [MissionConfig(days=2, seed=s, frame_dt=10.0, events=None)
            for s in range(N_DISTINCT)]


def _chaos_root(tmp_path: Path, name: str) -> Path:
    base = os.environ.get("REPRO_SERVICE_CHAOS_DIR")
    root = (Path(base) if base else tmp_path) / name
    if root.exists():
        shutil.rmtree(root)
    return root


def _submit_concurrently(root: Path) -> list:
    """200 racing submissions from 16 threads, each with its own client."""
    cfgs = _configs()
    work = [cfgs[i % N_DISTINCT] for i in range(N_SUBMISSIONS)]

    def one(cfg):
        with FleetClient(root, create=True) as client:
            return client.submit(cfg, tenant=f"crew-{cfg.seed % 2}")

    FleetClient(root, create=True).close()  # initialize the schema once
    with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
        receipts = list(pool.map(one, work))
    return receipts


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _drain_subprocess(root: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "drain", "--service", str(root),
         "--workers", "2", "--lease-s", "10", *extra],
        env=_env(), cwd=str(REPO), capture_output=True, text=True,
        timeout=600)


@pytest.mark.tier2
class TestServiceKilledMidDrain:
    def test_exactly_once_across_sigkill_restart(self, tmp_path):
        # -- baseline: an uninterrupted drain on its own root -------------
        baseline_root = _chaos_root(tmp_path, "baseline")
        with FleetClient(baseline_root, create=True) as client:
            baseline_receipts = [client.submit(cfg) for cfg in _configs()]
        stats = serve(ServiceConfig(root=str(baseline_root), n_workers=2,
                                    lease_s=10.0, poll_s=0.01), drain=True)
        assert stats["completed"] == N_DISTINCT
        with FleetClient(baseline_root) as client:
            baseline_digests = {
                r.fingerprint: client.status(r.job_id).result_digest
                for r in baseline_receipts
            }

        # -- chaos: concurrent submissions, then a self-SIGKILL drain -----
        root = _chaos_root(tmp_path, "chaos")
        receipts = _submit_concurrently(root)
        assert len(receipts) == N_SUBMISSIONS
        assert sum(r.deduped for r in receipts) == N_SUBMISSIONS - N_DISTINCT
        assert len({r.fingerprint for r in receipts}) == N_DISTINCT

        killed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--service", str(root),
             "--drain", "--workers", "2", "--lease-s", "10",
             "--chaos-kill-after", str(KILL_AFTER)],
            env=_env(), cwd=str(REPO), capture_output=True, text=True,
            timeout=600)
        assert killed.returncode == -9, (
            f"service was not SIGKILLed (rc={killed.returncode}):\n"
            f"{killed.stdout}{killed.stderr}")

        with FleetClient(root) as client:
            counts = client.overview()["counts"]
        assert counts["done"] >= KILL_AFTER      # progress landed durably
        assert counts["done"] < N_DISTINCT       # ...but the drain died early

        # -- restart: the surviving registry drains to empty --------------
        done = _drain_subprocess(root)
        assert done.returncode == 0, done.stdout + done.stderr
        assert "drained: " in done.stdout

        # -- exactly-once + bit-identity -----------------------------------
        with FleetClient(root) as client:
            overview = client.overview()
            assert overview["counts"]["done"] == N_DISTINCT
            assert overview["counts"]["dead"] == 0
            assert overview["counts"]["queued"] == 0
            assert overview["counts"]["failed"] == 0
            assert overview["dead_letters"] == []
            assert overview["submitted"] == N_SUBMISSIONS
            assert overview["deduped"] == N_SUBMISSIONS - N_DISTINCT
            for fingerprint in {r.fingerprint for r in receipts}:
                record = client.status(fingerprint)
                assert record.state == "done"
                # One durable completion acknowledgement, ever.
                assert record.completions == 1
                # Identical artifact content to the uninterrupted run.
                assert record.result_digest == baseline_digests[fingerprint]
                # The payload itself verifies (checksum) and matches.
                payload = client.result(fingerprint)
                assert payload["fingerprint"] == fingerprint

    def test_restart_after_kill_is_idempotent(self, tmp_path):
        """Draining an already-drained registry recovers nothing, redoes
        nothing — the restart path is safe to run any number of times."""
        root = _chaos_root(tmp_path, "idempotent")
        with FleetClient(root, create=True) as client:
            receipt = client.submit(_configs()[0])
        first = _drain_subprocess(root)
        assert first.returncode == 0, first.stdout + first.stderr
        again = _drain_subprocess(root)
        assert again.returncode == 0, again.stdout + again.stderr
        assert "completed=0" in again.stdout
        with FleetClient(root) as client:
            assert client.status(receipt.job_id).completions == 1
