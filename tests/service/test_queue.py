"""Backoff policy: seeded, exponential, jittered, capped."""

import pytest

from repro.core.errors import ConfigError
from repro.service import BackoffPolicy
from repro.service.queue import JITTER_HIGH, JITTER_LOW


class TestBackoffPolicy:
    def test_same_seed_reproduces_schedule(self):
        a = BackoffPolicy(base_s=0.25, cap_s=30.0, seed=7)
        b = BackoffPolicy(base_s=0.25, cap_s=30.0, seed=7)
        assert [a.delay_s(n) for n in range(1, 8)] == \
               [b.delay_s(n) for n in range(1, 8)]

    def test_different_seeds_differ(self):
        a = BackoffPolicy(seed=0)
        b = BackoffPolicy(seed=1)
        assert [a.delay_s(n) for n in range(1, 6)] != \
               [b.delay_s(n) for n in range(1, 6)]

    def test_exponential_within_jitter_band(self):
        policy = BackoffPolicy(base_s=0.5, cap_s=1e9, seed=3)
        for attempts in range(1, 7):
            nominal = 0.5 * 2.0 ** (attempts - 1)
            delay = policy.delay_s(attempts)
            assert nominal * JITTER_LOW <= delay <= nominal * JITTER_HIGH

    def test_cap_bounds_every_delay(self):
        policy = BackoffPolicy(base_s=1.0, cap_s=4.0, seed=0)
        assert all(policy.delay_s(n) <= 4.0 for n in range(1, 20))
        assert policy.delay_s(19) == 4.0  # deep retries pin to the cap

    def test_zero_base_means_immediate(self):
        policy = BackoffPolicy(base_s=0.0, seed=0)
        assert policy.delay_s(1) == 0.0
        assert policy.delay_s(5) == 0.0

    def test_jitter_never_collapses_to_zero(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=30.0, seed=11)
        assert min(policy.delay_s(1) for _ in range(50)) > 0.0

    @pytest.mark.parametrize("kwargs", [
        {"base_s": -0.1},
        {"cap_s": 0.0},
        {"cap_s": -1.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            BackoffPolicy(**kwargs)
