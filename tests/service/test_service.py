"""FleetService loop: drain semantics, retries, recovery, probes.

``execute_job`` is monkeypatched to synthetic work so these stay
tier-1-fast; the real mission path is covered by the chaos suite.
"""

import threading
import time

import pytest

from repro import MissionConfig
from repro.service import (
    FleetClient,
    FleetService,
    ServiceConfig,
    serve,
)
from repro.service import service as service_mod


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "fleet")


def fake_execute(results_dir):
    """A stand-in worker: records executions, returns a fake artifact."""
    calls = []

    def execute(job, *, cache_dir, journal_dir, results_dir):
        calls.append(job.fingerprint)
        return str(results_dir / f"{job.fingerprint}.pkl"), "digest-" + job.fingerprint[:6]

    return execute, calls


def config(root, **kwargs) -> ServiceConfig:
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("lease_s", 5.0)
    kwargs.setdefault("poll_s", 0.01)
    kwargs.setdefault("retry_backoff_s", 0.0)
    return ServiceConfig(root=root, **kwargs)


def submit_all(root, configs, **kwargs):
    with FleetClient(root, create=True) as client:
        return [client.submit(cfg, **kwargs) for cfg in configs]


class TestDrain:
    def test_drains_to_empty_exactly_once(self, root, monkeypatch):
        execute, calls = fake_execute(root)
        monkeypatch.setattr(service_mod.worker_mod, "execute_job", execute)
        cfgs = [MissionConfig(days=2, seed=s) for s in range(4)]
        receipts = submit_all(root, cfgs + cfgs)  # every config twice
        assert sum(r.deduped for r in receipts) == 4
        stats = serve(config(root), drain=True)
        assert stats["completed"] == 4
        assert sorted(calls) == sorted({r.fingerprint for r in receipts})
        with FleetClient(root) as client:
            for receipt in receipts:
                record = client.status(receipt.job_id)
                assert record.state == "done"
                assert record.completions == 1

    def test_empty_registry_drains_immediately(self, root):
        stats = serve(config(root), drain=True)
        assert stats["completed"] == 0

    def test_failing_job_retries_then_dead_letters(self, root, monkeypatch):
        def explode(job, **kwargs):
            raise RuntimeError("sensor bus on fire")

        monkeypatch.setattr(service_mod.worker_mod, "execute_job", explode)
        submit_all(root, [MissionConfig(days=2, seed=1)])
        stats = serve(config(root, max_attempts=3), drain=True)
        assert stats["dead"] == 1
        assert stats["failed"] == 2  # two requeues before the budget died
        with FleetClient(root) as client:
            overview = client.overview()
            assert overview["counts"]["dead"] == 1
            (letter,) = overview["dead_letters"]
            assert "sensor bus on fire" in letter["error"]
            assert letter["attempts"] == 3

    def test_flaky_job_eventually_completes(self, root, monkeypatch):
        attempts = {"n": 0}

        def flaky(job, *, results_dir, **kwargs):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return str(results_dir / "r.pkl"), "digest"

        monkeypatch.setattr(service_mod.worker_mod, "execute_job", flaky)
        (receipt,) = submit_all(root, [MissionConfig(days=2, seed=1)])
        stats = serve(config(root, max_attempts=3), drain=True)
        assert stats["completed"] == 1
        assert attempts["n"] == 3
        with FleetClient(root) as client:
            record = client.status(receipt.job_id)
            assert record.state == "done"
            assert record.attempts == 3
            assert record.completions == 1

    def test_probe_reports_drained(self, root, monkeypatch):
        execute, _ = fake_execute(root)
        monkeypatch.setattr(service_mod.worker_mod, "execute_job", execute)
        submit_all(root, [MissionConfig(days=2, seed=1)])
        serve(config(root), drain=True)
        with FleetClient(root) as client:
            probe = client.health()
            assert probe["state"] == "drained"
            assert probe["live"]  # this very process
            assert not probe["ready"]


class TestServeMode:
    def test_request_stop_ends_serve(self, root, monkeypatch):
        """Without drain, the loop runs until asked to stop."""
        execute, calls = fake_execute(root)
        monkeypatch.setattr(service_mod.worker_mod, "execute_job", execute)
        submit_all(root, [MissionConfig(days=2, seed=1)])
        service = FleetService(config(root))

        def stop_once_done():
            deadline = time.monotonic() + 30.0
            with FleetClient(root) as client:
                while time.monotonic() < deadline:
                    if client.overview()["counts"]["done"] == 1:
                        break
                    time.sleep(0.02)
            service.request_stop()

        stopper = threading.Thread(target=stop_once_done)
        stopper.start()
        import asyncio

        stats = asyncio.run(service.run(drain=False))
        stopper.join()
        assert stats["completed"] == 1
        with FleetClient(root) as client:
            assert client.health()["state"] == "stopped"

    def test_startup_recovers_dead_owner_leases(self, root, monkeypatch):
        """Registry rows leased by a dead pid are requeued and completed."""
        execute, calls = fake_execute(root)
        monkeypatch.setattr(service_mod.worker_mod, "execute_job", execute)
        (receipt,) = submit_all(root, [MissionConfig(days=2, seed=1)])
        with FleetClient(root) as client:
            orphan = client.registry.lease_next(
                owner="ghost", pid=2 ** 22 + 12345, now=time.time(),
                lease_s=3600.0)
            assert orphan is not None
        stats = serve(config(root), drain=True)
        assert stats["recovered_on_start"] == 1
        assert stats["completed"] == 1
        with FleetClient(root) as client:
            record = client.status(receipt.job_id)
            assert record.state == "done"
            assert record.completions == 1

    def test_job_timeout_requeues_hung_job(self, root, monkeypatch):
        """A hung worker stops heartbeating; the sweep reclaims the job."""
        hangs = {"n": 0}

        def hang_once(job, *, results_dir, **kwargs):
            hangs["n"] += 1
            if hangs["n"] == 1:
                time.sleep(1.5)  # well past lease_s + timeout below
            return str(results_dir / "r.pkl"), "digest"

        monkeypatch.setattr(service_mod.worker_mod, "execute_job", hang_once)
        (receipt,) = submit_all(root, [MissionConfig(days=2, seed=1)])
        stats = serve(
            config(root, n_workers=1, lease_s=0.3, heartbeat_s=0.05,
                   job_timeout_s=0.2, max_attempts=3),
            drain=True)
        assert hangs["n"] >= 2
        assert stats["requeued"] >= 1
        with FleetClient(root) as client:
            record = client.status(receipt.job_id)
            assert record.state == "done"
            assert record.completions == 1  # the hung attempt never acked
