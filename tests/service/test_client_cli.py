"""The `repro serve/submit/status/result/drain` CLI surface.

Satellite contract: an unreachable or locked registry must exit
non-zero with one line on stderr — never a traceback — and admission
rejections exit 75 (EX_TEMPFAIL).
"""

import sqlite3

import pytest

from repro.__main__ import main
from repro.service import FleetClient, ServiceError
from repro.service import service as service_mod


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "fleet")


def fake_execute(monkeypatch):
    def execute(job, *, cache_dir, journal_dir, results_dir):
        from repro.exec import hashing, integrity

        path = results_dir / f"{job.fingerprint}.pkl"
        digest = integrity.write_artifact(
            path, {"fingerprint": job.fingerprint, "badge_days": 0,
                   "sdcard_gib": 0.0, "quality": None},
            schema=hashing.SCHEMA_VERSION)
        return str(path), digest

    monkeypatch.setattr(service_mod.worker_mod, "execute_job", execute)


SUBMIT = ["submit", "--days", "2", "--seed", "3", "--frame-dt", "10"]


class TestHappyPath:
    def test_submit_drain_status_result(self, root, monkeypatch, capsys):
        fake_execute(monkeypatch)
        assert main(SUBMIT + ["--service", root]) == 0
        out = capsys.readouterr().out
        assert "submitted as job j" in out
        job_id = out.split("job ")[1].split(" ")[0]

        assert main(SUBMIT + ["--service", root]) == 0
        assert "deduplicated onto job " + job_id in capsys.readouterr().out

        assert main(["drain", "--service", root, "--workers", "1"]) == 0
        assert "drained: " in capsys.readouterr().out

        assert main(["status", "--service", root, job_id]) == 0
        out = capsys.readouterr().out
        assert f"job {job_id}  state=done" in out
        assert "submissions=2" in out

        assert main(["status", "--service", root]) == 0
        out = capsys.readouterr().out
        assert "done=1" in out
        assert "(1 deduplicated onto 1 jobs)" in out

        assert main(["result", "--service", root, job_id]) == 0
        assert "badge-days: 0" in capsys.readouterr().out

    def test_result_of_queued_job_is_clean_error(self, root, capsys):
        assert main(SUBMIT + ["--service", root]) == 0
        job_id = capsys.readouterr().out.split("job ")[1].split(" ")[0]
        assert main(["result", "--service", root, job_id]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert "queued, not done" in err


class TestUnreachableRegistry:
    def test_status_on_missing_registry_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert main(["status", "--service", missing]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one line, no traceback
        assert "no service registry" in err

    def test_unknown_job_exits_2(self, root, monkeypatch, capsys):
        fake_execute(monkeypatch)
        assert main(SUBMIT + ["--service", root]) == 0
        capsys.readouterr()
        assert main(["status", "--service", root, "zzzz"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: no job 'zzzz'")

    def test_locked_registry_exits_2(self, root, monkeypatch, capsys):
        assert main(SUBMIT + ["--service", root]) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_REGISTRY_TIMEOUT_S", "0.1")
        blocker = sqlite3.connect(root + "/registry.db", isolation_level=None)
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            code = main(SUBMIT + ["--service", root])
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert err.count("\n") == 1
        assert "unavailable" in err


class TestBackpressure:
    def test_queue_full_exits_75_with_retry_hint(self, root, capsys):
        with FleetClient(root, create=True) as client:
            client.registry.set_meta(queue_depth=1, n_workers=1,
                                     nominal_job_s=5.0)
        assert main(SUBMIT + ["--service", root]) == 0
        capsys.readouterr()
        assert main(["submit", "--days", "2", "--seed", "99",
                     "--service", root]) == 75
        err = capsys.readouterr().err
        assert "queue full (1/1" in err
        assert "retry after" in err


class TestClient:
    def test_wait_times_out_cleanly(self, root):
        with FleetClient(root, create=True) as client:
            from repro import MissionConfig

            receipt = client.submit(MissionConfig(days=2, seed=1))
            with pytest.raises(ServiceError, match="timed out"):
                client.wait(receipt.job_id, timeout_s=0.05, poll_s=0.01)
