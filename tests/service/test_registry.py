"""Durable registry: dedup, admission, leases, recovery, dead letters.

Timestamps are caller-supplied throughout, so the state machine is
exercised on a synthetic clock — no sleeps, no racing.
"""

import os

import pytest

from repro.service import (
    MissionRegistry,
    QueueFullError,
    RegistryUnavailable,
    UnknownJobError,
)

NO_BACKOFF = lambda attempts: 0.0  # noqa: E731


@pytest.fixture()
def registry(tmp_path):
    reg = MissionRegistry.open(tmp_path / "registry.db", create=True)
    yield reg
    reg.close()


def submit(registry, i: int = 0, *, now: float = 100.0, **kwargs):
    record, deduped = registry.submit(
        fingerprint=f"f{i:03d}" + "0" * 28, config={"i": i}, now=now, **kwargs)
    return record, deduped


def lease(registry, *, now: float = 110.0, lease_s: float = 30.0,
          owner: str = "w", pid: int | None = None):
    return registry.lease_next(owner=owner, pid=pid or os.getpid(),
                               now=now, lease_s=lease_s)


class TestAdmission:
    def test_submit_and_get(self, registry):
        record, deduped = submit(registry)
        assert not deduped
        assert record.state == "queued"
        assert record.job_id == "j" + record.fingerprint[:12]
        assert registry.get(record.job_id).fingerprint == record.fingerprint
        assert registry.get(record.fingerprint).job_id == record.job_id

    def test_duplicate_fingerprint_dedupes(self, registry):
        first, _ = submit(registry)
        again, deduped = submit(registry)
        assert deduped
        assert again.job_id == first.job_id
        assert registry.get(first.job_id).submit_count == 2
        assert len(registry.jobs()) == 1

    def test_done_job_still_dedupes(self, registry):
        record, _ = submit(registry)
        job = lease(registry)
        assert registry.complete(job.job_id, job.lease_token, result_path="r",
                                 result_digest="d", now=120.0)
        _, deduped = submit(registry)
        assert deduped
        assert registry.get(record.job_id).state == "done"

    def test_queue_full_rejected_with_retry_hint(self, registry):
        submit(registry, 0, queue_depth=2)
        submit(registry, 1, queue_depth=2)
        with pytest.raises(QueueFullError) as err:
            submit(registry, 2, queue_depth=2,
                   retry_after=lambda depth: depth * 2.5)
        assert err.value.depth == 2
        assert err.value.retry_after_s == 5.0
        assert "retry after" in str(err.value)

    def test_terminal_jobs_free_backlog_slots(self, registry):
        submit(registry, 0, queue_depth=1)
        job = lease(registry)
        registry.complete(job.job_id, job.lease_token, result_path="r",
                          result_digest="d", now=120.0)
        record, deduped = submit(registry, 1, queue_depth=1)
        assert not deduped and record.state == "queued"

    def test_prefix_lookup(self, registry):
        record, _ = submit(registry)
        assert registry.get(record.job_id[:5]).job_id == record.job_id
        with pytest.raises(UnknownJobError):
            registry.get("nope")

    def test_ambiguous_prefix_is_unknown(self, registry):
        submit(registry, 0)
        submit(registry, 1)
        with pytest.raises(UnknownJobError):
            registry.get("j")  # matches both


class TestLeaseProtocol:
    def test_lease_charges_attempt_and_sets_deadline(self, registry):
        submit(registry)
        job = lease(registry, now=110.0, lease_s=30.0)
        assert job.state == "leased"
        assert job.attempts == 1
        assert job.lease_deadline == 140.0
        assert job.lease_token

    def test_empty_queue_leases_nothing(self, registry):
        assert lease(registry) is None

    def test_oldest_submission_first(self, registry):
        submit(registry, 0, now=100.0)
        submit(registry, 1, now=50.0)
        assert lease(registry).config == {"i": 1}

    def test_backoff_defers_leasing(self, registry):
        submit(registry)
        job = lease(registry, now=110.0)
        registry.fail(job.job_id, job.lease_token, error="boom", now=120.0,
                      backoff_s=100.0)
        assert lease(registry, now=150.0) is None      # still backing off
        assert lease(registry, now=230.0) is not None  # due again

    def test_heartbeat_extends_only_live_lease(self, registry):
        submit(registry)
        job = lease(registry, now=110.0, lease_s=30.0)
        assert registry.heartbeat(job.job_id, job.lease_token,
                                  now=130.0, lease_s=30.0)
        assert registry.get(job.job_id).lease_deadline == 160.0
        assert not registry.heartbeat(job.job_id, "bogus-token",
                                      now=130.0, lease_s=30.0)

    def test_complete_is_token_guarded(self, registry):
        submit(registry)
        job = lease(registry)
        assert not registry.complete(job.job_id, "stale-token",
                                     result_path="r", result_digest="d",
                                     now=120.0)
        assert registry.complete(job.job_id, job.lease_token, result_path="r",
                                 result_digest="d", now=120.0)
        done = registry.get(job.job_id)
        assert done.state == "done" and done.completions == 1
        # A second acknowledgement from anyone is rejected: exactly once.
        assert not registry.complete(job.job_id, job.lease_token,
                                     result_path="r2", result_digest="d2",
                                     now=121.0)
        assert registry.get(job.job_id).completions == 1

    def test_release_refunds_the_attempt(self, registry):
        submit(registry)
        job = lease(registry)
        assert registry.release(job.job_id, job.lease_token, now=120.0)
        requeued = registry.get(job.job_id)
        assert requeued.state == "queued"
        assert requeued.attempts == 0
        assert requeued.lease_token is None

    def test_mark_running_transition(self, registry):
        submit(registry)
        job = lease(registry)
        assert registry.mark_running(job.job_id, job.lease_token, now=115.0)
        assert registry.get(job.job_id).state == "running"
        assert not registry.mark_running(job.job_id, job.lease_token, now=116.0)


class TestRetriesAndDeadLetters:
    def test_fail_requeues_until_budget_then_dead_letters(self, registry):
        submit(registry, max_attempts=2)
        job = lease(registry, now=110.0)
        assert registry.fail(job.job_id, job.lease_token, error="first",
                             now=120.0, backoff_s=0.0) == "failed"
        job = lease(registry, now=130.0)
        assert job.attempts == 2
        assert registry.fail(job.job_id, job.lease_token, error="second",
                             now=140.0, backoff_s=0.0) == "dead"
        dead = registry.get(job.job_id)
        assert dead.state == "dead" and dead.terminal
        letters = registry.dead_letters()
        assert len(letters) == 1
        assert letters[0]["error"] == "second"
        assert letters[0]["attempts"] == 2
        # Dead jobs are not leasable.
        assert lease(registry, now=150.0) is None

    def test_fail_with_stale_token_is_rejected(self, registry):
        submit(registry)
        job = lease(registry)
        assert registry.fail(job.job_id, "stale", error="x", now=120.0,
                             backoff_s=0.0) is None
        assert registry.get(job.job_id).state == "leased"

    def test_transitions_are_audited(self, registry):
        submit(registry, now=100.0)
        job = lease(registry, now=110.0)
        registry.complete(job.job_id, job.lease_token, result_path="r",
                          result_digest="d", now=120.0)
        dsts = [dst for (_, _, dst, _) in registry.transitions(job.job_id)]
        assert dsts == ["queued", "leased", "done"]


class TestRecovery:
    def test_expired_lease_requeued(self, registry):
        submit(registry)
        job = lease(registry, now=110.0, lease_s=30.0)
        assert registry.recover_expired(now=139.0, backoff=NO_BACKOFF) == []
        assert registry.recover_expired(now=141.0,
                                        backoff=NO_BACKOFF) == [job.job_id]
        requeued = registry.get(job.job_id)
        assert requeued.state == "queued"
        assert requeued.attempts == 1  # the crashed attempt stays charged

    def test_stale_holder_cannot_ack_after_recovery(self, registry):
        """The split-brain case: old worker finishes after its lease expired."""
        submit(registry)
        stale = lease(registry, now=110.0, lease_s=30.0)
        registry.recover_expired(now=141.0, backoff=NO_BACKOFF)
        fresh = lease(registry, now=142.0)
        assert fresh.lease_token != stale.lease_token
        assert not registry.complete(stale.job_id, stale.lease_token,
                                     result_path="r", result_digest="d",
                                     now=143.0)
        assert registry.complete(fresh.job_id, fresh.lease_token,
                                 result_path="r", result_digest="d", now=144.0)
        assert registry.get(fresh.job_id).completions == 1

    def test_expired_lease_past_budget_dead_letters(self, registry):
        submit(registry, max_attempts=1)
        job = lease(registry, now=110.0, lease_s=30.0)
        registry.recover_expired(now=141.0, backoff=NO_BACKOFF)
        assert registry.get(job.job_id).state == "dead"
        assert registry.dead_letters()[0]["error"].startswith("lease-expired")

    def test_orphans_of_dead_process_requeued(self, registry):
        """kill -9 recovery: leases of a dead pid requeue immediately."""
        submit(registry, 0)
        submit(registry, 1)
        dead_pid = 2 ** 22 + 12345  # beyond any real pid on this box
        orphan = lease(registry, now=110.0, lease_s=3600.0, pid=dead_pid)
        mine = lease(registry, now=110.0, lease_s=3600.0)
        recovered = registry.recover_orphans(now=120.0, backoff=NO_BACKOFF)
        assert recovered == [orphan.job_id]
        assert registry.get(orphan.job_id).state == "queued"
        assert registry.get(mine.job_id).state == "leased"

    def test_reopen_sees_everything(self, registry, tmp_path):
        """Durability: a fresh connection sees the committed state."""
        record, _ = submit(registry)
        job = lease(registry)
        registry.complete(job.job_id, job.lease_token, result_path="r",
                          result_digest="d", now=120.0)
        with MissionRegistry.open(tmp_path / "registry.db") as reopened:
            assert reopened.get(record.job_id).state == "done"
            assert reopened.counts()["done"] == 1


class TestQueriesAndProbes:
    def test_counts_zero_filled(self, registry):
        assert registry.counts() == {
            "queued": 0, "failed": 0, "leased": 0, "running": 0,
            "done": 0, "dead": 0,
        }
        submit(registry)
        assert registry.counts()["queued"] == 1
        assert registry.active_count() == 1

    def test_probe_round_trip(self, registry):
        assert registry.probe() is None
        registry.set_probe(owner="host:1", pid=os.getpid(), state="ready",
                           now=100.0)
        probe = registry.probe()
        assert probe["live"] and probe["ready"]
        registry.set_probe(owner="host:1", pid=2 ** 22 + 12345, state="ready",
                           now=101.0)
        probe = registry.probe()
        assert not probe["live"] and not probe["ready"]

    def test_meta_round_trip(self, registry):
        registry.set_meta(queue_depth=64, nominal_job_s=2.5)
        assert registry.get_meta("queue_depth") == 64
        assert registry.get_meta("nominal_job_s") == 2.5
        assert registry.get_meta("missing", "fallback") == "fallback"


class TestUnavailable:
    def test_missing_registry(self, tmp_path):
        with pytest.raises(RegistryUnavailable, match="no service registry"):
            MissionRegistry.open(tmp_path / "registry.db")

    def test_not_a_registry(self, tmp_path):
        path = tmp_path / "registry.db"
        path.write_bytes(b"")  # empty file: valid sqlite, no jobs table
        with pytest.raises(RegistryUnavailable, match="not a fleet-service"):
            MissionRegistry.open(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "registry.db"
        path.write_bytes(b"this is not sqlite at all" * 100)
        with pytest.raises(RegistryUnavailable):
            MissionRegistry.open(path)

    def test_locked_registry_times_out(self, tmp_path):
        import sqlite3

        path = tmp_path / "registry.db"
        MissionRegistry.open(path, create=True).close()
        blocker = sqlite3.connect(path, isolation_level=None)
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            reg = MissionRegistry.open(path, busy_timeout_s=0.1)
            with pytest.raises(RegistryUnavailable, match="unavailable"):
                reg.submit(fingerprint="f" * 32, config={}, now=0.0)
            reg.close()
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
