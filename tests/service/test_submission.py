"""Submission wire format: exact round trips, versioning, fingerprints."""

import json

import pytest

from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.errors import ConfigError
from repro.exec import hashing
from repro.experiments.submission import (
    SUBMISSION_SCHEMA,
    config_from_dict,
    config_to_dict,
    submission_fingerprint,
)
from repro.faults.plan import FaultEvent, FaultPlan


def _round_trip(cfg: MissionConfig) -> MissionConfig:
    # Through JSON, exactly as the registry stores it.
    return config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))


class TestRoundTrip:
    def test_default_config(self):
        cfg = MissionConfig()
        assert _round_trip(cfg) == cfg

    def test_no_events(self):
        cfg = MissionConfig(days=3, seed=5, events=None)
        assert _round_trip(cfg) == cfg

    def test_custom_events(self):
        cfg = MissionConfig(
            days=5, seed=11,
            events=ScriptedEventsConfig(death_day=4, badge_swap_day=3),
        )
        assert _round_trip(cfg) == cfg

    def test_fault_plan(self):
        plan = FaultPlan.build(
            FaultEvent(time_s=100.0, action="crash", target="beacon-3",
                       duration_s=60.0),
            FaultEvent(time_s=5000.0, action="lossy", target="a<->b",
                       duration_s=120.0, value=0.25),
        )
        cfg = MissionConfig(days=3, seed=0, fault_plan=plan)
        restored = _round_trip(cfg)
        assert restored == cfg
        assert restored.fault_plan.events == plan.events

    def test_sensing_fingerprint_preserved(self):
        """The dedup key must survive the registry round trip."""
        cfg = MissionConfig(days=4, seed=9, frame_dt=5.0)
        assert (hashing.sensing_fingerprint(_round_trip(cfg))
                == hashing.sensing_fingerprint(cfg))


class TestValidation:
    def test_foreign_schema_rejected(self):
        data = config_to_dict(MissionConfig())
        data["schema"] = SUBMISSION_SCHEMA + 1
        with pytest.raises(ConfigError, match="schema"):
            config_from_dict(data)

    def test_missing_mission_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"schema": SUBMISSION_SCHEMA})

    def test_unknown_mission_field_rejected(self):
        data = config_to_dict(MissionConfig())
        data["mission"]["warp_factor"] = 9
        with pytest.raises(ConfigError, match="warp_factor"):
            config_from_dict(data)

    def test_unknown_event_field_rejected(self):
        data = config_to_dict(MissionConfig())
        data["mission"]["events"]["surprise_party_day"] = 2
        with pytest.raises(ConfigError, match="surprise_party_day"):
            config_from_dict(data)

    def test_malformed_fault_plan_rejected(self):
        data = config_to_dict(MissionConfig())
        data["mission"]["fault_plan"] = {"oops": []}
        with pytest.raises(ConfigError, match="fault_plan"):
            config_from_dict(data)


class TestFingerprint:
    def test_deterministic(self):
        cfg = MissionConfig(days=3, seed=1)
        assert (submission_fingerprint(cfg, "auto")
                == submission_fingerprint(cfg, "auto"))

    def test_quality_mode_is_part_of_identity(self):
        cfg = MissionConfig(days=3, seed=1)
        assert (submission_fingerprint(cfg, "auto")
                != submission_fingerprint(cfg, "strict"))

    def test_config_is_part_of_identity(self):
        assert (submission_fingerprint(MissionConfig(days=3, seed=1))
                != submission_fingerprint(MissionConfig(days=3, seed=2)))

    def test_invalid_quality_rejected(self):
        with pytest.raises(ConfigError):
            submission_fingerprint(MissionConfig(), "paranoid")
