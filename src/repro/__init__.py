"""repro: a reproduction of "30 Sensors to Mars" (ICDCS 2019).

A simulated distributed sociometric sensing system for analog space
habitats: habitat and crew simulation, wearable badge and radio models,
the localization/speech/mobility analytics of the paper's Section V, and
a prototype of the Section VI mission support system.

Quickstart::

    from repro import ExecutionConfig, MissionConfig, run_mission, build_table1
    result = run_mission(
        MissionConfig(days=5, seed=7),
        execution=ExecutionConfig(n_workers=4, cache_dir=".repro-cache"),
    )
    print(build_table1(result))
"""

from repro import obs
from repro.core.config import ExecutionConfig, MissionConfig, ScriptedEventsConfig
from repro.exec import MissionCache
from repro.faults import FaultCampaign, FaultPlan, ReliabilityReport, run_support_scenario
from repro.crew.behavior import simulate_mission
from repro.crew.roster import icares_roster
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6
from repro.experiments.mission import MissionResult, run_mission
from repro.experiments.tables import (
    build_deployment_stats,
    build_section5_claims,
    build_table1,
)
from repro.habitat.floorplan import lunares_floorplan
from repro.reliability import (
    ReliabilityModel,
    ReliabilityPrediction,
    ValidationResult,
    sweep_regimes,
    validate_campaign,
    worst_case_campaigns,
)

__version__ = "1.0.0"

__all__ = [
    "ExecutionConfig",
    "FaultCampaign",
    "FaultPlan",
    "MissionCache",
    "MissionConfig",
    "MissionResult",
    "ReliabilityModel",
    "ReliabilityPrediction",
    "ReliabilityReport",
    "ScriptedEventsConfig",
    "ValidationResult",
    "__version__",
    "build_deployment_stats",
    "build_section5_claims",
    "build_table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "icares_roster",
    "lunares_floorplan",
    "obs",
    "run_mission",
    "run_support_scenario",
    "simulate_mission",
    "sweep_regimes",
    "validate_campaign",
    "worst_case_campaigns",
]
