"""Speech detection (paper Figure 6 and Table I column b).

"A 15 s interval is considered as speech if there are voice frequencies
detected of at least 60 dB and for at least 20% of the interval.  The
boundary values were determined experimentally and correspond to a
conversation at a distance of at most 2.5 m."

The detector optionally rejects machine speech: the assistive screen
reader that read texts to astronaut A is conspicuously monotone (high
pitch-stability), and the paper "had to modify the algorithm for
conversation analysis to not be misled by a computer program reading out
texts".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import CoveredDict, dataset_coverage
from repro.analytics.dataset import BadgeDaySummary, MissionSensing

#: The paper's experimentally determined thresholds.
WINDOW_S = 15.0
LEVEL_DB = 60.0
MIN_FRACTION = 0.2
#: Pitch-stability above which a frame is attributed to machine speech.
MACHINE_STABILITY = 0.80
#: A window must be at least half recorded to be classified at all.
MIN_ACTIVE_FRACTION = 0.5


@dataclass
class SpeechWindows:
    """Windowed speech classification for one badge-day."""

    t0: float
    window_s: float
    is_speech: np.ndarray   # bool per window
    recorded: np.ndarray    # bool per window (enough active frames)
    loud_fraction: np.ndarray  # fraction of loud frames per window

    def fraction(self) -> float:
        """Speech windows over recorded windows."""
        n_recorded = int(self.recorded.sum())
        if n_recorded == 0:
            return 0.0
        return float((self.is_speech & self.recorded).sum()) / n_recorded


def loud_voice_mask(
    summary: BadgeDaySummary,
    level_db: float = LEVEL_DB,
    reject_machine: bool = True,
    machine_stability: float = MACHINE_STABILITY,
) -> np.ndarray:
    """Frames with voice-band level above threshold (optionally human-only)."""
    voice = summary.voice_db
    loud = summary.active & ~np.isnan(voice) & (voice >= level_db)
    if reject_machine:
        stability = summary.pitch_stability
        machine = ~np.isnan(stability) & (stability >= machine_stability)
        loud &= ~machine
    return loud


def speech_windows(
    summary: BadgeDaySummary,
    window_s: float = WINDOW_S,
    level_db: float = LEVEL_DB,
    min_fraction: float = MIN_FRACTION,
    reject_machine: bool = True,
) -> SpeechWindows:
    """Classify a badge-day into 15-second speech/non-speech windows."""
    loud = loud_voice_mask(summary, level_db, reject_machine)
    factor = max(1, int(round(window_s / summary.dt)))
    blocks = summary.n_frames // factor
    loud_frac = loud[: blocks * factor].reshape(blocks, factor).mean(axis=1)
    active_frac = summary.active[: blocks * factor].reshape(blocks, factor).mean(axis=1)
    return SpeechWindows(
        t0=summary.t0,
        window_s=factor * summary.dt,
        is_speech=loud_frac >= min_fraction,
        recorded=active_frac >= MIN_ACTIVE_FRACTION,
        loud_fraction=loud_frac,
    )


def daily_speech_fraction(
    sensing: MissionSensing,
    corrected: bool = True,
    reject_machine: bool = True,
) -> dict[str, dict[int, float]]:
    """Per-astronaut, per-day speech fraction (the Fig 6 series)."""
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for astro, summaries in sensing.astro_summaries(corrected).items():
        series: dict[int, float] = {}
        for summary in summaries:
            series[summary.day] = speech_windows(
                summary, reject_machine=reject_machine
            ).fraction()
        if series:
            out[astro] = dict(sorted(series.items()))
    return out


def mission_speech_fraction(
    sensing: MissionSensing, corrected: bool = True, reject_machine: bool = True
) -> dict[str, float]:
    """Whole-mission speech fraction per astronaut (Table I column b)."""
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for astro, summaries in sensing.astro_summaries(corrected).items():
        n_speech = 0
        n_recorded = 0
        for summary in summaries:
            windows = speech_windows(summary, reject_machine=reject_machine)
            n_speech += int((windows.is_speech & windows.recorded).sum())
            n_recorded += int(windows.recorded.sum())
        if n_recorded > 0:
            out[astro] = n_speech / n_recorded
    return out
