"""Room occupancy and stay-duration analysis.

A *stay* is a maximal run of frames localized to one room.  The paper's
headline occupancy finding: "the astronauts tended to stay at the biolab
mostly about 2.5 h while the majority of stays at the office and the
workshop lasted twice as much".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import CoveredDict, dataset_coverage
from repro.analytics.dataset import BadgeDaySummary, MissionSensing

#: The paper's minimum-stay filter, seconds ("necessary to filter out
#: situations when occasional beacon signals from another room slipped
#: through open doors").
MIN_STAY_S = 10.0


@dataclass(frozen=True)
class Stay:
    """One contiguous stay in a room."""

    room: int
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def stays(summary: BadgeDaySummary, min_stay_s: float = MIN_STAY_S) -> list[Stay]:
    """Extract stays from a badge-day's room estimates.

    Runs with room < 0 (unknown) are dropped; stays shorter than
    ``min_stay_s`` are filtered out (doorway-leakage suppression).
    """
    room = summary.room
    n = room.shape[0]
    if n == 0:
        return []
    change = np.flatnonzero(room[1:] != room[:-1]) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [n]])
    out: list[Stay] = []
    for s, e in zip(starts, ends):
        r = int(room[s])
        if r < 0:
            continue
        duration = (e - s) * summary.dt
        if duration >= min_stay_s:
            out.append(
                Stay(room=r, t0=summary.t0 + s * summary.dt, t1=summary.t0 + e * summary.dt)
            )
    return out


def merge_sessions(stay_list: list[Stay], bridge_gap_s: float) -> list[Stay]:
    """Merge same-room stays separated by short absences into sessions.

    A 5-minute water dash or restroom break does not end a work session;
    bridging gaps up to ``bridge_gap_s`` recovers the session structure
    the paper's stay-duration comparison is about.
    """
    sessions: list[Stay] = []
    open_by_room: dict[int, Stay] = {}
    for stay in sorted(stay_list, key=lambda s: s.t0):
        current = open_by_room.get(stay.room)
        if current is not None and stay.t0 - current.t1 <= bridge_gap_s:
            open_by_room[stay.room] = Stay(room=stay.room, t0=current.t0, t1=stay.t1)
        else:
            if current is not None:
                sessions.append(current)
            open_by_room[stay.room] = stay
    sessions.extend(open_by_room.values())
    sessions.sort(key=lambda s: s.t0)
    return sessions


def stay_durations_by_room(
    sensing: MissionSensing,
    min_stay_s: float = MIN_STAY_S,
    long_stay_s: float = 3600.0,
    bridge_gap_s: float = 1200.0,
) -> dict[str, list[float]]:
    """Durations of long work sessions per room, across the mission.

    Same-room stays separated by gaps up to ``bridge_gap_s`` merge into
    one session; ``long_stay_s`` keeps only substantial visits (the
    paper compares characteristic work-session lengths, not dashes).
    """
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for summary in sensing.summaries.values():
        if summary.badge_id == sensing.assignment.reference_id:
            continue
        sessions = merge_sessions(stays(summary, min_stay_s), bridge_gap_s)
        for stay in sessions:
            if stay.duration >= long_stay_s:
                out.setdefault(sensing.plan.name_of(stay.room), []).append(stay.duration)
    return out


def typical_stay_hours(sensing: MissionSensing, room: str) -> float:
    """Median long-stay duration of a room, in hours."""
    durations = stay_durations_by_room(sensing).get(room, [])
    if not durations:
        return 0.0
    return float(np.median(durations)) / 3600.0


def room_occupancy_seconds(sensing: MissionSensing) -> dict[str, float]:
    """Total badge-seconds localized to each room across the mission."""
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    ref = sensing.assignment.reference_id
    for summary in sensing.summaries.values():
        if summary.badge_id == ref:
            continue
        rooms, counts = np.unique(summary.room[summary.room >= 0], return_counts=True)
        for r, c in zip(rooms, counts):
            name = sensing.plan.name_of(int(r))
            out[name] = out.get(name, 0.0) + float(c) * summary.dt
    return out
