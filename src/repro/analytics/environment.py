"""Environmental analytics from the badges' climate sensors.

The paper reads the habitat through these channels too: the kitchen was
"the cosiest room with the highest temperatures", lighting followed the
Martian time of day, and on the famine/reprimand days "apart from
speech, there was much less other noise recorded".
"""

from __future__ import annotations

import numpy as np

from repro.analytics.coverage import CoveredDict, CoveredList, dataset_coverage
from repro.analytics.dataset import MissionSensing


def room_temperatures_from_observations(
    observations: dict[int, "object"], plan
) -> dict[str, float]:
    """Mean measured temperature per room from raw badge observations.

    Args:
        observations: ``badge_id -> BadgeDayObservations`` for one day
            (the output of :func:`repro.badges.pipeline.sense_day`).
        plan: the floor plan (for room names).

    Returns:
        room name -> mean temperature over all badge readings there.
    """
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for obs in observations.values():
        temps = obs.temperature_c
        rooms = obs.true_room
        if rooms is None:
            continue
        ok = obs.active & ~np.isnan(temps) & (rooms >= 0)
        for room_idx in np.unique(rooms[ok]):
            name = plan.name_of(int(room_idx))
            mask = ok & (rooms == room_idx)
            sums[name] = sums.get(name, 0.0) + float(temps[mask].sum())
            counts[name] = counts.get(name, 0) + int(mask.sum())
    return {room: sums[room] / counts[room] for room in sums}


def warmest_room(temperatures: dict[str, float]) -> str:
    """The room the crew would call cosiest (paper: the kitchen).

    An empty or all-NaN temperature map (no usable climate readings)
    yields ``""`` rather than a crash.
    """
    usable = {
        room: temp for room, temp in temperatures.items() if np.isfinite(temp)
    }
    if not usable:
        return ""
    return max(usable, key=usable.get)


def daily_ambient_noise(sensing: MissionSensing, corrected: bool = True) -> dict[int, float]:
    """Crew-median non-speech sound level per day, dB.

    Non-speech frames are those without a detectable voice band; their
    level reflects movement, tools, and HVAC.  The famine and reprimand
    days should be audibly duller ("much less other noise recorded").
    """
    by_day: dict[int, list[float]] = {}
    for (badge_id, day), summary in sensing.summaries.items():
        if badge_id == sensing.assignment.reference_id:
            continue
        voice = np.nan_to_num(summary.voice_db, nan=-np.inf)
        quiet = (
            summary.active & (voice < 55.0)
            & np.isfinite(summary.sound_db)
        )
        if quiet.any():
            level = float(np.median(summary.sound_db[quiet]))
            if np.isfinite(level):
                by_day.setdefault(day, []).append(level)
    return CoveredDict(
        {day: float(np.median(v)) for day, v in sorted(by_day.items())},
        coverage=dataset_coverage(sensing),
    )


def quiet_noise_days(sensing: MissionSensing, margin_db: float = 1.0) -> list[int]:
    """Days whose ambient noise sits ``margin_db`` below the mission median."""
    noise = daily_ambient_noise(sensing)
    if len(noise) < 3:
        return CoveredList(coverage=getattr(noise, "coverage", 1.0))
    baseline = float(np.median(list(noise.values())))
    return CoveredList(
        [day for day, level in noise.items() if level < baseline - margin_db],
        coverage=getattr(noise, "coverage", 1.0),
    )
