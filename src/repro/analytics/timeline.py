"""Day timelines (paper Figure 5).

"Fraction of time with detected speech and location: timeline for all
astronauts, for the day when C left the habitat" — per-astronaut binned
speech fractions plus the dominant room per bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.speech import loud_voice_mask

#: Default timeline bin, seconds.
BIN_S = 300.0


@dataclass
class AstronautTimeline:
    """One astronaut's track in a day timeline."""

    astro_id: str
    badge_id: int
    speech_fraction: np.ndarray  # per bin
    dominant_room: np.ndarray    # int8 per bin; -1 unknown/unworn


@dataclass
class DayTimeline:
    """A full Figure-5-style day timeline."""

    day: int
    t0: float
    bin_s: float
    tracks: list[AstronautTimeline]
    #: Usable-data fraction of the day (quality-gate verdicts).
    coverage: float = 1.0

    def bin_times(self) -> np.ndarray:
        """Start time (seconds of day) of each bin."""
        n_bins = len(self.tracks[0].speech_fraction) if self.tracks else 0
        return self.t0 + np.arange(n_bins) * self.bin_s

    def track(self, astro_id: str) -> AstronautTimeline:
        for track in self.tracks:
            if track.astro_id == astro_id:
                return track
        raise KeyError(astro_id)


def day_timeline(
    sensing: MissionSensing,
    day: int,
    bin_s: float = BIN_S,
    corrected: bool = True,
) -> DayTimeline:
    """Build the day's per-astronaut speech/location timeline."""
    badges = sensing.badges_on(day)
    tracks: list[AstronautTimeline] = []
    t0 = 0.0
    for badge_id in badges:
        astro = sensing.wearer_of(badge_id, day, corrected)
        if astro is None:
            continue
        summary = sensing.summary(badge_id, day)
        t0 = summary.t0
        factor = max(1, int(round(bin_s / summary.dt)))
        blocks = summary.n_frames // factor

        loud = loud_voice_mask(summary)[: blocks * factor].reshape(blocks, factor)
        speech_fraction = loud.mean(axis=1)

        located = np.where(summary.worn, summary.room, -1)[: blocks * factor]
        located = located.reshape(blocks, factor)
        dominant = _dominant_per_row(located)

        tracks.append(
            AstronautTimeline(
                astro_id=astro, badge_id=badge_id,
                speech_fraction=speech_fraction.astype(np.float32),
                dominant_room=dominant,
            )
        )
    tracks.sort(key=lambda t: t.astro_id)
    return DayTimeline(day=day, t0=t0, bin_s=bin_s, tracks=tracks,
                       coverage=dataset_coverage(sensing, day))


def _dominant_per_row(labels: np.ndarray) -> np.ndarray:
    """Most frequent non-negative label per row; -1 if none."""
    n_rows = labels.shape[0]
    out = np.full(n_rows, -1, dtype=np.int8)
    for i in range(n_rows):
        row = labels[i]
        row = row[row >= 0]
        if row.size:
            values, counts = np.unique(row, return_counts=True)
            out[i] = values[np.argmax(counts)]
    return out


def crew_in_room_bins(timeline: DayTimeline, room: int) -> np.ndarray:
    """Per-bin count of astronauts whose dominant room is ``room``."""
    if not timeline.tracks:
        return np.zeros(0, dtype=np.int64)
    stacked = np.vstack([t.dominant_room for t in timeline.tracks])
    return (stacked == room).sum(axis=0)
