"""Pairwise interaction analysis.

Person-to-person relations from co-presence and conversation: "A and F
talked privately with each other for about 5 h more than D and E during
the mission.  In addition, A and F spent together 10 h more on all
meetings, both private and group ones, than the latter pair."
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.analytics.coverage import CoveredDict, dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.speech import loud_voice_mask


def _located_matrix(sensing: MissionSensing, day: int) -> tuple[list[int], np.ndarray]:
    """Room matrix with unworn badges masked out (a badge on a desk does
    not testify to its owner's whereabouts).  Empty on dataless days."""
    badges, rooms = sensing.room_estimate_matrix(day)
    if not badges:
        return badges, rooms
    worn = np.vstack(
        [sensing.summary(b, day).worn[: rooms.shape[1]] for b in badges]
    )
    return badges, np.where(worn, rooms, -1)


def _loud_matrix(sensing: MissionSensing, day: int, badges: list[int],
                 n_frames: int) -> np.ndarray:
    return np.vstack(
        [loud_voice_mask(sensing.summary(b, day))[:n_frames] for b in badges]
    )


def company_seconds(sensing: MissionSensing, corrected: bool = True) -> dict[str, float]:
    """Seconds each astronaut spent accompanied (Table I column a input).

    A frame counts when the astronaut's badge is worn, localized, and at
    least one other worn badge shares the room.
    """
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for day in sensing.days:
        badges, located = _located_matrix(sensing, day)
        if not badges:
            continue
        dt = sensing.summary(badges[0], day).dt
        for i, badge_id in enumerate(badges):
            astro = sensing.wearer_of(badge_id, day, corrected)
            if astro is None:
                continue
            mine = located[i]
            others = np.delete(located, i, axis=0)
            accompanied = (mine >= 0) & (others == mine[None, :]).any(axis=0)
            out[astro] = out.get(astro, 0.0) + float(accompanied.sum()) * dt
    return out


def pair_copresence_seconds(
    sensing: MissionSensing, corrected: bool = True
) -> dict[tuple[str, str], float]:
    """Same-room seconds per astronaut pair, mission-wide."""
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for day in sensing.days:
        badges, located = _located_matrix(sensing, day)
        if not badges:
            continue
        dt = sensing.summary(badges[0], day).dt
        for i, j in combinations(range(len(badges)), 2):
            a = sensing.wearer_of(badges[i], day, corrected)
            b = sensing.wearer_of(badges[j], day, corrected)
            if a is None or b is None or a == b:
                continue
            key = tuple(sorted((a, b)))
            together = (located[i] >= 0) & (located[i] == located[j])
            out[key] = out.get(key, 0.0) + float(together.sum()) * dt
    return out


def private_talk_seconds(
    sensing: MissionSensing, corrected: bool = True
) -> dict[tuple[str, str], float]:
    """Seconds each pair spent talking privately (just the two of them).

    Frames where exactly those two worn badges share a room and at least
    one of them detects loud (human) voice.
    """
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for day in sensing.days:
        badges, located = _located_matrix(sensing, day)
        if not badges:
            continue
        dt = sensing.summary(badges[0], day).dt
        loud = _loud_matrix(sensing, day, badges, located.shape[1])
        for i, j in combinations(range(len(badges)), 2):
            a = sensing.wearer_of(badges[i], day, corrected)
            b = sensing.wearer_of(badges[j], day, corrected)
            if a is None or b is None or a == b:
                continue
            same = (located[i] >= 0) & (located[i] == located[j])
            if not same.any():
                continue
            others = np.delete(located, [i, j], axis=0)
            alone = same & ~(others == located[i][None, :]).any(axis=0)
            talking = alone & (loud[i] | loud[j])
            key = tuple(sorted((a, b)))
            out[key] = out.get(key, 0.0) + float(talking.sum()) * dt
    return out


def pair_meeting_seconds(
    sensing: MissionSensing, corrected: bool = True
) -> dict[tuple[str, str], float]:
    """Seconds each pair spent together in *any* conversation context.

    Co-presence frames during which someone nearby is audibly speaking —
    private chats and group meetings alike.
    """
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for day in sensing.days:
        badges, located = _located_matrix(sensing, day)
        if not badges:
            continue
        dt = sensing.summary(badges[0], day).dt
        loud = _loud_matrix(sensing, day, badges, located.shape[1])
        for i, j in combinations(range(len(badges)), 2):
            a = sensing.wearer_of(badges[i], day, corrected)
            b = sensing.wearer_of(badges[j], day, corrected)
            if a is None or b is None or a == b:
                continue
            together = (located[i] >= 0) & (located[i] == located[j])
            talking = together & (loud[i] | loud[j])
            key = tuple(sorted((a, b)))
            out[key] = out.get(key, 0.0) + float(talking.sum()) * dt
    return out


def ir_contact_seconds(
    sensing: MissionSensing, corrected: bool = True
) -> dict[tuple[str, str], float]:
    """Face-to-face seconds per pair from the IR transceivers."""
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for day, pairwise in sensing.pairwise.items():
        for (bi, bj), contact in pairwise.ir_contact.items():
            a = sensing.wearer_of(bi, day, corrected)
            b = sensing.wearer_of(bj, day, corrected)
            if a is None or b is None or a == b:
                continue
            key = tuple(sorted((a, b)))
            # The stream may outlive its badge-day summary (quarantine);
            # the frame period is a config constant either way.
            summary = sensing.summaries.get((bi, day))
            dt = summary.dt if summary is not None else sensing.cfg.frame_dt
            out[key] = out.get(key, 0.0) + float(contact.sum()) * dt
    return out


def pairwise_matrix(
    pair_seconds: dict[tuple[str, str], float], ids: tuple[str, ...]
) -> np.ndarray:
    """Symmetric ``(n, n)`` matrix from a pair->seconds mapping."""
    n = len(ids)
    index = {astro: k for k, astro in enumerate(ids)}
    out = np.zeros((n, n))
    for (a, b), seconds in pair_seconds.items():
        i, j = index[a], index[b]
        out[i, j] = out[j, i] = seconds
    return out
