"""Room-to-room transition analysis (paper Figure 2).

"For each pair of rooms (X, Y), we measured how many times an astronaut
moved from X to Y and spent in Y at least 10 s" — the minimal interval
filters doorway beacon leakage.  The matrix excludes the main hall
("the main room adjacent to all other rooms is not considered"), so a
passage office -> hall -> kitchen counts as office -> kitchen when the
hall crossing is brief.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.coverage import CoveredTuple, dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.occupancy import MIN_STAY_S, stays
from repro.habitat.rooms import ROOM_NAMES


def transition_counts_day(
    sensing: MissionSensing,
    badge_id: int,
    day: int,
    min_stay_s: float = MIN_STAY_S,
    exclude: tuple[str, ...] = ("main",),
) -> np.ndarray:
    """``(rooms, rooms)`` passage counts for one badge-day.

    Rooms in ``exclude`` are removed from the stay sequence entirely, so
    passing through them links the surrounding rooms.
    """
    plan = sensing.plan
    excluded = {plan.index_of(name) for name in exclude}
    n = len(ROOM_NAMES)
    counts = np.zeros((n, n), dtype=np.int64)
    sequence = [
        s.room for s in stays(sensing.summary(badge_id, day), min_stay_s)
        if s.room not in excluded
    ]
    for a, b in zip(sequence, sequence[1:]):
        if a != b and a < n and b < n:
            counts[a, b] += 1
    return counts


def transition_matrix(
    sensing: MissionSensing,
    min_stay_s: float = MIN_STAY_S,
    exclude: tuple[str, ...] = ("main",),
) -> tuple[list[str], np.ndarray]:
    """Mission-wide transition matrix over the paper's eight rooms.

    Returns ``(room_names, counts)`` with ``counts[i, j]`` the number of
    passages from room i to room j summed over all badges and days.
    The pair unpacks like a plain tuple and additionally carries a
    ``.coverage`` fraction (1.0 unless a quality gate found damage).
    """
    n = len(ROOM_NAMES)
    total = np.zeros((n, n), dtype=np.int64)
    ref = sensing.assignment.reference_id
    for (badge_id, day) in sensing.summaries:
        if badge_id == ref:
            continue
        total += transition_counts_day(sensing, badge_id, day, min_stay_s, exclude)
    return CoveredTuple((list(ROOM_NAMES), total),
                        coverage=dataset_coverage(sensing))


def top_transitions(
    names: list[str], counts: np.ndarray, k: int = 5
) -> list[tuple[str, str, int]]:
    """The ``k`` most frequent passages, descending."""
    flat = [
        (names[i], names[j], int(counts[i, j]))
        for i in range(len(names))
        for j in range(len(names))
        if counts[i, j] > 0
    ]
    flat.sort(key=lambda item: -item[2])
    return flat[:k]


def kitchen_inflow_share(names: list[str], counts: np.ndarray) -> dict[str, float]:
    """Fraction of kitchen-bound passages originating from each room.

    The paper: "from these two rooms, especially the office, most
    astronauts went directly to the kitchen".
    """
    j = names.index("kitchen")
    inflow = counts[:, j].astype(np.float64)
    total = inflow.sum()
    if total == 0:
        return {name: 0.0 for name in names}
    return {name: float(inflow[i] / total) for i, name in enumerate(names)}
