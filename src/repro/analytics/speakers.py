"""Speaker identification from microphone features.

The badge microphone was used "notably for identifying the speaker
during a multi-person conversation and distinguishing between male and
female speakers".  This module reproduces both: per-frame sex
classification from the dominant pitch, enrollment of per-astronaut
voice profiles from each badge's own-speech frames, and nearest-profile
speaker attribution — which is also what powers the badge-swap anomaly
detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import CoveredDict, dataset_coverage
from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.analytics.speech import MACHINE_STABILITY
from repro.core.errors import DataError

#: Voice level at which the speech is attributed to the wearer.
OWN_SPEECH_DB = 75.0
#: Pitch boundary used for sex classification, Hz.
SEX_BOUNDARY_HZ = 165.0


def own_speech_mask(summary: BadgeDaySummary, level_db: float = OWN_SPEECH_DB) -> np.ndarray:
    """Frames whose voice is loud enough to be the wearer's own."""
    voice = np.nan_to_num(summary.voice_db, nan=-np.inf)
    stability = np.nan_to_num(summary.pitch_stability, nan=1.0)
    return (
        summary.worn
        & (voice >= level_db)
        & ~np.isnan(summary.dominant_pitch_hz)
        & (stability < MACHINE_STABILITY)
    )


def classify_sex(pitch_hz: np.ndarray, boundary_hz: float = SEX_BOUNDARY_HZ) -> np.ndarray:
    """'f'/'m' per frame from pitch (NaN-safe; NaN -> '?')."""
    pitch_hz = np.asarray(pitch_hz, dtype=np.float64)
    out = np.full(pitch_hz.shape, "?", dtype="<U1")
    known = ~np.isnan(pitch_hz)
    out[known & (pitch_hz >= boundary_hz)] = "f"
    out[known & (pitch_hz < boundary_hz)] = "m"
    return out


@dataclass(frozen=True)
class VoiceProfile:
    """An enrolled speaker's voice statistics."""

    astro_id: str
    median_pitch_hz: float
    pitch_iqr_hz: float
    n_frames: int

    @property
    def sex(self) -> str:
        return "f" if self.median_pitch_hz >= SEX_BOUNDARY_HZ else "m"


def enroll_profiles(
    sensing: MissionSensing, corrected: bool = True, min_frames: int = 300
) -> dict[str, VoiceProfile]:
    """Build per-astronaut voice profiles from own-speech frames.

    Each badge's loud, worn, human-pitched frames are attributed to its
    wearer; pooling them across the mission yields the enrollment set.
    """
    pooled: dict[str, list[np.ndarray]] = {}
    for (badge_id, day), summary in sensing.summaries.items():
        astro = sensing.wearer_of(badge_id, day, corrected)
        if astro is None:
            continue
        mask = own_speech_mask(summary)
        if mask.any():
            pooled.setdefault(astro, []).append(summary.dominant_pitch_hz[mask])
    profiles: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for astro, chunks in pooled.items():
        pitches = np.concatenate(chunks)
        if pitches.size < min_frames:
            continue
        q25, q75 = np.percentile(pitches, [25, 75])
        profiles[astro] = VoiceProfile(
            astro_id=astro,
            median_pitch_hz=float(np.median(pitches)),
            pitch_iqr_hz=float(q75 - q25),
            n_frames=int(pitches.size),
        )
    return profiles


def identify_speakers(
    summary: BadgeDaySummary,
    profiles: dict[str, VoiceProfile],
    level_db: float = 60.0,
) -> np.ndarray:
    """Attribute each loud frame to the nearest enrolled voice.

    Returns an object array of astronaut ids ('' where no attribution).
    Machine-like frames are never attributed to a human.
    """
    if not profiles:
        raise DataError("no enrolled voice profiles")
    ids = sorted(profiles)
    centers = np.array([profiles[a].median_pitch_hz for a in ids])
    voice = np.nan_to_num(summary.voice_db, nan=-np.inf)
    stability = np.nan_to_num(summary.pitch_stability, nan=1.0)
    loud = (
        summary.active
        & (voice >= level_db)
        & ~np.isnan(summary.dominant_pitch_hz)
        & (stability < MACHINE_STABILITY)
    )
    out = np.full(summary.n_frames, "", dtype=object)
    idx = np.flatnonzero(loud)
    if idx.size:
        pitches = summary.dominant_pitch_hz[idx, None].astype(np.float64)
        nearest = np.argmin(np.abs(pitches - centers[None, :]), axis=1)
        out[idx] = [ids[k] for k in nearest]
    return out


def sex_classification_report(
    sensing: MissionSensing, corrected: bool = True
) -> dict[str, float]:
    """Per-astronaut accuracy of frame-level sex classification.

    Ground truth is the roster's sex; predictions come from each badge's
    own-speech pitch — the capability the paper highlights.
    """
    roster = sensing.assignment.roster
    correct: dict[str, int] = {}
    total: dict[str, int] = {}
    for (badge_id, day), summary in sensing.summaries.items():
        astro = sensing.wearer_of(badge_id, day, corrected)
        if astro is None:
            continue
        mask = own_speech_mask(summary)
        if not mask.any():
            continue
        predicted = classify_sex(summary.dominant_pitch_hz[mask])
        truth_sex = roster.profile(astro).sex
        correct[astro] = correct.get(astro, 0) + int((predicted == truth_sex).sum())
        total[astro] = total.get(astro, 0) + int(mask.sum())
    return CoveredDict(
        {a: correct[a] / total[a] for a in total if total[a] > 0},
        coverage=dataset_coverage(sensing),
    )
