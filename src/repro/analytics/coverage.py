"""Coverage plumbing for the analytics layer.

Every analysis result can carry a ``coverage`` attribute: the fraction
of the expected badge-day frames that actually contributed, as judged by
the :mod:`repro.quality` gate.  An ungated dataset (``sensing.quality is
None``) is assumed complete — coverage 1.0 — so the attribute is free
for the clean path and only drops below 1 when the gate found damage.

The carriers are thin ``dict`` / ``list`` / ``tuple`` subclasses, so
results compare equal to (and unpack like) their plain counterparts:
``names, counts = transition_matrix(sensing)`` keeps working, and a
``CoveredDict`` still ``==`` the plain dict with the same items.
"""

from __future__ import annotations

from repro.analytics.dataset import MissionSensing


def dataset_coverage(sensing: MissionSensing, day: int | None = None) -> float:
    """Usable-data fraction of a (gated) dataset, per the quality report.

    Excludes the reference badge — it records around the clock by design
    and would dilute crew coverage.  Returns 1.0 for ungated datasets.
    """
    if sensing.quality is None:
        return 1.0
    return sensing.quality.coverage(
        day=day, exclude_badges=(sensing.assignment.reference_id,)
    )


class CoveredDict(dict):
    """A dict result that knows how much data backed it."""

    coverage: float = 1.0

    def __init__(self, *args, coverage: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.coverage = float(coverage)


class CoveredList(list):
    """A list result that knows how much data backed it."""

    coverage: float = 1.0

    def __init__(self, *args, coverage: float = 1.0):
        super().__init__(*args)
        self.coverage = float(coverage)


class CoveredTuple(tuple):
    """A tuple result (e.g. ``(names, counts)``) carrying coverage."""

    coverage: float = 1.0

    def __new__(cls, items, coverage: float = 1.0):
        self = super().__new__(cls, items)
        self.coverage = float(coverage)
        return self
