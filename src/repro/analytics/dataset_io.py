"""Persistence for the analysis-ready dataset.

A full mission simulation takes minutes; the analyses take seconds.
``save_sensing``/``load_sensing`` round-trip a :class:`MissionSensing`
through a :class:`~repro.core.storage.DataStore` directory so the
expensive step can be cached between analysis sessions (the real
deployment's equivalent was pulling the SD cards once).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import PairwiseDay
from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.storage import DataStore
from repro.crew.roster import icares_roster
from repro.habitat.floorplan import lunares_floorplan

_SUMMARY_ARRAYS = (
    "active", "worn", "room", "x", "y", "accel_rms", "voice_db",
    "dominant_pitch_hz", "pitch_stability", "sound_db",
)


def sensing_to_store(sensing: MissionSensing) -> DataStore:
    """Serialize a sensing dataset into a :class:`DataStore`."""
    store = DataStore()
    cfg = sensing.cfg
    events = cfg.events
    store.put_meta(("cfg",), {
        "seed": cfg.seed, "days": cfg.days, "badges_from_day": cfg.badges_from_day,
        "daytime_start": cfg.daytime_start, "daytime_hours": cfg.daytime_hours,
        "frame_dt": cfg.frame_dt, "n_beacons": cfg.n_beacons,
        "crew_size": cfg.crew_size,
        "wear_compliance_start": cfg.wear_compliance_start,
        "wear_compliance_end": cfg.wear_compliance_end,
        "earth_link_delay_s": cfg.earth_link_delay_s,
        "events": None if events is None else {
            "death_day": events.death_day, "death_time": events.death_time,
            "consolation_time": events.consolation_time,
            "consolation_duration_s": events.consolation_duration_s,
            "famine_day": events.famine_day, "reprimand_day": events.reprimand_day,
            "badge_swap_day": events.badge_swap_day,
            "badge_reuse_day": events.badge_reuse_day,
        },
    })
    for (badge_id, day), summary in sensing.summaries.items():
        arrays = {name: getattr(summary, name) for name in _SUMMARY_ARRAYS}
        if summary.true_room is not None:
            arrays["true_room"] = summary.true_room
        store.put_arrays(("summary", str(badge_id), str(day)), **arrays)
        store.put_meta(("summary", str(badge_id), str(day)), {
            "t0": summary.t0, "dt": summary.dt,
            "bytes_recorded": summary.bytes_recorded,
            "n_sync_events": summary.n_sync_events,
        })
    for day, pairwise in sensing.pairwise.items():
        for (i, j), contact in pairwise.ir_contact.items():
            store.put_arrays(
                ("ir", str(day), str(i), str(j)),
                contact=contact, rssi=pairwise.subghz_rssi[(i, j)],
            )
    return store


def store_to_sensing(store: DataStore) -> MissionSensing:
    """Rebuild a sensing dataset from a :class:`DataStore`."""
    raw = dict(store.get_meta(("cfg",)))
    events_raw = raw.pop("events")
    events = None if events_raw is None else ScriptedEventsConfig(**events_raw)
    cfg = MissionConfig(events=events, **raw)
    plan = lunares_floorplan()
    assignment = BadgeAssignment(cfg=cfg, roster=icares_roster(cfg.crew_size))
    sensing = MissionSensing(cfg=cfg, plan=plan, assignment=assignment)

    for key in store.keys(("summary",)):
        __, badge_id, day = key
        arrays = store.get_arrays(key)
        meta = store.get_meta(key)
        sensing.summaries[(int(badge_id), int(day))] = BadgeDaySummary(
            badge_id=int(badge_id), day=int(day),
            t0=meta["t0"], dt=meta["dt"],
            true_room=arrays.get("true_room"),
            bytes_recorded=meta["bytes_recorded"],
            n_sync_events=meta["n_sync_events"],
            **{name: arrays[name] for name in _SUMMARY_ARRAYS},
        )
    for key in store.keys(("ir",)):
        __, day, i, j = key
        arrays = store.get_arrays(key)
        pairwise = sensing.pairwise.setdefault(int(day), PairwiseDay(day=int(day)))
        pairwise.ir_contact[(int(i), int(j))] = arrays["contact"].astype(bool)
        pairwise.subghz_rssi[(int(i), int(j))] = arrays["rssi"].astype(np.float32)
    return sensing


def save_sensing(sensing: MissionSensing, path: str | Path) -> None:
    """Write a sensing dataset to a directory."""
    sensing_to_store(sensing).save_dir(path)


def load_sensing(path: str | Path) -> MissionSensing:
    """Read a sensing dataset previously written by :func:`save_sensing`."""
    return store_to_sensing(DataStore.load_dir(path))
