"""Persistence for the analysis-ready dataset.

A full mission simulation takes minutes; the analyses take seconds.
``save_sensing``/``load_sensing`` round-trip a :class:`MissionSensing`
through a :class:`~repro.core.storage.DataStore` directory so the
expensive step can be cached between analysis sessions (the real
deployment's equivalent was pulling the SD cards once).

Saved datasets ride inside the :mod:`repro.exec.integrity` artifact
envelope: the write is atomic, the payload is checksum-verified on
every load, and a store that fails verification is quarantined next to
itself — never silently served.  Directories written by older versions
(plain ``.npz`` files + ``meta.json``) still load.  On load the data is
additionally routed through the :mod:`repro.quality` ingest gate unless
the caller opts out.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import PairwiseDay
from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.errors import ConfigError, DataError
from repro.core.storage import DataStore
from repro.crew.roster import icares_roster
from repro.exec.integrity import (
    ArtifactError,
    quarantine,
    read_artifact,
    write_artifact,
)
from repro.habitat.floorplan import lunares_floorplan
from repro.quality.gate import gate_sensing

#: Single-file artifact a saved dataset lives in (integrity envelope).
ARTIFACT_NAME = "sensing.artifact"
#: Envelope schema version for saved sensing datasets.
SENSING_SCHEMA = 1

_SUMMARY_ARRAYS = (
    "active", "worn", "room", "x", "y", "accel_rms", "voice_db",
    "dominant_pitch_hz", "pitch_stability", "sound_db",
)


def sensing_to_store(sensing: MissionSensing) -> DataStore:
    """Serialize a sensing dataset into a :class:`DataStore`."""
    store = DataStore()
    cfg = sensing.cfg
    events = cfg.events
    store.put_meta(("cfg",), {
        "seed": cfg.seed, "days": cfg.days, "badges_from_day": cfg.badges_from_day,
        "daytime_start": cfg.daytime_start, "daytime_hours": cfg.daytime_hours,
        "frame_dt": cfg.frame_dt, "n_beacons": cfg.n_beacons,
        "crew_size": cfg.crew_size,
        "wear_compliance_start": cfg.wear_compliance_start,
        "wear_compliance_end": cfg.wear_compliance_end,
        "earth_link_delay_s": cfg.earth_link_delay_s,
        "events": None if events is None else {
            "death_day": events.death_day, "death_time": events.death_time,
            "consolation_time": events.consolation_time,
            "consolation_duration_s": events.consolation_duration_s,
            "famine_day": events.famine_day, "reprimand_day": events.reprimand_day,
            "badge_swap_day": events.badge_swap_day,
            "badge_reuse_day": events.badge_reuse_day,
        },
    })
    for (badge_id, day), summary in sensing.summaries.items():
        arrays = {name: getattr(summary, name) for name in _SUMMARY_ARRAYS}
        if summary.true_room is not None:
            arrays["true_room"] = summary.true_room
        store.put_arrays(("summary", str(badge_id), str(day)), **arrays)
        store.put_meta(("summary", str(badge_id), str(day)), {
            "t0": summary.t0, "dt": summary.dt,
            "bytes_recorded": summary.bytes_recorded,
            "n_sync_events": summary.n_sync_events,
        })
    for day, pairwise in sensing.pairwise.items():
        for (i, j), contact in pairwise.ir_contact.items():
            store.put_arrays(
                ("ir", str(day), str(i), str(j)),
                contact=contact, rssi=pairwise.subghz_rssi[(i, j)],
            )
    return store


def store_to_sensing(store: DataStore) -> MissionSensing:
    """Rebuild a sensing dataset from a :class:`DataStore`."""
    raw = dict(store.get_meta(("cfg",)))
    events_raw = raw.pop("events")
    events = None if events_raw is None else ScriptedEventsConfig(**events_raw)
    cfg = MissionConfig(events=events, **raw)
    plan = lunares_floorplan()
    assignment = BadgeAssignment(cfg=cfg, roster=icares_roster(cfg.crew_size))
    sensing = MissionSensing(cfg=cfg, plan=plan, assignment=assignment)

    for key in store.keys(("summary",)):
        __, badge_id, day = key
        arrays = store.get_arrays(key)
        meta = store.get_meta(key)
        sensing.summaries[(int(badge_id), int(day))] = BadgeDaySummary(
            badge_id=int(badge_id), day=int(day),
            t0=meta["t0"], dt=meta["dt"],
            true_room=arrays.get("true_room"),
            bytes_recorded=meta["bytes_recorded"],
            n_sync_events=meta["n_sync_events"],
            **{name: arrays[name] for name in _SUMMARY_ARRAYS},
        )
    for key in store.keys(("ir",)):
        __, day, i, j = key
        arrays = store.get_arrays(key)
        pairwise = sensing.pairwise.setdefault(int(day), PairwiseDay(day=int(day)))
        pairwise.ir_contact[(int(i), int(j))] = arrays["contact"].astype(bool)
        pairwise.subghz_rssi[(int(i), int(j))] = arrays["rssi"].astype(np.float32)
    return sensing


def save_sensing(sensing: MissionSensing, path: str | Path) -> None:
    """Write a sensing dataset to a directory.

    The store is persisted as a single checksummed artifact
    (atomic temp-file + rename write; verified byte-for-byte on load).
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    payload = sensing_to_store(sensing).to_payload()
    write_artifact(root / ARTIFACT_NAME, payload, SENSING_SCHEMA)


def load_sensing(path: str | Path, quality: str = "gate") -> MissionSensing:
    """Read a sensing dataset previously written by :func:`save_sensing`.

    The artifact's checksum is verified before anything is unpickled; a
    store that fails verification is moved to a ``quarantine/`` sibling
    and a :class:`~repro.core.errors.DataError` raised — corrupt bytes
    are never served.  Directories from older versions (``.npz`` files
    + ``meta.json``) load through the legacy path.

    Args:
        path: directory written by :func:`save_sensing`.
        quality: ``"gate"`` (default) routes the loaded data through the
            validating ingest gate (repairing / quarantining bad
            badge-days and attaching a
            :class:`~repro.quality.report.DataQualityReport`);
            ``"strict"`` additionally raises if any badge-day is
            quarantined; ``"off"`` serves the bytes exactly as stored.
    """
    if quality not in ("off", "gate", "strict"):
        raise ConfigError(
            f"quality must be one of off/gate/strict, got {quality!r}")
    root = Path(path)
    artifact = root / ARTIFACT_NAME
    if artifact.exists():
        try:
            payload = read_artifact(artifact, SENSING_SCHEMA)
        except ArtifactError as exc:
            quarantine(artifact, root, store="sensing")
            raise DataError(
                f"saved dataset at {root} failed integrity verification "
                f"({exc}); the store was quarantined"
            ) from exc
        store = DataStore.from_payload(payload)
    else:  # legacy directory layout (pre-envelope)
        store = DataStore.load_dir(path)
    sensing = store_to_sensing(store)
    if quality == "off":
        return sensing
    gated, _report = gate_sensing(sensing, strict=(quality == "strict"))
    return gated
