"""Offline analytics: the paper's Section V analyses.

Everything here consumes *sensor observations only* (room/position
estimates, microphone features, accelerometer features, pairwise radio
contacts) — never ground truth — mirroring the paper's offline pipeline:
room occupancy and transitions (Fig 2), heatmaps (Fig 3), walking
fractions (Fig 4), meeting timelines (Fig 5), speech fractions (Fig 6),
pairwise interaction times, and the centrality measures of Table I.
"""

from repro.analytics.centrality import CentralityResult, company_and_authority, hits_authority
from repro.analytics.coverage import (
    CoveredDict,
    CoveredList,
    CoveredTuple,
    dataset_coverage,
)
from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.analytics.interactions import pair_copresence_seconds, pairwise_matrix
from repro.analytics.meetings import Meeting, detect_meetings
from repro.analytics.occupancy import stay_durations_by_room, stays
from repro.analytics.reports import DeploymentStats, deployment_stats, table1
from repro.analytics.speech import daily_speech_fraction, speech_windows
from repro.analytics.timeline import day_timeline
from repro.analytics.transitions import transition_matrix
from repro.analytics.walking import daily_walking_fraction, walking_mask

__all__ = [
    "BadgeDaySummary",
    "CentralityResult",
    "CoveredDict",
    "CoveredList",
    "CoveredTuple",
    "DeploymentStats",
    "Meeting",
    "MissionSensing",
    "company_and_authority",
    "dataset_coverage",
    "daily_speech_fraction",
    "daily_walking_fraction",
    "day_timeline",
    "deployment_stats",
    "detect_meetings",
    "hits_authority",
    "pair_copresence_seconds",
    "pairwise_matrix",
    "speech_windows",
    "stay_durations_by_room",
    "stays",
    "table1",
    "transition_matrix",
    "walking_mask",
]
