"""The analysis-ready mission dataset.

``MissionSensing`` holds, per badge-day, the reduced observation streams
(localization output plus the low-rate sensor features — the raw BLE
scan matrices have already been consumed), the pairwise radio data, and
the badge-assignment bookkeeping needed to attribute badge data to
astronauts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import BadgeDayObservations, PairwiseDay
from repro.core.config import MissionConfig
from repro.core.errors import DataError
from repro.habitat.floorplan import FloorPlan
from repro.localization.pipeline import LocalizationResult

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.quality
    from repro.quality.report import DataQualityReport


@dataclass
class BadgeDaySummary:
    """One badge-day of analysis-ready data."""

    badge_id: int
    day: int
    t0: float
    dt: float
    active: np.ndarray          # bool
    worn: np.ndarray            # bool
    room: np.ndarray            # int8 localization estimate; -1 unknown
    x: np.ndarray               # float32
    y: np.ndarray               # float32
    accel_rms: np.ndarray       # float32
    voice_db: np.ndarray        # float32
    dominant_pitch_hz: np.ndarray  # float32
    pitch_stability: np.ndarray    # float32
    sound_db: np.ndarray        # float32
    bytes_recorded: float = 0.0
    n_sync_events: int = 0
    #: Ground-truth badge room (simulator-only evaluation aid; analyses
    #: must not consume it).
    true_room: np.ndarray | None = None

    @classmethod
    def from_observations(
        cls, obs: BadgeDayObservations, loc: LocalizationResult
    ) -> "BadgeDaySummary":
        """Combine raw observations with their localization output."""
        if loc.room.shape != obs.active.shape:
            raise DataError("localization does not align with observations")
        return cls(
            badge_id=obs.badge_id, day=obs.day, t0=obs.t0, dt=obs.dt,
            active=obs.active, worn=obs.worn,
            room=loc.room, x=loc.x, y=loc.y,
            accel_rms=obs.accel_rms, voice_db=obs.voice_db,
            dominant_pitch_hz=obs.dominant_pitch_hz,
            pitch_stability=obs.pitch_stability, sound_db=obs.sound_db,
            bytes_recorded=obs.bytes_recorded,
            n_sync_events=len(obs.sync_events),
            true_room=obs.true_room,
        )

    @property
    def n_frames(self) -> int:
        return int(self.active.shape[0])

    def recorded_seconds(self) -> float:
        """Seconds of recorded (active) data."""
        return float(self.active.sum()) * self.dt

    def worn_seconds(self) -> float:
        """Seconds the badge spent on the wearer's neck."""
        return float(self.worn.sum()) * self.dt


@dataclass
class MissionSensing:
    """All analysis inputs for a mission."""

    cfg: MissionConfig
    plan: FloorPlan
    assignment: BadgeAssignment
    summaries: dict[tuple[int, int], BadgeDaySummary] = field(default_factory=dict)
    pairwise: dict[int, PairwiseDay] = field(default_factory=dict)
    #: Set by the quality gate when this dataset has been validated; the
    #: analytics layer reads coverage fractions from it.  ``None`` means
    #: the dataset was never gated (assumed complete).
    quality: Optional["DataQualityReport"] = None

    @property
    def days(self) -> list[int]:
        """Instrumented days present in the dataset, sorted."""
        return sorted({day for _, day in self.summaries})

    def summary(self, badge_id: int, day: int) -> BadgeDaySummary:
        try:
            return self.summaries[(badge_id, day)]
        except KeyError:
            raise DataError(f"no summary for badge {badge_id} day {day}") from None

    def badges_on(self, day: int) -> list[int]:
        """Badges with data on ``day`` (excluding the reference badge)."""
        ref = self.assignment.reference_id
        return sorted(b for b, d in self.summaries if d == day and b != ref)

    def astro_summaries(self, corrected: bool = True) -> dict[str, list[BadgeDaySummary]]:
        """Badge-day summaries grouped by the astronaut who wore them.

        ``corrected=True`` uses the true per-day assignment (the paper's
        post-fix pipeline); ``corrected=False`` reproduces the naive
        one-badge-one-owner assumption, mislabeling the swap/reuse days.
        """
        out: dict[str, list[BadgeDaySummary]] = {a: [] for a in self.assignment.roster.ids}
        assumed = self.assignment.assumed()
        for day in self.days:
            mapping = self.assignment.actual(day) if corrected else assumed
            for badge_id, astro in mapping.items():
                summary = self.summaries.get((badge_id, day))
                if summary is not None:
                    out[astro].append(summary)
        return out

    def wearer_of(self, badge_id: int, day: int, corrected: bool = True) -> str | None:
        """The astronaut attributed to a badge on a day."""
        mapping = self.assignment.actual(day) if corrected else self.assignment.assumed()
        return mapping.get(badge_id)

    def room_estimate_matrix(self, day: int) -> tuple[list[int], np.ndarray]:
        """``(badge_ids, (badges, frames) room matrix)`` for a day.

        Tolerates dirty datasets: a day with no badges yields an empty
        ``(0, 0)`` matrix, and ragged badge-days (possible only when an
        ungated corrupt dataset is analyzed directly) are trimmed to the
        shortest stream rather than crashing ``np.vstack``.
        """
        badges = self.badges_on(day)
        if not badges:
            return [], np.zeros((0, 0), dtype=np.int8)
        rooms = [self.summary(b, day).room for b in badges]
        shortest = min(r.shape[0] for r in rooms)
        matrix = np.vstack([r[:shortest] for r in rooms])
        return badges, matrix
