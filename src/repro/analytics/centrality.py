"""Social centrality (paper Table I, columns a).

"Centrality measured as amount of time spent accompanied and, based on
this score, Kleinberg centrality (authority)."  The co-presence graph is
weighted by pairwise accompanied time; authority comes from Kleinberg's
HITS iteration, implemented from scratch (and cross-checked against
networkx in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.interactions import company_seconds, pair_copresence_seconds, pairwise_matrix
from repro.core.errors import DataError

#: Astronauts with data on fewer than this fraction of instrumented days
#: get "n/a" centrality (C left on day 4).
MIN_COVERAGE = 0.5


def hits_authority(weights: np.ndarray, iterations: int = 100, tol: float = 1e-12) -> np.ndarray:
    """Kleinberg HITS authority scores of a weighted adjacency matrix.

    Standard alternating update: ``a <- W^T h``, ``h <- W a`` with L1
    normalization each round.  For the symmetric co-presence graph the
    authority and hub vectors coincide.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise DataError("weights must be a square matrix")
    if (w < 0).any():
        raise DataError("weights must be non-negative")
    n = w.shape[0]
    if n == 0:
        return np.zeros(0)
    authority = np.ones(n) / n
    hub = np.ones(n) / n
    for _ in range(iterations):
        new_authority = w.T @ hub
        total = new_authority.sum()
        if total <= 0:
            return np.zeros(n)
        new_authority /= total
        new_hub = w @ new_authority
        hub_total = new_hub.sum()
        if hub_total <= 0:
            return np.zeros(n)
        new_hub /= hub_total
        if np.abs(new_authority - authority).max() < tol:
            authority, hub = new_authority, new_hub
            break
        authority, hub = new_authority, new_hub
    return authority


@dataclass
class CentralityResult:
    """Company and authority per astronaut; ``None`` = n/a (like C)."""

    company_s: dict[str, float]
    company_norm: dict[str, float | None]
    authority_norm: dict[str, float | None]
    #: Usable-data fraction behind these scores (quality-gate verdicts).
    coverage: float = 1.0

    def to_dict(self) -> dict:
        return {
            "company_s": dict(self.company_s),
            "company_norm": dict(self.company_norm),
            "authority_norm": dict(self.authority_norm),
            "coverage": self.coverage,
        }


def company_and_authority(
    sensing: MissionSensing,
    corrected: bool = True,
    min_coverage: float = MIN_COVERAGE,
) -> CentralityResult:
    """Compute Table I's centrality columns from co-presence data."""
    ids = sensing.assignment.roster.ids
    company = company_seconds(sensing, corrected)
    pair_seconds = pair_copresence_seconds(sensing, corrected)
    weights = pairwise_matrix(pair_seconds, ids)
    authority = hits_authority(weights)

    # Coverage: days with any data per astronaut.
    days_covered = {astro: 0 for astro in ids}
    for astro, summaries in sensing.astro_summaries(corrected).items():
        days_covered[astro] = len({s.day for s in summaries})
    n_days = max(len(sensing.days), 1)
    eligible = {a for a in ids if days_covered[a] / n_days >= min_coverage}

    def normalize(values: dict[str, float]) -> dict[str, float | None]:
        usable = {a: v for a, v in values.items() if a in eligible}
        top = max(usable.values(), default=0.0)
        out: dict[str, float | None] = {}
        for astro in ids:
            if astro not in eligible:
                out[astro] = None
            elif top > 0:
                out[astro] = values.get(astro, 0.0) / top
            else:
                out[astro] = 0.0
        return out

    authority_by_astro = {astro: float(authority[i]) for i, astro in enumerate(ids)}
    return CentralityResult(
        company_s={a: company.get(a, 0.0) for a in ids},
        company_norm=normalize({a: company.get(a, 0.0) for a in ids}),
        authority_norm=normalize(authority_by_astro),
        coverage=dataset_coverage(sensing),
    )
