"""Meeting detection (paper Figure 5).

"With these two kinds of information [co-location and speech
parameters], we detect when the astronauts were in the same room and
analyze the dynamics of their meetings."  A meeting is a sustained
co-location of several badges in one room; its conversation loudness and
speech fraction distinguish a lively lunch from the quiet consolation
gathering after C's death.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import CoveredList, dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.speech import loud_voice_mask

#: Minimum meeting length, seconds.
MIN_MEETING_S = 300.0
#: Gaps in co-location shorter than this are bridged.
GAP_TOLERANCE_S = 45.0
#: A badge counts as a participant if present this fraction of the time.
PARTICIPANT_PRESENCE = 0.3


@dataclass(frozen=True)
class Meeting:
    """One detected gathering."""

    day: int
    room: int
    t0: float
    t1: float
    badge_ids: tuple[int, ...]
    speech_fraction: float
    mean_voice_db: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def _runs_with_gap_bridging(mask: np.ndarray, max_gap: int) -> list[tuple[int, int]]:
    """Maximal true runs of ``mask``, merging runs separated by short gaps."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > max_gap)
    starts = np.concatenate([[idx[0]], idx[breaks + 1]])
    ends = np.concatenate([idx[breaks] + 1, [idx[-1] + 1]])
    return list(zip(starts.tolist(), ends.tolist()))


def detect_meetings(
    sensing: MissionSensing,
    day: int,
    min_participants: int = 2,
    min_duration_s: float = MIN_MEETING_S,
    gap_tolerance_s: float = GAP_TOLERANCE_S,
) -> list[Meeting]:
    """Detect meetings on one day from room estimates plus speech.

    A day without any badge data yields an empty result (coverage
    reflects what the quality gate knows about the day) instead of
    crashing — quarantined days simply have no meetings to report.
    """
    coverage = dataset_coverage(sensing, day)
    badges, rooms = sensing.room_estimate_matrix(day)
    if not badges:
        return CoveredList(coverage=coverage)
    n_frames = rooms.shape[1]
    worn = np.vstack(
        [sensing.summary(b, day).worn[:n_frames] for b in badges]
    )
    located = np.where(worn, rooms, -1)
    dt = sensing.summary(badges[0], day).dt
    t0 = sensing.summary(badges[0], day).t0
    max_gap = max(1, int(gap_tolerance_s / dt))
    meetings: list[Meeting] = []

    for room in np.unique(located[located >= 0]):
        present = located == room
        together = present.sum(axis=0) >= min_participants
        for s, e in _runs_with_gap_bridging(together, max_gap):
            duration = (e - s) * dt
            if duration < min_duration_s:
                continue
            presence = present[:, s:e].mean(axis=1)
            participants = tuple(
                badges[i] for i in np.flatnonzero(presence >= PARTICIPANT_PRESENCE)
            )
            if len(participants) < min_participants:
                continue
            speech_frac, voice_db = _meeting_speech(sensing, day, participants, s, e)
            meetings.append(
                Meeting(
                    day=day, room=int(room),
                    t0=t0 + s * dt, t1=t0 + e * dt,
                    badge_ids=participants,
                    speech_fraction=speech_frac,
                    mean_voice_db=voice_db,
                )
            )
    meetings.sort(key=lambda m: (m.t0, m.room))
    return CoveredList(meetings, coverage=coverage)


def _meeting_speech(
    sensing: MissionSensing, day: int, participants: tuple[int, ...], s: int, e: int
) -> tuple[float, float]:
    """(fraction of frames with loud voice, mean voice dB) in a window."""
    loud_any = None
    levels = []
    for badge_id in participants:
        summary = sensing.summaries.get((badge_id, day))
        if summary is None:
            continue
        loud = loud_voice_mask(summary)[s:e]
        if loud_any is None:
            loud_any = loud
        elif loud.shape == loud_any.shape:
            loud_any = loud_any | loud
        window = summary.voice_db[s:e]
        finite = np.isfinite(window)
        if finite.any():
            levels.append(float(window[finite].mean()))
    frac = float(loud_any.mean()) if loud_any is not None and loud_any.size else 0.0
    # All-masked windows yield NaN loudness rather than a fabricated level.
    finite_levels = [v for v in levels if np.isfinite(v)]
    return frac, float(np.mean(finite_levels)) if finite_levels else float("nan")


def whole_crew_meetings(
    sensing: MissionSensing, day: int, min_duration_s: float = MIN_MEETING_S
) -> list[Meeting]:
    """Meetings involving (at least) all badges active that day."""
    badges = sensing.badges_on(day)
    quorum = max(2, len(badges))
    return detect_meetings(sensing, day, min_participants=quorum, min_duration_s=min_duration_s)
