"""Report builders: Table I and the Section-V deployment statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.centrality import company_and_authority
from repro.analytics.coverage import dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.speech import mission_speech_fraction
from repro.analytics.walking import mission_walking_fraction
from repro.core.units import GIB


@dataclass
class Table1:
    """The paper's Table I: normalized per-astronaut parameters.

    ``None`` entries are the paper's "n/a" (astronaut C's company and
    authority cannot be compared — C only has three days of data).
    """

    company: dict[str, float | None]
    authority: dict[str, float | None]
    talking: dict[str, float | None]
    walking: dict[str, float | None]
    #: Usable-data fraction behind the table (quality-gate verdicts).
    coverage: float = 1.0

    def to_dict(self) -> dict:
        return {
            "company": dict(self.company),
            "authority": dict(self.authority),
            "talking": dict(self.talking),
            "walking": dict(self.walking),
            "coverage": self.coverage,
        }

    def to_text(self) -> str:
        text = str(self)
        if self.coverage < 1.0:
            text += f"\n(computed from {self.coverage:.1%} of the expected data)"
        return text

    def rows(self) -> list[tuple[str, str, str, str, str]]:
        """Formatted rows ``(id, company, authority, talking, walking)``."""
        def fmt(value: float | None) -> str:
            return "n/a" if value is None else f"{value:.2f}"

        astros = sorted(self.company)
        return [
            (a, fmt(self.company[a]), fmt(self.authority[a]),
             fmt(self.talking[a]), fmt(self.walking[a]))
            for a in astros
        ]

    def __str__(self) -> str:
        lines = ["id  company  authority  talking  walking"]
        for row in self.rows():
            lines.append(f"{row[0]:<3} {row[1]:>7}  {row[2]:>9}  {row[3]:>7}  {row[4]:>7}")
        return "\n".join(lines)


def _normalize(values: dict[str, float]) -> dict[str, float | None]:
    top = max(values.values(), default=0.0)
    if top <= 0:
        return {a: 0.0 for a in values}
    return {a: v / top for a, v in values.items()}


def table1(sensing: MissionSensing, corrected: bool = True) -> Table1:
    """Build Table I from the sensing dataset.

    Talking and walking are normalized over *all* astronauts (C, with
    the highest rates, sets the 1.00 reference exactly as in the paper);
    company and authority exclude low-coverage astronauts (C -> n/a).
    """
    centrality = company_and_authority(sensing, corrected)
    talking = mission_speech_fraction(sensing, corrected)
    walking = mission_walking_fraction(sensing, corrected)
    ids = sensing.assignment.roster.ids
    talking_norm = _normalize({a: talking.get(a, 0.0) for a in ids})
    walking_norm = _normalize({a: walking.get(a, 0.0) for a in ids})
    return Table1(
        company={a: centrality.company_norm.get(a) for a in ids},
        authority={a: centrality.authority_norm.get(a) for a in ids},
        talking=dict(talking_norm),
        walking=dict(walking_norm),
        coverage=dataset_coverage(sensing),
    )


@dataclass
class DeploymentStats:
    """Section V's deployment statistics."""

    total_gib: float
    worn_fraction: float
    active_fraction: float
    worn_by_day: dict[int, float]
    n_instrumented_days: int
    n_badges: int
    #: Usable-data fraction behind the stats (quality-gate verdicts).
    coverage: float = 1.0

    def to_dict(self) -> dict:
        return {
            "total_gib": self.total_gib,
            "worn_fraction": self.worn_fraction,
            "active_fraction": self.active_fraction,
            "worn_by_day": dict(self.worn_by_day),
            "n_instrumented_days": self.n_instrumented_days,
            "n_badges": self.n_badges,
            "coverage": self.coverage,
        }

    def to_text(self) -> str:
        text = str(self)
        if self.coverage < 1.0:
            text += f"\n(computed from {self.coverage:.1%} of the expected data)"
        return text

    def compliance_decay(self) -> tuple[float, float]:
        """(early, late) mean worn fraction — the paper's ~80% -> ~50%."""
        days = sorted(self.worn_by_day)
        if len(days) < 2:
            value = self.worn_by_day.get(days[0], 0.0) if days else 0.0
            return value, value
        k = max(1, len(days) // 4)
        early = float(np.mean([self.worn_by_day[d] for d in days[:k]]))
        late = float(np.mean([self.worn_by_day[d] for d in days[-k:]]))
        return early, late

    def __str__(self) -> str:
        early, late = self.compliance_decay()
        return (
            f"{self.total_gib:.0f} GiB over {self.n_instrumented_days} days, "
            f"{self.n_badges} badges; worn {self.worn_fraction:.0%} of daytime, "
            f"active {self.active_fraction:.0%}; compliance {early:.0%} -> {late:.0%}"
        )


def deployment_stats(sensing: MissionSensing) -> DeploymentStats:
    """Compute the deployment statistics over crew badges.

    Worn/active fractions average over badge-days that have data, like
    the paper's "an average badge was worn for 63% of daytime".
    """
    ref = sensing.assignment.reference_id
    total_bytes = 0.0
    worn_fracs: list[float] = []
    active_fracs: list[float] = []
    worn_by_day: dict[int, list[float]] = {}
    badges = set()
    for (badge_id, day), summary in sensing.summaries.items():
        total_bytes += summary.bytes_recorded
        if badge_id == ref:
            continue
        badges.add(badge_id)
        n = summary.n_frames
        worn = float(summary.worn.sum()) / n
        worn_fracs.append(worn)
        active_fracs.append(float(summary.active.sum()) / n)
        worn_by_day.setdefault(day, []).append(worn)
    return DeploymentStats(
        total_gib=total_bytes / GIB,
        worn_fraction=float(np.mean(worn_fracs)) if worn_fracs else 0.0,
        active_fraction=float(np.mean(active_fracs)) if active_fracs else 0.0,
        worn_by_day={d: float(np.mean(v)) for d, v in sorted(worn_by_day.items())},
        n_instrumented_days=len(sensing.days),
        n_badges=len(badges) + 1,  # + reference badge
        coverage=dataset_coverage(sensing),
    )
