"""Walking detection from the accelerometer (paper Figure 4).

A frame counts as walking when the badge is worn and its RMS dynamic
acceleration exceeds a gait threshold.  Daily fractions are taken over
*recorded* time, as in "fraction of recorded time spent on walking".
"""

from __future__ import annotations

import numpy as np

from repro.analytics.coverage import CoveredDict, dataset_coverage
from repro.analytics.dataset import BadgeDaySummary, MissionSensing

#: RMS acceleration above which the wearer is considered walking, m/s^2.
WALK_THRESHOLD = 1.2


def walking_mask(summary: BadgeDaySummary, threshold: float = WALK_THRESHOLD) -> np.ndarray:
    """Per-frame walking classification for one badge-day."""
    accel = summary.accel_rms
    return summary.worn & ~np.isnan(accel) & (accel > threshold)


def walking_fraction(summary: BadgeDaySummary, threshold: float = WALK_THRESHOLD) -> float:
    """Walking frames over worn frames for one badge-day.

    The denominator is worn (not merely active) time: a badge on a desk
    records but cannot testify about its owner's gait, so including those
    frames would make the fraction decay with wear compliance rather
    than with actual mobility.
    """
    worn = float(summary.worn.sum())
    if worn == 0:
        return 0.0
    return float(walking_mask(summary, threshold).sum()) / worn


def daily_walking_fraction(
    sensing: MissionSensing,
    corrected: bool = True,
    threshold: float = WALK_THRESHOLD,
) -> dict[str, dict[int, float]]:
    """Per-astronaut, per-day walking fractions (the Fig 4 series)."""
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for astro, summaries in sensing.astro_summaries(corrected).items():
        series: dict[int, float] = {}
        for summary in summaries:
            series[summary.day] = walking_fraction(summary, threshold)
        if series:
            out[astro] = dict(sorted(series.items()))
    return out


def mission_walking_fraction(
    sensing: MissionSensing, corrected: bool = True, threshold: float = WALK_THRESHOLD
) -> dict[str, float]:
    """Whole-mission walking fraction per astronaut (Table I column c).

    Aggregated as total walking seconds over total recorded seconds, so
    astronauts with partial missions (C) are averaged over their own
    recorded time only.
    """
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for astro, summaries in sensing.astro_summaries(corrected).items():
        walked = sum(float(walking_mask(s, threshold).sum()) * s.dt for s in summaries)
        worn = sum(s.worn_seconds() for s in summaries)
        if worn > 0:
            out[astro] = walked / worn
    return out
