"""Anomaly detection over the sensing dataset.

The deployment's most interesting findings were anomalies: the unplanned
consolation meeting, the collapse of conversation on the famine and
reprimand days, the badge swap by astronaut A (who could not read the
e-ink id display), and the screen-reader speech that fooled the naive
conversation analysis.  Each has a detector here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.coverage import CoveredDict, CoveredList, dataset_coverage
from repro.analytics.dataset import MissionSensing
from repro.analytics.meetings import Meeting, detect_meetings
from repro.analytics.speech import MACHINE_STABILITY, daily_speech_fraction

#: Voice level above which frames are attributed to the *wearer* (the
#: badge hangs ~25 cm from the mouth).
OWN_SPEECH_DB = 75.0
#: Pitch boundary between (typical) male and female voices, Hz.
PITCH_SEX_BOUNDARY_HZ = 165.0
#: Minimum own-speech frames needed to judge a wearer's voice.
MIN_OWN_SPEECH_FRAMES = 120


@dataclass(frozen=True)
class SwapSuspicion:
    """A badge whose wearer's voice does not match the assumed owner."""

    badge_id: int
    day: int
    assumed_astro: str
    expected_sex: str
    observed_median_pitch_hz: float


def unplanned_gatherings(
    sensing: MissionSensing,
    day: int,
    scheduled_windows: list[tuple[float, float]],
    min_participants: int | None = None,
) -> list[Meeting]:
    """Whole-crew meetings that overlap no scheduled group window.

    This is how the consolation meeting after C's death surfaces: every
    remaining astronaut in the kitchen at ~15:20, with no meal or
    briefing on the plan.
    """
    if min_participants is None:
        min_participants = max(2, len(sensing.badges_on(day)) - 1)
    meetings = detect_meetings(sensing, day, min_participants=min_participants)
    out = CoveredList(coverage=getattr(meetings, "coverage", 1.0))
    for meeting in meetings:
        mid = (meeting.t0 + meeting.t1) / 2.0
        if not any(lo - 60 <= mid <= hi + 60 for lo, hi in scheduled_windows):
            out.append(meeting)
    return out


def quiet_days(
    sensing: MissionSensing, threshold: float = 0.45, corrected: bool = True
) -> list[int]:
    """Days whose crew-mean speech fraction falls far below the trend.

    A linear trend is fit to the crew-mean daily speech fraction; days
    below ``threshold * trend`` are flagged (famine and reprimand days).
    """
    per_astro = daily_speech_fraction(sensing, corrected)
    coverage = dataset_coverage(sensing)
    days = sensing.days
    means = []
    for day in days:
        values = [
            series[day] for series in per_astro.values()
            if day in series and np.isfinite(series[day])
        ]
        means.append(float(np.mean(values)) if values else 0.0)
    if len(days) < 3:
        return CoveredList(coverage=coverage)
    coeffs = np.polyfit(days, means, deg=1)
    trend = np.polyval(coeffs, days)
    return CoveredList(
        [day for day, m, t in zip(days, means, trend) if t > 0 and m < threshold * t],
        coverage=coverage,
    )


def badge_swap_suspicions(
    sensing: MissionSensing, corrected: bool = False
) -> list[SwapSuspicion]:
    """Days where a badge's own-speech pitch contradicts its assumed owner.

    With ``corrected=False`` (the naive assignment) this flags the day A
    and B accidentally swapped badges: A's badge suddenly hears a male
    voice at point-blank range, and vice versa.
    """
    roster = sensing.assignment.roster
    suspicions: CoveredList = CoveredList(coverage=dataset_coverage(sensing))
    for (badge_id, day), summary in sorted(sensing.summaries.items()):
        astro = sensing.wearer_of(badge_id, day, corrected)
        if astro is None:
            continue
        profile = roster.profile(astro)
        voice = np.nan_to_num(summary.voice_db, nan=-np.inf)
        stability = np.nan_to_num(summary.pitch_stability, nan=1.0)
        own = (
            summary.worn
            & (voice >= OWN_SPEECH_DB)
            & ~np.isnan(summary.dominant_pitch_hz)
            & (stability < MACHINE_STABILITY)
        )
        if int(own.sum()) < MIN_OWN_SPEECH_FRAMES:
            continue
        pitches = summary.dominant_pitch_hz[own]
        pitches = pitches[np.isfinite(pitches)]
        if pitches.size == 0:
            continue
        median_pitch = float(np.median(pitches))
        observed_sex = "f" if median_pitch >= PITCH_SEX_BOUNDARY_HZ else "m"
        if observed_sex != profile.sex:
            suspicions.append(
                SwapSuspicion(
                    badge_id=badge_id, day=day, assumed_astro=astro,
                    expected_sex=profile.sex,
                    observed_median_pitch_hz=median_pitch,
                )
            )
    return suspicions


def machine_speech_share(sensing: MissionSensing) -> dict[tuple[int, int], float]:
    """Per badge-day: share of loud voice frames that look machine-like.

    High values mark the badge of the impaired astronaut whose screen
    reader narrates their work.
    """
    out: CoveredDict = CoveredDict(coverage=dataset_coverage(sensing))
    for key, summary in sensing.summaries.items():
        loud = (
            summary.active
            & ~np.isnan(summary.voice_db)
            & (summary.voice_db >= 60.0)
            & ~np.isnan(summary.pitch_stability)
        )
        total = int(loud.sum())
        if total == 0:
            out[key] = 0.0
            continue
        machine = loud & (summary.pitch_stability >= MACHINE_STABILITY)
        out[key] = float(machine.sum()) / total
    return out
