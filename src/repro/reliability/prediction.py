"""Report surfaces of the analytic reliability model.

Everything here is plain data with the codebase's uniform
``to_dict()`` / ``to_text()`` pair: a :class:`Band` (model mean plus the
finite-horizon confidence interval it came with), the full
:class:`ReliabilityPrediction` for one campaign, the
:class:`ValidationResult` comparing a prediction against a measured
:class:`~repro.faults.report.ReliabilityReport`, and one ranked
:class:`Regime` from the worst-case search.  Dict forms are
deterministic and JSON-serializable so campaign predictions can be
diffed and archived by CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Band:
    """A model mean with its finite-horizon confidence interval."""

    mean: float
    lo: float
    hi: float

    def contains(self, value: Optional[float]) -> bool:
        """Whether a measured value falls inside the band.

        ``None`` (a metric with nothing to measure, e.g. MTTR with no
        closed outage) is vacuously inside: the model predicted a
        distribution, the campaign produced no sample of it.
        """
        if value is None:
            return True
        return self.lo - 1e-12 <= value <= self.hi + 1e-12

    def to_dict(self) -> dict:
        return {"mean": self.mean, "lo": self.lo, "hi": self.hi}

    def __str__(self) -> str:
        return f"{self.mean:.4g} [{self.lo:.4g}, {self.hi:.4g}]"


@dataclass(frozen=True)
class DeliveryPrediction:
    """Per-kind reliable-delivery forecast."""

    kind: str
    n_sent: int
    expected_dead: float
    success: Band

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "n_sent": self.n_sent,
            "expected_dead": self.expected_dead,
            "success": self.success.to_dict(),
        }


@dataclass(frozen=True)
class ReliabilityPrediction:
    """Closed-form forecast of one campaign's ReliabilityReport."""

    horizon_s: float
    #: Confidence level of every band (two-sided), e.g. 0.998.
    confidence: float
    #: Per-node expected availability over the horizon, with bands.
    availability: dict[str, Band] = field(default_factory=dict)
    #: Steady-state per-node availability (the CTMC limit).
    steady_state_availability: dict[str, float] = field(default_factory=dict)
    #: Mean repair time of a closed outage, with the band for the
    #: *expected* number of closed outages (validation re-conditions the
    #: band on the observed count).
    mttr_s: Optional[Band] = None
    #: Expected closed outages over the horizon, with a Poisson band.
    n_outages: Optional[Band] = None
    #: Per-kind delivery forecasts.
    delivery: dict[str, DeliveryPrediction] = field(default_factory=dict)
    #: P(relay up and >=1 service replica up) — steady state and
    #: expected over the horizon (from the composed CTMC).
    system_availability: Optional[float] = None
    system_availability_steady: Optional[float] = None
    #: Expected injected events by fault class (informational).
    expected_faults: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "horizon_s": self.horizon_s,
            "confidence": self.confidence,
            "availability": {
                k: self.availability[k].to_dict() for k in sorted(self.availability)
            },
            "steady_state_availability": {
                k: self.steady_state_availability[k]
                for k in sorted(self.steady_state_availability)
            },
            "mttr_s": self.mttr_s.to_dict() if self.mttr_s is not None else None,
            "n_outages": self.n_outages.to_dict() if self.n_outages is not None else None,
            "delivery": {k: self.delivery[k].to_dict() for k in sorted(self.delivery)},
            "system_availability": self.system_availability,
            "system_availability_steady": self.system_availability_steady,
            "expected_faults": {
                k: self.expected_faults[k] for k in sorted(self.expected_faults)
            },
        }

    def to_text(self) -> str:
        lines = [
            f"CTMC reliability prediction over {self.horizon_s / 3600.0:.1f} h "
            f"({self.confidence:.1%} bands):"
        ]
        for node in sorted(self.availability):
            band = self.availability[node]
            steady = self.steady_state_availability.get(node)
            steady_txt = f", steady-state {steady:.4f}" if steady is not None else ""
            lines.append(
                f"  availability[{node}]: {band.mean:.4f} "
                f"[{band.lo:.4f}, {band.hi:.4f}]{steady_txt}"
            )
        if self.mttr_s is not None:
            lines.append(
                f"  MTTR: {self.mttr_s.mean:.0f} s "
                f"[{self.mttr_s.lo:.0f}, {self.mttr_s.hi:.0f}]"
            )
        if self.n_outages is not None:
            lines.append(
                f"  closed outages: {self.n_outages.mean:.1f} "
                f"[{self.n_outages.lo:.0f}, {self.n_outages.hi:.0f}]"
            )
        for kind in sorted(self.delivery):
            d = self.delivery[kind]
            lines.append(
                f"  delivery[{kind}]: {d.success.mean:.1%} "
                f"[{d.success.lo:.1%}, {d.success.hi:.1%}] "
                f"({d.expected_dead:.1f} of {d.n_sent} expected dead)"
            )
        if self.system_availability is not None:
            lines.append(
                f"  system availability (relay && a service up): "
                f"{self.system_availability:.5f} "
                f"(steady-state {self.system_availability_steady:.5f})"
            )
        if self.expected_faults:
            parts = ", ".join(
                f"{k}={self.expected_faults[k]:.1f}"
                for k in sorted(self.expected_faults)
            )
            lines.append(f"  expected fault events: {parts}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CoveragePrediction:
    """Closed-form forecast of one campaign's DataQualityReport.

    The sensing-level counterpart of :class:`ReliabilityPrediction`:
    instead of bus availability it predicts what the quality gate will
    say about the mission's assembled badge-days — verdict counts, the
    coverage fraction, per-channel masked-frame counts, per-kind repair
    counts — plus the localization degradation from dead-beacon days.
    """

    horizon_s: float
    #: Confidence level of every band (two-sided), e.g. 0.998.
    confidence: float
    #: Badge-days the gate will see (exact: faults never add or remove
    #: badge-days, they only damage their contents).
    badge_days: int
    #: Mean usable-frame fraction over all badge-days.
    coverage: Band
    #: Badge-day verdict counts (ok + repaired + quarantined = total).
    n_ok: Band
    n_repaired: Band
    n_quarantined: Band
    #: Frames masked per corrupt channel (``pitch_stability`` never
    #: masks — garbage there is clamped — so it never appears).
    masked_channels: dict[str, Band] = field(default_factory=dict)
    #: Frames / occurrences per repair kind.
    repairs: dict[str, Band] = field(default_factory=dict)
    #: Instrumented (beacon, day) pairs with the beacon dead during the
    #: day's sensing window — the localizer masks these columns.
    dead_beacon_days: Optional[Band] = None
    #: Expected injected events by fault class (informational).
    expected_faults: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "horizon_s": self.horizon_s,
            "confidence": self.confidence,
            "badge_days": self.badge_days,
            "coverage": self.coverage.to_dict(),
            "n_ok": self.n_ok.to_dict(),
            "n_repaired": self.n_repaired.to_dict(),
            "n_quarantined": self.n_quarantined.to_dict(),
            "masked_channels": {
                k: self.masked_channels[k].to_dict()
                for k in sorted(self.masked_channels)
            },
            "repairs": {
                k: self.repairs[k].to_dict() for k in sorted(self.repairs)
            },
            "dead_beacon_days": (
                self.dead_beacon_days.to_dict()
                if self.dead_beacon_days is not None else None
            ),
            "expected_faults": {
                k: self.expected_faults[k] for k in sorted(self.expected_faults)
            },
        }

    def to_text(self) -> str:
        lines = [
            f"coverage prediction over {self.horizon_s / 3600.0:.1f} h "
            f"({self.confidence:.1%} bands), {self.badge_days} badge-days:",
            f"  coverage: {self.coverage.mean:.4f} "
            f"[{self.coverage.lo:.4f}, {self.coverage.hi:.4f}]",
            f"  ok: {self.n_ok}",
            f"  repaired: {self.n_repaired}",
            f"  quarantined: {self.n_quarantined}",
        ]
        if self.dead_beacon_days is not None:
            lines.append(f"  dead beacon-days: {self.dead_beacon_days}")
        if self.masked_channels:
            lines.append("  masked frames by channel:")
            for name in sorted(self.masked_channels):
                lines.append(f"    {name:<20} {self.masked_channels[name]}")
        if self.repairs:
            lines.append("  repairs:")
            for name in sorted(self.repairs):
                lines.append(f"    {name:<20} {self.repairs[name]}")
        if self.expected_faults:
            parts = ", ".join(
                f"{k}={self.expected_faults[k]:.1f}"
                for k in sorted(self.expected_faults)
            )
            lines.append(f"  expected fault events: {parts}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ValidationCheck:
    """One model-vs-empirical comparison."""

    metric: str
    empirical: Optional[float]
    band: Band
    inside: bool

    @property
    def delta(self) -> Optional[float]:
        """Empirical minus model mean (the obs-exported residual)."""
        if self.empirical is None:
            return None
        return self.empirical - self.band.mean

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "empirical": self.empirical,
            "band": self.band.to_dict(),
            "delta": self.delta,
            "inside": self.inside,
        }


@dataclass(frozen=True)
class ValidationResult:
    """A measured campaign checked against its CTMC prediction."""

    campaign_seed: int
    horizon_s: float
    confidence: float
    checks: tuple[ValidationCheck, ...] = ()

    @property
    def all_inside(self) -> bool:
        return all(check.inside for check in self.checks)

    @property
    def n_outside(self) -> int:
        return sum(1 for check in self.checks if not check.inside)

    def to_dict(self) -> dict:
        return {
            "campaign_seed": self.campaign_seed,
            "horizon_s": self.horizon_s,
            "confidence": self.confidence,
            "all_inside": self.all_inside,
            "checks": [check.to_dict() for check in self.checks],
        }

    def to_text(self) -> str:
        verdict = "PASS" if self.all_inside else f"FAIL ({self.n_outside} outside)"
        lines = [
            f"model validation, campaign seed {self.campaign_seed}, "
            f"{self.horizon_s / 3600.0:.1f} h, {self.confidence:.1%} bands: {verdict}"
        ]
        for check in self.checks:
            marker = "ok " if check.inside else "OUT"
            emp = f"{check.empirical:.4g}" if check.empirical is not None else "n/a"
            lines.append(
                f"  [{marker}] {check.metric}: empirical {emp}, "
                f"model {check.band}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Regime:
    """One ranked point of the worst-case search."""

    rank: int
    score: float
    #: Predicted drivers of the score.
    min_availability: float
    delivery_loss: float
    #: The concrete seeded campaign reproducing this regime empirically.
    campaign: "object"  # FaultCampaign; untyped to avoid an import cycle
    #: The sampled rate overrides that define the regime.
    overrides: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        import dataclasses

        return {
            "rank": self.rank,
            "score": self.score,
            "min_availability": self.min_availability,
            "delivery_loss": self.delivery_loss,
            "overrides": {k: self.overrides[k] for k in sorted(self.overrides)},
            "campaign": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in sorted(dataclasses.asdict(self.campaign).items())
            },
        }

    def to_text(self) -> str:
        parts = ", ".join(
            f"{k}={self.overrides[k]:.4g}" for k in sorted(self.overrides)
        )
        return (
            f"#{self.rank} score={self.score:.4f} "
            f"min_avail={self.min_availability:.4f} "
            f"delivery_loss={self.delivery_loss:.4f} "
            f"seed={self.campaign.seed} [{parts}]"
        )


@dataclass(frozen=True)
class CoverageRegime:
    """One ranked point of the worst-*coverage* search."""

    rank: int
    score: float
    #: Predicted drivers of the score.
    coverage: float
    expected_quarantined: float
    #: The concrete seeded campaign reproducing this regime empirically.
    campaign: "object"  # FaultCampaign; untyped to avoid an import cycle
    #: The sampled overrides that define the regime.
    overrides: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        import dataclasses

        return {
            "rank": self.rank,
            "score": self.score,
            "coverage": self.coverage,
            "expected_quarantined": self.expected_quarantined,
            "overrides": {k: self.overrides[k] for k in sorted(self.overrides)},
            "campaign": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in sorted(dataclasses.asdict(self.campaign).items())
            },
        }

    def to_text(self) -> str:
        parts = ", ".join(
            f"{k}={self.overrides[k]:.4g}" for k in sorted(self.overrides)
        )
        return (
            f"#{self.rank} score={self.score:.4f} "
            f"coverage={self.coverage:.4f} "
            f"quarantined={self.expected_quarantined:.2f} "
            f"seed={self.campaign.seed} [{parts}]"
        )
