"""Model-guided worst-case search over the fault-rate space.

The empirical chaos suite can only afford a handful of campaigns per
run, so *which* campaigns it runs matters.  This module sweeps the
fault-rate space in closed form — each candidate regime is scored by the
analytic :class:`~repro.reliability.model.ReliabilityModel` in well
under a millisecond, ~1000x cheaper than simulating it — and emits the
top-K worst regimes as concrete, seeded
:class:`~repro.faults.campaign.FaultCampaign` configs.  Those feed the
tier-2 chaos tests and the nightly CI job, so the expensive empirical
budget is always spent where the model says the system is weakest.

Everything is deterministic: the sweep samples multipliers from
``np.random.default_rng(seed)`` and each regime's campaign seed is a
pure function of ``(seed, index)``, so a given sweep always reproduces
byte-identical campaigns.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.errors import ConfigError
from repro.faults.campaign import FaultCampaign
from repro.obs import span
from repro.reliability.coverage import CoverageModel
from repro.reliability.model import ReliabilityModel
from repro.reliability.prediction import CoverageRegime, Regime

__all__ = [
    "COVERAGE_SWEPT_COUNTS",
    "COVERAGE_SWEPT_FIELDS",
    "SWEPT_FIELDS",
    "sweep_coverage_regimes",
    "sweep_regimes",
    "worst_case_campaigns",
    "worst_coverage_campaigns",
]

#: Campaign fields the sweep perturbs, with the (log-uniform) multiplier
#: range applied to each.  Rates and durations both scale up to 8x and
#: down to 4x; ``lossy_prob`` is swept directly in [0.05, 0.9].
SWEPT_FIELDS: dict[str, tuple[float, float]] = {
    "crashes_per_day": (0.25, 8.0),
    "mean_downtime_s": (0.25, 8.0),
    "flaps_per_day": (0.25, 8.0),
    "mean_flap_s": (0.25, 8.0),
    "lossy_windows_per_day": (0.25, 8.0),
    "mean_lossy_s": (0.25, 8.0),
    "blackouts_per_day": (0.25, 8.0),
    "mean_blackout_s": (0.25, 8.0),
}


def _regime_campaign(
    base: FaultCampaign, overrides: dict[str, float], campaign_seed: int
) -> FaultCampaign:
    fields = dict(overrides)
    fields["seed"] = campaign_seed
    return dataclasses.replace(base, **fields)


def sweep_regimes(
    base: Optional[FaultCampaign] = None,
    n_regimes: int = 64,
    seed: int = 0,
    top_k: int = 3,
    earth_link_delay_s: float = 20 * 60.0,
) -> list[Regime]:
    """Sweep ``n_regimes`` sampled fault regimes analytically, rank them.

    Each regime perturbs the ``base`` campaign (default: the reference
    campaign at the base's horizon) by log-uniform multipliers over
    :data:`SWEPT_FIELDS` plus a directly sampled ``lossy_prob``, scores
    it with the closed-form model, and keeps the ``top_k`` worst by
    predicted badness (system unavailability + min-node unavailability +
    expected delivery loss).  Returns ranked :class:`Regime` records
    whose campaigns are concrete and seeded — ready for empirical replay.
    """
    if base is None:
        base = FaultCampaign.reference()
    if n_regimes < 1:
        raise ConfigError("n_regimes must be >= 1")
    if not 1 <= top_k <= n_regimes:
        raise ConfigError("top_k must be in [1, n_regimes]")

    rng = np.random.default_rng(seed)
    scored: list[tuple[float, float, float, dict[str, float], FaultCampaign]] = []
    with span("reliability.sweep", n_regimes=n_regimes, seed=seed):
        for i in range(n_regimes):
            overrides: dict[str, float] = {}
            for name, (lo, hi) in SWEPT_FIELDS.items():
                mult = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
                overrides[name] = float(getattr(base, name)) * mult
            overrides["lossy_prob"] = float(rng.uniform(0.05, 0.9))
            campaign = _regime_campaign(base, overrides, seed * 100_000 + i)
            model = ReliabilityModel(campaign, earth_link_delay_s=earth_link_delay_s)
            badness, min_avail, delivery_loss = model.score()
            scored.append((badness, min_avail, delivery_loss, overrides, campaign))

    # Descending badness; ties broken by campaign seed for determinism.
    scored.sort(key=lambda entry: (-entry[0], entry[4].seed))
    return [
        Regime(
            rank=rank,
            score=badness,
            min_availability=min_avail,
            delivery_loss=delivery_loss,
            campaign=campaign,
            overrides=overrides,
        )
        for rank, (badness, min_avail, delivery_loss, overrides, campaign)
        in enumerate(scored[:top_k], start=1)
    ]


#: Sensing-level rate/duration fields the coverage sweep perturbs
#: (log-uniform multipliers, like the bus sweep).
COVERAGE_SWEPT_FIELDS: dict[str, tuple[float, float]] = {
    "beacon_outages_per_day": (0.25, 8.0),
    "mean_beacon_outage_s": (0.25, 8.0),
}

#: Whole-mission *count* fields the coverage sweep perturbs; the
#: multiplier is applied to the base count and rounded (minimum 0).
COVERAGE_SWEPT_COUNTS: tuple[str, ...] = (
    "bitrot_days",
    "truncated_days",
    "duplicated_days",
    "stuck_days",
    "clock_desyncs",
    "battery_depletions",
)


def sweep_coverage_regimes(
    base: Optional[FaultCampaign] = None,
    n_regimes: int = 64,
    seed: int = 0,
    top_k: int = 3,
) -> list[CoverageRegime]:
    """Sweep sensing-fault regimes analytically, rank by coverage loss.

    The coverage counterpart of :func:`sweep_regimes`: each regime
    perturbs the ``base`` campaign (default:
    :meth:`FaultCampaign.coverage_reference`) over the data-corruption
    counts, battery depletions, and beacon-outage rates, scores it with
    the closed-form :class:`CoverageModel`, and keeps the ``top_k``
    worst by predicted data destruction (coverage loss + quarantined
    fraction + dead-beacon-column fraction).
    """
    if base is None:
        base = FaultCampaign.coverage_reference()
    if n_regimes < 1:
        raise ConfigError("n_regimes must be >= 1")
    if not 1 <= top_k <= n_regimes:
        raise ConfigError("top_k must be in [1, n_regimes]")

    rng = np.random.default_rng(seed)
    scored: list[tuple[float, float, float, dict[str, float], FaultCampaign]] = []
    with span("reliability.sweep_coverage", n_regimes=n_regimes, seed=seed):
        for i in range(n_regimes):
            overrides: dict[str, float] = {}
            for name, (lo, hi) in COVERAGE_SWEPT_FIELDS.items():
                mult = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
                overrides[name] = float(getattr(base, name)) * mult
            for name in COVERAGE_SWEPT_COUNTS:
                mult = float(np.exp(rng.uniform(np.log(0.25), np.log(8.0))))
                overrides[name] = int(round(getattr(base, name) * mult))
            campaign = _regime_campaign(base, overrides, seed * 100_000 + i)
            badness, coverage, quarantined = CoverageModel(campaign).score()
            scored.append((badness, coverage, quarantined, overrides, campaign))

    # Descending badness; ties broken by campaign seed for determinism.
    scored.sort(key=lambda entry: (-entry[0], entry[4].seed))
    return [
        CoverageRegime(
            rank=rank,
            score=badness,
            coverage=coverage,
            expected_quarantined=quarantined,
            campaign=campaign,
            overrides={k: float(v) for k, v in overrides.items()},
        )
        for rank, (badness, coverage, quarantined, overrides, campaign)
        in enumerate(scored[:top_k], start=1)
    ]


def worst_coverage_campaigns(
    base: Optional[FaultCampaign] = None,
    k: int = 3,
    n_regimes: int = 64,
    seed: int = 0,
) -> list[FaultCampaign]:
    """The ``k`` worst predicted-coverage regimes as runnable campaigns."""
    return [
        regime.campaign
        for regime in sweep_coverage_regimes(
            base, n_regimes=n_regimes, seed=seed, top_k=k
        )
    ]


def worst_case_campaigns(
    base: Optional[FaultCampaign] = None,
    k: int = 3,
    n_regimes: int = 64,
    seed: int = 0,
) -> list[FaultCampaign]:
    """The ``k`` worst predicted regimes as ready-to-run campaigns.

    This is the tier-2 chaos suite's entry point: each returned campaign
    is seeded and concrete, so ``campaign.generate()`` reproduces the
    exact fault plan the model flagged.
    """
    return [
        regime.campaign
        for regime in sweep_regimes(base, n_regimes=n_regimes, seed=seed, top_k=k)
    ]
