"""The analytic reliability model: a CTMC fitted to a FaultCampaign.

Transition rates are derived *mechanically* from the campaign's own
parameters — no free knobs:

- every crashable node is an up/down :class:`TwoStateChain` with failure
  rate ``crashes_per_day / len(nodes)`` (the campaign targets a uniform
  random node per event) and repair rate ``1 / (mean_downtime_s + 1)``
  (the campaign draws ``Exp(mean) + 1`` second outages);
- links, lossy windows, and Earth-link blackouts get the same treatment
  from their respective rate/duration pairs;
- reliable-delivery success per message kind comes from the scenario's
  *known* workload (:data:`~repro.faults.scenario.BATCH_PERIOD_S`,
  :data:`~repro.faults.scenario.STATUS_PERIOD_S`) and transport tuning
  (attempt counts, ack timeouts, breaker cooldowns): a message dies when
  an outage window covers its retry span, so the expected dead count is
  the expected outage time on its path divided by the send period.

Confidence bands are quantiles of the finite horizon's own sampling
distributions (compound Poisson downtime, Erlang repair means, Poisson
counts) at the requested two-sided confidence — they narrow as the
horizon grows and are never hand-tuned per metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.units import DAY, HOUR
from repro.faults.campaign import FaultCampaign
from repro.faults.scenario import (
    BATCH_PERIOD_S,
    FAILOVER_TIMEOUT_S,
    HEARTBEAT_S,
    LINK_LATENCY_S,
    STATUS_PERIOD_S,
)
from repro.reliability.ctmc import (
    CTMC,
    TwoStateChain,
    compound_downtime_quantile,
    poisson_quantile,
    sample_mean_quantile,
)
from repro.reliability.prediction import (
    Band,
    DeliveryPrediction,
    ReliabilityPrediction,
)

#: The campaign adds a one-second floor to every drawn window duration.
DURATION_SHIFT_S = 1.0

#: Default two-sided confidence of every band: 99.8% — the 3.1-sigma
#: equivalent, computed on the exact (skewed) finite-horizon
#: distributions rather than a normal approximation.
DEFAULT_CONFIDENCE = 0.998

#: Scenario transport tuning the delivery model needs (mirrors
#: ``run_support_scenario``'s reliable sends).
SUBMIT_MAX_ATTEMPTS = 5
STATUS_MAX_ATTEMPTS = 3
BREAKER_FAILURE_THRESHOLD_EARTH = 2


def _shifted_exp_moments(mean_s: float) -> tuple[float, float]:
    """``E[D], E[D^2]`` for ``D = shift + Exp(mean)``."""
    m = mean_s
    e1 = m + DURATION_SHIFT_S
    e2 = m * m + e1 * e1  # Var = m^2
    return e1, e2


def _capped_shifted_exp_moments(mean_s: float, cap_s: float) -> tuple[float, float]:
    """``E[W], E[W^2]`` for ``W = min(shift + Exp(mean), cap)``."""
    if cap_s <= DURATION_SHIFT_S:
        return cap_s, cap_s * cap_s
    m = mean_s
    a = cap_s - DURATION_SHIFT_S
    decay = math.exp(-a / m)
    ey = m * (1.0 - decay)
    ey2 = 2.0 * m * m - 2.0 * m * (m + a) * decay
    e1 = DURATION_SHIFT_S + ey
    e2 = DURATION_SHIFT_S ** 2 + 2.0 * DURATION_SHIFT_S * ey + ey2
    return e1, e2


def _retry_span_s(max_attempts: int, ack_timeout_s: float) -> float:
    """Worst-case first-send-to-dead-letter span of one reliable message.

    ``max_attempts`` ack timeouts plus the exponential backoff ladder
    (base equal to the ack timeout, mean jitter 1.0):
    ``A t + t (2^(A-1) - 1)``.
    """
    return ack_timeout_s * (max_attempts + 2.0 ** (max_attempts - 1) - 1.0)


@dataclass(frozen=True)
class KillComponent:
    """One outage process that kills messages of a kind while active."""

    name: str
    #: Expected windows over the horizon.
    n_windows: float
    #: First/second moments of the *effective* kill-window length, s.
    e_w: float
    e_w2: float

    @property
    def expected_kill_s(self) -> float:
        return self.n_windows * self.e_w


class ReliabilityModel:
    """Closed-form reliability forecast for one :class:`FaultCampaign`.

    The model only sees bus-level fault classes (crash / link-flap /
    lossy / blackout) — exactly the classes that shape a
    :class:`~repro.faults.report.ReliabilityReport`'s availability,
    MTTR, and delivery metrics.  Sensing-level classes appear in the
    informational expected-fault table.
    """

    def __init__(
        self,
        campaign: FaultCampaign,
        earth_link_delay_s: float = 20 * 60.0,
    ):
        self.campaign = campaign
        self.horizon_s = campaign.horizon_s
        self.earth_link_delay_s = earth_link_delay_s

        c = campaign
        T = self.horizon_s
        self.days = T / DAY

        # -- per-component chains (rates in events per second) ------------
        n_nodes = len(c.nodes)
        self.node_chains: dict[str, TwoStateChain] = {}
        self.crash_mean_s = c.mean_downtime_s
        if n_nodes:
            lam = c.crashes_per_day / n_nodes / DAY
            mu = 1.0 / (c.mean_downtime_s + DURATION_SHIFT_S)
            for node in c.nodes:
                self.node_chains[node] = TwoStateChain(lam, mu)

        n_links = len(c.links)
        self.link_chains: dict[tuple[str, str], TwoStateChain] = {}
        if n_links:
            lam = c.flaps_per_day / n_links / DAY
            mu = 1.0 / (c.mean_flap_s + DURATION_SHIFT_S)
            for link in c.links:
                self.link_chains[link] = TwoStateChain(lam, mu)

        self.lossy_chain = TwoStateChain(
            c.lossy_windows_per_day / DAY,
            1.0 / (c.mean_lossy_s + DURATION_SHIFT_S),
        )
        self.blackout_chain = TwoStateChain(
            c.blackouts_per_day / DAY,
            1.0 / (c.mean_blackout_s + DURATION_SHIFT_S),
        )

        # -- scenario transport constants ---------------------------------
        rtt = 2.0 * LINK_LATENCY_S
        self.submit_ack_timeout_s = rtt + 4.0 * LINK_LATENCY_S + 0.1
        self.submit_span_s = _retry_span_s(
            SUBMIT_MAX_ATTEMPTS, self.submit_ack_timeout_s
        )
        earth_rtt = 2.0 * earth_link_delay_s
        self.status_ack_timeout_s = earth_rtt + 120.0
        self.status_span_s = _retry_span_s(
            STATUS_MAX_ATTEMPTS, self.status_ack_timeout_s
        )
        self.earth_breaker_cooldown_s = max(2.0 * HOUR, earth_rtt)
        #: The primary the relay targets while the service is healthy.
        self.serving_node = c.nodes[0] if c.nodes else None
        self.failover_window_s = FAILOVER_TIMEOUT_S + 2.0 * HEARTBEAT_S

    # -- workload ---------------------------------------------------------

    def n_sent(self, kind: str) -> int:
        """Messages of ``kind`` the scenario sends over the horizon.

        Matches the scenario's precomputed schedules exactly
        (``np.arange(period, horizon, period)``).
        """
        period = {"submit": BATCH_PERIOD_S, "status": STATUS_PERIOD_S}[kind]
        return len(np.arange(period, self.horizon_s, period))

    # -- delivery ---------------------------------------------------------

    def _relay_link(self) -> tuple[str, str] | None:
        """The relay<->serving-primary link, if the campaign flaps it."""
        if self.serving_node is None:
            return None
        for link in self.link_chains:
            if set(link) == {"relay", self.serving_node}:
                return link
        return None

    def delivery_components(self, kind: str) -> list[KillComponent]:
        """The outage processes that dead-letter messages of ``kind``."""
        T = self.horizon_s
        comps: list[KillComponent] = []
        if kind == "submit":
            # The relay itself down: every batch sent meanwhile dies
            # (its retry span is seconds, outages are minutes).
            relay = self.node_chains.get("relay")
            if relay is not None:
                e1, e2 = _shifted_exp_moments(self.crash_mean_s)
                comps.append(KillComponent("relay-crash", relay.lam * T, e1, e2))
            # The serving primary down: batches die only until the
            # backup takes over, so the window is capped at the failover
            # timeout plus detection slack.
            serving = (
                self.node_chains.get(self.serving_node)
                if self.serving_node is not None else None
            )
            if serving is not None:
                e1, e2 = _capped_shifted_exp_moments(
                    self.crash_mean_s, self.failover_window_s
                )
                comps.append(KillComponent("primary-crash", serving.lam * T, e1, e2))
            # The relay->primary link flapped away.
            link = self._relay_link()
            if link is not None:
                chain = self.link_chains[link]
                e1, e2 = _shifted_exp_moments(self.campaign.mean_flap_s)
                comps.append(KillComponent("relay-link-flap", chain.lam * T, e1, e2))
            # Lossy windows: all attempts must be lost independently, so
            # the effective kill window shrinks by loss_prob^attempts.
            p_all = self.campaign.lossy_prob ** SUBMIT_MAX_ATTEMPTS
            if p_all > 0.0 and self.lossy_chain.lam > 0.0:
                e1, e2 = _shifted_exp_moments(self.campaign.mean_lossy_s)
                comps.append(KillComponent(
                    "lossy", self.lossy_chain.lam * T, e1 * p_all, e2 * p_all * p_all,
                ))
        elif kind == "status":
            # An Earth-link blackout kills statuses sent during the
            # window, plus the breaker's cooldown shadow and the retry
            # span of messages already in flight when it began.
            if self.blackout_chain.lam > 0.0:
                extra = self.earth_breaker_cooldown_s + self.status_span_s
                e1, e2 = _shifted_exp_moments(self.campaign.mean_blackout_s)
                comps.append(KillComponent(
                    "blackout",
                    self.blackout_chain.lam * T,
                    e1 + extra,
                    e2 + 2.0 * e1 * extra + extra * extra,
                ))
            p_all = self.campaign.lossy_prob ** STATUS_MAX_ATTEMPTS
            if p_all > 0.0 and self.lossy_chain.lam > 0.0:
                e1, e2 = _shifted_exp_moments(self.campaign.mean_lossy_s)
                comps.append(KillComponent(
                    "lossy", self.lossy_chain.lam * T, e1 * p_all, e2 * p_all * p_all,
                ))
        else:
            raise KeyError(f"unknown reliable kind {kind!r}")
        return comps

    def expected_dead(self, kind: str) -> float:
        period = {"submit": BATCH_PERIOD_S, "status": STATUS_PERIOD_S}[kind]
        kill_s = sum(c.expected_kill_s for c in self.delivery_components(kind))
        return min(float(self.n_sent(kind)), kill_s / period)

    def delivery_prediction(self, kind: str, confidence: float) -> DeliveryPrediction:
        period = {"submit": BATCH_PERIOD_S, "status": STATUS_PERIOD_S}[kind]
        n = self.n_sent(kind)
        comps = self.delivery_components(kind)
        mean_dead = sum(c.expected_kill_s for c in comps) / period
        # Compound-Poisson variance of the dead count: each window kills
        # ~W/period messages, plus half-a-message boundary rounding.
        var_dead = sum(
            c.n_windows * (c.e_w2 / period ** 2 + 0.25) for c in comps
        )
        z = _normal_quantile(0.5 + confidence / 2.0)
        spread = z * math.sqrt(var_dead)
        lo_dead = max(0.0, mean_dead - spread)
        hi_dead = min(float(n), mean_dead + spread)
        mean_dead = min(float(n), mean_dead)
        success = Band(
            mean=1.0 - mean_dead / n if n else 1.0,
            lo=1.0 - hi_dead / n if n else 1.0,
            hi=1.0 - lo_dead / n if n else 1.0,
        )
        return DeliveryPrediction(
            kind=kind, n_sent=n, expected_dead=mean_dead, success=success,
        )

    # -- availability / outages ------------------------------------------

    def availability_band(self, node: str, confidence: float) -> Band:
        chain = self.node_chains.get(node)
        if chain is None or chain.lam == 0.0:
            return Band(mean=1.0, lo=1.0, hi=1.0)
        T = self.horizon_s
        alpha = 1.0 - confidence
        n_windows = chain.lam * T  # Poisson mean of injected windows
        q_hi = compound_downtime_quantile(
            1.0 - alpha / 2.0, n_windows, self.crash_mean_s, DURATION_SHIFT_S
        )
        q_lo = compound_downtime_quantile(
            alpha / 2.0, n_windows, self.crash_mean_s, DURATION_SHIFT_S
        )
        return Band(
            mean=chain.expected_availability(T),
            lo=max(0.0, 1.0 - min(q_hi, T) / T),
            hi=min(1.0, 1.0 - q_lo / T),
        )

    def expected_closed_outages(self) -> float:
        """Expected within-horizon repaired outages, all nodes.

        Renewal count per node minus the chance the last outage is still
        open (right-censored) at the horizon.
        """
        total = 0.0
        for chain in self.node_chains.values():
            total += chain.expected_outages(self.horizon_s)
            total -= chain.steady_state_unavailability
        return max(0.0, total)

    def n_outages_band(self, confidence: float) -> Band:
        mean = self.expected_closed_outages()
        alpha = 1.0 - confidence
        return Band(
            mean=mean,
            lo=float(poisson_quantile(alpha / 2.0, mean)),
            hi=float(poisson_quantile(1.0 - alpha / 2.0, mean)),
        )

    def mttr_band(self, confidence: float, n_outages: int | None = None) -> Band | None:
        """The repair-time band, conditioned on ``n_outages`` samples.

        Without an observed count (pure prediction) the expected closed
        outage count is used; validation passes the report's actual
        count, which is the statistically tight conditioning.
        """
        if not self.node_chains:
            return None
        if n_outages is None:
            n_outages = max(1, round(self.expected_closed_outages()))
        if n_outages < 1:
            return None
        mean = self.crash_mean_s + DURATION_SHIFT_S
        alpha = 1.0 - confidence
        return Band(
            mean=mean,
            lo=sample_mean_quantile(
                alpha / 2.0, n_outages, self.crash_mean_s, DURATION_SHIFT_S
            ),
            hi=sample_mean_quantile(
                1.0 - alpha / 2.0, n_outages, self.crash_mean_s, DURATION_SHIFT_S
            ),
        )

    # -- system-level chain ----------------------------------------------

    def system_ctmc(self) -> CTMC | None:
        """The composed chain over (relay, svc-a, svc-b) up/down states."""
        chains = [
            (name, self.node_chains[name])
            for name in ("relay", *[n for n in self.campaign.nodes if n != "relay"])
            if name in self.node_chains
        ]
        if not chains:
            return None
        composed: CTMC | None = None
        for name, chain in chains:
            part = chain.to_ctmc(up=f"{name}:up", down=f"{name}:down")
            composed = part if composed is None else composed.compose(part)
        return composed

    def _system_operational(self, p_down: dict[str, float]) -> float:
        """P(relay up and at least one service replica up)."""
        relay_up = 1.0 - p_down.get("relay", 0.0)
        services = [n for n in self.campaign.nodes if n != "relay"]
        if not services:
            return relay_up
        all_services_down = 1.0
        for name in services:
            all_services_down *= p_down.get(name, 0.0)
        return relay_up * (1.0 - all_services_down)

    def system_availability(self, steady: bool = False, n_grid: int = 512) -> float:
        """Operational probability: steady-state or horizon-averaged.

        Component chains are independent, so the joint distribution is
        the product of the closed-form marginals; the horizon average
        integrates the transient on a fixed grid (deterministic).
        """
        if not self.node_chains:
            return 1.0
        if steady:
            p_down = {
                name: chain.steady_state_unavailability
                for name, chain in self.node_chains.items()
            }
            return self._system_operational(p_down)
        ts = (np.arange(n_grid) + 0.5) * (self.horizon_s / n_grid)
        acc = 0.0
        for t in ts:
            p_down = {
                name: 1.0 - chain.availability_at(float(t))
                for name, chain in self.node_chains.items()
            }
            acc += self._system_operational(p_down)
        return acc / n_grid

    # -- the full forecast ------------------------------------------------

    def expected_faults(self) -> dict[str, float]:
        return {
            kind: mean
            for kind, (mean, _exact) in expected_event_counts(self.campaign).items()
        }

    def predict(self, confidence: float = DEFAULT_CONFIDENCE) -> ReliabilityPrediction:
        availability = {
            node: self.availability_band(node, confidence)
            for node in self.campaign.nodes
        }
        steady = {
            node: chain.steady_state_availability
            for node, chain in self.node_chains.items()
        }
        delivery = {
            kind: self.delivery_prediction(kind, confidence)
            for kind in ("submit", "status")
        }
        return ReliabilityPrediction(
            horizon_s=self.horizon_s,
            confidence=confidence,
            availability=availability,
            steady_state_availability=steady,
            mttr_s=self.mttr_band(confidence),
            n_outages=self.n_outages_band(confidence) if self.node_chains else None,
            delivery=delivery,
            system_availability=(
                self.system_availability() if self.node_chains else None
            ),
            system_availability_steady=(
                self.system_availability(steady=True) if self.node_chains else None
            ),
            expected_faults=self.expected_faults(),
        )

    # -- fast path for the regime search ---------------------------------

    def score(self) -> tuple[float, float, float]:
        """``(badness, min_availability, delivery_loss)`` — means only.

        No quantile bisections: this is the closed-form objective the
        worst-case search evaluates thousands of times per second.
        """
        T = self.horizon_s
        min_avail = 1.0
        for chain in self.node_chains.values():
            min_avail = min(min_avail, chain.expected_availability(T))
        loss = 0.0
        total_sent = 0
        for kind in ("submit", "status"):
            n = self.n_sent(kind)
            loss += self.expected_dead(kind)
            total_sent += n
        delivery_loss = loss / total_sent if total_sent else 0.0
        system_unavail = 1.0 - (
            self.system_availability(steady=True) if self.node_chains else 1.0
        )
        badness = system_unavail + (1.0 - min_avail) + delivery_loss
        return badness, min_avail, delivery_loss


#: Fault-class name -> the plan action its events carry, for counting a
#: generated plan's actual draws against :func:`expected_event_counts`.
EVENT_ACTIONS: dict[str, str] = {
    "crash": "crash",
    "link-flap": "link-down",
    "lossy": "lossy",
    "blackout": "blackout",
    "beacon-outage": "beacon-outage",
    "badge-battery": "badge-battery",
    "sdcard-cap": "sdcard-cap",
    "worker-crash": "worker-crash",
    "data-bitrot": "data-bitrot",
    "data-truncate": "data-truncate",
    "data-duplicate": "data-duplicate",
    "data-stuck": "data-stuck",
    "data-clock-skew": "data-clock-skew",
}


def expected_event_counts(campaign) -> dict[str, tuple[float, bool]]:
    """Per-kind ``(expected draws, exact?)`` for every active fault class.

    ``exact`` is True for the whole-mission *count* parameters the
    campaign draws verbatim (battery, SD-card, worker crashes, the five
    data-corruption kinds) and False for the Poisson *rate* classes —
    validation checks the former for equality and the latter against
    Poisson bands.
    """
    c = campaign
    days = c.days
    out: dict[str, tuple[float, bool]] = {}
    if c.nodes:
        out["crash"] = (c.crashes_per_day * days, False)
    if c.links:
        out["link-flap"] = (c.flaps_per_day * days, False)
    out["lossy"] = (c.lossy_windows_per_day * days, False)
    out["blackout"] = (c.blackouts_per_day * days, False)
    if c.n_beacons > 0:
        out["beacon-outage"] = (c.beacon_outages_per_day * days, False)
    if c.badge_ids:
        out["badge-battery"] = (float(c.battery_depletions), True)
        out["sdcard-cap"] = (float(c.sdcard_exhaustions), True)
        out["data-bitrot"] = (float(c.bitrot_days), True)
        out["data-truncate"] = (float(c.truncated_days), True)
        out["data-duplicate"] = (float(c.duplicated_days), True)
        out["data-stuck"] = (float(c.stuck_days), True)
        out["data-clock-skew"] = (float(c.clock_desyncs), True)
    out["worker-crash"] = (float(c.worker_crashes), True)
    return {k: v for k, v in out.items() if v[0] > 0.0}


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation of the standard normal inverse CDF."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
