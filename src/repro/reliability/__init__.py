"""repro.reliability: analytic CTMC reliability model + model-guided search.

The fault campaigns in :mod:`repro.faults` measure reliability
*empirically* — run the seeded campaign, read the
:class:`~repro.faults.report.ReliabilityReport`.  This package is the
matching *analytic* side:

- :mod:`repro.reliability.ctmc` — CTMC machinery: generic generator
  matrices, the up/down two-state chain every fault class reduces to,
  and the finite-horizon sampling distributions (compound
  Poisson-Erlang downtime) the confidence bands come from;
- :mod:`repro.reliability.model` — :class:`ReliabilityModel`, which
  derives transition rates *mechanically* from a
  :class:`~repro.faults.campaign.FaultCampaign` and predicts
  availability, MTTR, outage counts, and reliable-delivery success in
  closed form;
- :mod:`repro.reliability.validate` — runs a seeded campaign through
  the real support stack and asserts the measured report lands inside
  the model's bands (bands from the horizon's own sampling
  distribution, not hand-tuned tolerances);
- :mod:`repro.reliability.search` — sweeps the rate space cheaply in
  closed form and emits the top-K predicted-worst regimes as concrete
  seeded campaigns for the tier-2 chaos suite;
- :mod:`repro.reliability.coverage` — :class:`CoverageModel`, the same
  machinery for the *sensing*-level fault classes: closed-form
  predictions of the quality gate's coverage metrics (verdict counts,
  masked channels, repairs, dead beacon-days) with validation against
  gated mission runs and a worst-*coverage* regime search.

Usage::

    from repro.faults.campaign import FaultCampaign
    from repro.reliability import ReliabilityModel, validate_campaign

    campaign = FaultCampaign.reference(days=14, seed=0)
    prediction = ReliabilityModel(campaign).predict()
    result, report = validate_campaign(campaign)
    assert result.all_inside
"""

from repro.reliability.coverage import (
    CoverageModel,
    default_coverage_config,
)
from repro.reliability.ctmc import CTMC, TwoStateChain
from repro.reliability.model import (
    DEFAULT_CONFIDENCE,
    ReliabilityModel,
    expected_event_counts,
)
from repro.reliability.prediction import (
    Band,
    CoveragePrediction,
    CoverageRegime,
    DeliveryPrediction,
    Regime,
    ReliabilityPrediction,
    ValidationCheck,
    ValidationResult,
)
from repro.reliability.search import (
    sweep_coverage_regimes,
    sweep_regimes,
    worst_case_campaigns,
    worst_coverage_campaigns,
)
from repro.reliability.validate import (
    compare_quality_report,
    compare_report,
    validate_campaign,
    validate_coverage_campaign,
)

__all__ = [
    "Band",
    "CTMC",
    "CoverageModel",
    "CoveragePrediction",
    "CoverageRegime",
    "DEFAULT_CONFIDENCE",
    "DeliveryPrediction",
    "Regime",
    "ReliabilityModel",
    "ReliabilityPrediction",
    "TwoStateChain",
    "ValidationCheck",
    "ValidationResult",
    "compare_quality_report",
    "compare_report",
    "default_coverage_config",
    "expected_event_counts",
    "sweep_coverage_regimes",
    "sweep_regimes",
    "validate_campaign",
    "validate_coverage_campaign",
    "worst_case_campaigns",
    "worst_coverage_campaigns",
]
