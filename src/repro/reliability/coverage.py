"""Analytic coverage model for the sensing-level fault classes.

PR 6 modeled the *bus*-level fault classes (crash, link-flap, lossy,
blackout) as CTMCs and predicted the ReliabilityReport in closed form.
This module is the same move one layer down: it derives, mechanically
from :class:`~repro.faults.campaign.FaultCampaign` parameters, what the
:mod:`repro.quality` gate will say about a mission's assembled
badge-days — the PR 5 *coverage* metric — with finite-horizon
confidence bands from the campaign's own sampling distributions.

The sensing classes differ from the bus classes in one structural way:
a badge-day is an absorbing unit of damage.  A data-corruption event
strikes one ``(badge, day)`` cell and its severity ``v`` is drawn
uniformly per event, so the natural model is not an up/down chain but a
*marking process* over the grid of badge-day cells:

- **Cell occupancy** — each of the ``N_k`` events of kind ``k``
  independently marks a uniformly chosen cell (probability ``u`` per
  specific existing cell, thinned by the kind's marking probability
  ``rho_k``).  The number of marked cells ``S`` has the classical
  occupancy moments ``E[S] = m (1 - p0)`` and
  ``Var S = m p0 (1 - p0) + m (m - 1)(p00 - p0^2)`` with
  ``p0 = prod_k (1 - u rho_k)^{N_k}`` and
  ``p00 = prod_k (1 - 2 u rho_k)^{N_k}`` — that is the ``ok`` verdict
  count, exactly.
- **Severity propagation** — per kind, the gate's response to a struck
  cell is a deterministic function of the event's severity draw plus
  the per-frame corruption lottery, so per-event moments of every gate
  statistic (masked frames per channel, repair counts, usable-frame
  loss, quarantine probability) are computed by direct quadrature over
  the severity distribution with the gate's exact integer semantics
  (``max(1, int(v * n))`` and friends).  Sums over events then give
  means and variances; bands are normal quantiles of those sums, except
  the inherently binomial counts (quarantines, clock resets) which get
  exact binomial quantiles.
- **Beacon outages** — outage windows are compound Poisson exactly like
  bus downtime; the predicted metric is *dead beacon-days* (instrumented
  ``(beacon, day)`` pairs with the beacon down during the day's sensing
  window — the columns the localizer masks), whose per-outage
  day-overlap count has a closed-form first moment and a
  quadrature-integrated second moment.

Battery and SD-card faults deliberately contribute **zero** to these
predictions: they clear ``active``/``worn`` flags in place
(`repro.exec.executor.degrade_day`), which the gate treats as
legitimate not-worn time — they appear only in the expected-event
table, and the validation harness checks exactly that.

Second-order effects (two events colliding on one cell, masked-frame
overlap between kinds) are deliberately ignored; at campaign-scale
event counts their probability is far inside the default 99.8% bands,
and the reference-campaign anchor tests pin that claim empirically.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.config import MissionConfig
from repro.core.units import DAY
from repro.faults.campaign import FaultCampaign
from repro.quality.gate import QualityPolicy
from repro.reliability.ctmc import binomial_quantile
from repro.reliability.model import (
    DEFAULT_CONFIDENCE,
    _normal_quantile,
    expected_event_counts,
)
from repro.reliability.prediction import Band, CoveragePrediction

__all__ = [
    "CoverageModel",
    "DEFAULT_ACTIVE_FRACTION",
    "STUCK_MARK_PROB",
    "default_coverage_config",
]

#: Fraction of daytime frames a primary badge spends ``active`` under
#: the wear model (paper: "84% of daytime"; measured 0.92 +/- 0.05 for
#: the reference mission — charging stints plus the odd dead tail).
#: Only masked-frame counts depend on it, and only linearly.
DEFAULT_ACTIVE_FRACTION = 0.92

#: Probability a stuck-sensor run overlaps at least one active frame
#: (only active frames are masked, so an all-inactive run leaves the
#: verdict ``ok``).  Runs are >= 84 frames while inactive stretches are
#: mostly short charging stints, so this is nearly 1.
STUCK_MARK_PROB = 0.98

#: Spread (std dev) of the *local* active fraction under a stuck run,
#: inflating the masked-stuck second moment beyond the day-level mean.
ACTIVE_FRACTION_SPREAD = 0.12

#: Bitrot strikes one of 7 float channels with one of 5 garbage values
#: per frame (35 equiprobable combos).  Per-channel masked weights out
#: of 35, as functions of the active fraction ``a``: the three NaN
#: combos mask only on active frames; ``voice_db`` lets -inf and -1e9
#: escape (only ``+inf`` and ``> level_max`` are impossible); the
#: coordinate/stability out-of-range combos are clamped, not masked.
_N_COMBOS = 35.0


def default_coverage_config(campaign: FaultCampaign) -> MissionConfig:
    """The mission config the coverage validation harness runs.

    Matches the campaign horizon; ``frame_dt=60`` keeps the empirical
    gate run affordable (the model reads every frame count from the
    config, so predictions track whatever config is used).
    """
    return MissionConfig(
        days=max(1, int(round(campaign.days))),
        seed=7,
        crew_size=3,
        frame_dt=60.0,
        badges_from_day=1,
        events=None,
    )


def _int_band(mean: float, sigma: float, z: float,
              lo_cap: float = 0.0, hi_cap: Optional[float] = None) -> Band:
    """A normal band around an integer-valued count, rounded outward."""
    lo = max(lo_cap, math.floor(mean - z * sigma))
    hi = mean + z * sigma
    hi = math.ceil(hi) if hi_cap is None else min(hi_cap, math.ceil(hi))
    return Band(mean=mean, lo=float(lo), hi=float(hi))


class _KindMoments:
    """Per-event moments of one data-corruption kind's gate response."""

    def __init__(self) -> None:
        self.mark_prob = 1.0       # P(verdict leaves ``ok`` | hit)
        self.quarantine_prob = 0.0  # P(quarantined | hit)
        self.loss = (0.0, 0.0)      # usable-frame loss, day fraction
        self.channels: dict[str, tuple[float, float]] = {}
        self.repairs: dict[str, tuple[float, float]] = {}


class CoverageModel:
    """Closed-form coverage predictions for one fault campaign.

    ``cfg`` names the mission the campaign will strike (defaults to
    :func:`default_coverage_config`); the model reads frame counts,
    crew size, and instrumented days from it and the event counts and
    severity distributions from the campaign, and mirrors the gate's
    thresholds from :class:`~repro.quality.gate.QualityPolicy` defaults.
    """

    def __init__(self, campaign: FaultCampaign,
                 cfg: Optional[MissionConfig] = None, *,
                 active_fraction: float = DEFAULT_ACTIVE_FRACTION,
                 stuck_mark_prob: float = STUCK_MARK_PROB,
                 grid: int = 2048):
        self.campaign = campaign
        self.cfg = cfg if cfg is not None else default_coverage_config(campaign)
        self.horizon_s = campaign.horizon_s
        self.active_fraction = float(active_fraction)
        self.stuck_mark_prob = float(stuck_mark_prob)
        self._grid = int(grid)
        self._setup()

    # -- derived geometry -------------------------------------------------

    def _setup(self) -> None:
        cfg, c = self.cfg, self.campaign
        self.frames_per_day = cfg.frames_per_day
        #: Days an event draw can land on (``int(t // DAY) + 1``).
        self.days = max(1, int(round(c.days)))
        self.instrumented_days = [
            d for d in cfg.instrumented_days if 1 <= d <= self.days
        ]
        #: Badge-days the gate will see: primaries plus the reference badge.
        self.badge_days = (cfg.crew_size + 1) * len(self.instrumented_days)
        # Cells an event can damage: the campaign's badge_ids that the
        # mission actually assembles (primaries 0..crew-1 and the
        # reference badge 2*crew; events on other ids are no-ops).
        existing = set(range(cfg.crew_size)) | {2 * cfg.crew_size}
        n_pool = len(c.badge_ids)
        hit_badges = [b for b in c.badge_ids if b in existing]
        self.cells = len(hit_badges) * len(self.instrumented_days)
        if n_pool and self.days:
            self.p_hit = (len(hit_badges) / n_pool) \
                * (len(self.instrumented_days) / self.days)
            self.u_cell = 1.0 / (n_pool * self.days)
        else:
            self.p_hit = 0.0
            self.u_cell = 0.0
        self._kinds = self._kind_moments()

    def _severity(self, lo: float, hi: float) -> np.ndarray:
        """Midpoint grid over the kind's uniform severity range."""
        steps = (np.arange(self._grid) + 0.5) / self._grid
        return lo + (hi - lo) * steps

    @staticmethod
    def _moments(values: np.ndarray) -> tuple[float, float]:
        return float(values.mean()), float((values * values).mean())

    @staticmethod
    def _thinned(count1: float, count2: float, w: float) -> tuple[float, float]:
        """Moments of a Binomial(``count``, ``w``) thinning of a count."""
        return count1 * w, count2 * w * w + count1 * w * (1.0 - w)

    def _kind_moments(self) -> dict[str, _KindMoments]:
        """Quadrature over each kind's severity draw, with the exact
        integer semantics of :mod:`repro.faults.data` and the gate."""
        n = float(self.frames_per_day)
        a = self.active_fraction
        kinds: dict[str, _KindMoments] = {}

        # data-bitrot: max(1, int(v*n)) distinct frames each get one of
        # 35 (channel, garbage) combos; the gate masks, clamps, or
        # misses each depending on the combo and the frame's activeness.
        bitrot = _KindMoments()
        v = self._severity(0.02, 0.25)
        struck = np.maximum(1.0, np.floor(v * n))
        s1, s2 = self._moments(struck)
        w_mask = (18.0 + 3.0 * a) / _N_COMBOS
        m1, m2 = self._thinned(s1, s2, w_mask)
        bitrot.loss = (m1 / n, m2 / (n * n))
        for channel, w in {
            "accel_rms": (4.0 + a) / _N_COMBOS,
            "sound_db": (4.0 + a) / _N_COMBOS,
            "voice_db": (2.0 + a) / _N_COMBOS,
            "x": 2.0 / _N_COMBOS,
            "y": 2.0 / _N_COMBOS,
            "dominant_pitch_hz": 4.0 / _N_COMBOS,
        }.items():
            bitrot.channels[channel] = self._thinned(s1, s2, w)
        bitrot.repairs["masked-nan"] = self._thinned(s1, s2, 3.0 * a / _N_COMBOS)
        bitrot.repairs["masked-impossible"] = self._thinned(s1, s2, 18.0 / _N_COMBOS)
        bitrot.repairs["clamped"] = self._thinned(s1, s2, 6.0 / _N_COMBOS)
        # The first quarter of the struck frames also get room 127 —
        # always detected, which is what makes rho_bitrot exactly 1.
        bitrot.repairs["room-cleared"] = self._moments(
            np.maximum(1.0, np.floor(struck / 4.0))
        )
        kinds["data-bitrot"] = bitrot

        # data-truncate: keeps int(v*n) frames; the gate pads the rest
        # (repair counted even when the day then quarantines).
        truncate = _KindMoments()
        v = self._severity(0.2, 0.9)
        padded = n - np.floor(v * n)
        q_mask = padded / n > QualityPolicy.max_unusable_fraction
        truncate.quarantine_prob = float(q_mask.mean())
        truncate.loss = self._moments(np.where(q_mask, 1.0, padded / n))
        truncate.repairs["padded"] = self._moments(padded)
        kinds["data-truncate"] = truncate

        # data-duplicate: inserts max(1, int(v*n)) copied frames; the
        # gate trims the surplus — zero usable-frame loss.
        duplicate = _KindMoments()
        v = self._severity(0.05, 0.3)
        duplicate.repairs["deduplicated"] = self._moments(
            np.maximum(1.0, np.floor(v * n))
        )
        kinds["data-duplicate"] = duplicate

        # data-stuck: a latched run of max(1, int(v*n)) >= 84 frames,
        # always >= stuck_run_frames, masked where it overlaps active
        # time.  The local active fraction under the run is random; its
        # spread inflates the second moment.
        stuck = _KindMoments()
        v = self._severity(0.1, 0.5)
        run = np.maximum(1.0, np.floor(v * n))
        r1, r2 = self._moments(run)
        m1 = r1 * a
        m2 = r2 * (a * a + ACTIVE_FRACTION_SPREAD ** 2)
        stuck.mark_prob = self.stuck_mark_prob
        stuck.loss = (m1 / n, m2 / (n * n))
        stuck.channels["accel_rms"] = (m1, m2)
        stuck.repairs["masked-stuck"] = (m1, m2)
        kinds["data-stuck"] = stuck

        # data-clock-skew: |shift| >= 300 s against a 60 s tolerance —
        # always detected, always fully repaired, zero loss.
        clock = _KindMoments()
        clock.repairs["clock-reset"] = (1.0, 1.0)
        kinds["data-clock-skew"] = clock
        return kinds

    def _kind_counts(self) -> dict[str, int]:
        c = self.campaign
        if not c.badge_ids:
            return {}
        return {
            "data-bitrot": c.bitrot_days,
            "data-truncate": c.truncated_days,
            "data-duplicate": c.duplicated_days,
            "data-stuck": c.stuck_days,
            "data-clock-skew": c.clock_desyncs,
        }

    # -- aggregate moments ------------------------------------------------

    def _sum_moments(self, per_event: list[tuple[int, float, float]],
                     ) -> tuple[float, float]:
        """Mean and variance of a sum over independent events.

        Each entry is ``(count, m1, m2)`` — per-event conditional
        moments, diluted by the hit probability (a miss contributes 0).
        """
        mean = 0.0
        var = 0.0
        for count, m1, m2 in per_event:
            mean += count * self.p_hit * m1
            var += count * (self.p_hit * m2 - (self.p_hit * m1) ** 2)
        return mean, max(0.0, var)

    def _occupancy(self) -> tuple[float, float]:
        """Mean and variance of the number of *marked* badge-day cells."""
        m = self.cells
        if m == 0:
            return 0.0, 0.0
        p0 = 1.0
        p00 = 1.0
        for kind, count in self._kind_counts().items():
            rho = self._kinds[kind].mark_prob * self.u_cell
            p0 *= (1.0 - rho) ** count
            p00 *= (1.0 - 2.0 * rho) ** count
        mean = m * (1.0 - p0)
        var = m * p0 * (1.0 - p0) + m * (m - 1) * (p00 - p0 * p0)
        return mean, max(0.0, var)

    def _distinct_valid_pmf(self, n: int) -> list[float]:
        """Exact pmf of distinct valid cells struck by ``n`` event draws.

        Each draw lands on a specific valid cell with probability
        ``u_cell``; a draw on an already-struck cell (or outside the
        instrumented grid) adds nothing.  One O(n^2) pass over the
        draws.
        """
        top = min(n, self.cells)
        pmf = [0.0] * (top + 1)
        pmf[0] = 1.0
        for _ in range(n):
            nxt = [0.0] * (top + 1)
            for s, p in enumerate(pmf):
                if p <= 0.0:
                    continue
                grow = (self.cells - s) * self.u_cell
                nxt[s] += p * (1.0 - grow)
                if s + 1 <= top:
                    nxt[s + 1] += p * grow
            pmf = nxt
        return pmf

    @staticmethod
    def _pmf_quantile(pmf: list[float], q: float) -> int:
        """Smallest value whose cumulative probability reaches ``q``."""
        acc = 0.0
        for s, p in enumerate(pmf):
            acc += p
            if acc >= q:
                return s
        return len(pmf) - 1

    def _quarantine_binomial(self) -> tuple[int, float]:
        """(draw count, per-draw probability) of a quarantined cell."""
        counts = self._kind_counts()
        n_draws = counts.get("data-truncate", 0)
        p = self.p_hit * self._kinds["data-truncate"].quarantine_prob \
            if n_draws else 0.0
        return n_draws, p

    def _beacon_day_windows(self) -> tuple[list[float], float, float]:
        """Sensing-window starts, window length, horizon."""
        cfg = self.cfg
        starts = [
            (d - 1) * DAY + cfg.daytime_start_s for d in self.instrumented_days
        ]
        return starts, cfg.daytime_s, self.horizon_s

    def _beacon_moments(self) -> tuple[float, float]:
        """Per-outage moments of the number of sensing days overlapped.

        An outage ``[t, t + d)`` with ``t ~ U(0, H)`` and
        ``d = 1 + Exp(mu)`` overlaps day window ``[s, s + W)`` iff
        ``t < s + W`` and ``t + d > s``; the t-measure of that set is
        ``W + min(s, d)``, giving the closed-form first moment.  The
        second moment integrates the overlap count on a (t, d) grid.
        """
        starts, W, H = self._beacon_day_windows()
        mu = self.campaign.mean_beacon_outage_s
        if not starts:
            return 0.0, 0.0
        k1 = sum(
            (W + 1.0 + mu * (1.0 - math.exp(-(s - 1.0) / mu))) / H
            for s in starts
        )
        # Second moment: 512 t-midpoints x 64 duration quantiles.
        t = (np.arange(512) + 0.5) * (H / 512)
        q = (np.arange(64) + 0.5) / 64
        d = 1.0 - mu * np.log1p(-q)
        hits = np.zeros((t.size, d.size))
        for s in starts:
            hits += (t[:, None] < s + W) & (t[:, None] + d[None, :] > s)
        k2 = float((hits * hits).mean())
        return k1, k2

    def dead_beacon_days_band(self, confidence: float = DEFAULT_CONFIDENCE,
                              ) -> Optional[Band]:
        """Instrumented (beacon, day) pairs lost to outages, with band.

        Compound Poisson: ``Poisson(rate * days)`` outages, each hitting
        a random count of sensing windows.
        """
        c = self.campaign
        if c.n_beacons <= 0 or c.beacon_outages_per_day <= 0.0:
            return None
        lam = c.beacon_outages_per_day * c.days
        k1, k2 = self._beacon_moments()
        z = _normal_quantile(0.5 + confidence / 2.0)
        cap = float(c.n_beacons * len(self.instrumented_days))
        return _int_band(lam * k1, math.sqrt(lam * k2), z, hi_cap=cap)

    # -- the full forecast ------------------------------------------------

    def expected_coverage(self) -> float:
        """Mean predicted coverage fraction (no band) — the fast path."""
        if self.badge_days == 0:
            return 1.0
        loss, _ = self._sum_moments([
            (count, self._kinds[kind].loss[0], self._kinds[kind].loss[1])
            for kind, count in self._kind_counts().items()
        ])
        return max(0.0, 1.0 - loss / self.badge_days)

    def predict(self, confidence: float = DEFAULT_CONFIDENCE) -> CoveragePrediction:
        z = _normal_quantile(0.5 + confidence / 2.0)
        alpha = 1.0 - confidence
        M = self.badge_days
        counts = self._kind_counts()

        # Coverage: 1 - (summed usable-frame loss) / badge-days.
        loss_mean, loss_var = self._sum_moments([
            (count, *self._kinds[kind].loss) for kind, count in counts.items()
        ])
        sigma = math.sqrt(loss_var)
        if M:
            coverage = Band(
                mean=min(1.0, max(0.0, 1.0 - loss_mean / M)),
                lo=min(1.0, max(0.0, 1.0 - (loss_mean + z * sigma) / M)),
                hi=min(1.0, max(0.0, 1.0 - (loss_mean - z * sigma) / M)),
            )
        else:
            coverage = Band(mean=1.0, lo=1.0, hi=1.0)

        # Verdict counts: occupancy gives marked cells; the truncate
        # binomial splits marked into quarantined vs repaired.
        s_mean, s_var = self._occupancy()
        n_ok = _int_band(M - s_mean, math.sqrt(s_var), z, hi_cap=float(M))
        n_draws, p_q = self._quarantine_binomial()
        if n_draws and 0.0 < p_q < 1.0:
            q_lo = float(binomial_quantile(alpha / 2.0, n_draws, p_q))
            q_hi = float(binomial_quantile(1.0 - alpha / 2.0, n_draws, p_q))
        else:
            q_lo = q_hi = float(round(n_draws * p_q))
        q_mean = n_draws * p_q
        q_var = n_draws * p_q * (1.0 - p_q)
        n_quarantined = Band(mean=q_mean, lo=q_lo, hi=q_hi)
        n_repaired = _int_band(
            s_mean - q_mean, math.sqrt(s_var + q_var), z, hi_cap=float(M)
        )

        # Masked frames per channel, summed over the striking kinds.
        channels: dict[str, Band] = {}
        for channel in ("accel_rms", "sound_db", "voice_db", "x", "y",
                        "dominant_pitch_hz"):
            entries = [
                (count, *self._kinds[kind].channels[channel])
                for kind, count in counts.items()
                if channel in self._kinds[kind].channels
            ]
            if not entries:
                continue
            mean, var = self._sum_moments(entries)
            channels[channel] = _int_band(mean, math.sqrt(var), z)

        # Repairs per kind.  One clock reset repairs a whole badge-day
        # however many desyncs compounded on it, so the observable count
        # is the number of *distinct* cells the draws struck — its exact
        # occupancy distribution, not Binomial(n, p_hit) (collisions
        # matter at high desync counts; the worst-regime replay caught
        # this).  The frame-count repairs get normal bands of their
        # quadrature moments.
        repairs: dict[str, Band] = {}
        repair_kinds: dict[str, list[tuple[int, float, float]]] = {}
        for kind, count in counts.items():
            for name, (m1, m2) in self._kinds[kind].repairs.items():
                repair_kinds.setdefault(name, []).append((count, m1, m2))
        for name in sorted(repair_kinds):
            if name == "clock-reset":
                pmf = self._distinct_valid_pmf(counts.get("data-clock-skew", 0))
                repairs[name] = Band(
                    mean=sum(s * p for s, p in enumerate(pmf)),
                    lo=float(self._pmf_quantile(pmf, alpha / 2.0)),
                    hi=float(self._pmf_quantile(pmf, 1.0 - alpha / 2.0)),
                )
                continue
            mean, var = self._sum_moments(repair_kinds[name])
            repairs[name] = _int_band(mean, math.sqrt(var), z)

        return CoveragePrediction(
            horizon_s=self.horizon_s,
            confidence=confidence,
            badge_days=M,
            coverage=coverage,
            n_ok=n_ok,
            n_repaired=n_repaired,
            n_quarantined=n_quarantined,
            masked_channels=channels,
            repairs=repairs,
            dead_beacon_days=self.dead_beacon_days_band(confidence),
            expected_faults={
                kind: mean
                for kind, (mean, _exact)
                in expected_event_counts(self.campaign).items()
            },
        )

    # -- fast path for the regime search ---------------------------------

    def score(self) -> tuple[float, float, float]:
        """``(badness, coverage, expected_quarantined)`` — means only.

        Badness is the predicted coverage loss plus the quarantined
        fraction of badge-days plus the dead-beacon-day fraction of
        instrumented beacon columns — every way this campaign destroys
        data, normalized to fractions so regimes are comparable.
        """
        coverage = self.expected_coverage()
        n_draws, p_q = self._quarantine_binomial()
        quarantined = n_draws * p_q
        badness = 1.0 - coverage
        if self.badge_days:
            badness += quarantined / self.badge_days
        c = self.campaign
        beacon_cols = c.n_beacons * len(self.instrumented_days)
        if beacon_cols and c.beacon_outages_per_day > 0.0:
            starts, W, H = self._beacon_day_windows()
            mu = c.mean_beacon_outage_s
            k1 = sum(
                (W + 1.0 + mu * (1.0 - math.exp(-(s - 1.0) / mu))) / H
                for s in starts
            )
            badness += min(1.0, c.beacon_outages_per_day * c.days * k1
                           / beacon_cols)
        return badness, coverage, quarantined
