"""Continuous-time Markov chain machinery for the reliability model.

Three layers, all pure NumPy and fully deterministic:

- :class:`CTMC` — a generic finite-state chain over an explicit
  generator matrix ``Q``: steady-state distribution by linear solve,
  transient distribution by uniformization (no matrix exponential
  dependency), and Kronecker-sum composition of independent chains.
- :class:`TwoStateChain` — the up/down special case every fault class
  reduces to, with the textbook closed forms: steady-state availability
  ``mu / (lambda + mu)``, the transient ``A(t)``, and the expected
  availability over a finite horizon (what a campaign actually samples).
- Finite-horizon *distributions*: a fault class injects a Poisson number
  of outage windows whose durations are (shifted) exponentials, so total
  downtime is compound Poisson with Erlang summands.  Its CDF is closed
  form (:func:`compound_downtime_cdf`), which is where the model's
  confidence bands come from — quantiles of the horizon's own sampling
  distribution, not hand-tuned tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError

__all__ = [
    "CTMC",
    "TwoStateChain",
    "binomial_pmf",
    "binomial_quantile",
    "compound_downtime_cdf",
    "compound_downtime_quantile",
    "erlang_cdf",
    "poisson_pmf",
    "poisson_quantile",
    "sample_mean_quantile",
]


# ---------------------------------------------------------------------------
# Generic finite-state CTMC
# ---------------------------------------------------------------------------


class CTMC:
    """A finite-state continuous-time Markov chain.

    ``states`` names the state space; ``Q`` is the generator matrix
    (off-diagonal rates non-negative, rows summing to zero).
    """

    def __init__(self, states: tuple[str, ...], Q: np.ndarray):
        Q = np.asarray(Q, dtype=float)
        n = len(states)
        if Q.shape != (n, n):
            raise ConfigError(f"generator must be {n}x{n}, got {Q.shape}")
        off = Q.copy()
        np.fill_diagonal(off, 0.0)
        if (off < 0.0).any():
            raise ConfigError("off-diagonal generator rates must be non-negative")
        if not np.allclose(Q.sum(axis=1), 0.0, atol=1e-9):
            raise ConfigError("generator rows must sum to zero")
        self.states = tuple(states)
        self.Q = Q

    def index(self, state: str) -> int:
        return self.states.index(state)

    def steady_state(self) -> np.ndarray:
        """The stationary distribution ``pi`` solving ``pi Q = 0``."""
        n = len(self.states)
        # Append the normalization constraint and least-squares solve.
        a = np.vstack([self.Q.T, np.ones((1, n))])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def transient(self, p0: np.ndarray, t: float, tol: float = 1e-12) -> np.ndarray:
        """State distribution at time ``t`` from ``p0``, by uniformization.

        ``P(t) = sum_k e^{-qt} (qt)^k / k! * p0 P_hat^k`` with the
        uniformized jump matrix ``P_hat = I + Q / q``; the Poisson series
        is truncated once the accumulated mass exceeds ``1 - tol``.
        """
        p0 = np.asarray(p0, dtype=float)
        if t < 0:
            raise ConfigError("t must be non-negative")
        q = float(np.max(-np.diag(self.Q)))
        if q <= 0.0 or t == 0.0:
            return p0.copy()
        p_hat = np.eye(len(self.states)) + self.Q / q
        qt = q * t
        # Iterate the Poisson(qt) weights in log space for stability.
        log_w = -qt  # k = 0
        weight = math.exp(log_w)
        acc = weight * p0
        vec = p0.copy()
        total = weight
        k = 0
        while total < 1.0 - tol and k < 100_000:
            k += 1
            vec = vec @ p_hat
            log_w += math.log(qt) - math.log(k)
            weight = math.exp(log_w)
            acc = acc + weight * vec
            total += weight
        return acc / total

    def compose(self, other: "CTMC", sep: str = "|") -> "CTMC":
        """The joint chain of two independent CTMCs (Kronecker sum)."""
        n, m = len(self.states), len(other.states)
        Q = np.kron(self.Q, np.eye(m)) + np.kron(np.eye(n), other.Q)
        states = tuple(
            f"{a}{sep}{b}" for a in self.states for b in other.states
        )
        return CTMC(states, Q)


# ---------------------------------------------------------------------------
# The up/down two-state chain (closed forms)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwoStateChain:
    """An up/down chain: failure rate ``lam`` (1/s), repair rate ``mu``.

    ``lam`` is the rate at which failures strike *while up*; ``mu`` is
    the reciprocal mean outage duration.  ``lam = 0`` models an
    unfaulted component (always up).
    """

    lam: float
    mu: float

    def __post_init__(self) -> None:
        if self.lam < 0.0:
            raise ConfigError("failure rate must be non-negative")
        if self.mu <= 0.0:
            raise ConfigError("repair rate must be positive")

    @property
    def steady_state_availability(self) -> float:
        return self.mu / (self.lam + self.mu)

    @property
    def steady_state_unavailability(self) -> float:
        return self.lam / (self.lam + self.mu)

    @property
    def mean_downtime_s(self) -> float:
        return 1.0 / self.mu

    def availability_at(self, t: float) -> float:
        """P(up at ``t``), starting up at 0 (transient closed form)."""
        theta = self.lam + self.mu
        a_inf = self.steady_state_availability
        return a_inf + (1.0 - a_inf) * math.exp(-theta * t)

    def expected_availability(self, horizon_s: float) -> float:
        """Expected fraction of ``[0, horizon]`` spent up, starting up.

        The time integral of :meth:`availability_at`:
        ``A_bar(T) = A + U (1 - e^{-theta T}) / (theta T)``.
        """
        if horizon_s <= 0.0:
            raise ConfigError("horizon must be positive")
        theta = self.lam + self.mu
        if theta == 0.0:
            return 1.0
        a_inf = self.steady_state_availability
        u_inf = 1.0 - a_inf
        return a_inf + u_inf * (1.0 - math.exp(-theta * horizon_s)) / (theta * horizon_s)

    def expected_outages(self, horizon_s: float) -> float:
        """Expected completed up->down transitions over the horizon.

        The renewal rate of the alternating process: one outage per mean
        cycle ``1/lam + 1/mu`` (slightly below ``lam * T`` because no new
        failure can strike while already down — exactly the injector's
        overlapping-window collapse).
        """
        if self.lam == 0.0:
            return 0.0
        return horizon_s / (1.0 / self.lam + 1.0 / self.mu)

    def to_ctmc(self, up: str = "up", down: str = "down") -> CTMC:
        """The explicit 2-state generator (for composition / cross-checks)."""
        return CTMC(
            (up, down),
            np.array([[-self.lam, self.lam], [self.mu, -self.mu]]),
        )


# ---------------------------------------------------------------------------
# Finite-horizon sampling distributions (confidence bands)
# ---------------------------------------------------------------------------


def poisson_pmf(k: int, mean: float) -> float:
    if mean <= 0.0:
        return 1.0 if k == 0 else 0.0
    return math.exp(k * math.log(mean) - mean - math.lgamma(k + 1))


def poisson_quantile(q: float, mean: float) -> int:
    """Smallest ``k`` with ``P(N <= k) >= q`` for ``N ~ Poisson(mean)``."""
    if not 0.0 < q < 1.0:
        raise ConfigError("q must be in (0, 1)")
    if mean <= 0.0:
        return 0
    acc = 0.0
    k = 0
    bound = int(mean + 20.0 * math.sqrt(mean) + 50.0)
    while k <= bound:
        acc += poisson_pmf(k, mean)
        if acc >= q:
            return k
        k += 1
    return bound


def binomial_pmf(k: int, n: int, p: float) -> float:
    if k < 0 or k > n:
        return 0.0
    if p <= 0.0:
        return 1.0 if k == 0 else 0.0
    if p >= 1.0:
        return 1.0 if k == n else 0.0
    log_comb = math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    return math.exp(log_comb + k * math.log(p) + (n - k) * math.log1p(-p))


def binomial_quantile(q: float, n: int, p: float) -> int:
    """Smallest ``k`` with ``P(X <= k) >= q`` for ``X ~ Binomial(n, p)``.

    Used for the coverage model's quarantine and clock-reset bands,
    where a fixed number of campaign draws each independently strikes
    with a known probability.
    """
    if not 0.0 < q < 1.0:
        raise ConfigError("q must be in (0, 1)")
    if n < 0:
        raise ConfigError("n must be non-negative")
    acc = 0.0
    for k in range(n + 1):
        acc += binomial_pmf(k, n, p)
        if acc >= q:
            return k
    return n


def erlang_cdf(x: float, n: int, scale: float) -> float:
    """P(Gamma(n, scale) <= x) for integer shape ``n`` (closed form)."""
    if n < 0:
        raise ConfigError("shape must be non-negative")
    if n == 0:
        return 1.0 if x >= 0.0 else 0.0
    if x <= 0.0:
        return 0.0
    z = x / scale
    # 1 - e^{-z} sum_{k<n} z^k / k!, accumulated in log space.
    log_term = -z  # k = 0
    acc = math.exp(log_term)
    for k in range(1, n):
        log_term += math.log(z) - math.log(k)
        acc += math.exp(log_term)
    return max(0.0, 1.0 - acc)


def compound_downtime_cdf(
    x: float,
    n_windows_mean: float,
    mean_duration_s: float,
    shift_s: float = 0.0,
    n_max: int | None = None,
) -> float:
    """CDF of total downtime from a Poisson number of outage windows.

    ``N ~ Poisson(n_windows_mean)`` windows, each lasting
    ``shift_s + Exp(mean_duration_s)`` (the campaign draws exactly this
    shape), summed: ``P(D_total <= x) = sum_n P(N = n) *
    ErlangCDF(x - n * shift; n, mean)``.  This is the *horizon's own*
    sampling distribution of downtime, so band widths inherit the
    skewness of rare-event campaigns instead of assuming normality.
    """
    if x < 0.0:
        return 0.0
    if n_windows_mean <= 0.0:
        return 1.0
    if n_max is None:
        n_max = poisson_quantile(1.0 - 1e-12, n_windows_mean) + 1
    acc = 0.0
    for n in range(n_max + 1):
        w = poisson_pmf(n, n_windows_mean)
        if w <= 0.0:
            continue
        acc += w * erlang_cdf(x - n * shift_s, n, mean_duration_s)
    return min(1.0, acc)


def _bisect_quantile(cdf, q: float, lo: float, hi: float, iters: int = 200) -> float:
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-9 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


def compound_downtime_quantile(
    q: float,
    n_windows_mean: float,
    mean_duration_s: float,
    shift_s: float = 0.0,
) -> float:
    """Quantile of the compound-Poisson downtime distribution."""
    if not 0.0 < q < 1.0:
        raise ConfigError("q must be in (0, 1)")
    if n_windows_mean <= 0.0:
        return 0.0
    if compound_downtime_cdf(0.0, n_windows_mean, mean_duration_s, shift_s) >= q:
        return 0.0
    n_hi = poisson_quantile(1.0 - 1e-9, n_windows_mean) + 1
    hi = n_hi * (shift_s + 40.0 * mean_duration_s) + 1.0
    return _bisect_quantile(
        lambda x: compound_downtime_cdf(x, n_windows_mean, mean_duration_s, shift_s),
        q, 0.0, hi,
    )


def sample_mean_quantile(q: float, n: int, mean_s: float, shift_s: float = 0.0) -> float:
    """Quantile of the mean of ``n`` draws of ``shift + Exp(mean)``.

    The sample mean of ``n`` exponentials is ``Gamma(n, mean/n)``; used
    for the MTTR band, conditioned on the observed closed-outage count.
    """
    if n < 1:
        raise ConfigError("n must be >= 1")
    if not 0.0 < q < 1.0:
        raise ConfigError("q must be in (0, 1)")
    hi = shift_s + mean_s * (40.0 / math.sqrt(n) + 1.0)
    return _bisect_quantile(
        lambda x: erlang_cdf(max(0.0, x - shift_s), n, mean_s / n),
        q, 0.0, hi,
    )
