"""Empirical validation of the CTMC model against seeded campaigns.

:func:`validate_campaign` generates the campaign's concrete fault plan,
runs it through the real support stack
(:func:`~repro.faults.scenario.run_support_scenario`), and checks that
every measured :class:`~repro.faults.report.ReliabilityReport` metric —
per-node availability, MTTR, closed-outage count, per-kind delivery
success — lands inside the model's finite-horizon confidence bands.
The whole pipeline is seeded, so a given ``(campaign, cfg)`` pair
produces a byte-identical :class:`ValidationResult` every run; that is
what the tier-1 reference-campaign tests pin.

Model-vs-empirical residuals are exported through :mod:`repro.obs`
(``reliability.model.delta`` gauges, ``reliability.validations``
counter) so long-running deployments can watch the analytic model drift
away from the measured system.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.config import MissionConfig
from repro.faults.campaign import FaultCampaign
from repro.faults.plan import FaultPlan
from repro.faults.report import ReliabilityReport
from repro.faults.scenario import run_support_scenario
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs import span
from repro.quality.report import DataQualityReport
from repro.reliability.coverage import CoverageModel, default_coverage_config
from repro.reliability.ctmc import poisson_quantile
from repro.reliability.model import (
    DEFAULT_CONFIDENCE,
    EVENT_ACTIONS,
    ReliabilityModel,
    expected_event_counts,
)
from repro.reliability.prediction import Band, ValidationCheck, ValidationResult


def _event_count_checks(
    campaign: FaultCampaign,
    plan: FaultPlan,
    confidence: float,
) -> list[ValidationCheck]:
    """Expected-fault table as a *checked* prediction, per kind.

    The whole-mission count parameters (battery, SD-card, worker
    crashes, the data-corruption kinds) are drawn verbatim, so they must
    match exactly; the per-day rate classes are Poisson draws and get
    Poisson bands at the validation confidence.
    """
    alpha = 1.0 - confidence
    actual: dict[str, int] = {}
    for event in plan.events:
        actual[event.action] = actual.get(event.action, 0) + 1
    checks: list[ValidationCheck] = []
    for kind, (mean, exact) in expected_event_counts(campaign).items():
        if exact:
            band = Band(mean=mean, lo=mean, hi=mean)
        else:
            band = Band(
                mean=mean,
                lo=float(poisson_quantile(alpha / 2.0, mean)),
                hi=float(poisson_quantile(1.0 - alpha / 2.0, mean)),
            )
        value = float(actual.get(EVENT_ACTIONS[kind], 0))
        checks.append(ValidationCheck(
            metric=f"events[{kind}]",
            empirical=value,
            band=band,
            inside=band.contains(value),
        ))
    return checks


def compare_report(
    model: ReliabilityModel,
    report: ReliabilityReport,
    confidence: float = DEFAULT_CONFIDENCE,
    plan: Optional[FaultPlan] = None,
) -> ValidationResult:
    """Check one measured report against the model's bands.

    Pure function of ``(model, report)`` — no simulation, so it can also
    grade archived reports.  With the generated ``plan``, the expected
    per-kind fault counts are checked against the actual draws too.
    """
    checks: list[ValidationCheck] = []

    for node in sorted(report.availability):
        band = model.availability_band(node, confidence)
        value = report.availability[node]
        checks.append(ValidationCheck(
            metric=f"availability[{node}]",
            empirical=value,
            band=band,
            inside=band.contains(value),
        ))

    # MTTR: conditioned on the number of repairs the campaign actually
    # observed — the band is the sampling distribution of a mean of
    # n_outages (shifted) exponential repair draws.
    mttr_band = model.mttr_band(confidence, n_outages=max(1, report.n_outages))
    if mttr_band is not None:
        checks.append(ValidationCheck(
            metric="mttr_s",
            empirical=report.mttr_s,
            band=mttr_band,
            inside=mttr_band.contains(report.mttr_s),
        ))

    if model.node_chains:
        outage_band = model.n_outages_band(confidence)
        total_outages = float(report.n_outages + report.n_censored_outages)
        checks.append(ValidationCheck(
            metric="n_outages",
            empirical=total_outages,
            band=outage_band,
            inside=outage_band.contains(total_outages),
        ))

    for kind in ("submit", "status"):
        prediction = model.delivery_prediction(kind, confidence)
        value = report.delivery_success(kind)
        checks.append(ValidationCheck(
            metric=f"delivery[{kind}]",
            empirical=value,
            band=prediction.success,
            inside=prediction.success.contains(value),
        ))

    if plan is not None:
        checks.extend(_event_count_checks(model.campaign, plan, confidence))

    return ValidationResult(
        campaign_seed=model.campaign.seed,
        horizon_s=model.horizon_s,
        confidence=confidence,
        checks=tuple(checks),
    )


def _export_deltas(result: ValidationResult) -> None:
    if not _obs.enabled:
        return
    gauge = _metrics.gauge(
        "reliability.model.delta",
        "empirical minus predicted, by validation metric",
    )
    for check in result.checks:
        if check.delta is not None:
            gauge.set(check.delta, metric=check.metric)
    _metrics.counter(
        "reliability.validations",
        "model validations run, by outcome",
    ).inc(outcome="pass" if result.all_inside else "fail")


def validate_campaign(
    campaign: FaultCampaign,
    cfg: Optional[MissionConfig] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> tuple[ValidationResult, ReliabilityReport]:
    """Run ``campaign`` empirically and grade it against the model.

    Returns ``(validation, report)``; the mission config defaults to one
    matching the campaign's horizon (the scenario only reads ``days``,
    ``seed``, and the Earth-link delay from it).
    """
    if cfg is None:
        # The support scenario only reads days/seed/earth-link from the
        # config; badges and scripted events play no part, so short
        # campaign horizons must not trip their validation.
        cfg = MissionConfig(days=max(1, round(campaign.days)), seed=7,
                            badges_from_day=1, events=None)
    model = ReliabilityModel(campaign, earth_link_delay_s=cfg.earth_link_delay_s)
    with span("reliability.validate", seed=campaign.seed, days=campaign.days):
        plan = campaign.generate()
        report = run_support_scenario(cfg, plan)
        result = compare_report(model, report, confidence, plan=plan)
    _export_deltas(result)
    return result, report


# ---------------------------------------------------------------------------
# Coverage validation (the sensing-level counterpart)
# ---------------------------------------------------------------------------


def compare_quality_report(
    model: CoverageModel,
    report: DataQualityReport,
    confidence: float = DEFAULT_CONFIDENCE,
    plan: Optional[FaultPlan] = None,
) -> ValidationResult:
    """Check a measured DataQualityReport against the coverage model.

    Every coverage number the report carries is compared: the verdict
    counts, the coverage fraction, per-channel masked frames, per-kind
    repair counts.  Channels or repair kinds the model does not predict
    get a degenerate ``[0, 0]`` band, so an unmodeled gate response is a
    failed check, not a silent gap.  With the generated ``plan``, the
    dead-beacon-day count (a pure function of the plan) and the per-kind
    event draws are checked too.
    """
    prediction = model.predict(confidence)
    checks: list[ValidationCheck] = []

    exact_days = Band(
        mean=float(prediction.badge_days),
        lo=float(prediction.badge_days),
        hi=float(prediction.badge_days),
    )
    value = float(len(report.verdicts))
    checks.append(ValidationCheck(
        metric="badge_days", empirical=value,
        band=exact_days, inside=exact_days.contains(value),
    ))

    coverage = report.coverage()
    checks.append(ValidationCheck(
        metric="coverage", empirical=coverage,
        band=prediction.coverage,
        inside=prediction.coverage.contains(coverage),
    ))
    for name, value, band in (
        ("verdicts[ok]", float(report.n_ok), prediction.n_ok),
        ("verdicts[repaired]", float(report.n_repaired), prediction.n_repaired),
        ("verdicts[quarantined]", float(report.n_quarantined),
         prediction.n_quarantined),
    ):
        checks.append(ValidationCheck(
            metric=name, empirical=value, band=band,
            inside=band.contains(value),
        ))

    zero = Band(mean=0.0, lo=0.0, hi=0.0)
    masked = report.masked_by_channel()
    for channel in sorted(set(prediction.masked_channels) | set(masked)):
        band = prediction.masked_channels.get(channel, zero)
        value = float(masked.get(channel, 0))
        checks.append(ValidationCheck(
            metric=f"masked[{channel}]", empirical=value, band=band,
            inside=band.contains(value),
        ))
    repairs = report.repairs_total()
    for kind in sorted(set(prediction.repairs) | set(repairs)):
        band = prediction.repairs.get(kind, zero)
        value = float(repairs.get(kind, 0))
        checks.append(ValidationCheck(
            metric=f"repairs[{kind}]", empirical=value, band=band,
            inside=band.contains(value),
        ))

    if plan is not None:
        if prediction.dead_beacon_days is not None:
            cfg = model.cfg
            dead = float(sum(
                len(plan.dead_beacons_on_day(
                    day, cfg.daytime_start_s, cfg.daytime_s
                ))
                for day in model.instrumented_days
            ))
            band = prediction.dead_beacon_days
            checks.append(ValidationCheck(
                metric="dead_beacon_days", empirical=dead, band=band,
                inside=band.contains(dead),
            ))
        checks.extend(_event_count_checks(model.campaign, plan, confidence))

    return ValidationResult(
        campaign_seed=model.campaign.seed,
        horizon_s=model.horizon_s,
        confidence=confidence,
        checks=tuple(checks),
    )


def validate_coverage_campaign(
    campaign: FaultCampaign,
    cfg: Optional[MissionConfig] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> tuple[ValidationResult, DataQualityReport]:
    """Run ``campaign`` through a gated mission and grade the coverage.

    The empirical side is the real thing end to end: the campaign's
    generated plan corrupts the assembled mission dataset, the quality
    gate judges every badge-day, and the resulting
    :class:`DataQualityReport` is checked number-by-number against the
    analytic :class:`CoverageModel` bands.
    """
    if cfg is None:
        cfg = default_coverage_config(campaign)
    model = CoverageModel(campaign, cfg)
    with span("reliability.validate_coverage", seed=campaign.seed,
              days=campaign.days):
        plan = campaign.generate()
        mission_cfg = dataclasses.replace(cfg, fault_plan=plan)
        # Local import: the mission stack is heavy and only the coverage
        # harness needs it.
        from repro.experiments.mission import run_mission

        mission = run_mission(mission_cfg, quality="gate")
        report = mission.quality
        result = compare_quality_report(model, report, confidence, plan=plan)
    _export_deltas(result)
    return result, report
