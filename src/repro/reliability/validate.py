"""Empirical validation of the CTMC model against seeded campaigns.

:func:`validate_campaign` generates the campaign's concrete fault plan,
runs it through the real support stack
(:func:`~repro.faults.scenario.run_support_scenario`), and checks that
every measured :class:`~repro.faults.report.ReliabilityReport` metric —
per-node availability, MTTR, closed-outage count, per-kind delivery
success — lands inside the model's finite-horizon confidence bands.
The whole pipeline is seeded, so a given ``(campaign, cfg)`` pair
produces a byte-identical :class:`ValidationResult` every run; that is
what the tier-1 reference-campaign tests pin.

Model-vs-empirical residuals are exported through :mod:`repro.obs`
(``reliability.model.delta`` gauges, ``reliability.validations``
counter) so long-running deployments can watch the analytic model drift
away from the measured system.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import MissionConfig
from repro.faults.campaign import FaultCampaign
from repro.faults.report import ReliabilityReport
from repro.faults.scenario import run_support_scenario
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs import span
from repro.reliability.model import DEFAULT_CONFIDENCE, ReliabilityModel
from repro.reliability.prediction import ValidationCheck, ValidationResult


def compare_report(
    model: ReliabilityModel,
    report: ReliabilityReport,
    confidence: float = DEFAULT_CONFIDENCE,
) -> ValidationResult:
    """Check one measured report against the model's bands.

    Pure function of ``(model, report)`` — no simulation, so it can also
    grade archived reports.
    """
    checks: list[ValidationCheck] = []

    for node in sorted(report.availability):
        band = model.availability_band(node, confidence)
        value = report.availability[node]
        checks.append(ValidationCheck(
            metric=f"availability[{node}]",
            empirical=value,
            band=band,
            inside=band.contains(value),
        ))

    # MTTR: conditioned on the number of repairs the campaign actually
    # observed — the band is the sampling distribution of a mean of
    # n_outages (shifted) exponential repair draws.
    mttr_band = model.mttr_band(confidence, n_outages=max(1, report.n_outages))
    if mttr_band is not None:
        checks.append(ValidationCheck(
            metric="mttr_s",
            empirical=report.mttr_s,
            band=mttr_band,
            inside=mttr_band.contains(report.mttr_s),
        ))

    if model.node_chains:
        outage_band = model.n_outages_band(confidence)
        total_outages = float(report.n_outages + report.n_censored_outages)
        checks.append(ValidationCheck(
            metric="n_outages",
            empirical=total_outages,
            band=outage_band,
            inside=outage_band.contains(total_outages),
        ))

    for kind in ("submit", "status"):
        prediction = model.delivery_prediction(kind, confidence)
        value = report.delivery_success(kind)
        checks.append(ValidationCheck(
            metric=f"delivery[{kind}]",
            empirical=value,
            band=prediction.success,
            inside=prediction.success.contains(value),
        ))

    return ValidationResult(
        campaign_seed=model.campaign.seed,
        horizon_s=model.horizon_s,
        confidence=confidence,
        checks=tuple(checks),
    )


def _export_deltas(result: ValidationResult) -> None:
    if not _obs.enabled:
        return
    gauge = _metrics.gauge(
        "reliability.model.delta",
        "empirical minus predicted, by validation metric",
    )
    for check in result.checks:
        if check.delta is not None:
            gauge.set(check.delta, metric=check.metric)
    _metrics.counter(
        "reliability.validations",
        "model validations run, by outcome",
    ).inc(outcome="pass" if result.all_inside else "fail")


def validate_campaign(
    campaign: FaultCampaign,
    cfg: Optional[MissionConfig] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> tuple[ValidationResult, ReliabilityReport]:
    """Run ``campaign`` empirically and grade it against the model.

    Returns ``(validation, report)``; the mission config defaults to one
    matching the campaign's horizon (the scenario only reads ``days``,
    ``seed``, and the Earth-link delay from it).
    """
    if cfg is None:
        # The support scenario only reads days/seed/earth-link from the
        # config; badges and scripted events play no part, so short
        # campaign horizons must not trip their validation.
        cfg = MissionConfig(days=max(1, round(campaign.days)), seed=7,
                            badges_from_day=1, events=None)
    model = ReliabilityModel(campaign, earth_link_delay_s=cfg.earth_link_delay_s)
    with span("reliability.validate", seed=campaign.seed, days=campaign.days):
        plan = campaign.generate()
        report = run_support_scenario(cfg, plan)
        result = compare_report(model, report, confidence)
    _export_deltas(result)
    return result, report
