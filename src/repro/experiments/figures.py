"""Figure generators: one function per data figure of the paper.

Each returns the figure's underlying data plus a ``format_*`` helper
that prints the same rows/series the paper plots (the benchmarks print
these, since the evaluation is textual in this reproduction).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.coverage import CoveredDict
from repro.analytics.speech import daily_speech_fraction
from repro.analytics.timeline import DayTimeline, day_timeline
from repro.analytics.transitions import transition_matrix
from repro.analytics.walking import daily_walking_fraction
from repro.core.units import hhmm
from repro.experiments.mission import MissionResult
from repro.localization.heatmap import CELL_SIZE_M, Heatmap


def _coverage_note(coverage: float) -> list[str]:
    """A trailer line for partial-data figures (nothing when complete)."""
    if coverage >= 1.0:
        return []
    return [f"(computed from {coverage:.1%} of the expected data)"]


def fig2(result: MissionResult) -> tuple[list[str], np.ndarray]:
    """Figure 2: room-to-room passage counts (main hall excluded).

    The returned pair unpacks as ``(names, counts)`` and carries a
    ``.coverage`` attribute from the quality gate.
    """
    return transition_matrix(result.sensing)


def format_fig2(names: list[str], counts: np.ndarray,
                coverage: float = 1.0) -> str:
    width = max(len(n) for n in names) + 1
    header = " " * width + " ".join(f"{n[:8]:>8}" for n in names)
    lines = [header]
    for i, name in enumerate(names):
        cells = " ".join(f"{int(counts[i, j]):>8}" for j in range(len(names)))
        lines.append(f"{name:<{width}}{cells}")
    lines.extend(_coverage_note(coverage))
    return "\n".join(lines)


def fig3(result: MissionResult, astro_id: str = "A", cell_m: float = CELL_SIZE_M) -> Heatmap:
    """Figure 3: whole-mission position heatmap of one astronaut.

    Built from localization estimates of the badges the astronaut
    actually wore, restricted to worn frames.
    """
    heatmap = Heatmap.empty(result.truth.plan.bounds, cell_m)
    for summary in result.sensing.astro_summaries(corrected=True)[astro_id]:
        worn = summary.worn
        heatmap.add(summary.x[worn], summary.y[worn], dt=summary.dt)
    return heatmap


def format_fig3(heatmap: Heatmap, max_width: int = 64) -> str:
    """ASCII rendering of the log-scale heatmap."""
    log = heatmap.log_counts()
    ny, nx = log.shape
    step = max(1, int(np.ceil(nx / max_width)))
    shades = " .:-=+*#%@"
    top = log.max() or 1.0
    lines = []
    for iy in range(ny - 1, -1, -step):
        row = log[iy, ::step]
        lines.append("".join(shades[int(v / top * (len(shades) - 1))] for v in row))
    return "\n".join(lines)


def fig4(result: MissionResult, days: tuple[int, ...] | None = None) -> dict[str, dict[int, float]]:
    """Figure 4: per-astronaut daily walking fractions (paper: days 2-8)."""
    series = daily_walking_fraction(result.sensing)
    if days is not None:
        filtered = {
            astro: {d: v for d, v in per_day.items() if d in days}
            for astro, per_day in series.items()
        }
        series = CoveredDict(filtered, coverage=series.coverage)
    return series


def format_series(series: dict[str, dict[int, float]]) -> str:
    days = sorted({d for per_day in series.values() for d in per_day})
    header = "id  " + " ".join(f"d{d:<5}" for d in days)
    lines = [header]
    for astro in sorted(series):
        cells = " ".join(
            f"{series[astro][d]:.3f}" if d in series[astro] else "  --  " for d in days
        )
        lines.append(f"{astro:<3} {cells}")
    lines.extend(_coverage_note(getattr(series, "coverage", 1.0)))
    return "\n".join(lines)


def fig5(result: MissionResult, day: int | None = None, bin_s: float = 300.0) -> DayTimeline:
    """Figure 5: the death-day timeline (speech fraction + room per bin)."""
    if day is None:
        events = result.cfg.events
        day = events.death_day if events is not None else result.sensing.days[0]
    return day_timeline(result.sensing, day, bin_s=bin_s)


def format_fig5(result: MissionResult, timeline: DayTimeline) -> str:
    plan = result.truth.plan
    lines = [f"day {timeline.day} timeline ({int(timeline.bin_s)}s bins)"]
    times = timeline.bin_times()
    for track in timeline.tracks:
        lines.append(f"astronaut {track.astro_id}:")
        chunks = []
        for t, frac, room in zip(times, track.speech_fraction, track.dominant_room):
            if frac >= 0.25 or room >= 0:
                chunks.append(f"{hhmm(t)} {plan.name_of(int(room))[:7]:<7} {frac:.2f}")
        lines.append("  " + " | ".join(chunks[:12]) + (" ..." if len(chunks) > 12 else ""))
    lines.extend(_coverage_note(timeline.coverage))
    return "\n".join(lines)


def fig6(result: MissionResult) -> dict[str, dict[int, float]]:
    """Figure 6: per-astronaut daily fraction of 15 s intervals with speech."""
    return daily_speech_fraction(result.sensing)
