"""Table generators: Table I and the textual Section-V statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.interactions import (
    pair_meeting_seconds,
    private_talk_seconds,
)
from repro.analytics.occupancy import typical_stay_hours
from repro.analytics.reports import DeploymentStats, Table1, deployment_stats, table1
from repro.experiments.mission import MissionResult


def build_table1(result: MissionResult, corrected: bool = True) -> Table1:
    """The paper's Table I from a mission run."""
    return table1(result.sensing, corrected=corrected)


def build_deployment_stats(result: MissionResult) -> DeploymentStats:
    """Section V's deployment statistics."""
    return deployment_stats(result.sensing)


@dataclass
class SectionVClaims:
    """The quantitative in-text claims of Section V."""

    biolab_stay_h: float
    office_stay_h: float
    workshop_stay_h: float
    af_private_h: float
    de_private_h: float
    af_meetings_h: float
    de_meetings_h: float

    def __str__(self) -> str:
        return (
            f"typical stays: biolab {self.biolab_stay_h:.1f} h, "
            f"office {self.office_stay_h:.1f} h, workshop {self.workshop_stay_h:.1f} h\n"
            f"private talk: A-F {self.af_private_h:.1f} h vs D-E {self.de_private_h:.1f} h "
            f"(diff {self.af_private_h - self.de_private_h:+.1f} h)\n"
            f"all meetings: A-F {self.af_meetings_h:.1f} h vs D-E {self.de_meetings_h:.1f} h "
            f"(diff {self.af_meetings_h - self.de_meetings_h:+.1f} h)"
        )


def build_section5_claims(result: MissionResult) -> SectionVClaims:
    """Reproduce the in-text pairwise and stay-duration claims."""
    sensing = result.sensing
    private = private_talk_seconds(sensing)
    meetings = pair_meeting_seconds(sensing)

    def hours(mapping: dict, pair: tuple[str, str]) -> float:
        return mapping.get(tuple(sorted(pair)), 0.0) / 3600.0

    return SectionVClaims(
        biolab_stay_h=typical_stay_hours(sensing, "biolab"),
        office_stay_h=typical_stay_hours(sensing, "office"),
        workshop_stay_h=typical_stay_hours(sensing, "workshop"),
        af_private_h=hours(private, ("A", "F")),
        de_private_h=hours(private, ("D", "E")),
        af_meetings_h=hours(meetings, ("A", "F")),
        de_meetings_h=hours(meetings, ("D", "E")),
    )
