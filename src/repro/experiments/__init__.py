"""Experiment drivers: full-mission runs and figure/table generators.

``run_mission`` executes the whole stack — crew simulation, badge/radio
sensing, localization — and returns the analysis-ready dataset; the
figure and table modules regenerate every data artifact of the paper's
evaluation from that dataset.
"""

from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6
from repro.experiments.mission import MissionResult, run_mission
from repro.experiments.tables import build_table1

__all__ = [
    "MissionResult",
    "build_table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "run_mission",
]
