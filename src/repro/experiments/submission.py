"""Mission submission serialization for the fleet service.

A submission is a :class:`~repro.core.config.MissionConfig` (plus the
ingest-gate mode) that must survive a trip through the durable mission
registry: serialized to plain JSON at submit time, stored in SQLite, and
reconstructed — field-for-field identical — by whichever service worker
eventually leases the job, possibly in a different process after a
restart.  ``config_from_dict(config_to_dict(cfg)) == cfg`` is the
contract, and in particular the round trip preserves the config's
content-addressed sensing fingerprint, which is what the registry
dedups on.

The format is versioned (:data:`SUBMISSION_SCHEMA`): a registry written
by a newer pipeline is rejected loudly instead of silently
misinterpreted.  Unknown fields are errors for the same reason.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.errors import ConfigError
from repro.exec import hashing
from repro.faults.plan import FaultEvent, FaultPlan

#: Version tag of the submission wire format.  Bump when MissionConfig
#: grows fields older services cannot reconstruct.
SUBMISSION_SCHEMA = 1

#: Ingest-gate modes a submission may carry (see ``run_mission``).
QUALITY_MODES = ("auto", "off", "gate", "strict")


def _dataclass_to_dict(value: Any) -> dict:
    """Shallow field dict of a flat (no nested dataclass) dataclass."""
    return {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}


def _build(cls, data: dict, what: str):
    """Construct ``cls`` from a field dict, rejecting unknown fields."""
    if not isinstance(data, dict):
        raise ConfigError(f"{what} must be an object, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(f"{what} has unknown field(s): {', '.join(unknown)}")
    return cls(**data)


def config_to_dict(cfg: MissionConfig) -> dict:
    """Serialize a mission config to plain, JSON-encodable data."""
    out = _dataclass_to_dict(cfg)
    out["events"] = (
        _dataclass_to_dict(cfg.events) if cfg.events is not None else None
    )
    out["fault_plan"] = (
        {"events": [_dataclass_to_dict(e) for e in cfg.fault_plan.events]}
        if cfg.fault_plan is not None else None
    )
    return {"schema": SUBMISSION_SCHEMA, "mission": out}


def config_from_dict(data: dict) -> MissionConfig:
    """Reconstruct the exact mission config a submission serialized.

    Raises :class:`~repro.core.errors.ConfigError` on a foreign schema,
    unknown fields, or any value the config itself rejects — a malformed
    submission must fail at the registry boundary, not inside a worker.
    """
    if not isinstance(data, dict) or "mission" not in data:
        raise ConfigError("submission payload must be a {schema, mission} object")
    schema = data.get("schema")
    if schema != SUBMISSION_SCHEMA:
        raise ConfigError(
            f"submission schema {schema!r} is not the supported "
            f"{SUBMISSION_SCHEMA} (mixed service/client versions?)")
    mission = dict(data["mission"])
    events = mission.pop("events", None)
    fault_plan = mission.pop("fault_plan", None)
    kwargs: dict[str, Any] = dict(mission)
    kwargs["events"] = (
        _build(ScriptedEventsConfig, events, "events") if events is not None else None
    )
    if fault_plan is not None:
        if not isinstance(fault_plan, dict) or "events" not in fault_plan:
            raise ConfigError("fault_plan must be an {events: [...]} object")
        kwargs["fault_plan"] = FaultPlan.build(*(
            _build(FaultEvent, e, "fault event") for e in fault_plan["events"]
        ))
    else:
        kwargs["fault_plan"] = None
    return _build(MissionConfig, kwargs, "mission config")


def submission_fingerprint(cfg: MissionConfig, quality: str = "auto") -> str:
    """Content-addressed identity of one submission.

    Built on the existing sensing fingerprint (the full config, fault
    plan included), extended with the ingest-gate mode — the only knob
    outside ``MissionConfig`` that changes a mission's results.  Two
    submissions with equal fingerprints are the *same work* and the
    registry executes them exactly once.
    """
    if quality not in QUALITY_MODES:
        raise ConfigError(
            f"quality must be one of {'/'.join(QUALITY_MODES)}, got {quality!r}")
    return hashing.fingerprint(
        {"sensing": hashing.sensing_fingerprint(cfg), "quality": quality},
        stage="submission",
    )
