"""Localization accuracy evaluation.

The one analysis that legitimately consults ground truth: how well does
the pipeline recover where each badge was?  The paper reports perfect
room detection; this module quantifies it, plus the in-room position
error the heatmaps inherit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.dataset import MissionSensing


@dataclass
class AccuracyReport:
    """Mission-wide localization quality."""

    room_accuracy: float
    room_accuracy_by_room: dict[str, float]
    known_fraction: float
    n_frames: int

    def __str__(self) -> str:
        per_room = ", ".join(
            f"{room} {acc:.3f}" for room, acc in sorted(self.room_accuracy_by_room.items())
        )
        return (
            f"room accuracy {self.room_accuracy:.4f} over {self.n_frames} frames "
            f"(fix rate {self.known_fraction:.3f})\n  per room: {per_room}"
        )


def localization_accuracy(sensing: MissionSensing) -> AccuracyReport:
    """Compare room estimates against ground-truth badge rooms.

    Only summaries that carry the simulator's evaluation field
    (``true_room``) participate; the reference badge is skipped (it
    never moves).
    """
    correct = total = 0
    known = active_total = 0
    by_room_correct: dict[int, int] = {}
    by_room_total: dict[int, int] = {}
    ref = sensing.assignment.reference_id
    for (badge_id, __), summary in sensing.summaries.items():
        if badge_id == ref or summary.true_room is None:
            continue
        active = summary.active
        fixed = active & (summary.room >= 0)
        known += int(fixed.sum())
        active_total += int(active.sum())
        hit = fixed & (summary.room == summary.true_room)
        correct += int(hit.sum())
        total += int(fixed.sum())
        for room_idx in np.unique(summary.true_room[fixed]):
            mask = fixed & (summary.true_room == room_idx)
            by_room_correct[int(room_idx)] = by_room_correct.get(int(room_idx), 0) + int(
                (mask & hit).sum()
            )
            by_room_total[int(room_idx)] = by_room_total.get(int(room_idx), 0) + int(
                mask.sum()
            )
    by_room = {
        sensing.plan.name_of(r): by_room_correct[r] / by_room_total[r]
        for r in by_room_total
        if by_room_total[r] > 0 and r >= 0
    }
    return AccuracyReport(
        room_accuracy=correct / total if total else 0.0,
        room_accuracy_by_room=by_room,
        known_fraction=known / active_total if active_total else 0.0,
        n_frames=total,
    )
