"""Full-mission experiment driver.

Runs the complete stack day by day: ground-truth crew simulation, badge
and radio sensing, localization, and summary reduction.  The large BLE
scan matrices are consumed and dropped per badge-day, so a full 14-day
mission stays comfortably in memory.

Execution is delegated to :mod:`repro.exec`: an
:class:`~repro.core.config.ExecutionConfig` selects serial or supervised
process-pool execution of the per-day work (bit-identical either way),
an optional content-addressed cache that persists ground truth and
badge-day summaries between runs, and an optional crash-recovery
checkpoint journal (``checkpoint_dir`` / ``resume=True``) that makes a
killed run resumable without recomputing completed days.  Missions with
*sensing*-level faults always run serially — SD-card capacity faults
couple days through the cumulative write budget (see
:mod:`repro.exec.executor`); bus-level and executor-level faults do not
couple days and keep the parallel path.  Every fall-back to serial
execution is signalled (structured log + ``exec.fallback`` counter),
never silent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.analytics.dataset import MissionSensing
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import SensingModels, make_fleet
from repro.badges.sdcard import SdCardAccountant
from repro.core.config import ExecutionConfig, MissionConfig
from repro.core.rng import mission_sensing_registry
from repro.crew.behavior import simulate_mission
from repro.crew.trace import MissionTruth
from repro.exec.cache import MissionCache
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.executor import (
    DayOutcome,
    ExecutorUnavailable,
    compute_day,
    replay_accounting,
)
from repro.core.errors import ConfigError
from repro.exec.hashing import canonical, truth_compatible
from repro.exec.supervisor import run_days_supervised
from repro.faults.data import apply_data_faults
from repro.faults.report import ReliabilityReport
from repro.faults.scenario import run_support_scenario
from repro.quality.gate import gate_sensing
from repro.quality.report import DataQualityReport
from repro.localization.pipeline import Localizer
from repro.obs import _state as _obs
from repro.obs import enabled as obs_enabled
from repro.obs import export as obs_export
from repro.obs import get_logger
from repro.obs import metrics as _metrics
from repro.obs import span, tracing

log = get_logger("repro.experiments.mission")


def _signal_fallback(reason: str, **fields) -> None:
    """Make a serial fallback visible: structured log + labelled counter.

    Parallelism silently disabling itself looks exactly like a hung
    sweep from the outside; every downgrade is therefore both logged and
    counted (``exec.fallback``, by reason).
    """
    log.warning("parallel-fallback", reason=reason, **fields)
    if _obs.enabled:
        _metrics.counter(
            "exec.fallback", "parallel execution downgraded to serial, by reason"
        ).inc(reason=reason)


@dataclass
class MissionResult:
    """Everything a mission run produces."""

    cfg: MissionConfig
    truth: MissionTruth
    sensing: MissionSensing
    models: SensingModels
    sdcard: SdCardAccountant = field(default_factory=SdCardAccountant)
    #: Telemetry snapshot (:func:`repro.obs.export.to_dict`) taken right
    #: after the run when :mod:`repro.obs` was enabled, else None.
    telemetry: Optional[obs_export.TelemetrySnapshot] = None
    #: Support-system reliability under the configured fault plan
    #: (availability, MTTR, delivery success); None for fault-free runs.
    reliability: Optional[ReliabilityReport] = None
    #: The execution config the run used (workers, cache).
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Per-stage cache hit/miss counts when a cache was active, else None.
    cache_stats: Optional[dict] = None
    #: Data-quality verdicts from the ingest gate (``quality != "off"``
    #: with gating in effect); None when the dataset was never gated.
    quality: Optional[DataQualityReport] = None

    @property
    def assignment(self) -> BadgeAssignment:
        return self.sensing.assignment

    # -- the uniform report surface ------------------------------------
    #
    # Every report-like object exposes the same pair: ``to_dict()`` for
    # plain data, ``to_text()`` for the human-readable rendering —
    # matching ReliabilityReport and TelemetrySnapshot.

    def to_dict(self) -> dict:
        """Plain-data summary of the run (JSON-serializable)."""
        days = self.sensing.days
        return {
            "config": canonical(self.cfg),
            "execution": canonical(self.execution),
            "days": days,
            "badge_days": len(self.sensing.summaries),
            "sdcard_gib": self.sdcard.total_gib(),
            "cache": self.cache_stats,
            "telemetry": self.telemetry.to_dict() if self.telemetry is not None else None,
            "reliability": self.reliability.to_dict() if self.reliability is not None else None,
            "quality": self.quality.to_dict() if self.quality is not None else None,
        }

    def to_text(self) -> str:
        """Human-readable run summary with reliability and telemetry."""
        cfg = self.cfg
        lines = [
            f"mission: {cfg.days} days, seed {cfg.seed}, "
            f"{len(self.sensing.summaries)} badge-days, "
            f"{self.sdcard.total_gib():.1f} GiB recorded",
        ]
        if (self.execution.parallel or self.execution.cache_active
                or self.execution.checkpoint_active):
            stats = self.cache_stats or {}
            cache = "off" if "hits" not in stats else (
                f"{stats['hits']['day']} day hits, "
                f"{stats['misses']['day']} misses"
            )
            lines.append(
                f"execution: {self.execution.worker_count} worker(s), cache {cache}"
            )
            checkpoint = stats.get("checkpoint")
            if checkpoint is not None:
                resumed = checkpoint["resumed_days"]
                lines.append(
                    f"checkpoint: {checkpoint['recorded']} day(s) journaled, "
                    f"{len(resumed)} resumed"
                    + (f" ({', '.join(map(str, resumed))})" if resumed else "")
                    + (f", {checkpoint['quarantined']} quarantined"
                       if checkpoint["quarantined"] else "")
                )
        if self.quality is not None:
            lines.append("")
            lines.append(self.quality.to_text())
        if self.reliability is not None:
            lines.append("")
            lines.append(self.reliability.to_text())
        if self.telemetry is not None:
            lines.append("")
            lines.append(self.telemetry.to_text())
        return "\n".join(lines)


def run_mission(
    cfg: MissionConfig | None = None,
    *,
    truth: MissionTruth | None = None,
    localizer: Localizer | None = None,
    models: SensingModels | None = None,
    execution: ExecutionConfig | None = None,
    quality: str = "auto",
) -> MissionResult:
    """Simulate, sense, and localize a full mission.

    All overrides are keyword-only: the signature grows by adding
    keywords, never by position.

    Args:
        cfg: mission configuration (defaults to the paper's mission).
        truth: reuse a pre-simulated ground truth (must agree with
            ``cfg`` on the truth-stage fields).
        localizer: override the localization pipeline (ablations).
        models: override the sensing models (ablations).
        execution: how to run — worker count, cache, checkpoint journal
            (:class:`~repro.core.config.ExecutionConfig`; defaults to
            serial, uncached, unjournaled).  Never affects results, only
            speed and crash-safety.
        quality: ingest-gate mode — ``"auto"`` gates only when the fault
            plan injects data corruption, ``"gate"`` always gates,
            ``"strict"`` gates and raises on any quarantine, ``"off"``
            never gates (corrupt data flows to analytics unfiltered).

    Returns:
        A :class:`MissionResult` whose ``sensing`` feeds every analysis.
    """
    if quality not in ("auto", "off", "gate", "strict"):
        raise ConfigError(
            f"quality must be one of auto/off/gate/strict, got {quality!r}")
    cfg = cfg if cfg is not None else MissionConfig()
    execution = execution if execution is not None else ExecutionConfig()
    cache = MissionCache(execution.cache_dir) if execution.cache_active else None

    with span("mission", days=cfg.days, seed=cfg.seed,
              workers=execution.worker_count):
        truth = _resolve_truth(cfg, truth, cache)
        rngs = mission_sensing_registry(cfg.seed)
        assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
        default_stack = models is None and localizer is None
        models = models if models is not None else SensingModels.default(cfg, truth.plan)
        localizer = (
            localizer if localizer is not None else Localizer(truth.plan, models.beacons)
        )
        fleet = make_fleet(assignment, rngs)
        sdcard = SdCardAccountant()
        sensing = MissionSensing(cfg=cfg, plan=truth.plan, assignment=assignment)
        plan = cfg.fault_plan
        if plan is not None:
            for badge_id, cap in plan.sdcard_caps().items():
                sdcard.set_capacity(badge_id, cap)

        # Day summaries are cacheable/journalable only for the default
        # sensing stack: custom models/localizers are not part of the
        # artifact keys, so persisting their outcomes would poison later
        # default-stack runs of the same config.
        day_cache = cache if cache is not None and default_stack else None
        # The journal lease is exclusive: two processes resuming the same
        # sensing fingerprint would interleave writes, so the second one
        # gets a clean JournalBusyError here instead.
        journal = (
            CheckpointJournal(execution.checkpoint_dir, cfg, exclusive=True,
                              owner="run_mission")
            if execution.checkpoint_active and default_stack else None
        )
        if execution.checkpoint_active and not default_stack:
            log.warning("checkpoint-disabled",
                        reason="custom models/localizer are not part of the journal key")

        try:
            outcomes: dict[int, DayOutcome] = {}
            if journal is not None and execution.resume:
                outcomes.update(journal.load_completed(cfg.instrumented_days))
            if day_cache is not None:
                for day in cfg.instrumented_days:
                    if day in outcomes:
                        continue
                    hit = day_cache.load_day(cfg, day)
                    if hit is not None:
                        outcomes[day] = hit
            missing = [d for d in cfg.instrumented_days if d not in outcomes]

            def persist(outcome: DayOutcome) -> None:
                # Called the moment a day completes — serially, from the
                # supervisor's harvest, or salvaged out of a broken pool —
                # so a later crash can resume past it.  Worker telemetry is
                # transient and never persisted.
                stored = (
                    dataclasses.replace(outcome, telemetry=None)
                    if outcome.telemetry is not None else outcome
                )
                if journal is not None:
                    journal.record(stored)
                if day_cache is not None:
                    day_cache.store_day(cfg, stored)

            _compute_missing_days(
                cfg, truth, assignment, models, localizer, fleet, rngs, sdcard,
                plan, missing, outcomes, execution, persist,
            )

            for day in cfg.instrumented_days:
                outcome = outcomes[day]
                for badge_id, summary in outcome.summaries.items():
                    sensing.summaries[(badge_id, day)] = summary
                sensing.pairwise[day] = outcome.pairwise
                outcome.telemetry = None  # merged already; don't retain snapshots
        finally:
            if journal is not None:
                journal.close()

        # Data corruption strikes the assembled dataset — after the
        # per-day pipeline (so cached/journaled outcomes stay pristine)
        # and before the quality gate sees it.
        has_data_faults = plan is not None and bool(plan.data_events())
        if has_data_faults:
            sensing = apply_data_faults(sensing, plan, cfg.seed)

        quality_report: DataQualityReport | None = None
        if quality in ("gate", "strict") or (quality == "auto" and has_data_faults):
            sensing, quality_report = gate_sensing(
                sensing, strict=(quality == "strict"))

        reliability = run_support_scenario(cfg, plan) if plan is not None else None

    telemetry = obs_export.to_dict() if obs_enabled() else None
    cache_stats = cache.stats() if cache is not None else None
    if journal is not None:
        cache_stats = dict(cache_stats) if cache_stats is not None else {}
        cache_stats["checkpoint"] = journal.stats()
    return MissionResult(
        cfg=cfg, truth=truth, sensing=sensing, models=models,
        sdcard=sdcard, telemetry=telemetry, reliability=reliability,
        execution=execution, cache_stats=cache_stats, quality=quality_report,
    )


def _resolve_truth(
    cfg: MissionConfig,
    truth: MissionTruth | None,
    cache: MissionCache | None,
) -> MissionTruth:
    """Supplied truth, cached truth, or a fresh simulation (then cached)."""
    if truth is not None:
        return truth
    if cache is not None:
        cached = cache.load_truth(cfg)
        if cached is not None:
            return cached
    truth = simulate_mission(cfg)
    if cache is not None:
        cache.store_truth(cfg, truth)
    return truth


def _compute_missing_days(
    cfg: MissionConfig,
    truth: MissionTruth,
    assignment: BadgeAssignment,
    models: SensingModels,
    localizer: Localizer,
    fleet,
    rngs,
    sdcard: SdCardAccountant,
    plan,
    missing: list[int],
    outcomes: dict[int, DayOutcome],
    execution: ExecutionConfig,
    persist,
) -> None:
    """Fill ``outcomes`` for ``missing`` days, persisting each as it lands.

    Chooses the supervised parallel path when the execution config asks
    for it and the mission qualifies (no *sensing* faults — SD-card
    budgets couple days — and a picklable stack); otherwise walks days
    serially.  A supervisor give-up (too many pool failures, a day past
    its retry budget) degrades to serial for the *remaining* days only:
    everything the pool completed was already harvested and persisted.
    Either way the mission-level ``sdcard`` accountant ends up in the
    exact state a purely serial run would produce.
    """
    # Sensing-level faults (battery cuts, SD-card caps, beacon outages)
    # are what couples days; bus- and executor-level faults never touch
    # compute_day, so they keep the parallel path.
    sensing_plan = plan if plan is not None and plan.sensing_events() else None
    # A supplied truth whose truth-stage fields disagree with cfg would
    # make workers (which re-derive everything from cfg + truth) and the
    # cache key inconsistent; such truths only ever take the serial path.
    exotic_truth = not truth_compatible(cfg, truth.cfg)
    # "auto" weighs the pending work against the pool's spin-up cost:
    # a mission small enough to finish in less time than fork + context
    # pickling runs serially (the small-box 0.92x regression).
    pending_units = len(missing) * cfg.frames_per_day * (cfg.crew_size + 1)
    small_auto = execution.auto_serial(pending_units)

    if (execution.parallel and missing and not small_auto
            and sensing_plan is None and not exotic_truth):
        mission_span = tracing.current_span()
        parent_id = mission_span.span_id if mission_span is not None else None

        def harvest(outcome: DayOutcome) -> None:
            if outcome.telemetry is not None:
                obs_export.merge_snapshot(outcome.telemetry,
                                          parent_span_id=parent_id)
                outcome.telemetry = None
            persist(outcome)
            outcomes[outcome.day] = outcome

        crash_days = plan.worker_crash_days() if plan is not None else frozenset()
        try:
            run_days_supervised(
                cfg, truth, models, localizer, missing, execution,
                on_outcome=harvest, crash_days=crash_days,
            )
        except ExecutorUnavailable as exc:
            # Salvaged days are already in ``outcomes``; only the rest
            # falls back to serial below.
            _signal_fallback("executor-unavailable", detail=str(exc),
                            workers=execution.worker_count,
                            salvaged=len([d for d in missing if d in outcomes]))
        else:
            # Rebuild the mission-level accountant exactly as a serial
            # run would: every day replayed in order.
            for day in cfg.instrumented_days:
                replay_accounting(outcomes[day], sdcard)
            return
    elif execution.parallel and missing:
        if small_auto:
            reason = "auto-small-mission"
        elif sensing_plan is not None:
            reason = "sensing-fault-plan"
        else:
            reason = "exotic-truth"
        _signal_fallback(
            reason, workers=execution.worker_count, units=pending_units,
        )

    # Serial path: restored/cached/salvaged days replay their accounting
    # in day order so a later (possibly faulted) day sees the exact
    # cumulative totals.
    for day in cfg.instrumented_days:
        if day in outcomes:
            replay_accounting(outcomes[day], sdcard)
            continue
        outcome = compute_day(
            cfg, truth, day, assignment, models, localizer, fleet, rngs,
            sdcard, sensing_plan,
        )
        persist(outcome)
        outcomes[day] = outcome
