"""Full-mission experiment driver.

Runs the complete stack day by day: ground-truth crew simulation, badge
and radio sensing, localization, and summary reduction.  The large BLE
scan matrices are consumed and dropped per badge-day, so a full 14-day
mission stays comfortably in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import BadgeDayObservations, SensingModels, make_fleet, sense_day
from repro.badges.sdcard import SdCardAccountant
from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry
from repro.crew.behavior import simulate_mission
from repro.crew.trace import MissionTruth
from repro.faults.plan import FaultPlan
from repro.faults.report import ReliabilityReport
from repro.faults.scenario import run_support_scenario
from repro.localization.pipeline import Localizer
from repro.obs import enabled as obs_enabled
from repro.obs import export as obs_export
from repro.obs import span


@dataclass
class MissionResult:
    """Everything a mission run produces."""

    cfg: MissionConfig
    truth: MissionTruth
    sensing: MissionSensing
    models: SensingModels
    sdcard: SdCardAccountant = field(default_factory=SdCardAccountant)
    #: Telemetry snapshot (:func:`repro.obs.export.to_dict`) taken right
    #: after the run when :mod:`repro.obs` was enabled, else None.
    telemetry: dict | None = None
    #: Support-system reliability under the configured fault plan
    #: (availability, MTTR, delivery success); None for fault-free runs.
    reliability: ReliabilityReport | None = None

    @property
    def assignment(self) -> BadgeAssignment:
        return self.sensing.assignment

    def telemetry_report(self) -> str:
        """Human-readable per-stage breakdown of this run's telemetry."""
        if self.telemetry is None:
            return "(telemetry was disabled for this run)"
        return obs_export.to_text_report(self.telemetry)

    def reliability_report(self) -> str:
        """Human-readable reliability summary of the faulted run."""
        if self.reliability is None:
            return "(no fault plan was configured for this run)"
        return self.reliability.to_text()


def run_mission(
    cfg: MissionConfig | None = None,
    truth: MissionTruth | None = None,
    localizer: Localizer | None = None,
    models: SensingModels | None = None,
) -> MissionResult:
    """Simulate, sense, and localize a full mission.

    Args:
        cfg: mission configuration (defaults to the paper's mission).
        truth: reuse a pre-simulated ground truth (must match ``cfg``).
        localizer: override the localization pipeline (ablations).
        models: override the sensing models (ablations).

    Returns:
        A :class:`MissionResult` whose ``sensing`` feeds every analysis.
    """
    cfg = cfg if cfg is not None else MissionConfig()
    with span("mission", days=cfg.days, seed=cfg.seed):
        truth = truth if truth is not None else simulate_mission(cfg)
        rngs = RngRegistry(cfg.seed).spawn("sensing")
        assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
        models = models if models is not None else SensingModels.default(cfg, truth.plan)
        localizer = (
            localizer if localizer is not None else Localizer(truth.plan, models.beacons)
        )
        fleet = make_fleet(assignment, rngs)
        sdcard = SdCardAccountant()
        sensing = MissionSensing(cfg=cfg, plan=truth.plan, assignment=assignment)
        plan = cfg.fault_plan
        if plan is not None:
            for badge_id, cap in plan.sdcard_caps().items():
                sdcard.set_capacity(badge_id, cap)

        for day in cfg.instrumented_days:
            observations, pairwise = sense_day(
                truth, day, assignment, models, fleet, rngs, sdcard
            )
            dead = (
                plan.dead_beacons_on_day(day, cfg.daytime_start_s, cfg.daytime_s)
                if plan is not None else frozenset()
            )
            for badge_id, obs in observations.items():
                if plan is not None:
                    _degrade_day(cfg, plan, obs, sdcard)
                loc = localizer.localize_day(obs.ble_rssi, obs.active, dead_beacons=dead)
                obs.drop_ble()
                sensing.summaries[(badge_id, day)] = BadgeDaySummary.from_observations(obs, loc)
            sensing.pairwise[day] = pairwise

        reliability = run_support_scenario(cfg, plan) if plan is not None else None

    telemetry = obs_export.to_dict() if obs_enabled() else None
    return MissionResult(cfg=cfg, truth=truth, sensing=sensing, models=models,
                         sdcard=sdcard, telemetry=telemetry, reliability=reliability)


def _degrade_day(
    cfg: MissionConfig,
    plan: FaultPlan,
    obs: BadgeDayObservations,
    sdcard: SdCardAccountant,
) -> None:
    """Apply sensing-level faults to one badge-day, in place.

    A battery depletion stops recording from its in-day frame onward; an
    exhausted SD card stops recording once the cumulative write budget is
    spent.  The accountant entry for the day is re-recorded so storage
    totals reflect the truncated recording.
    """
    cut = plan.battery_cut_frame(
        obs.badge_id, obs.day, cfg.daytime_start_s, len(obs.active), cfg.frame_dt
    )
    changed = False
    if cut is not None:
        obs.active[cut:] = False
        obs.worn[cut:] = False
        changed = True
    # Card budget available for *this* day: capacity minus what the badge
    # had written on the preceding days.
    written_before = sdcard.badge_total(obs.badge_id) - obs.bytes_recorded
    budget = sdcard.capacity_for(obs.badge_id) - written_before
    budget_frames = int(max(0.0, budget) / (sdcard.total_rate_bps * cfg.frame_dt))
    active_idx = np.flatnonzero(obs.active)
    if len(active_idx) > budget_frames:
        obs.active[active_idx[budget_frames:]] = False
        changed = True
    if changed:
        obs.bytes_recorded = sdcard.record_day(
            obs.badge_id, obs.day, float(obs.active.sum()) * cfg.frame_dt
        )
