"""Full-mission experiment driver.

Runs the complete stack day by day: ground-truth crew simulation, badge
and radio sensing, localization, and summary reduction.  The large BLE
scan matrices are consumed and dropped per badge-day, so a full 14-day
mission stays comfortably in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import SensingModels, make_fleet, sense_day
from repro.badges.sdcard import SdCardAccountant
from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry
from repro.crew.behavior import simulate_mission
from repro.crew.trace import MissionTruth
from repro.localization.pipeline import Localizer
from repro.obs import enabled as obs_enabled
from repro.obs import export as obs_export
from repro.obs import span


@dataclass
class MissionResult:
    """Everything a mission run produces."""

    cfg: MissionConfig
    truth: MissionTruth
    sensing: MissionSensing
    models: SensingModels
    sdcard: SdCardAccountant = field(default_factory=SdCardAccountant)
    #: Telemetry snapshot (:func:`repro.obs.export.to_dict`) taken right
    #: after the run when :mod:`repro.obs` was enabled, else None.
    telemetry: dict | None = None

    @property
    def assignment(self) -> BadgeAssignment:
        return self.sensing.assignment

    def telemetry_report(self) -> str:
        """Human-readable per-stage breakdown of this run's telemetry."""
        if self.telemetry is None:
            return "(telemetry was disabled for this run)"
        return obs_export.to_text_report(self.telemetry)


def run_mission(
    cfg: MissionConfig | None = None,
    truth: MissionTruth | None = None,
    localizer: Localizer | None = None,
    models: SensingModels | None = None,
) -> MissionResult:
    """Simulate, sense, and localize a full mission.

    Args:
        cfg: mission configuration (defaults to the paper's mission).
        truth: reuse a pre-simulated ground truth (must match ``cfg``).
        localizer: override the localization pipeline (ablations).
        models: override the sensing models (ablations).

    Returns:
        A :class:`MissionResult` whose ``sensing`` feeds every analysis.
    """
    cfg = cfg if cfg is not None else MissionConfig()
    with span("mission", days=cfg.days, seed=cfg.seed):
        truth = truth if truth is not None else simulate_mission(cfg)
        rngs = RngRegistry(cfg.seed).spawn("sensing")
        assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
        models = models if models is not None else SensingModels.default(cfg, truth.plan)
        localizer = (
            localizer if localizer is not None else Localizer(truth.plan, models.beacons)
        )
        fleet = make_fleet(assignment, rngs)
        sdcard = SdCardAccountant()
        sensing = MissionSensing(cfg=cfg, plan=truth.plan, assignment=assignment)

        for day in cfg.instrumented_days:
            observations, pairwise = sense_day(
                truth, day, assignment, models, fleet, rngs, sdcard
            )
            for badge_id, obs in observations.items():
                loc = localizer.localize_day(obs.ble_rssi, obs.active)
                obs.drop_ble()
                sensing.summaries[(badge_id, day)] = BadgeDaySummary.from_observations(obs, loc)
            sensing.pairwise[day] = pairwise

    telemetry = obs_export.to_dict() if obs_enabled() else None
    return MissionResult(cfg=cfg, truth=truth, sensing=sensing, models=models,
                         sdcard=sdcard, telemetry=telemetry)
