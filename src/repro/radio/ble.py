"""BLE beacon scanning as seen by a badge.

Each beacon broadcasts ~3 advertisements per second; a badge's scanner
aggregates the advertisements it catches into one RSSI observation per
frame per beacon.  Misses happen (scanner duty cycling, collisions) and
weak signals fall below the receiver sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.beacons import Beacon
from repro.habitat.floorplan import FloorPlan
from repro.radio.propagation import BLE_2G4, PropagationModel


@dataclass(frozen=True)
class BleScanModel:
    """Per-frame BLE scan synthesis.

    Attributes:
        propagation: the 2.4 GHz band model.
        sensitivity_dbm: RSSI below this is never received.
        detection_prob: probability that at least one advertisement of an
            in-range beacon is caught in a frame.
    """

    propagation: PropagationModel = BLE_2G4
    sensitivity_dbm: float = -95.0
    detection_prob: float = 0.93

    def __post_init__(self) -> None:
        if not 0.0 < self.detection_prob <= 1.0:
            raise ConfigError("detection_prob must be in (0, 1]")

    def scan(
        self,
        plan: FloorPlan,
        beacons: list[Beacon],
        badge_xy: np.ndarray,
        badge_room: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Synthesize one day of scans for one badge.

        Args:
            plan: floor plan.
            beacons: deployed beacons.
            badge_xy: ``(frames, 2)`` badge positions (NaN when the badge
                is outside the habitat).
            badge_room: ``(frames,)`` badge room indices.
            active: ``(frames,)`` mask of frames the badge is recording.
            rng: random stream.

        Returns:
            ``(frames, n_beacons)`` float32 RSSI matrix; NaN = not heard.
        """
        n = badge_xy.shape[0]
        out = np.full((n, len(beacons)), np.nan, dtype=np.float32)
        usable = active & ~np.isnan(badge_xy).any(axis=1)
        if not usable.any():
            return out
        idx = np.flatnonzero(usable)
        xy = badge_xy[idx]
        rooms = badge_room[idx]
        for k, beacon in enumerate(beacons):
            rssi = self.propagation.received_dbm(
                plan, beacon.tx_power_dbm, beacon.position, int(beacon.room),
                xy, rooms, rng,
            )
            heard = rssi >= self.sensitivity_dbm
            if self.detection_prob < 1.0:
                heard &= rng.random(rssi.shape) < self.detection_prob
            col = np.full(idx.shape, np.nan, dtype=np.float32)
            col[heard] = rssi[heard].astype(np.float32)
            out[idx, k] = col
        return out
