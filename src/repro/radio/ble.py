"""BLE beacon scanning as seen by a badge.

Each beacon broadcasts ~3 advertisements per second; a badge's scanner
aggregates the advertisements it catches into one RSSI observation per
frame per beacon.  Misses happen (scanner duty cycling, collisions) and
weak signals fall below the receiver sensitivity.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.beacons import Beacon
from repro.habitat.floorplan import FloorPlan
from repro.radio.propagation import BLE_2G4, PropagationModel


@dataclass(frozen=True)
class BleScanModel:
    """Per-frame BLE scan synthesis.

    Attributes:
        propagation: the 2.4 GHz band model.
        sensitivity_dbm: RSSI below this is never received.
        detection_prob: probability that at least one advertisement of an
            in-range beacon is caught in a frame.
    """

    propagation: PropagationModel = BLE_2G4
    sensitivity_dbm: float = -95.0
    detection_prob: float = 0.93

    def __post_init__(self) -> None:
        if not 0.0 < self.detection_prob <= 1.0:
            raise ConfigError("detection_prob must be in (0, 1]")

    def scan(
        self,
        plan: FloorPlan,
        beacons: list[Beacon],
        badge_xy: np.ndarray,
        badge_room: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Synthesize one day of scans for one badge.

        Deprecated thin wrapper (batch of 1) around :meth:`scan_fleet`;
        prefer the fleet call when synthesizing several badges.

        Args:
            plan: floor plan.
            beacons: deployed beacons.
            badge_xy: ``(frames, 2)`` badge positions (NaN when the badge
                is outside the habitat).
            badge_room: ``(frames,)`` badge room indices.
            active: ``(frames,)`` mask of frames the badge is recording.
            rng: random stream.

        Returns:
            ``(frames, n_beacons)`` float32 RSSI matrix; NaN = not heard.
        """
        warnings.warn(
            "BleScanModel.scan is deprecated; use scan_fleet",
            DeprecationWarning, stacklevel=2,
        )
        return self.scan_fleet(
            plan, beacons, badge_xy[None], badge_room[None], active[None], (rng,)
        )[0]

    def scan_fleet(
        self,
        plan: FloorPlan,
        beacons: list[Beacon],
        badge_xy: np.ndarray,
        badge_room: np.ndarray,
        active: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Synthesize one day of scans for a whole badge fleet.

        Per badge the RNG stream draw order is: all shadowing normals in
        one beacon-major ``(beacons, frames)`` float32 block, then one
        detection uniform per (beacon, frame) cell whose shadowed RSSI
        clears the receiver sensitivity, again in beacon-major order.
        Each badge draws only from its own generator, so a batch of one
        is bit-identical to the same badge's row in a larger batch.

        Badges sit still most of the day, so the deterministic link
        budget is evaluated once per *distinct* ``(position, room)`` and
        gathered back onto the frame grid; only shadowing and detection
        touch every frame.

        Args:
            plan: floor plan.
            beacons: deployed beacons.
            badge_xy: ``(badges, frames, 2)`` badge positions.
            badge_room: ``(badges, frames)`` badge room indices.
            active: ``(badges, frames)`` recording masks.
            rngs: one random stream per badge, aligned with axis 0.

        Returns:
            ``(badges, frames, n_beacons)`` float32 RSSI; NaN = not heard.
        """
        n_badges, n = active.shape
        if len(rngs) != n_badges:
            raise ConfigError("need one RNG stream per badge")
        n_beacons = len(beacons)
        out = np.full((n_badges, n, n_beacons), np.nan, dtype=np.float32)
        tx_power = np.array([b.tx_power_dbm for b in beacons], dtype=np.float64)
        tx_xy = np.array([b.position for b in beacons], dtype=np.float64)
        tx_rooms = np.array([int(b.room) for b in beacons], dtype=np.int64)
        sigma = np.float32(self.propagation.shadow_sigma_db)
        sensitivity = np.float32(self.sensitivity_dbm)
        for b in range(n_badges):
            rng = rngs[b]
            usable = active[b] & ~np.isnan(badge_xy[b]).any(axis=1)
            if not usable.any():
                continue
            idx = np.flatnonzero(usable)
            m = idx.size
            xy = np.ascontiguousarray(badge_xy[b][idx], dtype=np.float32)
            rooms = badge_room[b][idx]
            first, inverse = _unique_positions(xy, rooms)
            det = self.propagation.received_dbm_matrix(
                plan, tx_power, tx_xy, tx_rooms, xy[first], rooms[first]
            ).astype(np.float32)
            vals = np.ascontiguousarray(det.T[:, inverse])  # (beacons, frames)
            if sigma > 0:
                shadow = rng.standard_normal(size=(n_beacons, m), dtype=np.float32)
                np.multiply(shadow, sigma, out=shadow)
                np.add(vals, shadow, out=vals)
            heard = vals >= sensitivity
            flat = np.flatnonzero(heard.ravel())
            if self.detection_prob < 1.0 and flat.size:
                flat = flat[rng.random(flat.size) < self.detection_prob]
            k_idx, f_idx = np.divmod(flat, m)
            out[b][idx[f_idx], k_idx] = vals.ravel()[flat]
        return out


def _unique_positions(
    xy: np.ndarray, rooms: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse a frame grid to its distinct ``(position, room)`` rows.

    Returns ``(first, inverse)`` with ``xy[first]`` the representative
    rows and ``inverse`` mapping every frame back to its representative
    (``xy[first][inverse] == xy`` exactly — bit-level row identity, so
    any function of position and room may be evaluated on the compact
    rows and gathered back without changing a single output bit).
    """
    key = np.ascontiguousarray(xy, dtype=np.float32).view(np.int64).ravel()
    _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    if not np.array_equal(rooms[first][inverse], rooms):
        # A position mapped to two different rooms (caller passed rooms
        # not derived from the positions): fold the room into the key.
        # Structured sort is slower, so this stays the fallback.
        full = np.empty(key.shape[0], dtype=[("xy", np.int64), ("room", np.int64)])
        full["xy"] = key
        full["room"] = rooms
        _, first, inverse = np.unique(full, return_index=True, return_inverse=True)
    return first, inverse
