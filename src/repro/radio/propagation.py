"""Indoor RF propagation: log-distance path loss with wall shielding.

Received power is ``tx_power - PL0 - 10 n log10(d/d0) - walls + X_sigma``
— the standard indoor model.  The habitat's metal walls contribute the
dominant attenuation term (see :class:`repro.habitat.walls.WallModel`),
which is what made the paper's room detection "perfect".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.floorplan import FloorPlan
from repro.habitat.geometry import Point
from repro.habitat.walls import WallModel


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path-loss model for one radio band.

    Attributes:
        path_loss_exponent: environment exponent (2.0 free space,
            ~2.2 indoor line-of-sight).
        reference_loss_db: loss at the reference distance (1 m), folded
            into beacon ``tx_power_dbm`` calibration for BLE.
        shadow_sigma_db: log-normal shadowing standard deviation.
        min_distance_m: distances are clamped below this (near-field).
        walls: wall attenuation model.
    """

    path_loss_exponent: float = 2.2
    reference_loss_db: float = 0.0
    shadow_sigma_db: float = 3.0
    min_distance_m: float = 0.3
    walls: WallModel = WallModel()

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ConfigError("path_loss_exponent must be positive")
        if self.shadow_sigma_db < 0:
            raise ConfigError("shadow_sigma_db must be non-negative")
        if self.min_distance_m <= 0:
            raise ConfigError("min_distance_m must be positive")

    def path_loss_db(self, distances_m: np.ndarray) -> np.ndarray:
        """Distance-dependent loss (no walls, no shadowing)."""
        d = np.maximum(np.asarray(distances_m, dtype=np.float64), self.min_distance_m)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * np.log10(d)

    def received_dbm(
        self,
        plan: FloorPlan,
        tx_power_dbm: float,
        tx_point: Point,
        tx_room: int,
        rx_xy: np.ndarray,
        rx_room: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Received power at many receiver positions from one transmitter.

        ``rng=None`` disables shadowing (deterministic mean model),
        which tests use to check monotonicity properties.
        """
        rx_xy = np.asarray(rx_xy, dtype=np.float64)
        d = np.hypot(rx_xy[:, 0] - tx_point[0], rx_xy[:, 1] - tx_point[1])
        loss = self.path_loss_db(d)
        loss += self.walls.attenuation_db(plan, rx_xy, rx_room, tx_point, tx_room)
        rssi = tx_power_dbm - loss
        if rng is not None and self.shadow_sigma_db > 0:
            rssi = rssi + rng.normal(0.0, self.shadow_sigma_db, size=rssi.shape)
        return rssi


    def received_dbm_matrix(
        self,
        plan: FloorPlan,
        tx_power_dbm: np.ndarray,
        tx_xy: np.ndarray,
        tx_rooms: np.ndarray,
        rx_xy: np.ndarray,
        rx_room: np.ndarray,
    ) -> np.ndarray:
        """Deterministic received power for many receivers x many transmitters.

        The fleet-batched counterpart of :meth:`received_dbm`: one call
        computes the full ``(receivers, transmitters)`` RSSI matrix with
        no shadowing — callers add the shadowing draws themselves so they
        control the per-badge RNG stream order (see
        :meth:`repro.radio.ble.BleScanModel.scan_fleet`).

        The distance term is evaluated as ``5 n log10(d^2)`` (squared
        distances avoid the per-element ``hypot``), which is the same
        quantity as ``10 n log10(d)`` up to floating-point rounding.

        Args:
            plan: floor plan.
            tx_power_dbm: ``(k,)`` transmit powers at 1 m.
            tx_xy: ``(k, 2)`` transmitter positions.
            tx_rooms: ``(k,)`` transmitter room indices.
            rx_xy: ``(n, 2)`` receiver positions.
            rx_room: ``(n,)`` receiver room indices.

        Returns:
            ``(n, k)`` RSSI in dBm (no shadowing noise).
        """
        rx_xy = np.asarray(rx_xy, dtype=np.float64)
        tx_xy = np.asarray(tx_xy, dtype=np.float64)
        dx = rx_xy[:, 0][:, None] - tx_xy[:, 0][None, :]
        dy = rx_xy[:, 1][:, None] - tx_xy[:, 1][None, :]
        d2 = dx * dx
        d2 += dy * dy
        np.maximum(d2, self.min_distance_m * self.min_distance_m, out=d2)
        loss = np.log10(d2)
        loss *= 5.0 * self.path_loss_exponent
        loss += self.reference_loss_db
        loss += self.walls.attenuation_db_matrix(plan, rx_xy, rx_room, tx_rooms)
        return np.asarray(tx_power_dbm, dtype=np.float64)[None, :] - loss


#: Default band models.  868 MHz propagates a little better through the
#: structure (lower exponent) than 2.4 GHz BLE — the paper exploits the
#: "different signal attenuation properties" of the two radios.
BLE_2G4 = PropagationModel(path_loss_exponent=2.2, shadow_sigma_db=3.0)
SUBGHZ_868 = PropagationModel(
    path_loss_exponent=2.0,
    shadow_sigma_db=2.5,
    walls=WallModel(wall_db=25.0, door_leak_db=15.0),
)
