"""868 MHz badge-to-badge proximity sensing.

Badges periodically exchange hello frames on the sub-GHz radio; the
received signal strength serves as a coarse proximity sensor.  Its
longer wavelength penetrates the structure a bit better than BLE, so the
paper used the *pair* of radios with "different signal attenuation
properties" for proximity and localization.  The analytics derive
"company" (time spent accompanied) from same-room sub-GHz contacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.habitat.floorplan import FloorPlan
from repro.radio.propagation import SUBGHZ_868, PropagationModel

#: Badge transmit power on the 868 MHz link, dBm at 1 m.
TX_POWER_DBM = -40.0


@dataclass(frozen=True)
class SubGhzModel:
    """Pairwise sub-GHz RSSI synthesis."""

    propagation: PropagationModel = SUBGHZ_868
    sensitivity_dbm: float = -100.0
    detection_prob: float = 0.9

    def pairwise(
        self,
        plan: FloorPlan,
        badge_xy: dict[int, np.ndarray],
        badge_room: dict[int, np.ndarray],
        active: dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[tuple[int, int], np.ndarray]:
        """Per-frame RSSI for every badge pair.

        Args:
            plan: floor plan.
            badge_xy: per badge, ``(frames, 2)`` positions.
            badge_room: per badge, ``(frames,)`` room indices.
            active: per badge, ``(frames,)`` recording mask.
            rng: random stream.

        Returns:
            ``{(i, j): (frames,) float32}`` with ``i < j``; NaN = no contact.
        """
        out: dict[tuple[int, int], np.ndarray] = {}
        walls = plan.wall_matrix()
        # Each badge appears in many pairs: fold its own usability mask
        # once instead of recomputing it per pair.
        usable_solo = {
            b: active[b] & ~np.isnan(badge_xy[b]).any(axis=1) for b in badge_xy
        }
        for i, j in combinations(sorted(badge_xy), 2):
            xi, xj = badge_xy[i], badge_xy[j]
            n = xi.shape[0]
            rssi = np.full(n, np.nan, dtype=np.float32)
            usable = usable_solo[i] & usable_solo[j]
            idx = np.flatnonzero(usable)
            if idx.size:
                # Treat badge j as a set of transmitters heard by badge i.
                # Pairwise links vary per frame, so compute frame-wise.
                # ``5 n log10(d^2)`` == ``10 n log10(d)`` up to rounding,
                # and squared distances skip the per-frame hypot.
                ddx = xi[idx, 0] - xj[idx, 0]
                ddy = xi[idx, 1] - xj[idx, 1]
                d2 = ddx * ddx
                d2 += ddy * ddy
                min_d = self.propagation.min_distance_m
                np.maximum(d2, min_d * min_d, out=d2)
                loss = np.log10(d2)
                loss *= 5.0 * self.propagation.path_loss_exponent
                loss += self.propagation.reference_loss_db
                ri = badge_room[i][idx]
                rj = badge_room[j][idx]
                inside = (ri >= 0) & (rj >= 0)
                n_walls = np.where(inside, walls[np.maximum(ri, 0), np.maximum(rj, 0)], 3)
                loss = loss + n_walls * self.propagation.walls.wall_db
                values = TX_POWER_DBM - loss + rng.normal(
                    0.0, self.propagation.shadow_sigma_db, size=loss.shape
                )
                heard = (values >= self.sensitivity_dbm) & (
                    rng.random(values.shape) < self.detection_prob
                )
                col = np.full(idx.shape, np.nan, dtype=np.float32)
                col[heard] = values[heard].astype(np.float32)
                rssi[idx] = col
            out[(i, j)] = rssi
        return out
