"""Infrared face-to-face contact detection.

The IR transceiver has "a well-defined directional communication cone"
and fires only when two badges are truly close and facing each other —
the signature of a conversation.  We do not track body orientation
explicitly; instead, contact per frame is sampled with a probability
that falls with distance and requires both wearers to be stationary
(walking people rarely align cones), which reproduces the sensor's
selectivity for genuine face-to-face encounters.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class IrModel:
    """Per-frame IR contact synthesis.

    Attributes:
        max_range_m: beyond this, the IR link never closes.
        close_range_m: within this, contact probability is maximal.
        max_contact_prob: per-frame probability at close range for two
            stationary, co-located wearers (cone alignment duty cycle).
    """

    max_range_m: float = 2.0
    close_range_m: float = 0.8
    max_contact_prob: float = 0.75

    def __post_init__(self) -> None:
        if not 0 < self.close_range_m <= self.max_range_m:
            raise ConfigError("require 0 < close_range_m <= max_range_m")
        if not 0.0 < self.max_contact_prob <= 1.0:
            raise ConfigError("max_contact_prob must be in (0, 1]")

    def contact_prob(self, distance_m: np.ndarray) -> np.ndarray:
        """Per-frame contact probability as a function of distance."""
        d = np.asarray(distance_m, dtype=np.float64)
        ramp = np.clip(
            (self.max_range_m - d) / max(self.max_range_m - self.close_range_m, 1e-9),
            0.0,
            1.0,
        )
        return self.max_contact_prob * ramp

    def pairwise(
        self,
        badge_xy: dict[int, np.ndarray],
        badge_room: dict[int, np.ndarray],
        worn: dict[int, np.ndarray],
        walking: dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[tuple[int, int], np.ndarray]:
        """IR contact masks for every badge pair.

        Contacts require both badges worn, both wearers stationary, the
        same room, and distance within range.

        Returns:
            ``{(i, j): (frames,) bool}`` with ``i < j``.
        """
        out: dict[tuple[int, int], np.ndarray] = {}
        # Each badge appears in many pairs: fold its own feasibility mask
        # once instead of recomputing it per pair.
        ready = {
            b: worn[b] & ~walking[b] & (badge_room[b] >= 0)
            & ~np.isnan(badge_xy[b]).any(axis=1)
            for b in badge_xy
        }
        for i, j in combinations(sorted(badge_xy), 2):
            xi, xj = badge_xy[i], badge_xy[j]
            n = xi.shape[0]
            contact = np.zeros(n, dtype=bool)
            feasible = ready[i] & ready[j] & (badge_room[i] == badge_room[j])
            idx = np.flatnonzero(feasible)
            if idx.size:
                d = np.hypot(xi[idx, 0] - xj[idx, 0], xi[idx, 1] - xj[idx, 1])
                p = self.contact_prob(d)
                contact[idx] = rng.random(idx.shape) < p
            out[(i, j)] = contact
        return out
