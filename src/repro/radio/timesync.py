"""Opportunistic time synchronization against the reference badge.

A permanently-charged reference badge at the charging station "served
for the other badges as a time source, with which they communicated
opportunistically", letting the offline analysis "compute clock shifts
between distinct devices".  Between encounters each badge's crystal
drifts; when a badge comes within radio range of the station it snaps
its offset to the reference.

The simulator produces, per badge-day, the true clock error at every
frame and the list of sync events — and the ablation benchmark shows
what happens to cross-badge meeting detection when sync is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import ClockModel
from repro.core.errors import ConfigError
from repro.habitat.geometry import Point

#: Radio range within which a badge can hear the reference badge's
#: sync beacons (same room as the charging station).
SYNC_RANGE_M = 6.0
#: Minimum spacing between applied corrections (beacons are rate-limited).
MIN_SYNC_SPACING_S = 300.0


@dataclass(frozen=True)
class SyncEvent:
    """One applied clock correction."""

    time_s: float
    error_before_s: float


class TimeSyncSimulator:
    """Evolves a badge clock through a day of opportunistic syncs."""

    def __init__(self, station_xy: Point, sync_range_m: float = SYNC_RANGE_M,
                 min_spacing_s: float = MIN_SYNC_SPACING_S):
        if sync_range_m <= 0 or min_spacing_s <= 0:
            raise ConfigError("sync range and spacing must be positive")
        self.station_xy = station_xy
        self.sync_range_m = float(sync_range_m)
        self.min_spacing_s = float(min_spacing_s)

    def run_day(
        self,
        clock: ClockModel,
        badge_xy: np.ndarray,
        active: np.ndarray,
        t0: float,
        dt: float,
    ) -> tuple[np.ndarray, list[SyncEvent]]:
        """Simulate one day; mutates ``clock`` (offset corrections stick).

        Args:
            clock: the badge's clock (mutated in place).
            badge_xy: ``(frames, 2)`` badge positions.
            active: ``(frames,)`` recording mask.
            t0: seconds-of-day of frame 0.
            dt: frame period.

        Returns:
            ``(errors, events)``: per-frame clock error in seconds, and
            the sync events applied during the day.
        """
        n = badge_xy.shape[0]
        errors = np.empty(n, dtype=np.float64)
        events: list[SyncEvent] = []
        in_range = (
            active
            & ~np.isnan(badge_xy).any(axis=1)
            & (
                np.hypot(
                    badge_xy[:, 0] - self.station_xy[0],
                    badge_xy[:, 1] - self.station_xy[1],
                )
                <= self.sync_range_m
            )
        )
        last_sync = -np.inf
        for i in range(n):
            t = t0 + i * dt
            if in_range[i] and t - last_sync >= self.min_spacing_s:
                before = clock.error_at(t)
                clock.correct(reference_local=t, own_local=clock.local_time(t))
                events.append(SyncEvent(time_s=t, error_before_s=before))
                last_sync = t
            errors[i] = clock.error_at(t)
        return errors, events


def apply_clock_skew(values: np.ndarray, errors_s: np.ndarray, dt: float) -> np.ndarray:
    """Re-index a per-frame series by its clock error (for ablations).

    Frame ``i`` of the returned array holds the sample the *badge*
    timestamped at grid slot ``i`` — i.e., the series is shifted by the
    (rounded) per-frame error.  With sync enabled errors stay below one
    frame and the series is unchanged.
    """
    if values.shape[0] != errors_s.shape[0]:
        raise ConfigError("values and errors must align")
    shifts = np.round(errors_s / dt).astype(int)
    out = np.empty_like(values)
    n = values.shape[0]
    src = np.clip(np.arange(n) - shifts, 0, n - 1)
    out[:] = values[src]
    return out
