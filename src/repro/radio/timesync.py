"""Opportunistic time synchronization against the reference badge.

A permanently-charged reference badge at the charging station "served
for the other badges as a time source, with which they communicated
opportunistically", letting the offline analysis "compute clock shifts
between distinct devices".  Between encounters each badge's crystal
drifts; when a badge comes within radio range of the station it snaps
its offset to the reference.

The simulator produces, per badge-day, the true clock error at every
frame and the list of sync events — and the ablation benchmark shows
what happens to cross-badge meeting detection when sync is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import ClockModel
from repro.core.errors import ConfigError
from repro.habitat.geometry import Point

#: Radio range within which a badge can hear the reference badge's
#: sync beacons (same room as the charging station).
SYNC_RANGE_M = 6.0
#: Minimum spacing between applied corrections (beacons are rate-limited).
MIN_SYNC_SPACING_S = 300.0


@dataclass(frozen=True)
class SyncEvent:
    """One applied clock correction."""

    time_s: float
    error_before_s: float


class TimeSyncSimulator:
    """Evolves a badge clock through a day of opportunistic syncs."""

    def __init__(self, station_xy: Point, sync_range_m: float = SYNC_RANGE_M,
                 min_spacing_s: float = MIN_SYNC_SPACING_S):
        if sync_range_m <= 0 or min_spacing_s <= 0:
            raise ConfigError("sync range and spacing must be positive")
        self.station_xy = station_xy
        self.sync_range_m = float(sync_range_m)
        self.min_spacing_s = float(min_spacing_s)

    def run_day(
        self,
        clock: ClockModel,
        badge_xy: np.ndarray,
        active: np.ndarray,
        t0: float,
        dt: float,
    ) -> tuple[np.ndarray, list[SyncEvent]]:
        """Simulate one day; mutates ``clock`` (offset corrections stick).

        Args:
            clock: the badge's clock (mutated in place).
            badge_xy: ``(frames, 2)`` badge positions.
            active: ``(frames,)`` recording mask.
            t0: seconds-of-day of frame 0.
            dt: frame period.

        Returns:
            ``(errors, events)``: per-frame clock error in seconds, and
            the sync events applied during the day.
        """
        n = badge_xy.shape[0]
        errors = np.empty(n, dtype=np.float64)
        events: list[SyncEvent] = []
        t = t0 + np.arange(n) * dt
        in_range = (
            active
            & ~np.isnan(badge_xy).any(axis=1)
            & (
                np.hypot(
                    badge_xy[:, 0] - self.station_xy[0],
                    badge_xy[:, 1] - self.station_xy[1],
                )
                <= self.sync_range_m
            )
        )
        # Event-driven walk: between syncs the clock parameters are
        # constant, so whole segments evaluate vectorized; only the sync
        # frames themselves need the sequential offset update.  Same
        # frame-by-frame semantics (and bit-identical output) as the
        # original per-frame loop.
        candidates = np.flatnonzero(in_range)
        t_cand = t[candidates]
        last_sync = -np.inf
        seg_start = 0
        pos = 0
        while pos < candidates.size:
            due = np.flatnonzero(t_cand[pos:] - last_sync >= self.min_spacing_s)
            if due.size == 0:
                break
            pos += int(due[0])
            i = int(candidates[pos])
            ti = float(t_cand[pos])
            self._fill_errors(errors, t, seg_start, i, clock)
            before = clock.error_at(ti)
            clock.correct(reference_local=ti, own_local=clock.local_time(ti))
            events.append(SyncEvent(time_s=ti, error_before_s=before))
            last_sync = ti
            seg_start = i
            pos += 1
        self._fill_errors(errors, t, seg_start, n, clock)
        return errors, events

    @staticmethod
    def _fill_errors(
        errors: np.ndarray, t: np.ndarray, start: int, stop: int, clock: ClockModel
    ) -> None:
        """Vectorized ``clock.error_at`` over ``t[start:stop]``."""
        if start >= stop:
            return
        seg = t[start:stop]
        errors[start:stop] = (
            clock.offset_s + seg * (1.0 + clock.drift_ppm * 1e-6) - seg
        )


def apply_clock_skew(values: np.ndarray, errors_s: np.ndarray, dt: float) -> np.ndarray:
    """Re-index a per-frame series by its clock error (for ablations).

    Frame ``i`` of the returned array holds the sample the *badge*
    timestamped at grid slot ``i`` — i.e., the series is shifted by the
    (rounded) per-frame error.  With sync enabled errors stay below one
    frame and the series is unchanged.
    """
    if values.shape[0] != errors_s.shape[0]:
        raise ConfigError("values and errors must align")
    shifts = np.round(errors_s / dt).astype(int)
    out = np.empty_like(values)
    n = values.shape[0]
    src = np.clip(np.arange(n) - shifts, 0, n - 1)
    out[:] = values[src]
    return out
