"""Radio substrate: RF propagation and the badges' three wireless links.

The badge carries an 868 MHz radio, a 2.4 GHz BLE radio, and an infrared
transceiver; the first two act as proximity sensors with different
attenuation properties, the third detects true face-to-face encounters.
This package synthesizes what those links observe, plus the clock-drift
and opportunistic time-sync behaviour of the fleet.
"""

from repro.radio.ble import BleScanModel
from repro.radio.infrared import IrModel
from repro.radio.propagation import PropagationModel
from repro.radio.subghz import SubGhzModel
from repro.radio.timesync import SyncEvent, TimeSyncSimulator

__all__ = [
    "BleScanModel",
    "IrModel",
    "PropagationModel",
    "SubGhzModel",
    "SyncEvent",
    "TimeSyncSimulator",
]
