"""Shared mutable state of the telemetry layer.

One tiny module so every hot path pays a single attribute read
(``_state.enabled``) to find out telemetry is off.  Everything heavier
(registries, collectors, the sim-time clock) hangs off this module and
is only touched when telemetry is on.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Master switch.  All instrumentation call sites check this first and
#: fall through in a handful of nanoseconds when it is False.
enabled: bool = False

#: Optional source of simulation time (seconds).  When set, spans and
#: log records carry sim-time alongside wall-clock time.
sim_clock: Optional[Callable[[], float]] = None


def sim_now() -> Optional[float]:
    """Current simulation time, or ``None`` if no clock is registered."""
    return sim_clock() if sim_clock is not None else None
