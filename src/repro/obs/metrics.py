"""Process-global metrics registry: counters, gauges, histograms.

All three instrument types share the same shape: a *name* identifies the
metric, and each observation may carry **labels** (keyword arguments)
that split the metric into series — e.g. ``bus.dropped`` by ``kind`` and
``reason``.  The registry is process-global (mirroring how the badge
firmware would expose one metrics endpoint per device) and
test-resettable via :func:`reset`.

Every mutation checks the telemetry master switch first, so an
instrumented call site costs one attribute read when telemetry is off.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Optional

from repro.obs import _state

#: A label set is stored as a sorted tuple of ``(key, value)`` pairs so
#: it is hashable and order-insensitive.
LabelKey = tuple


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count, split by labels."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not _state.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count for one label set (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._series.values())

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Gauge:
    """Last-written value, split by labels (queue depths, battery %)."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not _state.enabled:
            return
        self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        if not _state.enabled:
            return
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class _HistogramSeries:
    """Raw observations for one label set (reservoir-capped)."""

    __slots__ = ("count", "sum", "min", "max", "values")

    #: Keep at most this many raw values per series; beyond it we keep
    #: count/sum/min/max exact and percentiles approximate (computed over
    #: the retained prefix), which is plenty for a report.
    CAP = 10_000

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.values) < self.CAP:
            self.values.append(value)


class Histogram:
    """Distribution of observations with percentile queries."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        if not _state.enabled:
            return
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.observe(float(value))

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def percentile(self, q: float, **labels: Any) -> float:
        """q-th percentile (q in [0, 100]) by linear interpolation."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q={q} out of [0, 100]")
        series = self._series.get(_label_key(labels))
        if series is None or not series.values:
            return math.nan
        ordered = sorted(series.values)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def merge_series(
        self,
        labels: dict,
        count: int,
        sum_: float,
        min_: Optional[float],
        max_: Optional[float],
        values: Optional[list] = None,
    ) -> None:
        """Fold another process's series into this one.

        ``count``/``sum``/``min``/``max`` stay exact; raw values (used
        for percentiles) are taken up to the reservoir cap.
        """
        if not _state.enabled or count <= 0:
            return
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.count += int(count)
        series.sum += float(sum_)
        if min_ is not None and min_ < series.min:
            series.min = float(min_)
        if max_ is not None and max_ > series.max:
            series.max = float(max_)
        if values:
            room = _HistogramSeries.CAP - len(series.values)
            if room > 0:
                series.values.extend(float(v) for v in values[:room])

    def snapshot(self, include_values: bool = False) -> dict:
        out = []
        for key, series in sorted(self._series.items()):
            entry = {
                "labels": dict(key),
                "count": series.count,
                "sum": series.sum,
                "min": series.min if series.count else None,
                "max": series.max if series.count else None,
            }
            if series.values:
                entry["p50"] = self._pct(series.values, 50.0)
                entry["p95"] = self._pct(series.values, 95.0)
                entry["p99"] = self._pct(series.values, 99.0)
            if include_values:
                entry["values"] = list(series.values)
            out.append(entry)
        return {"type": "histogram", "help": self.help, "series": out}

    @staticmethod
    def _pct(values: list[float], q: float) -> float:
        ordered = sorted(values)
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """Name -> metric map.  ``counter()``/``gauge()``/``histogram()`` are
    get-or-create, so call sites never need registration boilerplate."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = cls(name, help)
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def snapshot(self, include_values: bool = False) -> dict:
        """Serializable view of every metric, sorted by name.

        ``include_values=True`` additionally embeds each histogram's
        retained raw observations, making the snapshot *mergeable* into
        another process's registry with exact percentiles — the format
        parallel mission workers ship back to the driver.
        """
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot(include_values=include_values)
            else:
                out[name] = metric.snapshot()
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this registry.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge exactly where the snapshot carried raw values
        (``include_values=True`` at the source) and approximately
        (count/sum/min/max only) where it did not.  No-op while
        telemetry is disabled.
        """
        if not _state.enabled:
            return
        for name, data in snapshot.items():
            mtype = data.get("type")
            if mtype == "counter":
                counter = self.counter(name, data.get("help", ""))
                for series in data.get("series", []):
                    counter.inc(series["value"], **series["labels"])
            elif mtype == "gauge":
                gauge = self.gauge(name, data.get("help", ""))
                for series in data.get("series", []):
                    gauge.set(series["value"], **series["labels"])
            elif mtype == "histogram":
                hist = self.histogram(name, data.get("help", ""))
                for series in data.get("series", []):
                    hist.merge_series(
                        series["labels"],
                        series.get("count", 0),
                        series.get("sum", 0.0),
                        series.get("min"),
                        series.get("max"),
                        series.get("values"),
                    )

    def reset(self) -> None:
        """Drop every metric (tests call this between cases)."""
        with self._lock:
            self._metrics.clear()


#: The process-global registry all instrumentation writes to.
registry = MetricsRegistry()

counter = registry.counter
gauge = registry.gauge
histogram = registry.histogram
