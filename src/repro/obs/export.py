"""Export telemetry — metrics, spans, logs — as dict, JSON, or a report.

``to_dict()`` snapshots all three stores into a
:class:`TelemetrySnapshot`; ``to_json()`` serializes that snapshot;
``to_text()`` renders the mission-control view: a span tree with
per-stage wall/sim time, the metric tables, and recent logs.
``merge_snapshot()`` folds a snapshot taken in another process (a
parallel mission worker) into this process's live stores.

Naming note: ``to_dict()`` / ``to_text()`` are the uniform report
surface shared with :class:`~repro.experiments.mission.MissionResult`
and :class:`~repro.faults.report.ReliabilityReport`.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs import logging as obs_logging
from repro.obs import _state, metrics, tracing


class TelemetrySnapshot(dict):
    """A telemetry snapshot with the uniform report surface.

    A plain ``dict`` subclass — existing code that indexes snapshots
    (``snap["spans"]``) or JSON-serializes them keeps working — that
    additionally exposes the ``to_dict()`` / ``to_text()`` pair every
    report-like object in the codebase shares.
    """

    def to_dict(self) -> dict:
        """Plain-dict copy of the snapshot."""
        return dict(self)

    def to_text(self, max_logs: int = 30) -> str:
        """Human-readable telemetry report for this snapshot."""
        return to_text(self, max_logs=max_logs)


def to_dict(include_histogram_values: bool = False) -> TelemetrySnapshot:
    """Snapshot every telemetry store into plain data.

    ``include_histogram_values=True`` embeds raw histogram observations
    so the snapshot can be merged into another process's registry with
    exact percentiles (see :func:`merge_snapshot`); leave it off for
    human-facing exports.
    """
    return TelemetrySnapshot({
        "metrics": metrics.registry.snapshot(include_values=include_histogram_values),
        "spans": [s.to_dict() for s in tracing.collector.spans],
        "span_breakdown": tracing.collector.breakdown(),
        "logs": [r.to_dict() for r in obs_logging.buffer.records],
    })


def merge_snapshot(snapshot: dict, parent_span_id: Optional[int] = None) -> None:
    """Fold a worker's :func:`to_dict` snapshot into the live stores.

    Counters add, gauges take the incoming value, histograms merge
    (exactly, when the snapshot carried raw values), spans are re-id'd
    and re-parented under ``parent_span_id``, and log records append
    with their original timestamps.  No-op while telemetry is disabled.
    """
    if not _state.enabled:
        return
    metrics.registry.merge_snapshot(snapshot.get("metrics", {}))
    tracing.collector.merge_spans(snapshot.get("spans", []), parent_id=parent_span_id)
    obs_logging.buffer.merge(snapshot.get("logs", []))


def to_json(indent: Optional[int] = None) -> str:
    """JSON snapshot (round-trips through ``json.loads``)."""
    return json.dumps(to_dict(), indent=indent, sort_keys=True, default=float)


def from_json(text: str) -> dict:
    """Inverse of :func:`to_json` (plain data, not live objects)."""
    return json.loads(text)


def _format_secs(value: Optional[float]) -> str:
    if value is None:
        return "     --"
    if value >= 100.0:
        return f"{value:7.1f}"
    return f"{value:7.3f}"


def _span_tree_lines(snapshot: dict, max_children: int = 8) -> list[str]:
    spans = snapshot["spans"]
    by_parent: dict[Optional[int], list[dict]] = {}
    ids = {s["span_id"] for s in spans}
    for s in spans:
        parent = s["parent_id"] if s["parent_id"] in ids else None
        by_parent.setdefault(parent, []).append(s)

    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span['name']:<{max(1, 36 - 2 * depth)}s}"
            f" wall={_format_secs(span['wall_s'])}s"
            f" sim={_format_secs(span['sim_s'])}s"
        )
        children = sorted(by_parent.get(span["span_id"], []),
                          key=lambda s: s["span_id"])
        shown = children[:max_children]
        for child in shown:
            walk(child, depth + 1)
        if len(children) > len(shown):
            lines.append(f"{indent}  ... and {len(children) - len(shown)} more")

    for root in sorted(by_parent.get(None, []), key=lambda s: s["span_id"]):
        walk(root, 0)
    return lines


def to_text(snapshot: Optional[dict] = None, max_logs: int = 30) -> str:
    """Human-readable telemetry report (the ``repro telemetry`` output)."""
    snap = snapshot if snapshot is not None else to_dict()
    lines: list[str] = ["== Telemetry report =="]

    lines.append("")
    lines.append("-- Stage breakdown (by span name) --")
    breakdown = snap.get("span_breakdown", {})
    if breakdown:
        lines.append(f"{'stage':<36s} {'count':>6s} {'wall s':>9s} {'sim s':>10s}")
        for name in sorted(breakdown, key=lambda n: -breakdown[n]["wall_s"]):
            entry = breakdown[name]
            lines.append(
                f"{name:<36s} {entry['count']:>6d} {entry['wall_s']:>9.3f}"
                f" {entry['sim_s']:>10.1f}"
            )
    else:
        lines.append("(no spans recorded)")

    if snap.get("spans"):
        lines.append("")
        lines.append("-- Span tree --")
        lines.extend(_span_tree_lines(snap))

    lines.append("")
    lines.append("-- Metrics --")
    metric_snap = snap.get("metrics", {})
    if metric_snap:
        for name in sorted(metric_snap):
            metric = metric_snap[name]
            lines.append(f"{name} ({metric['type']})")
            for series in metric["series"]:
                labels = ",".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
                labels = f"{{{labels}}}" if labels else ""
                if metric["type"] == "histogram":
                    p50 = series.get("p50")
                    p99 = series.get("p99")
                    detail = (
                        f"count={series['count']} sum={series['sum']:.4g}"
                        + (f" p50={p50:.4g}" if p50 is not None else "")
                        + (f" p99={p99:.4g}" if p99 is not None else "")
                    )
                else:
                    detail = f"{series['value']:.6g}"
                lines.append(f"  {labels:<44s} {detail}")
    else:
        lines.append("(no metrics recorded)")

    lines.append("")
    logs = snap.get("logs", [])
    lines.append(f"-- Logs ({len(logs)} records, last {min(len(logs), max_logs)}) --")
    for record in logs[-max_logs:]:
        fields = " ".join(f"{k}={v!r}" for k, v in record["fields"].items())
        sim = obs_logging.format_sim_time(record.get("sim_time"))
        body = f"{record['event']} {fields}".rstrip()
        lines.append(f"[{sim}] {record['level'].upper():7s} {record['logger']}: {body}")

    return "\n".join(lines)
