"""Structured, sim-time-aware logging.

``get_logger(__name__)`` returns a :class:`StructLogger` whose methods
take an event name plus arbitrary key=value fields::

    log = get_logger("repro.support.bus")
    log.warning("link-partitioned", src="earth", dst="habitat")

Records land in an in-memory :class:`LogBuffer` (exported by
:mod:`repro.obs.export`) and, optionally, on stderr.  Each record
carries wall-clock time and — when a sim clock is registered or a
``sim_time=`` field is passed — simulation time, formatted as
``[day 02 03:14:05]`` in the text report.

Like every obs API, logging is a no-op costing one attribute read when
telemetry is disabled.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional

from repro.obs import _state

LEVELS = ("debug", "info", "warning", "error")
_LEVEL_NUM = {name: i for i, name in enumerate(LEVELS)}

_DAY = 86_400.0


def format_sim_time(sim_time_s: Optional[float]) -> str:
    """Render sim seconds as ``day DD HH:MM:SS`` (mission days are 1-based)."""
    if sim_time_s is None:
        return "--"
    day, rem = divmod(float(sim_time_s), _DAY)
    hours, rem = divmod(rem, 3600.0)
    minutes, seconds = divmod(rem, 60.0)
    return f"day {int(day) + 1:02d} {int(hours):02d}:{int(minutes):02d}:{int(seconds):02d}"


class LogRecord:
    """One structured log entry."""

    __slots__ = ("logger", "level", "event", "fields", "wall_time", "sim_time")

    def __init__(self, logger: str, level: str, event: str,
                 fields: dict, sim_time: Optional[float]):
        self.logger = logger
        self.level = level
        self.event = event
        self.fields = fields
        self.wall_time = time.time()
        self.sim_time = sim_time

    def to_dict(self) -> dict:
        return {
            "logger": self.logger,
            "level": self.level,
            "event": self.event,
            "fields": self.fields,
            "wall_time": self.wall_time,
            "sim_time": self.sim_time,
        }

    def format(self) -> str:
        fields = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        sim = format_sim_time(self.sim_time)
        body = f"{self.event} {fields}" if fields else self.event
        return f"[{sim}] {self.level.upper():7s} {self.logger}: {body}"

    def __repr__(self) -> str:
        return f"<LogRecord {self.format()}>"


class LogBuffer:
    """In-memory sink for every logger's records."""

    def __init__(self) -> None:
        self.records: list[LogRecord] = []
        #: Records below this level are dropped even when enabled.
        self.min_level = "debug"
        #: When True, records are also formatted onto stderr.
        self.echo = False

    def add(self, record: LogRecord) -> None:
        self.records.append(record)
        if self.echo:
            print(record.format(), file=sys.stderr)

    def merge(self, record_dicts: list) -> None:
        """Adopt exported records from another process's buffer.

        Incoming records were already level-filtered (and echoed, if
        requested) at the source, so they are appended verbatim with
        their original wall/sim timestamps.
        """
        for raw in record_dicts:
            record = LogRecord(
                raw["logger"], raw["level"], raw["event"],
                dict(raw.get("fields", {})), raw.get("sim_time"),
            )
            record.wall_time = raw.get("wall_time", record.wall_time)
            self.records.append(record)

    def matching(self, event_substring: str) -> list[LogRecord]:
        return [r for r in self.records if event_substring in r.event]

    def at_level(self, level: str) -> list[LogRecord]:
        return [r for r in self.records if r.level == level]

    def reset(self) -> None:
        self.records.clear()
        self.min_level = "debug"
        self.echo = False


#: The process-global log buffer.
buffer = LogBuffer()


class StructLogger:
    """Named logger handing structured records to the global buffer."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def log(self, level: str, event: str, **fields: Any) -> None:
        if not _state.enabled:
            return
        if _LEVEL_NUM[level] < _LEVEL_NUM[buffer.min_level]:
            return
        sim_time = fields.pop("sim_time", None)
        if sim_time is None:
            sim_time = _state.sim_now()
        buffer.add(LogRecord(self.name, level, event, fields, sim_time))

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


_loggers: dict[str, StructLogger] = {}


def get_logger(name: str) -> StructLogger:
    """Get-or-create the named logger (module-level convention)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = StructLogger(name)
    return logger
