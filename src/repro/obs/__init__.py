"""repro.obs: mission telemetry — metrics, span tracing, structured logs.

The habitat support system has to *monitor itself* (paper, Section VI):
mission control needs counters from the bus, timing from the pipeline,
and logs from every unit.  This package is that instrumentation layer:

- :mod:`repro.obs.metrics` — process-global registry of counters,
  gauges, and histograms with labels;
- :mod:`repro.obs.tracing` — nested spans with wall-clock and
  simulation-time durations;
- :mod:`repro.obs.logging` — structured, sim-time-aware loggers;
- :mod:`repro.obs.export` — dict / JSON / text-report dumps.

Telemetry is **off by default** and every instrumented call site pays a
single attribute read when it is off — the pipeline's hot paths stay
within noise of the uninstrumented baseline (guarded by
``benchmarks/bench_telemetry_overhead.py``).

Usage::

    from repro import obs

    obs.enable()
    result = run_mission(MissionConfig(days=2))
    print(result.telemetry.to_text())
    obs.reset()

Convention: every new subsystem registers its metrics under a dotted
prefix (``bus.``, ``engine.``, ``sensing.``) via ``obs.metrics.counter``
/ ``gauge`` / ``histogram`` and wraps its stages in ``obs.span``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import _state, export, metrics, tracing
from repro.obs import logging as logging  # structured logging, not stdlib
from repro.obs.logging import get_logger
from repro.obs.tracing import current_span, span

__all__ = [
    "disable",
    "enable",
    "enabled",
    "export",
    "get_logger",
    "current_span",
    "logging",
    "metrics",
    "reset",
    "set_sim_clock",
    "span",
    "tracing",
]


def enable() -> None:
    """Turn telemetry on (instrumentation starts recording)."""
    _state.enabled = True


def disable() -> None:
    """Turn telemetry off (instrumentation reverts to no-ops)."""
    _state.enabled = False


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _state.enabled


def set_sim_clock(clock: Optional[Callable[[], float]]) -> None:
    """Register (or clear, with None) the simulation-time source used to
    stamp spans and log records."""
    _state.sim_clock = clock


def reset() -> None:
    """Clear all telemetry state: metrics, spans, logs, clock, switch.

    Tests call this between cases so the process-global registry never
    leaks series across them.
    """
    _state.enabled = False
    _state.sim_clock = None
    metrics.registry.reset()
    tracing.collector.reset()
    logging.buffer.reset()
