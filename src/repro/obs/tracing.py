"""Lightweight span tracing with wall-clock *and* simulation-time durations.

A span marks one stage of the pipeline (a badge-day of sensing, a day of
crew simulation, a whole mission).  Spans nest: entering a span makes it
the parent of any span opened inside it, so the collector ends up with a
forest that the report renders as a per-stage time breakdown.

Usage::

    from repro.obs import span

    with span("sensing.badge_day", badge=3, day=2):
        ...

When telemetry is disabled, :func:`span` returns a shared no-op context
manager — one attribute read and no allocation on the fast path.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Optional

from repro.obs import _state

_ids = itertools.count(1)


class Span:
    """One finished-or-active span."""

    __slots__ = (
        "span_id", "parent_id", "name", "attrs",
        "wall_start", "wall_end", "sim_start", "sim_end",
    )

    def __init__(self, name: str, parent_id: Optional[int], attrs: dict):
        self.span_id = next(_ids)
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.wall_start = time.perf_counter()
        self.wall_end: Optional[float] = None
        self.sim_start = _state.sim_now()
        self.sim_end: Optional[float] = None

    @property
    def wall_s(self) -> Optional[float]:
        """Wall-clock duration in seconds (None while still open)."""
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def sim_s(self) -> Optional[float]:
        """Simulation-time duration (None without a registered sim clock)."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def __enter__(self) -> "Span":
        _stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_end = time.perf_counter()
        self.sim_end = _state.sim_now()
        if exc_type is not None:
            self.attrs = dict(self.attrs, error=exc_type.__name__)
        if _stack and _stack[-1] is self:
            _stack.pop()
        collector.add(self)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
        }

    @classmethod
    def restore(cls, name: str, attrs: dict,
                wall_s: Optional[float], sim_s: Optional[float]) -> "Span":
        """Rebuild a *finished* span from exported durations.

        Used when merging another process's spans: absolute start times
        are meaningless across processes, so the restored span anchors
        at zero and only its durations survive.  Never touches the
        active-span stack.
        """
        span = cls.__new__(cls)
        span.span_id = next(_ids)
        span.parent_id = None
        span.name = name
        span.attrs = attrs
        span.wall_start = 0.0
        span.wall_end = wall_s
        span.sim_start = 0.0 if sim_s is not None else None
        span.sim_end = sim_s
        return span

    def __repr__(self) -> str:
        dur = f"{self.wall_s * 1e3:.2f}ms" if self.wall_end is not None else "open"
        return f"<Span {self.name} {dur}>"


class _NoopSpan:
    """Shared do-nothing context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()

#: The active-span stack (single-threaded pipeline; spans opened inside
#: an active span become its children).
_stack: list[Span] = []


class SpanCollector:
    """In-memory sink of finished spans."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, parent: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == parent.span_id]

    def roots(self) -> list[Span]:
        ids = {s.span_id for s in self.spans}
        return [s for s in self.spans if s.parent_id not in ids]

    def breakdown(self) -> dict[str, dict]:
        """Aggregate spans by name: count + total wall/sim seconds."""
        agg: dict[str, dict] = {}
        for s in self.spans:
            entry = agg.setdefault(
                s.name, {"count": 0, "wall_s": 0.0, "sim_s": 0.0}
            )
            entry["count"] += 1
            if s.wall_s is not None:
                entry["wall_s"] += s.wall_s
            if s.sim_s is not None:
                entry["sim_s"] += s.sim_s
        return agg

    def merge_spans(self, span_dicts: list[dict],
                    parent_id: Optional[int] = None) -> None:
        """Adopt exported spans from another process into this collector.

        Every span gets a fresh id from this process's counter (worker
        ids collide across processes) with parent links remapped; spans
        that were roots in the worker are re-parented under
        ``parent_id`` — typically the driver's open ``mission`` span —
        so the report shows worker stages inside the mission tree.
        """
        id_map: dict[int, int] = {}
        for d in sorted(span_dicts, key=lambda s: s["span_id"]):
            span = Span.restore(d["name"], dict(d.get("attrs", {})),
                                d.get("wall_s"), d.get("sim_s"))
            span.parent_id = id_map.get(d.get("parent_id"), parent_id)
            id_map[d["span_id"]] = span.span_id
            self.spans.append(span)

    def reset(self) -> None:
        self.spans.clear()
        _stack.clear()


#: The process-global collector every span reports into.
collector = SpanCollector()


def span(name: str, **attrs: Any):
    """Open a span (context manager).  No-op when telemetry is off."""
    if not _state.enabled:
        return NOOP_SPAN
    parent = _stack[-1].span_id if _stack else None
    return Span(name, parent, attrs)


def current_span() -> Optional[Span]:
    """The innermost open span, if any."""
    return _stack[-1] if _stack else None
