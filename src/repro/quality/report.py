"""Data-quality verdicts and the mission-level quality report.

The paper's deployment lost data constantly — badges not worn, batteries
dying mid-day, SD cards silently filling up, clocks drifting between
opportunistic syncs.  A real analysis pipeline therefore needs an
explicit record of *what it was given*: per badge-day, whether the data
arrived intact (``ok``), had to be repaired (``repaired``), or was too
damaged to serve (``quarantined``) — and, for repaired days, exactly
which repairs were applied and how many frames they cost.

Everything in this module is plain data: reports built from the same
dataset are byte-identical through :meth:`DataQualityReport.to_json`,
which is what the regression tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: The three possible badge-day verdicts.
VERDICT_OK = "ok"
VERDICT_REPAIRED = "repaired"
VERDICT_QUARANTINED = "quarantined"

VERDICTS = (VERDICT_OK, VERDICT_REPAIRED, VERDICT_QUARANTINED)


@dataclass(frozen=True)
class QualityIssue:
    """One problem found in one badge-day.

    Attributes:
        kind: stable machine-readable issue tag (``nan-in-active``,
            ``truncated``, ``frame-surplus``, ``clock-skew``, ...).
        detail: short human-readable elaboration.
        frames: number of frames implicated (0 for metadata issues).
    """

    kind: str
    detail: str = ""
    frames: int = 0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "frames": self.frames}


@dataclass(frozen=True)
class BadgeDayVerdict:
    """The gate's judgement of one badge-day.

    Attributes:
        badge_id / day: which badge-day this verdict covers.
        verdict: ``ok`` | ``repaired`` | ``quarantined``.
        issues: every problem found, in detection order.
        repairs: repair kind -> frames (or occurrences) affected.  Empty
            for ``ok``; for ``quarantined`` it records what a repair
            *would* have needed before the day was given up on.
        frames_expected: frames a complete day would have held.
        frames_usable: frames that survived validation and repair
            (0 for quarantined days).
        masked_channels: channel name -> frames masked because *that*
            channel's values were corrupt.  A frame corrupted on several
            channels counts once per channel, so these may sum to more
            than the day's total masked frames.
    """

    badge_id: int
    day: int
    verdict: str
    issues: tuple[QualityIssue, ...] = ()
    repairs: dict[str, int] = field(default_factory=dict)
    frames_expected: int = 0
    frames_usable: int = 0
    masked_channels: dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Usable fraction of the expected frames (0 for quarantined)."""
        if self.verdict == VERDICT_QUARANTINED or self.frames_expected <= 0:
            return 0.0
        return self.frames_usable / self.frames_expected

    def to_dict(self) -> dict:
        return {
            "badge_id": self.badge_id,
            "day": self.day,
            "verdict": self.verdict,
            "issues": [issue.to_dict() for issue in self.issues],
            "repairs": dict(sorted(self.repairs.items())),
            "frames_expected": self.frames_expected,
            "frames_usable": self.frames_usable,
            "coverage": round(self.coverage, 9),
            "masked_channels": dict(sorted(self.masked_channels.items())),
        }


@dataclass
class DataQualityReport:
    """Everything the quality gate learned about one sensing dataset.

    The report keeps a verdict for *every* badge-day the gate saw —
    including the quarantined ones that are no longer served — which is
    what lets the analytics layer compute honest coverage fractions
    ("this Table I was computed from 60% of the data").
    """

    verdicts: tuple[BadgeDayVerdict, ...] = ()
    #: Frames a complete badge-day holds (``cfg.frames_per_day``).
    frames_expected: int = 0
    #: Pairwise (badge-to-badge) stream accounting.
    pairwise_checked: int = 0
    pairwise_repaired: int = 0
    pairwise_dropped: int = 0

    # -- lookups --------------------------------------------------------

    def verdict_for(self, badge_id: int, day: int) -> BadgeDayVerdict | None:
        for verdict in self.verdicts:
            if verdict.badge_id == badge_id and verdict.day == day:
                return verdict
        return None

    def by_verdict(self, verdict: str) -> list[BadgeDayVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def n_ok(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == VERDICT_OK)

    @property
    def n_repaired(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == VERDICT_REPAIRED)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == VERDICT_QUARANTINED)

    @property
    def all_ok(self) -> bool:
        return self.n_ok == len(self.verdicts)

    def repairs_total(self) -> dict[str, int]:
        """Aggregated repair counts across all badge-days."""
        out: dict[str, int] = {}
        for verdict in self.verdicts:
            for kind, count in verdict.repairs.items():
                out[kind] = out.get(kind, 0) + count
        return dict(sorted(out.items()))

    def masked_by_channel(self) -> dict[str, int]:
        """Frames masked per corrupt channel, across all badge-days.

        Quarantined days are included (their channel attribution records
        what the repair *would* have masked), mirroring
        :meth:`repairs_total`.
        """
        out: dict[str, int] = {}
        for verdict in self.verdicts:
            for name, count in verdict.masked_channels.items():
                out[name] = out.get(name, 0) + count
        return dict(sorted(out.items()))

    def issue_counts(self) -> dict[str, int]:
        """Badge-days affected per issue kind."""
        out: dict[str, int] = {}
        for verdict in self.verdicts:
            for kind in {issue.kind for issue in verdict.issues}:
                out[kind] = out.get(kind, 0) + 1
        return dict(sorted(out.items()))

    def coverage(self, day: int | None = None,
                 exclude_badges: tuple[int, ...] = ()) -> float:
        """Mean usable-frame fraction over the (filtered) badge-days.

        A dataset the gate never complained about has coverage 1.0; each
        quarantined badge-day contributes 0.
        """
        pool = [
            v for v in self.verdicts
            if (day is None or v.day == day) and v.badge_id not in exclude_badges
        ]
        if not pool:
            return 1.0
        return sum(v.coverage for v in pool) / len(pool)

    # -- the uniform report surface --------------------------------------

    def to_dict(self) -> dict:
        """Plain-data dump (JSON-serializable, deterministically ordered)."""
        return {
            "frames_expected": self.frames_expected,
            "badge_days": len(self.verdicts),
            "ok": self.n_ok,
            "repaired": self.n_repaired,
            "quarantined": self.n_quarantined,
            "coverage": round(self.coverage(), 9),
            "issues": self.issue_counts(),
            "repairs": self.repairs_total(),
            "masked_channels": self.masked_by_channel(),
            "pairwise": {
                "checked": self.pairwise_checked,
                "repaired": self.pairwise_repaired,
                "dropped": self.pairwise_dropped,
            },
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def to_json(self) -> str:
        """Canonical JSON rendering — byte-identical for identical input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_text(self) -> str:
        """Human-readable quality summary."""
        lines = [
            f"data quality: {len(self.verdicts)} badge-days — "
            f"{self.n_ok} ok, {self.n_repaired} repaired, "
            f"{self.n_quarantined} quarantined "
            f"(coverage {self.coverage():.1%})",
        ]
        issues = self.issue_counts()
        if issues:
            lines.append("issues (badge-days affected):")
            for kind, count in issues.items():
                lines.append(f"  {kind:<20} {count}")
        repairs = self.repairs_total()
        if repairs:
            lines.append("repairs (frames / occurrences):")
            for kind, count in repairs.items():
                lines.append(f"  {kind:<20} {count}")
        masked = self.masked_by_channel()
        if masked:
            lines.append("masked frames by corrupt channel:")
            for name, count in masked.items():
                lines.append(f"  {name:<20} {count}")
        quarantined = self.by_verdict(VERDICT_QUARANTINED)
        if quarantined:
            lines.append("quarantined badge-days:")
            for verdict in quarantined:
                why = verdict.issues[0].kind if verdict.issues else "unknown"
                lines.append(
                    f"  badge {verdict.badge_id} day {verdict.day}: {why}"
                )
        if self.pairwise_checked:
            lines.append(
                f"pairwise streams: {self.pairwise_checked} checked, "
                f"{self.pairwise_repaired} repaired, "
                f"{self.pairwise_dropped} dropped"
            )
        return "\n".join(lines)
