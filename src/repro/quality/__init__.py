"""repro.quality: the validating ingest gate for sensing datasets.

The paper's deployment produced dirty data as a matter of course (badges
unworn, batteries dying mid-day, SD cards failing, clocks drifting); a
reproduction whose analytics assume pristine input is reproducing an
idealization, not the system.  This package sits between the sensing
pipeline (or a loaded dataset) and the analytics layer:

- :func:`validate_sensing` inspects every badge-day and returns a
  :class:`DataQualityReport` of per-badge-day verdicts
  (``ok | repaired | quarantined``) with explicit, counted repairs;
- :func:`gate_sensing` additionally applies the verdicts, returning a
  dataset that serves only intact or repaired badge-days —
  quarantined data is excluded, never silently served;
- the attached report is where every analytics module reads its
  ``coverage`` fraction from, so results computed from partial data
  say so.

A clean dataset passes with every verdict ``ok`` and is served as the
*same* array objects — bit-identical analytics, coverage exactly 1.0.
"""

from repro.quality.gate import (
    ALL_CHANNELS,
    BOOL_CHANNELS,
    FLOAT_CHANNELS,
    QualityPolicy,
    gate_sensing,
    validate_sensing,
)
from repro.quality.report import (
    VERDICT_OK,
    VERDICT_QUARANTINED,
    VERDICT_REPAIRED,
    VERDICTS,
    BadgeDayVerdict,
    DataQualityReport,
    QualityIssue,
)

__all__ = [
    "ALL_CHANNELS",
    "BOOL_CHANNELS",
    "FLOAT_CHANNELS",
    "BadgeDayVerdict",
    "DataQualityReport",
    "QualityIssue",
    "QualityPolicy",
    "VERDICTS",
    "VERDICT_OK",
    "VERDICT_QUARANTINED",
    "VERDICT_REPAIRED",
    "gate_sensing",
    "validate_sensing",
]
