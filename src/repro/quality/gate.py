"""The validating ingest gate for sensing datasets.

:func:`validate_sensing` inspects every badge-day of a
:class:`~repro.analytics.dataset.MissionSensing` for the damage a real
field deployment produces — shape and dtype drift, NaN/Inf runs, frame
duplication and truncation, impossible sensor values, stuck sensors,
clock skew beyond what the time-sync corrects, and badge-days that do
not belong to the mission at all — and renders a per-badge-day verdict:

* ``ok`` — served untouched (the *same* array objects, so a clean
  dataset is bit-identical through the gate);
* ``repaired`` — served after explicit, counted repairs (corrupt frames
  masked not-``active``, surplus frames dropped, short days padded with
  inactive frames, out-of-range values cleared or clamped, clocks
  reset);
* ``quarantined`` — excluded from the gated dataset, never silently
  served (empty or foreign badge-days, broken clocks, or days whose
  unusable fraction exceeds the policy threshold).

:func:`gate_sensing` applies the verdicts and returns the gated dataset
with the :class:`~repro.quality.report.DataQualityReport` attached as
``sensing.quality``, which is where the analytics layer reads its
coverage fractions from.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.badges.pipeline import PairwiseDay
from repro.core.errors import DataError
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics
from repro.obs import span
from repro.quality.report import (
    VERDICT_OK,
    VERDICT_QUARANTINED,
    VERDICT_REPAIRED,
    BadgeDayVerdict,
    DataQualityReport,
    QualityIssue,
)

log = get_logger("repro.quality.gate")

#: Float channels of a badge-day summary, in canonical order.
FLOAT_CHANNELS = (
    "x", "y", "accel_rms", "voice_db", "dominant_pitch_hz",
    "pitch_stability", "sound_db",
)
BOOL_CHANNELS = ("active", "worn")
ALL_CHANNELS = BOOL_CHANNELS + ("room",) + FLOAT_CHANNELS


@dataclass(frozen=True)
class QualityPolicy:
    """Validation thresholds for one mission's datasets.

    Defaults are deliberately generous: a clean simulated mission (and a
    plausibly noisy real one) must pass with every verdict ``ok`` — the
    gate flags corruption, not unusual-but-physical data.
    """

    #: Frames a complete badge-day holds.
    expected_frames: int
    #: Seconds-of-day every badge-day starts at.
    expected_t0: float
    #: Frame period, seconds.
    expected_dt: float
    #: Habitat bounds ``(x0, y0, x1, y1)`` for coordinate validation.
    bounds: tuple[float, float, float, float]
    #: Highest valid room index (exclusive); -1 means unknown.
    n_rooms: int
    #: Badge ids that may legitimately appear in the dataset.
    valid_badges: frozenset[int]
    #: Days that may legitimately appear in the dataset.
    valid_days: frozenset[int]
    #: Tolerated deviation of a day's ``t0`` before the clock is reset.
    clock_tolerance_s: float = 60.0
    #: Identical consecutive accelerometer values (while active) at or
    #: beyond this run length are a stuck sensor (clean data: runs <= 2).
    stuck_run_frames: int = 60
    #: A badge-day with more than this fraction of unusable frames is
    #: quarantined rather than repaired.
    max_unusable_fraction: float = 0.6
    #: Physical limits; values outside are corruption, not data.
    accel_max: float = 100.0
    level_min_db: float = -30.0
    level_max_db: float = 150.0
    pitch_max_hz: float = 2000.0
    #: Slack added around the floor-plan bounds before coordinates are
    #: considered impossible.
    bounds_margin_m: float = 0.5

    @classmethod
    def for_sensing(cls, sensing: MissionSensing, **overrides) -> "QualityPolicy":
        """Derive the policy a dataset's own config promises."""
        cfg = sensing.cfg
        rect = sensing.plan.bounds
        size = sensing.assignment.roster.size
        fields = dict(
            expected_frames=cfg.frames_per_day,
            expected_t0=cfg.daytime_start_s,
            expected_dt=cfg.frame_dt,
            bounds=(rect.x0, rect.y0, rect.x1, rect.y1),
            n_rooms=len(sensing.plan.rooms),
            valid_badges=frozenset(range(2 * size + 1)),
            valid_days=frozenset(cfg.instrumented_days),
        )
        fields.update(overrides)
        return cls(**fields)


def _long_equal_runs(values: np.ndarray, min_run: int) -> np.ndarray:
    """Mask of frames inside runs of >= ``min_run`` identical values.

    NaNs never extend a run (NaN != NaN), so legitimately-NaN inactive
    stretches are not flagged.
    """
    n = values.shape[0]
    if n == 0 or min_run > n:
        return np.zeros(n, dtype=bool)
    with np.errstate(invalid="ignore"):
        breaks = values[1:] != values[:-1]
    run_id = np.concatenate([[0], np.cumsum(breaks)])
    run_len = np.bincount(run_id)
    return run_len[run_id] >= min_run


class _BadgeDayInspector:
    """Copy-on-write inspection of one badge-day."""

    def __init__(self, summary: BadgeDaySummary, policy: QualityPolicy):
        self.original = summary
        self.policy = policy
        self.arrays: dict[str, np.ndarray] = {
            name: getattr(summary, name) for name in ALL_CHANNELS
        }
        self.true_room = summary.true_room
        self.t0 = summary.t0
        self.issues: list[QualityIssue] = []
        self.repairs: dict[str, int] = {}
        self.changed = False
        self.padded = 0
        self.masked = 0
        self.masked_channels: dict[str, int] = {}
        self.quarantine_reason: str | None = None

    # -- bookkeeping ---------------------------------------------------

    def issue(self, kind: str, detail: str = "", frames: int = 0) -> None:
        self.issues.append(QualityIssue(kind=kind, detail=detail, frames=frames))

    def repair(self, kind: str, count: int) -> None:
        if count:
            self.repairs[kind] = self.repairs.get(kind, 0) + int(count)
            self.changed = True

    def quarantine(self, kind: str, detail: str = "") -> None:
        self.issue(kind, detail)
        if self.quarantine_reason is None:
            self.quarantine_reason = kind

    def writable(self, name: str) -> np.ndarray:
        """The channel as a mutable copy (original is never touched)."""
        arr = self.arrays[name]
        if arr is getattr(self.original, name):
            arr = arr.copy()
            self.arrays[name] = arr
        return arr

    # -- checks --------------------------------------------------------

    def check_metadata(self) -> None:
        s, p = self.original, self.policy
        if s.badge_id not in p.valid_badges or s.day not in p.valid_days:
            self.quarantine(
                "foreign-badge-day",
                f"badge {s.badge_id} day {s.day} is not part of this mission",
            )
        if not np.isfinite(s.t0) or not np.isfinite(s.dt) or s.dt <= 0:
            self.quarantine("bad-clock", f"t0={s.t0!r} dt={s.dt!r}")
        elif abs(s.dt - p.expected_dt) > 1e-9:
            self.quarantine("bad-clock", f"dt {s.dt} != expected {p.expected_dt}")

    def check_dtypes(self) -> None:
        for name in ALL_CHANNELS:
            arr = self.arrays[name]
            if arr.ndim != 1:
                self.quarantine("bad-shape", f"{name} has {arr.ndim} dimensions")
                return
        for name in BOOL_CHANNELS:
            if self.arrays[name].dtype != np.bool_:
                self.issue("bad-dtype", f"{name} stored as {self.arrays[name].dtype}")
                self.arrays[name] = self.arrays[name].astype(bool)
                self.repair("recast", 1)
        room = self.arrays["room"]
        if room.dtype.kind not in "iu":
            self.issue("bad-dtype", f"room stored as {room.dtype}")
            with np.errstate(invalid="ignore"):
                self.arrays["room"] = np.where(
                    np.isfinite(room.astype(np.float64)), room, -1
                ).astype(np.int64)
            self.repair("recast", 1)
        for name in FLOAT_CHANNELS:
            if self.arrays[name].dtype.kind != "f":
                self.issue("bad-dtype", f"{name} stored as {self.arrays[name].dtype}")
                self.arrays[name] = self.arrays[name].astype(np.float32)
                self.repair("recast", 1)

    def harmonize_length(self) -> None:
        expected = self.policy.expected_frames
        lengths = {arr.shape[0] for arr in self.arrays.values()}
        if self.true_room is not None:
            lengths.add(self.true_room.shape[0])
        if len(lengths) > 1:
            lo, hi = min(lengths), max(lengths)
            self.issue("ragged-channels", f"lengths {lo}..{hi}", frames=hi - lo)
            self.repair("trimmed", hi - lo)
            self.arrays = {k: a[:lo] for k, a in self.arrays.items()}
            if self.true_room is not None:
                self.true_room = self.true_room[:lo]
        n = self.arrays["active"].shape[0]
        if n == 0:
            self.quarantine("empty", "no frames survived")
            return
        if n > expected:
            surplus = n - expected
            self.issue("frame-surplus", f"{n} frames for a {expected}-frame day",
                       frames=surplus)
            self.repair("deduplicated", surplus)
            self.arrays = {k: a[:expected] for k, a in self.arrays.items()}
            if self.true_room is not None:
                self.true_room = self.true_room[:expected]
        elif n < expected:
            missing = expected - n
            self.issue("truncated", f"{n} of {expected} frames", frames=missing)
            self.repair("padded", missing)
            self.padded = missing
            pad = {
                name: np.zeros(missing, dtype=bool) for name in BOOL_CHANNELS
            }
            pad["room"] = np.full(missing, -1, dtype=self.arrays["room"].dtype)
            for name in FLOAT_CHANNELS:
                pad[name] = np.full(missing, np.nan, dtype=self.arrays[name].dtype)
            self.arrays = {
                k: np.concatenate([a, pad[k]]) for k, a in self.arrays.items()
            }
            if self.true_room is not None:
                self.true_room = np.concatenate([
                    self.true_room,
                    np.full(missing, -1, dtype=self.true_room.dtype),
                ])

    def check_clock(self) -> None:
        p = self.policy
        if abs(self.t0 - p.expected_t0) > p.clock_tolerance_s:
            self.issue("clock-skew",
                       f"t0 {self.t0:.1f}s vs expected {p.expected_t0:.1f}s")
            self.repair("clock-reset", 1)
            self.t0 = p.expected_t0

    def check_frames(self) -> None:
        p = self.policy
        a = self.arrays
        active = a["active"]
        accel, sound, voice = a["accel_rms"], a["sound_db"], a["voice_db"]
        pitch, stability = a["dominant_pitch_hz"], a["pitch_stability"]
        x, y = a["x"], a["y"]

        with np.errstate(invalid="ignore"):
            nan_active = active & (
                np.isnan(accel) | np.isnan(sound) | np.isnan(voice)
            )
            impossible = (
                (accel < 0) | (accel > p.accel_max)
                | np.isposinf(voice) | (voice > p.level_max_db)
                | np.isinf(sound) | (sound < p.level_min_db) | (sound > p.level_max_db)
                | np.isinf(accel)
                | np.isinf(x) | np.isinf(y)
                | np.isinf(pitch) | (pitch <= 0) | (pitch > p.pitch_max_hz)
            )
            stuck = _long_equal_runs(accel, p.stuck_run_frames) & active

            room = a["room"]
            room_bad = (room < -1) | (room >= p.n_rooms)
            x0, y0, x1, y1 = p.bounds
            m = p.bounds_margin_m
            coord_bad = (
                (x < x0 - m) | (x > x1 + m) | (y < y0 - m) | (y > y1 + m)
            ) & ~np.isinf(x) & ~np.isinf(y)
            stab_bad = ((stability < 0) | (stability > 1)) & np.isfinite(stability)

        if nan_active.any():
            n = int(nan_active.sum())
            self.issue("nan-in-active", "NaN sensor values on recording frames",
                       frames=n)
            self.repair("masked-nan", n)
        if impossible.any():
            n = int(impossible.sum())
            self.issue("impossible-values",
                       "sensor values outside physical limits", frames=n)
            self.repair("masked-impossible", n)
        if stuck.any():
            n = int(stuck.sum())
            self.issue("stuck-values",
                       f"identical accelerometer runs >= {p.stuck_run_frames} frames",
                       frames=n)
            self.repair("masked-stuck", n)
        if room_bad.any():
            n = int(room_bad.sum())
            self.issue("room-out-of-range", f"{p.n_rooms} rooms exist", frames=n)
            self.repair("room-cleared", n)
            self.writable("room")[room_bad] = -1
        if coord_bad.any():
            n = int(coord_bad.sum())
            self.issue("coords-out-of-bounds", "positions outside the habitat",
                       frames=n)
            self.repair("clamped", n)
            np.clip(x, x0, x1, out=self.writable("x"))
            np.clip(y, y0, y1, out=self.writable("y"))
        if stab_bad.any():
            n = int(stab_bad.sum())
            self.issue("stability-out-of-range", "pitch stability outside [0, 1]",
                       frames=n)
            self.repair("clamped", n)
            np.clip(stability, 0.0, 1.0, out=self.writable("pitch_stability"))

        bad = nan_active | impossible | stuck
        if bad.any():
            # Attribute each masked frame to the channel(s) whose values
            # triggered it, *before* the NaN scrub below destroys the
            # evidence.  A frame corrupted on several channels counts
            # once per channel; ``pitch_stability`` never masks (it is
            # clamped, not masked), so it never appears here.
            with np.errstate(invalid="ignore"):
                per_channel = {
                    "accel_rms": (
                        (active & np.isnan(accel)) | (accel < 0)
                        | (accel > p.accel_max) | np.isinf(accel) | stuck
                    ),
                    "sound_db": (
                        (active & np.isnan(sound)) | np.isinf(sound)
                        | (sound < p.level_min_db) | (sound > p.level_max_db)
                    ),
                    "voice_db": (
                        (active & np.isnan(voice)) | np.isposinf(voice)
                        | (voice > p.level_max_db)
                    ),
                    "x": np.isinf(x),
                    "y": np.isinf(y),
                    "dominant_pitch_hz": (
                        np.isinf(pitch) | (pitch <= 0) | (pitch > p.pitch_max_hz)
                    ),
                }
            for name, mask in per_channel.items():
                count = int(mask.sum())
                if count:
                    self.masked_channels[name] = count
        worn_loose = a["worn"] & ~active
        if worn_loose.any():
            n = int(worn_loose.sum())
            self.issue("worn-not-active", "worn frames without recording", frames=n)
            self.repair("worn-cleared", n)
        if bad.any() or worn_loose.any():
            self.masked = int(bad.sum())
            active_w = self.writable("active")
            active_w[bad] = False
            worn_w = self.writable("worn")
            worn_w[bad] = False
            np.logical_and(worn_w, active_w, out=worn_w)
            self.writable("room")[bad] = -1
            # Scrub the masked frames' sensor values to NaN — the
            # canonical no-data representation — so the offending bytes
            # (infinities, absurd magnitudes, latched runs) are never
            # served and re-gating the output finds nothing left to
            # repair (the gate is idempotent).
            for name in FLOAT_CHANNELS:
                self.writable(name)[bad] = np.nan

    # -- verdict -------------------------------------------------------

    def run(self) -> tuple[BadgeDayVerdict, BadgeDaySummary | None]:
        p = self.policy
        self.check_metadata()
        if self.quarantine_reason is None:
            self.check_dtypes()
        if self.quarantine_reason is None:
            self.harmonize_length()
        if self.quarantine_reason is None:
            self.check_clock()
            self.check_frames()
            unusable = self.masked + self.padded
            if unusable / p.expected_frames > p.max_unusable_fraction:
                self.quarantine(
                    "mostly-corrupt",
                    f"{unusable} of {p.expected_frames} frames unusable",
                )

        s = self.original
        if self.quarantine_reason is not None:
            verdict = BadgeDayVerdict(
                badge_id=s.badge_id, day=s.day, verdict=VERDICT_QUARANTINED,
                issues=tuple(self.issues), repairs=dict(self.repairs),
                frames_expected=p.expected_frames, frames_usable=0,
                masked_channels=dict(self.masked_channels),
            )
            return verdict, None
        if not self.issues and not self.changed and self.t0 == s.t0:
            verdict = BadgeDayVerdict(
                badge_id=s.badge_id, day=s.day, verdict=VERDICT_OK,
                frames_expected=p.expected_frames,
                frames_usable=p.expected_frames,
            )
            return verdict, s  # the very same object: bit-identical
        usable = p.expected_frames - self.masked - self.padded
        verdict = BadgeDayVerdict(
            badge_id=s.badge_id, day=s.day, verdict=VERDICT_REPAIRED,
            issues=tuple(self.issues), repairs=dict(self.repairs),
            frames_expected=p.expected_frames, frames_usable=usable,
            masked_channels=dict(self.masked_channels),
        )
        repaired = dataclasses.replace(
            s, t0=self.t0, true_room=self.true_room, **self.arrays
        )
        return verdict, repaired


def _gate_pairwise(
    pairwise: dict[int, PairwiseDay],
    kept: set[tuple[int, int]],
    policy: QualityPolicy,
) -> tuple[dict[int, PairwiseDay], int, int, int]:
    """Validate the badge-to-badge streams against the gated summaries."""
    checked = repaired = dropped = 0
    out: dict[int, PairwiseDay] = {}
    expected = policy.expected_frames
    for day in sorted(pairwise):
        src = pairwise[day]
        new = PairwiseDay(day=src.day)
        day_changed = False
        for pair in sorted(src.ir_contact):
            checked += 1
            i, j = pair
            if (i, day) not in kept or (j, day) not in kept:
                dropped += 1
                day_changed = True
                continue
            contact = src.ir_contact[pair]
            rssi = src.subghz_rssi.get(pair)
            fixed = False
            if contact.ndim != 1:
                dropped += 1
                day_changed = True
                continue
            if contact.dtype != np.bool_:
                contact = contact.astype(bool)
                fixed = True
            if contact.shape[0] > expected:
                contact = contact[:expected]
                fixed = True
            elif contact.shape[0] < expected:
                contact = np.concatenate([
                    contact, np.zeros(expected - contact.shape[0], dtype=bool)
                ])
                fixed = True
            if rssi is not None and rssi.shape[0] != expected:
                if rssi.shape[0] > expected:
                    rssi = rssi[:expected]
                else:
                    rssi = np.concatenate([
                        rssi,
                        np.full(expected - rssi.shape[0], np.nan, dtype=rssi.dtype),
                    ])
                fixed = True
            if fixed:
                repaired += 1
                day_changed = True
            new.ir_contact[pair] = contact
            if rssi is not None:
                new.subghz_rssi[pair] = rssi
        out[day] = new if day_changed else src
    return out, checked, repaired, dropped


def validate_sensing(
    sensing: MissionSensing, policy: QualityPolicy | None = None
) -> DataQualityReport:
    """Inspect every badge-day and report verdicts without serving data.

    Pure: the input dataset is never mutated.  Use :func:`gate_sensing`
    to also obtain the repaired/filtered dataset the verdicts describe.
    """
    _, report = _run_gate(sensing, policy)
    return report


def gate_sensing(
    sensing: MissionSensing,
    policy: QualityPolicy | None = None,
    strict: bool = False,
) -> tuple[MissionSensing, DataQualityReport]:
    """Validate, repair, and filter a sensing dataset.

    Returns ``(gated, report)`` where ``gated`` is a new
    :class:`MissionSensing` that serves only ``ok`` (untouched) and
    ``repaired`` badge-days, with ``gated.quality`` set to the report.
    ``ok`` badge-days are served as the *same objects*, so a clean
    dataset round-trips bit-identically.

    Args:
        strict: raise :class:`~repro.core.errors.DataError` if any
            badge-day had to be quarantined.
    """
    gated, report = _run_gate(sensing, policy)
    if strict and report.n_quarantined:
        raise DataError(
            f"{report.n_quarantined} badge-day(s) quarantined by the quality gate"
        )
    return gated, report


def _run_gate(
    sensing: MissionSensing, policy: QualityPolicy | None
) -> tuple[MissionSensing, DataQualityReport]:
    policy = policy if policy is not None else QualityPolicy.for_sensing(sensing)
    with span("quality.gate", badge_days=len(sensing.summaries)):
        verdicts: list[BadgeDayVerdict] = []
        served_by_key: dict[tuple[int, int], BadgeDaySummary] = {}
        for key in sorted(sensing.summaries):
            verdict, served = _BadgeDayInspector(
                sensing.summaries[key], policy
            ).run()
            verdicts.append(verdict)
            if served is not None:
                served_by_key[key] = served
            else:
                log.warning(
                    "badge-day-quarantined", badge=key[0], day=key[1],
                    reason=verdict.issues[0].kind if verdict.issues else "unknown",
                )
        # Preserve the input dict's insertion order: analyses that fold
        # over ``summaries`` must see badge-days in the same sequence
        # gated or not, or a clean dataset would not round-trip
        # bit-identically (dict-ordered results would reorder).
        gated_summaries = {
            key: served_by_key[key]
            for key in sensing.summaries if key in served_by_key
        }
        pairwise, checked, repaired, dropped = _gate_pairwise(
            sensing.pairwise, set(gated_summaries), policy
        )
        report = DataQualityReport(
            verdicts=tuple(verdicts),
            frames_expected=policy.expected_frames,
            pairwise_checked=checked,
            pairwise_repaired=repaired,
            pairwise_dropped=dropped,
        )
        if _obs.enabled:
            by_verdict = _metrics.counter(
                "quality.badge_days", "badge-days through the gate, by verdict"
            )
            for verdict in verdicts:
                by_verdict.inc(verdict=verdict.verdict)
            repairs = _metrics.counter(
                "quality.repairs", "repair operations applied, by kind"
            )
            for kind, count in report.repairs_total().items():
                repairs.inc(count, kind=kind)
            masked = sum(
                v.frames_expected - v.frames_usable
                for v in verdicts if v.verdict == VERDICT_REPAIRED
            )
            if masked:
                _metrics.counter(
                    "quality.frames_masked", "frames masked or padded by repairs"
                ).inc(masked)
            for verdict in verdicts:
                if verdict.verdict == VERDICT_QUARANTINED:
                    _metrics.counter(
                        "quality.quarantined", "badge-days quarantined, by reason"
                    ).inc(reason=verdict.issues[0].kind if verdict.issues else "unknown")
        gated = MissionSensing(
            cfg=sensing.cfg, plan=sensing.plan, assignment=sensing.assignment,
            summaries=gated_summaries, pairwise=pairwise, quality=report,
        )
    return gated, report
