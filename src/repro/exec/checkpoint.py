"""Crash-recovery checkpoint journal for mission runs.

A multi-day mission sweep on Mars-analog infrastructure has no operator
to restart it: a killed process must not cost the whole run (the ICAres-1
deployment itself lost days of data to dead batteries and full SD cards).
The :class:`CheckpointJournal` makes the execution engine crash-safe:

* as each :class:`~repro.exec.executor.DayOutcome` completes — serially,
  from a pool worker, or salvaged out of a broken pool — it is written as
  one atomic, checksummed artifact (:mod:`repro.exec.integrity`) under
  ``<root>/journal-<sensing-key>/dayNN.ckpt``;
* a resumed run (``ExecutionConfig(resume=True)`` / ``repro run
  --resume``) restores every journaled day that passes checksum
  verification and re-executes only the remainder, **bit-identical** to
  an uninterrupted run (day outcomes are self-contained and the SD-card
  accountant is rebuilt by replaying outcomes in day order);
* journals are keyed by the config's sensing fingerprint, so a resume
  against a changed config simply finds an empty journal — stale
  checkpoints can never leak into the wrong mission;
* a corrupt or truncated day record (the crash may have been mid-write,
  the disk may be failing) is quarantined and recomputed, never served.

The journal is append-only per day and idempotent: re-recording a day a
previous run already journaled atomically replaces an identical artifact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.core.config import MissionConfig
from repro.core.errors import DataError
from repro.exec import hashing, integrity
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics

if TYPE_CHECKING:
    from repro.exec.executor import DayOutcome

log = get_logger("repro.exec.checkpoint")

#: Name of the per-fingerprint exclusive-lease marker inside a journal.
LOCK_NAME = "journal.lock"


class JournalBusyError(DataError):
    """Another live process holds this sensing fingerprint's journal.

    Two resumers interleaving writes into one journal would be
    indistinguishable from corruption after the fact; the second opener
    gets this clean, catchable error instead.
    """


class CheckpointJournal:
    """Per-day checkpoint store for one mission config.

    All records live under ``<root>/journal-<sensing-fingerprint>/``;
    two configs never share a journal, and a schema bump (see
    :mod:`repro.exec.hashing`) orphans old journals instead of
    resuming from incompatible artifacts.
    """

    def __init__(self, root: str | Path, cfg: MissionConfig, *,
                 exclusive: bool = False, owner: str = ""):
        self.root = Path(root)
        self.cfg = cfg
        self.dir = self.root / f"journal-{hashing.sensing_fingerprint(cfg)}"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.recorded = 0
        self.quarantined = 0
        #: Days restored by the last :meth:`load_completed` call.
        self.resumed_days: list[int] = []
        self._lock_path = self.dir / LOCK_NAME
        self._locked = False
        integrity.sweep_stale_tmp(self.root)
        if exclusive:
            self.acquire(owner)

    # -- exclusive lease -------------------------------------------------
    #
    # Two processes resuming the same sensing fingerprint would interleave
    # writes into one directory; an ``O_EXCL`` lease marker (pid + owner
    # recorded inside) makes the journal single-writer.  A marker whose
    # pid is no longer alive is *stale* — the holder was killed without
    # releasing — and may be broken; the break goes through ``os.rename``
    # to a unique name so two concurrent breakers can never each unlink
    # the other's freshly acquired lock.

    def acquire(self, owner: str = "") -> None:
        """Take the journal's exclusive lease (idempotent per instance).

        Raises:
            JournalBusyError: a live process already holds the lease.
        """
        if self._locked:
            return
        payload = json.dumps({
            "pid": os.getpid(), "owner": owner or "", "acquired_at": time.time(),
        }).encode("utf-8")
        for attempt in range(2):
            try:
                fd = os.open(self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self._read_lock()
                holder_pid = holder.get("pid", -1) if holder is not None else -1
                if attempt == 0 and not integrity.pid_alive(int(holder_pid)):
                    self._break_stale_lock()
                    continue
                raise JournalBusyError(
                    f"journal {self.dir} is held by "
                    f"{holder or 'an unreadable lock'}; a second resumer would "
                    "interleave checkpoint writes"
                ) from None
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            self._locked = True
            return

    def _read_lock(self) -> Optional[dict]:
        try:
            return json.loads(self._lock_path.read_text())
        except (OSError, ValueError):
            return None  # vanished, or crashed mid-write: treat as stale

    def _break_stale_lock(self) -> None:
        # Rename-then-unlink: only one breaker wins the rename, so a
        # racer can never unlink the lock the winner is about to take.
        stale = self._lock_path.with_name(
            f"{LOCK_NAME}.stale.{os.getpid()}.{time.time_ns()}")
        try:
            os.rename(self._lock_path, stale)
        except OSError:
            return  # someone else broke (or took) it first
        log.warning("journal-stale-lock-broken", journal=str(self.dir))
        try:
            os.unlink(stale)
        except OSError:
            pass

    def close(self) -> None:
        """Release the exclusive lease (no-op if never acquired)."""
        if self._locked:
            try:
                os.unlink(self._lock_path)
            except OSError:
                pass
            self._locked = False

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def day_path(self, day: int) -> Path:
        return self.dir / f"day{day:02d}.ckpt"

    def record(self, outcome: "DayOutcome") -> None:
        """Journal one completed day (atomic, checksummed, idempotent).

        Worker telemetry snapshots are transient driver-merge payloads
        and are stripped before persisting, exactly as the cache does.
        """
        if outcome.telemetry is not None:
            outcome = dataclasses.replace(outcome, telemetry=None)
        integrity.write_artifact(
            self.day_path(outcome.day), outcome, schema=hashing.SCHEMA_VERSION
        )
        self.recorded += 1
        if _obs.enabled:
            _metrics.counter(
                "exec.checkpointed_days", "day outcomes journaled for crash recovery"
            ).inc()

    def load_day(self, day: int) -> Optional["DayOutcome"]:
        """One verified journaled day, or ``None`` (missing or quarantined)."""
        path = self.day_path(day)
        try:
            return integrity.read_artifact(path, schema=hashing.SCHEMA_VERSION)
        except FileNotFoundError:
            return None
        except integrity.ArtifactError as exc:
            log.warning("checkpoint-rejected", path=str(path), day=day,
                        error=repr(exc))
            if integrity.quarantine(path, self.root, store="checkpoint") is not None:
                self.quarantined += 1
            return None

    def load_completed(self, days: list[int]) -> dict[int, "DayOutcome"]:
        """Verified outcomes for every journaled day in ``days``.

        Populates :attr:`resumed_days` and the ``exec.resumed_days``
        telemetry counter; corrupt records are quarantined (and will be
        recomputed by the caller), so a resume never trades integrity
        for speed.
        """
        restored: dict[int, "DayOutcome"] = {}
        for day in days:
            outcome = self.load_day(day)
            if outcome is not None:
                restored[day] = outcome
        self.resumed_days = sorted(restored)
        if restored:
            log.info("checkpoint-resumed", days=self.resumed_days,
                     journal=str(self.dir))
            if _obs.enabled:
                _metrics.counter(
                    "exec.resumed_days", "day outcomes restored from a checkpoint journal"
                ).inc(len(restored))
        return restored

    def journaled_days(self) -> list[int]:
        """Days with a journal record on disk (unverified)."""
        days = []
        for path in self.dir.glob("day*.ckpt"):
            try:
                days.append(int(path.stem[3:]))
            except ValueError:
                continue
        return sorted(days)

    def stats(self) -> dict:
        """Plain-data journal counters for ``MissionResult.cache_stats``."""
        return {
            "recorded": self.recorded,
            "resumed_days": list(self.resumed_days),
            "quarantined": self.quarantined,
        }
