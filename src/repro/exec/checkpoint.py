"""Crash-recovery checkpoint journal for mission runs.

A multi-day mission sweep on Mars-analog infrastructure has no operator
to restart it: a killed process must not cost the whole run (the ICAres-1
deployment itself lost days of data to dead batteries and full SD cards).
The :class:`CheckpointJournal` makes the execution engine crash-safe:

* as each :class:`~repro.exec.executor.DayOutcome` completes — serially,
  from a pool worker, or salvaged out of a broken pool — it is written as
  one atomic, checksummed artifact (:mod:`repro.exec.integrity`) under
  ``<root>/journal-<sensing-key>/dayNN.ckpt``;
* a resumed run (``ExecutionConfig(resume=True)`` / ``repro run
  --resume``) restores every journaled day that passes checksum
  verification and re-executes only the remainder, **bit-identical** to
  an uninterrupted run (day outcomes are self-contained and the SD-card
  accountant is rebuilt by replaying outcomes in day order);
* journals are keyed by the config's sensing fingerprint, so a resume
  against a changed config simply finds an empty journal — stale
  checkpoints can never leak into the wrong mission;
* a corrupt or truncated day record (the crash may have been mid-write,
  the disk may be failing) is quarantined and recomputed, never served.

The journal is append-only per day and idempotent: re-recording a day a
previous run already journaled atomically replaces an identical artifact.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.core.config import MissionConfig
from repro.exec import hashing, integrity
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics

if TYPE_CHECKING:
    from repro.exec.executor import DayOutcome

log = get_logger("repro.exec.checkpoint")


class CheckpointJournal:
    """Per-day checkpoint store for one mission config.

    All records live under ``<root>/journal-<sensing-fingerprint>/``;
    two configs never share a journal, and a schema bump (see
    :mod:`repro.exec.hashing`) orphans old journals instead of
    resuming from incompatible artifacts.
    """

    def __init__(self, root: str | Path, cfg: MissionConfig):
        self.root = Path(root)
        self.cfg = cfg
        self.dir = self.root / f"journal-{hashing.sensing_fingerprint(cfg)}"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.recorded = 0
        self.quarantined = 0
        #: Days restored by the last :meth:`load_completed` call.
        self.resumed_days: list[int] = []
        integrity.sweep_stale_tmp(self.root)

    def day_path(self, day: int) -> Path:
        return self.dir / f"day{day:02d}.ckpt"

    def record(self, outcome: "DayOutcome") -> None:
        """Journal one completed day (atomic, checksummed, idempotent).

        Worker telemetry snapshots are transient driver-merge payloads
        and are stripped before persisting, exactly as the cache does.
        """
        if outcome.telemetry is not None:
            outcome = dataclasses.replace(outcome, telemetry=None)
        integrity.write_artifact(
            self.day_path(outcome.day), outcome, schema=hashing.SCHEMA_VERSION
        )
        self.recorded += 1
        if _obs.enabled:
            _metrics.counter(
                "exec.checkpointed_days", "day outcomes journaled for crash recovery"
            ).inc()

    def load_day(self, day: int) -> Optional["DayOutcome"]:
        """One verified journaled day, or ``None`` (missing or quarantined)."""
        path = self.day_path(day)
        try:
            return integrity.read_artifact(path, schema=hashing.SCHEMA_VERSION)
        except FileNotFoundError:
            return None
        except integrity.ArtifactError as exc:
            log.warning("checkpoint-rejected", path=str(path), day=day,
                        error=repr(exc))
            if integrity.quarantine(path, self.root, store="checkpoint") is not None:
                self.quarantined += 1
            return None

    def load_completed(self, days: list[int]) -> dict[int, "DayOutcome"]:
        """Verified outcomes for every journaled day in ``days``.

        Populates :attr:`resumed_days` and the ``exec.resumed_days``
        telemetry counter; corrupt records are quarantined (and will be
        recomputed by the caller), so a resume never trades integrity
        for speed.
        """
        restored: dict[int, "DayOutcome"] = {}
        for day in days:
            outcome = self.load_day(day)
            if outcome is not None:
                restored[day] = outcome
        self.resumed_days = sorted(restored)
        if restored:
            log.info("checkpoint-resumed", days=self.resumed_days,
                     journal=str(self.dir))
            if _obs.enabled:
                _metrics.counter(
                    "exec.resumed_days", "day outcomes restored from a checkpoint journal"
                ).inc(len(restored))
        return restored

    def journaled_days(self) -> list[int]:
        """Days with a journal record on disk (unverified)."""
        days = []
        for path in self.dir.glob("day*.ckpt"):
            try:
                days.append(int(path.stem[3:]))
            except ValueError:
                continue
        return sorted(days)

    def stats(self) -> dict:
        """Plain-data journal counters for ``MissionResult.cache_stats``."""
        return {
            "recorded": self.recorded,
            "resumed_days": list(self.resumed_days),
            "quarantined": self.quarantined,
        }
