"""Parallel badge-day execution.

The per-badge-day work of a mission — wear simulation, sensor synthesis,
localization, summary reduction — is embarrassingly parallel once the
ground truth exists, and the pipeline was built so each day is fully
self-contained:

* every stochastic draw comes from a *day-scoped* named stream
  (:func:`repro.core.rng.badge_day_stream`), addressed by name rather
  than draw order, so a worker that replays only day ``d`` sees the
  exact bit-stream the serial driver would;
* badge clocks are zeroed by the overnight dock sync at the start of
  every day, so day ``d``'s sensing does not depend on which days ran
  before it (see :func:`repro.badges.pipeline.sense_day`);
* SD-card byte counts per day are a pure function of that day's active
  seconds, and the mission-level accountant is reconstructed by
  replaying them in day order.

:func:`compute_day` is the single source of truth for one day's work —
the serial driver calls it inline, the process-pool workers call it in
:func:`_worker_day`.  Parallel execution is therefore **bit-identical**
to serial for everything that reaches a
:class:`~repro.analytics.dataset.BadgeDaySummary`.

The one genuine cross-day coupling is fault injection: an SD-card
capacity cap makes day ``d``'s truncation depend on the cumulative
(post-degrade) bytes of days ``2..d-1``.  Missions with a fault plan
therefore always run serially; :func:`run_days_parallel` refuses them.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analytics.dataset import BadgeDaySummary
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import (
    BadgeDayObservations,
    PairwiseDay,
    SensingModels,
    make_fleet,
    sense_day,
)
from repro.badges.badge import Badge
from repro.badges.sdcard import SdCardAccountant
from repro.core.config import MissionConfig
from repro.core.errors import ConfigError
from repro.core.rng import RngRegistry, mission_sensing_registry
from repro.crew.trace import MissionTruth
from repro.faults.plan import FaultPlan
from repro.localization.pipeline import Localizer
from repro.obs import _state as _obs
from repro.obs import get_logger

log = get_logger("repro.exec.executor")


class ExecutorUnavailable(RuntimeError):
    """Raised when parallel execution cannot run; callers fall back to serial."""


@dataclass
class DayOutcome:
    """Everything one instrumented day contributes to a mission result.

    This is both the unit of parallel transfer (worker -> driver) and
    the unit of cache storage, so it carries only analysis-ready data —
    the bulky BLE scan matrices never leave the worker.
    """

    day: int
    #: badge_id -> analysis-ready summary (localization already applied).
    summaries: dict[int, BadgeDaySummary] = field(default_factory=dict)
    pairwise: PairwiseDay = None  # type: ignore[assignment]
    #: badge_id -> seconds of recorded data, for replaying the mission's
    #: SD-card accountant in day order.
    active_seconds: dict[int, float] = field(default_factory=dict)
    #: Worker-side telemetry snapshot to merge into the driver's stores
    #: (parallel runs only; never cached).
    telemetry: Optional[dict] = None


def compute_day(
    cfg: MissionConfig,
    truth: MissionTruth,
    day: int,
    assignment: BadgeAssignment,
    models: SensingModels,
    localizer: Localizer,
    fleet: dict[int, Badge],
    rngs: RngRegistry,
    sdcard: SdCardAccountant,
    plan: Optional[FaultPlan],
) -> DayOutcome:
    """Sense, degrade (if faulted), and localize one instrumented day.

    The single implementation behind both execution modes.  ``sdcard``
    is mutated (day recorded, fault truncation re-recorded); parallel
    workers pass a throwaway accountant and the driver replays the
    returned ``active_seconds`` into the mission-level one.
    """
    observations, pairwise = sense_day(
        truth, day, assignment, models, fleet, rngs, sdcard
    )
    dead = (
        plan.dead_beacons_on_day(day, cfg.daytime_start_s, cfg.daytime_s)
        if plan is not None else frozenset()
    )
    outcome = DayOutcome(day=day, pairwise=pairwise)
    if plan is not None:
        for obs in observations.values():
            degrade_day(cfg, plan, obs, sdcard)
    badge_ids = list(observations)
    locs = localizer.localize_fleet(
        [observations[b].ble_rssi for b in badge_ids],
        [observations[b].active for b in badge_ids],
        dead_beacons=dead,
    )
    for badge_id, loc in zip(badge_ids, locs):
        obs = observations[badge_id]
        obs.drop_ble()
        summary = BadgeDaySummary.from_observations(obs, loc)
        outcome.summaries[badge_id] = summary
        outcome.active_seconds[badge_id] = summary.recorded_seconds()
    return outcome


def replay_accounting(outcome: DayOutcome, sdcard: SdCardAccountant) -> None:
    """Re-record one day's (possibly cached/worker-computed) bytes.

    ``record_day`` overwrites by (badge, day) and adjusts totals by the
    delta, so replaying a day the accountant already saw is idempotent —
    the driver can replay every outcome in day order regardless of how
    each was produced.
    """
    for badge_id in sorted(outcome.active_seconds):
        sdcard.record_day(badge_id, outcome.day, outcome.active_seconds[badge_id])


def degrade_day(
    cfg: MissionConfig,
    plan: FaultPlan,
    obs: BadgeDayObservations,
    sdcard: SdCardAccountant,
) -> None:
    """Apply sensing-level faults to one badge-day, in place.

    A battery depletion stops recording from its in-day frame onward; an
    exhausted SD card stops recording once the cumulative write budget is
    spent.  The accountant entry for the day is re-recorded so storage
    totals reflect the truncated recording.

    The SD-card budget reads the accountant's *cumulative* totals, which
    is exactly the cross-day coupling that keeps faulted missions on the
    serial path.
    """
    cut = plan.battery_cut_frame(
        obs.badge_id, obs.day, cfg.daytime_start_s, len(obs.active), cfg.frame_dt
    )
    changed = False
    if cut is not None:
        obs.active[cut:] = False
        obs.worn[cut:] = False
        changed = True
    # Card budget available for *this* day: capacity minus what the badge
    # had written on the preceding days.
    written_before = sdcard.badge_total(obs.badge_id) - obs.bytes_recorded
    budget = sdcard.capacity_for(obs.badge_id) - written_before
    budget_frames = int(max(0.0, budget) / (sdcard.total_rate_bps * cfg.frame_dt))
    active_idx = np.flatnonzero(obs.active)
    if len(active_idx) > budget_frames:
        # Clear ``worn`` along with ``active``, like the battery path:
        # a card that stopped recording must not leave worn-but-silent
        # frames behind, or the quality gate reads the executor's own
        # day-masking as dirty data and downgrades the verdict.
        cut_idx = active_idx[budget_frames:]
        obs.active[cut_idx] = False
        obs.worn[cut_idx] = False
        changed = True
    if changed:
        obs.bytes_recorded = sdcard.record_day(
            obs.badge_id, obs.day, float(obs.active.sum()) * cfg.frame_dt
        )


# -- process-pool workers ----------------------------------------------
#
# Workers are initialized once with the pickled mission context and keep
# it in module globals; each task then ships only a day index in and one
# DayOutcome out.  The worker's fleet/registry are reused across its
# tasks — safe because day-start state is history-independent (see the
# module docstring).

_CTX: Optional[tuple] = None
#: Fault injection (worker-crash chaos / hung-worker tests): days whose
#: worker SIGKILLs itself or stalls before computing.  Set per pool by
#: the supervisor via ``_worker_init``; empty in normal operation.
_CRASH_DAYS: frozenset[int] = frozenset()
_HANG_DAYS: frozenset[int] = frozenset()
_HANG_S: float = 0.0


def pickle_context(
    cfg: MissionConfig,
    truth: MissionTruth,
    models: SensingModels,
    localizer: Localizer,
) -> bytes:
    """Pickle the worker-side mission context, or raise :class:`ExecutorUnavailable`."""
    try:
        return pickle.dumps(
            (cfg, truth, models, localizer), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise ExecutorUnavailable(f"mission context is not picklable: {exc!r}") from exc


def _worker_init(
    payload: bytes,
    telemetry_enabled: bool,
    crash_days: tuple[int, ...] = (),
    hang_days: tuple[int, ...] = (),
    hang_s: float = 0.0,
) -> None:
    global _CTX, _CRASH_DAYS, _HANG_DAYS, _HANG_S
    from repro import obs

    obs.reset()  # a forked worker inherits the driver's telemetry stores
    if telemetry_enabled:
        obs.enable()
    cfg, truth, models, localizer = pickle.loads(payload)
    assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
    rngs = mission_sensing_registry(cfg.seed)
    fleet = make_fleet(assignment, rngs)
    _CTX = (cfg, truth, assignment, models, localizer, fleet, rngs)
    _CRASH_DAYS = frozenset(crash_days)
    _HANG_DAYS = frozenset(hang_days)
    _HANG_S = hang_s


def _worker_day(day: int) -> DayOutcome:
    from repro.obs import export as obs_export
    from repro.obs import logging as obs_logging
    from repro.obs import metrics as obs_metrics
    from repro.obs import tracing as obs_tracing

    assert _CTX is not None, "worker used before initialization"
    if day in _CRASH_DAYS:
        # Injected worker-crash fault: die the way a real crash does —
        # no exception, no cleanup, the pool just loses the process.
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    if day in _HANG_DAYS:
        # Injected straggler: stall past any reasonable day deadline.
        import time

        time.sleep(_HANG_S)
    cfg, truth, assignment, models, localizer, fleet, rngs = _CTX
    if _obs.enabled:
        # Per-day snapshots: clear the stores so each outcome carries
        # only its own day's telemetry and the driver can merge outcomes
        # in day order without double counting.
        obs_metrics.registry.reset()
        obs_tracing.collector.reset()
        obs_logging.buffer.reset()
    outcome = compute_day(
        cfg, truth, day, assignment, models, localizer, fleet, rngs,
        SdCardAccountant(), plan=None,
    )
    if _obs.enabled:
        outcome.telemetry = obs_export.to_dict(include_histogram_values=True)
    return outcome


def run_days_parallel(
    cfg: MissionConfig,
    truth: MissionTruth,
    models: SensingModels,
    localizer: Localizer,
    days: list[int],
    n_workers: int,
) -> dict[int, DayOutcome]:
    """Fan ``days`` out across a process pool; returns outcomes by day.

    Raises :class:`ExecutorUnavailable` when the pool cannot run here
    (unpicklable overrides, no multiprocessing primitives, a fault plan)
    so the caller falls back to the serial path.  Genuine errors raised
    by the day computation itself propagate unchanged.
    """
    if n_workers < 2:
        raise ConfigError("run_days_parallel needs n_workers >= 2")
    if cfg.fault_plan is not None and cfg.fault_plan.sensing_events():
        raise ExecutorUnavailable(
            "sensing-fault plans couple days through the SD-card budget; run serially"
        )
    payload = pickle_context(cfg, truth, models, localizer)

    import concurrent.futures as cf

    workers = min(n_workers, max(len(days), 1))
    try:
        pool = cf.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(payload, _obs.enabled),
        )
    except (OSError, ValueError, PermissionError) as exc:
        raise ExecutorUnavailable(f"cannot start process pool: {exc!r}") from exc
    try:
        with pool:
            outcomes = list(pool.map(_worker_day, days))
    except cf.process.BrokenProcessPool as exc:
        raise ExecutorUnavailable(f"process pool died: {exc!r}") from exc
    return {outcome.day: outcome for outcome in outcomes}
