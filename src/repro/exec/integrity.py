"""End-to-end artifact integrity: checksums, verification, quarantine.

Every on-disk artifact the execution engine produces — cache entries and
checkpoint-journal records alike — goes through this module.  The paper's
own deployment lost data to silently failing storage (dead batteries,
full SD cards); an unattended million-mission sweep cannot afford to
*trust* bytes it reads back off disk, so artifacts are:

* **checksummed** — the pickled payload's BLAKE2b digest is embedded in
  the artifact envelope and verified on every load;
* **written atomically** — temp file + :func:`os.replace`, so a crash
  mid-write never leaves a partial artifact under the final name;
* **quarantined, not deleted** — a file that fails verification is moved
  into a ``quarantine/`` directory next to the store (preserving the
  evidence for post-mortem, exactly what a field deployment would want)
  and counted in the ``exec.quarantined`` telemetry counter.

The envelope is a single pickle of ``(magic, schema, checksum,
payload_bytes)`` where ``payload_bytes`` is itself a pickle of the
payload object.  Verification recomputes the digest over
``payload_bytes`` before unpickling it, so a bit flip anywhere in the
payload is caught without executing corrupt pickle data; a flip in the
envelope itself surfaces as an unreadable artifact.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
from pathlib import Path
from typing import Any

from repro.core.errors import DataError
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics

#: Envelope magic; a load seeing a different magic is a foreign file.
MAGIC = "repro.exec.artifact"

#: Subdirectory (under a store's root) where failed artifacts are kept.
QUARANTINE_DIR = "quarantine"

log = get_logger("repro.exec.integrity")


class ArtifactError(DataError):
    """An artifact could not be read back (base class)."""


class ArtifactCorrupt(ArtifactError):
    """The artifact's embedded checksum did not match its payload."""


class ArtifactUnreadable(ArtifactError):
    """The artifact's envelope could not be parsed (foreign/truncated)."""


def checksum(payload_bytes: bytes) -> str:
    """Hex BLAKE2b digest of a payload's serialized bytes."""
    return hashlib.blake2b(payload_bytes, digest_size=16).hexdigest()


def write_artifact(path: str | Path, payload: Any, schema: int) -> str:
    """Atomically write ``payload`` to ``path`` with an embedded checksum.

    Returns the payload checksum.  The write goes through a temp file in
    the destination directory plus :func:`os.replace`, so readers (and
    crashed writers) never observe a partial artifact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = checksum(payload_bytes)
    # The writer's pid is embedded in the temp name so a *concurrent*
    # store startup (sweep_stale_tmp) can tell a live writer's in-flight
    # temp file from a dead process's orphan and leave it alone.
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.name}.{os.getpid()}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump((MAGIC, schema, digest, payload_bytes), fh,
                        protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return digest


def read_artifact(path: str | Path, schema: int) -> Any:
    """Load, verify, and unpickle the artifact at ``path``.

    Raises:
        FileNotFoundError: no artifact at ``path``.
        ArtifactUnreadable: envelope unparsable or from a different
            schema/magic (foreign or pre-checksum file).
        ArtifactCorrupt: checksum mismatch — the payload bytes changed
            since the artifact was written.
    """
    with open(path, "rb") as fh:
        try:
            envelope = pickle.load(fh)
        except FileNotFoundError:
            raise
        except Exception as exc:
            raise ArtifactUnreadable(
                f"artifact {path} has an unparsable envelope: {exc!r}"
            ) from exc
    try:
        magic, found_schema, digest, payload_bytes = envelope
    except (TypeError, ValueError) as exc:
        raise ArtifactUnreadable(
            f"artifact {path} has an unexpected envelope shape"
        ) from exc
    if magic != MAGIC or found_schema != schema:
        raise ArtifactUnreadable(
            f"artifact {path} has foreign header ({magic!r}, {found_schema!r})"
        )
    if checksum(payload_bytes) != digest:
        raise ArtifactCorrupt(f"artifact {path} failed checksum verification")
    try:
        return pickle.loads(payload_bytes)
    except Exception as exc:  # verified bytes that still fail to unpickle
        raise ArtifactUnreadable(
            f"artifact {path} payload does not unpickle: {exc!r}"
        ) from exc


def quarantine(path: str | Path, root: str | Path, *, store: str = "") -> Path | None:
    """Move a failed artifact under ``root/quarantine/``, never deleting it.

    Returns the quarantine path, or ``None`` when the move itself failed
    (in which case the file is left in place).  Name collisions get a
    numeric suffix so repeated corruption of the same key keeps every
    specimen.
    """
    path, root = Path(path), Path(root)
    qdir = root / QUARANTINE_DIR
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / path.name
        serial = 0
        while dest.exists():
            serial += 1
            dest = qdir / f"{path.name}.{serial}"
        os.replace(path, dest)
    except OSError as exc:
        log.warning("quarantine-failed", path=str(path), error=repr(exc))
        return None
    log.warning("artifact-quarantined", path=str(path), quarantine=str(dest),
                store=store)
    if _obs.enabled:
        _metrics.counter(
            "exec.quarantined", "artifacts that failed verification, by store"
        ).inc(store=store or "unknown")
    return dest


#: Temp-file names look like ``<artifact>.<pid>.<random>.tmp``.
_TMP_PID_RE = re.compile(r"\.(\d+)\.[^.]*\.tmp$")


def pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` currently exists on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def sweep_stale_tmp(root: str | Path) -> int:
    """Delete orphaned ``*.tmp`` files under ``root``; returns the count.

    A process that dies between ``mkstemp`` and ``os.replace`` strands
    its temp file; the files are unreferenced by construction (the final
    name only ever appears via ``os.replace``).  Temp names embed the
    writer's pid, and a temp whose writer is *still alive* is skipped —
    two workers persisting the same artifact concurrently must both
    succeed, so one store's startup sweep must never unlink the other's
    in-flight temp file (that race made the victim's ``os.replace`` fail
    and the day quarantine-noisy).  Files without a parseable pid are
    legacy orphans and are swept unconditionally.
    """
    root = Path(root)
    removed = 0
    for tmp in root.rglob("*.tmp"):
        match = _TMP_PID_RE.search(tmp.name)
        if match is not None and pid_alive(int(match.group(1))):
            continue  # a live writer is mid-store; not ours to sweep
        try:
            tmp.unlink()
            removed += 1
        except OSError:
            pass
    if removed:
        log.info("stale-tmp-swept", root=str(root), removed=removed)
    return removed
