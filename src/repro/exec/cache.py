"""Content-addressed, on-disk cache of mission artifacts.

A :class:`MissionCache` persists the two expensive stages of a mission
run so repeated experiments only pay for what their overrides actually
invalidate:

* ``truth-<key>.pkl`` — one :class:`~repro.crew.trace.MissionTruth`,
  keyed by :func:`repro.exec.hashing.truth_fingerprint`.  Ablation
  sweeps over sensing knobs (beacon density, wear compliance, fault
  plans) share a single cached truth.
* ``sensing-<key>/dayNN.pkl`` — one :class:`repro.exec.executor.DayOutcome`
  per instrumented day, keyed by
  :func:`repro.exec.hashing.sensing_fingerprint`.  A warm re-run of an
  unchanged config loads summaries instead of re-simulating.

Keys embed a schema version (see :mod:`repro.exec.hashing`), so
artifacts written by an older pipeline are simply never matched.  Every
artifact goes through :mod:`repro.exec.integrity`: writes are atomic
(temp file + ``os.replace``) and carry an embedded BLAKE2b payload
checksum; loads verify it, and a file that fails verification is a
**miss** whose bytes are preserved under ``<root>/quarantine/`` — never
silently deleted, never served.  Temp files stranded by a killed writer
are swept on cache startup.

The cache stores only *derived* simulation outputs addressed by the
config that produced them — it is safe to delete the directory at any
time.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro.core.config import MissionConfig
from repro.crew.trace import MissionTruth
from repro.exec import hashing, integrity
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics

if TYPE_CHECKING:
    from repro.exec.executor import DayOutcome

log = get_logger("repro.exec.cache")


class MissionCache:
    """Directory-backed store of truth and badge-day artifacts.

    Hit/miss/quarantine counts are kept per stage on the instance
    (surfaced through
    :attr:`repro.experiments.mission.MissionResult.cache_stats`) and
    mirrored into ``exec.cache_*`` / ``exec.quarantined`` telemetry
    counters when :mod:`repro.obs` is enabled.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits: dict[str, int] = {"truth": 0, "day": 0}
        self.misses: dict[str, int] = {"truth": 0, "day": 0}
        self.quarantined: dict[str, int] = {"truth": 0, "day": 0}
        # A process killed between mkstemp and os.replace strands its
        # temp file; final names only ever appear via os.replace, so the
        # sweep can never race a concurrent writer's live artifact.
        integrity.sweep_stale_tmp(self.root)

    # -- paths ---------------------------------------------------------

    def truth_path(self, cfg: MissionConfig) -> Path:
        return self.root / f"truth-{hashing.truth_fingerprint(cfg)}.pkl"

    def day_path(self, cfg: MissionConfig, day: int) -> Path:
        return self.root / f"sensing-{hashing.sensing_fingerprint(cfg)}" / f"day{day:02d}.pkl"

    # -- truth artifacts -----------------------------------------------

    def load_truth(self, cfg: MissionConfig) -> Optional[MissionTruth]:
        """Cached ground truth for ``cfg``'s truth fields, or ``None``.

        The returned truth's ``cfg`` is rebound to ``cfg``: its content
        depends only on :data:`repro.exec.hashing.TRUTH_FIELDS`, so one
        cached simulation serves every config that agrees on those, and
        downstream sensing must see the *current* config's sensing knobs.
        """
        truth = self._load("truth", self.truth_path(cfg))
        if truth is None:
            return None
        truth.cfg = cfg
        return truth

    def store_truth(self, cfg: MissionConfig, truth: MissionTruth) -> None:
        self._store("truth", self.truth_path(cfg), truth)

    # -- badge-day artifacts -------------------------------------------

    def load_day(self, cfg: MissionConfig, day: int) -> Optional["DayOutcome"]:
        """Cached summaries + pairwise data for one day, or ``None``."""
        return self._load("day", self.day_path(cfg, day))

    def store_day(self, cfg: MissionConfig, outcome: "DayOutcome") -> None:
        self._store("day", self.day_path(cfg, outcome.day), outcome)

    # -- bookkeeping ---------------------------------------------------

    def stats(self) -> dict:
        """Plain-data counters: hits, misses, and quarantined files by stage."""
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "quarantined": dict(self.quarantined),
        }

    def _count(self, stage: str, hit: bool) -> None:
        (self.hits if hit else self.misses)[stage] += 1
        if _obs.enabled:
            _metrics.counter(
                "exec.cache_lookups", "mission-cache lookups by stage and result"
            ).inc(stage=stage, result="hit" if hit else "miss")

    # -- storage -------------------------------------------------------

    def _load(self, stage: str, path: Path) -> Any:
        try:
            payload = integrity.read_artifact(path, schema=hashing.SCHEMA_VERSION)
        except FileNotFoundError:
            self._count(stage, hit=False)
            return None
        except integrity.ArtifactError as exc:
            # Corrupt or foreign artifact: a miss, never served.  The file
            # is moved to quarantine so the evidence survives post-mortem.
            log.warning("cache-artifact-rejected", path=str(path),
                        stage=stage, error=repr(exc))
            if integrity.quarantine(path, self.root, store="cache") is not None:
                self.quarantined[stage] += 1
            self._count(stage, hit=False)
            return None
        self._count(stage, hit=True)
        return payload

    def _store(self, stage: str, path: Path, payload: Any) -> None:
        integrity.write_artifact(path, payload, schema=hashing.SCHEMA_VERSION)
        if _obs.enabled:
            _metrics.counter(
                "exec.cache_stores", "mission-cache artifacts written"
            ).inc(stage=stage)
