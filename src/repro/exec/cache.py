"""Content-addressed, on-disk cache of mission artifacts.

A :class:`MissionCache` persists the two expensive stages of a mission
run so repeated experiments only pay for what their overrides actually
invalidate:

* ``truth-<key>.pkl`` — one :class:`~repro.crew.trace.MissionTruth`,
  keyed by :func:`repro.exec.hashing.truth_fingerprint`.  Ablation
  sweeps over sensing knobs (beacon density, wear compliance, fault
  plans) share a single cached truth.
* ``sensing-<key>/dayNN.pkl`` — one :class:`repro.exec.executor.DayOutcome`
  per instrumented day, keyed by
  :func:`repro.exec.hashing.sensing_fingerprint`.  A warm re-run of an
  unchanged config loads summaries instead of re-simulating.

Keys embed a schema version (see :mod:`repro.exec.hashing`), so
artifacts written by an older pipeline are simply never matched; corrupt
or truncated files are treated as misses and removed.  Writes go through
a temp file and :func:`os.replace`, so concurrent runs sharing one cache
directory never observe partial artifacts.

The cache stores only *derived* simulation outputs addressed by the
config that produced them — it is safe to delete the directory at any
time.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro.core.config import MissionConfig
from repro.crew.trace import MissionTruth
from repro.exec import hashing
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics

if TYPE_CHECKING:
    from repro.exec.executor import DayOutcome

#: Magic header pickled alongside every artifact; loads with a different
#: header (foreign file, older incompatible format) count as misses.
_MAGIC = "repro.exec.cache"

log = get_logger("repro.exec.cache")


class MissionCache:
    """Directory-backed store of truth and badge-day artifacts.

    Hit/miss counts are kept per stage on the instance (surfaced through
    :attr:`repro.experiments.mission.MissionResult.cache_stats`) and
    mirrored into ``exec.cache_*`` telemetry counters when
    :mod:`repro.obs` is enabled.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits: dict[str, int] = {"truth": 0, "day": 0}
        self.misses: dict[str, int] = {"truth": 0, "day": 0}

    # -- paths ---------------------------------------------------------

    def truth_path(self, cfg: MissionConfig) -> Path:
        return self.root / f"truth-{hashing.truth_fingerprint(cfg)}.pkl"

    def day_path(self, cfg: MissionConfig, day: int) -> Path:
        return self.root / f"sensing-{hashing.sensing_fingerprint(cfg)}" / f"day{day:02d}.pkl"

    # -- truth artifacts -----------------------------------------------

    def load_truth(self, cfg: MissionConfig) -> Optional[MissionTruth]:
        """Cached ground truth for ``cfg``'s truth fields, or ``None``.

        The returned truth's ``cfg`` is rebound to ``cfg``: its content
        depends only on :data:`repro.exec.hashing.TRUTH_FIELDS`, so one
        cached simulation serves every config that agrees on those, and
        downstream sensing must see the *current* config's sensing knobs.
        """
        truth = self._load("truth", self.truth_path(cfg))
        if truth is None:
            return None
        truth.cfg = cfg
        return truth

    def store_truth(self, cfg: MissionConfig, truth: MissionTruth) -> None:
        self._store("truth", self.truth_path(cfg), truth)

    # -- badge-day artifacts -------------------------------------------

    def load_day(self, cfg: MissionConfig, day: int) -> Optional["DayOutcome"]:
        """Cached summaries + pairwise data for one day, or ``None``."""
        return self._load("day", self.day_path(cfg, day))

    def store_day(self, cfg: MissionConfig, outcome: "DayOutcome") -> None:
        self._store("day", self.day_path(cfg, outcome.day), outcome)

    # -- bookkeeping ---------------------------------------------------

    def stats(self) -> dict:
        """Plain-data hit/miss counts (``{"hits": {...}, "misses": {...}}``)."""
        return {"hits": dict(self.hits), "misses": dict(self.misses)}

    def _count(self, stage: str, hit: bool) -> None:
        (self.hits if hit else self.misses)[stage] += 1
        if _obs.enabled:
            _metrics.counter(
                "exec.cache_lookups", "mission-cache lookups by stage and result"
            ).inc(stage=stage, result="hit" if hit else "miss")

    # -- storage -------------------------------------------------------

    def _load(self, stage: str, path: Path) -> Any:
        try:
            with open(path, "rb") as fh:
                magic, schema, payload = pickle.load(fh)
            if magic != _MAGIC or schema != hashing.SCHEMA_VERSION:
                raise ValueError(f"unexpected header ({magic!r}, {schema!r})")
        except FileNotFoundError:
            self._count(stage, hit=False)
            return None
        except Exception as exc:  # corrupt/foreign artifact: a miss, not an error
            log.warning("cache-artifact-unreadable", path=str(path), error=repr(exc))
            try:
                path.unlink()
            except OSError:
                pass
            self._count(stage, hit=False)
            return None
        self._count(stage, hit=True)
        return payload

    def _store(self, stage: str, path: Path, payload: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    (_MAGIC, hashing.SCHEMA_VERSION, payload),
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if _obs.enabled:
            _metrics.counter(
                "exec.cache_stores", "mission-cache artifacts written"
            ).inc(stage=stage)
