"""repro.exec: the mission execution engine.

Everything about *how* a mission run executes — as opposed to *what* it
computes — lives here:

- :mod:`repro.exec.executor` — per-day work unit (:func:`compute_day` /
  :class:`DayOutcome`) and the process-pool fan-out that is bit-identical
  to serial execution;
- :mod:`repro.exec.supervisor` — the production fan-out: per-day
  deadlines, seeded-jitter retries, broken-pool recovery with salvage,
  bounded degradation to serial;
- :mod:`repro.exec.checkpoint` — crash-recovery journal of completed
  days; ``ExecutionConfig(resume=True)`` restores them bit-identically;
- :mod:`repro.exec.cache` — content-addressed on-disk cache of ground
  truth and badge-day summaries;
- :mod:`repro.exec.integrity` — checksummed atomic artifacts and the
  quarantine policy shared by the cache and the journal;
- :mod:`repro.exec.hashing` — the stable config fingerprints the cache
  keys on.

Callers select execution behaviour with a frozen
:class:`~repro.core.config.ExecutionConfig`::

    from repro import ExecutionConfig, MissionConfig, run_mission

    result = run_mission(
        MissionConfig(days=14),
        execution=ExecutionConfig(
            n_workers=4,
            cache_dir=".mission-cache",
            checkpoint_dir=".mission-checkpoint",
            resume=True,
        ),
    )
"""

from repro.core.config import ExecutionConfig
from repro.exec.cache import MissionCache
from repro.exec.checkpoint import CheckpointJournal, JournalBusyError
from repro.exec.executor import (
    DayOutcome,
    ExecutorUnavailable,
    compute_day,
    run_days_parallel,
)
from repro.exec.hashing import (
    SCHEMA_VERSION,
    sensing_fingerprint,
    truth_compatible,
    truth_fingerprint,
)
from repro.exec.integrity import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactUnreadable,
)
from repro.exec.supervisor import run_days_supervised

__all__ = [
    "ArtifactCorrupt",
    "ArtifactError",
    "ArtifactUnreadable",
    "CheckpointJournal",
    "DayOutcome",
    "ExecutionConfig",
    "ExecutorUnavailable",
    "JournalBusyError",
    "MissionCache",
    "SCHEMA_VERSION",
    "compute_day",
    "run_days_parallel",
    "run_days_supervised",
    "sensing_fingerprint",
    "truth_compatible",
    "truth_fingerprint",
]
