"""Worker supervision: deadlines, retries, and broken-pool recovery.

:func:`repro.exec.executor.run_days_parallel` is the optimistic fan-out:
one pool, one ``map``, and any worker death loses the whole wave.  For a
long unattended sweep — the failure mode field deployments of distributed
instruments keep reporting — the mission driver uses this module's
:func:`run_days_supervised` instead, which wraps the same bit-identical
per-day work in a supervision loop:

* **deadlines** — a day that runs longer than
  ``ExecutionConfig.day_deadline_s`` in a worker is treated as hung: the
  pool is torn down (SIGKILL on the stuck processes), completed days are
  salvaged, and the day is retried, up to ``max_day_retries`` times;
* **broken-pool recovery** — a crashed worker (OOM kill, segfault, an
  injected ``worker-crash`` fault) breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`; the supervisor
  salvages every future that already completed — handing each to the
  caller's ``on_outcome`` hook so it reaches the checkpoint journal and
  cache *before* anything else happens — then respawns the pool and
  resubmits only the unfinished days;
* **seeded-jitter backoff** — respawns back off exponentially with
  jitter drawn from a seeded RNG (``supervisor_seed``), so retry storms
  desynchronize reproducibly;
* **bounded degradation** — after ``pool_failure_limit`` consecutive
  pool failures with no salvaged progress the supervisor raises
  :class:`~repro.exec.executor.ExecutorUnavailable` and the mission
  driver finishes the remaining days serially instead of aborting.
  Every outcome already handed to ``on_outcome`` is kept.

Genuine exceptions raised by the day computation itself are never
retried — they propagate unchanged, exactly as on the serial path.

Retries, timeouts, and fallbacks are all visible in telemetry
(``exec.retries``, ``exec.timeouts``, ``exec.pool_respawns`` counters and
``exec.supervise`` / ``exec.pool_wave`` spans): an unattended run that
limped through a night of worker crashes says so in its report.
"""

from __future__ import annotations

import concurrent.futures as cf
import time
from typing import Callable, Optional

import numpy as np

from repro.core.config import ExecutionConfig, MissionConfig
from repro.core.errors import ConfigError
from repro.exec.executor import (
    DayOutcome,
    ExecutorUnavailable,
    _worker_day,
    _worker_init,
    pickle_context,
)
from repro.badges.pipeline import SensingModels
from repro.crew.trace import MissionTruth
from repro.localization.pipeline import Localizer
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics
from repro.obs import span

log = get_logger("repro.exec.supervisor")

#: Poll interval of the future-watching loop, seconds.  Small enough
#: that deadline detection is prompt, large enough to stay off the CPU.
_POLL_S = 0.02


class _Wave:
    """What one pool submission wave produced."""

    __slots__ = ("results", "hung", "broken")

    def __init__(self) -> None:
        self.results: dict[int, DayOutcome] = {}
        self.hung: list[int] = []
        self.broken = False


def _spawn_pool(
    workers: int,
    payload: bytes,
    crash_days: frozenset[int],
    hang_days: frozenset[int],
    hang_s: float,
) -> cf.ProcessPoolExecutor:
    try:
        return cf.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(payload, _obs.enabled, tuple(sorted(crash_days)),
                      tuple(sorted(hang_days)), hang_s),
        )
    except (OSError, ValueError, PermissionError) as exc:
        raise ExecutorUnavailable(f"cannot start process pool: {exc!r}") from exc


def _kill_pool(pool: cf.ProcessPoolExecutor) -> None:
    """Tear a pool down hard: cancel queued work, SIGKILL the workers.

    Used when a worker is hung past its deadline — a graceful shutdown
    would wait on the stuck task forever.
    """
    procs = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.kill()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=2.0)
        except Exception:
            pass


def _collect_wave(
    futures: dict[cf.Future, int],
    deadline_s: Optional[float],
) -> _Wave:
    """Watch one wave of day futures until all resolve or one hangs.

    Completed futures are always harvested — even when a sibling broke
    the pool — so no finished work is ever discarded.  A genuine task
    exception propagates unchanged.
    """
    wave = _Wave()
    waiting = set(futures)
    started: dict[cf.Future, float] = {}
    while waiting:
        done, waiting = cf.wait(waiting, timeout=_POLL_S)
        for fut in done:
            day = futures[fut]
            if fut.cancelled():
                continue
            exc = fut.exception()
            if exc is None:
                wave.results[day] = fut.result()
            elif isinstance(exc, cf.process.BrokenProcessPool):
                wave.broken = True
            else:
                raise exc
        if wave.broken:
            continue  # siblings resolve (broken) almost immediately
        if deadline_s is not None:
            now = time.monotonic()
            for fut in list(waiting):
                if fut.running() and fut not in started:
                    started[fut] = now
            hung = [fut for fut, t0 in started.items()
                    if fut in waiting and now - t0 > deadline_s]
            if hung:
                wave.hung = sorted(futures[fut] for fut in hung)
                return wave  # caller kills the pool; unresolved futures die with it
    return wave


def run_days_supervised(
    cfg: MissionConfig,
    truth: MissionTruth,
    models: SensingModels,
    localizer: Localizer,
    days: list[int],
    execution: ExecutionConfig,
    *,
    on_outcome: Optional[Callable[[DayOutcome], None]] = None,
    crash_days: frozenset[int] = frozenset(),
    hang_days: frozenset[int] = frozenset(),
    hang_s: float = 120.0,
) -> dict[int, DayOutcome]:
    """Fan ``days`` across a supervised process pool; outcomes by day.

    ``on_outcome`` is invoked for every completed day the moment it is
    harvested — including days salvaged out of a broken pool — so the
    caller can checkpoint/cache it before the supervisor does anything
    riskier.  ``crash_days`` / ``hang_days`` inject executor-level
    faults (a worker computing such a day SIGKILLs itself / stalls),
    consumed once per day: after the resulting pool teardown the
    injection is spent and the retry computes the day normally.

    Raises :class:`ExecutorUnavailable` when parallel execution cannot
    proceed (unpicklable context, retry budget exhausted, too many
    consecutive pool failures); every outcome already delivered through
    ``on_outcome`` remains valid, so the caller can finish the remainder
    serially.
    """
    if execution.worker_count < 2:
        raise ConfigError("run_days_supervised needs n_workers >= 2")
    if cfg.fault_plan is not None and cfg.fault_plan.sensing_events():
        raise ExecutorUnavailable(
            "sensing-fault plans couple days through the SD-card budget; run serially"
        )
    payload = pickle_context(cfg, truth, models, localizer)

    pending = sorted(days)
    outcomes: dict[int, DayOutcome] = {}
    timeouts: dict[int, int] = {}
    to_crash = frozenset(crash_days) & set(pending)
    to_hang = frozenset(hang_days) & set(pending)
    rng = np.random.default_rng(execution.supervisor_seed)
    pool_failures = 0
    respawns = 0

    with span("exec.supervise", days=len(pending),
              workers=execution.worker_count):
        while pending:
            pool = _spawn_pool(
                min(execution.worker_count, len(pending)), payload,
                to_crash, to_hang, hang_s,
            )
            futures: dict[cf.Future, int] = {}
            submitted_all = True
            try:
                with span("exec.pool_wave", wave=respawns, days=len(pending)):
                    try:
                        for day in pending:
                            futures[pool.submit(_worker_day, day)] = day
                    except cf.process.BrokenProcessPool:
                        # A worker died while we were still submitting;
                        # harvest whatever the partial wave produced.
                        submitted_all = False
                    wave = _collect_wave(futures, execution.day_deadline_s)
                    if not submitted_all:
                        wave.broken = True
            except BaseException:
                _kill_pool(pool)
                raise
            # Salvage first: completed days reach the checkpoint/cache
            # before any respawn or give-up can lose them.
            for day in sorted(wave.results):
                outcome = wave.results[day]
                outcomes[day] = outcome
                pending.remove(day)
                if on_outcome is not None:
                    on_outcome(outcome)
            if wave.hung or wave.broken:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)
            if not pending:
                break

            # Every injected fault submitted to that pool is now spent;
            # retries must compute their days for real.
            to_crash -= set(futures.values())
            to_hang -= set(futures.values())

            if wave.hung:
                for day in wave.hung:
                    timeouts[day] = timeouts.get(day, 0) + 1
                    log.warning("worker-hung", day=day,
                                deadline_s=execution.day_deadline_s,
                                attempt=timeouts[day])
                    if _obs.enabled:
                        _metrics.counter(
                            "exec.timeouts",
                            "day tasks past their deadline (hung worker killed)",
                        ).inc()
                over = [d for d in wave.hung
                        if timeouts[d] > execution.max_day_retries]
                if over:
                    raise ExecutorUnavailable(
                        f"day(s) {over} exceeded the {execution.day_deadline_s}s "
                        f"deadline more than {execution.max_day_retries} time(s)"
                    )
            if wave.broken:
                pool_failures = 0 if wave.results else pool_failures + 1
                log.warning("pool-broken", salvaged=len(wave.results),
                            remaining=len(pending),
                            consecutive_failures=pool_failures)
                if _obs.enabled:
                    _metrics.counter(
                        "exec.pool_respawns",
                        "process pools respawned after breakage or hang",
                    ).inc()
                if pool_failures >= execution.pool_failure_limit:
                    raise ExecutorUnavailable(
                        f"process pool failed {pool_failures} consecutive "
                        f"times without progress"
                    )
            if _obs.enabled:
                _metrics.counter(
                    "exec.retries", "supervised day tasks re-submitted, by reason"
                ).inc(len(pending),
                      reason="timeout" if wave.hung else "pool-broken")
            respawns += 1
            delay = (execution.retry_backoff_s * (2.0 ** (respawns - 1))
                     * rng.uniform(0.5, 1.5))
            if delay > 0:
                time.sleep(min(delay, 5.0))
    return outcomes
