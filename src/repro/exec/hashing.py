"""Stable content fingerprints for mission configurations.

The mission cache is *content-addressed*: an artifact's key is a hash of
everything that determines its bytes — the relevant
:class:`~repro.core.config.MissionConfig` fields plus a schema version
tag — and nothing else.  Two configs that agree on those fields share
artifacts; changing any of them (a different ``seed``, ``frame_dt``, or
``fault_plan``) changes the key and therefore transparently invalidates
every stale artifact without any explicit eviction logic.

Fingerprints are computed by canonicalizing the config into plain JSON
data (dataclasses become tagged dicts, sets are sorted, numpy scalars
are unwrapped) and hashing the sorted-key JSON encoding with BLAKE2b.
Python's builtin :func:`hash` is per-process salted and must never be
used here.

Two stages, two keys:

* **truth** — the ground-truth crew simulation depends only on
  :data:`TRUTH_FIELDS`.  Sensing-side knobs (beacon count, wear
  compliance, fault plan) are deliberately excluded, so an ablation
  sweep over those reuses one cached truth across every variant.
* **sensing** — badge-day summaries depend on the full config
  (including the fault plan), so any override invalidates them.

Bump :data:`SCHEMA_VERSION` whenever the *pipeline itself* changes in a
way that alters outputs for an unchanged config — the version is part of
every key, so old artifacts simply stop matching.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

from repro.core.config import MissionConfig
from repro.core.errors import ConfigError

#: Version tag baked into every fingerprint.  Bump on any change to the
#: crew simulation, sensing synthesis, localization, or summary layout
#: that alters results for an identical config.
SCHEMA_VERSION = 1

#: The config fields the ground-truth crew simulation reads.  Everything
#: else (beacons, wear compliance, fault plan, link delay) only affects
#: sensing and later stages.
TRUTH_FIELDS = (
    "seed",
    "days",
    "daytime_start",
    "daytime_hours",
    "frame_dt",
    "crew_size",
    "events",
)


def canonical(value: Any) -> Any:
    """Reduce ``value`` to plain, JSON-serializable, order-stable data.

    Dataclasses become ``{"__type__": name, **fields}`` dicts so two
    different dataclasses with identical fields cannot collide; sets and
    frozensets are sorted; tuples become lists; numpy scalars unwrap via
    ``.item()``.
    """
    if is_dataclass(value) and not isinstance(value, type):
        out: dict[str, Any] = {"__type__": type(value).__name__}
        for f in fields(value):
            out[f.name] = canonical(getattr(value, f.name))
        return out
    if isinstance(value, Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted((canonical(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return canonical(item())
    raise ConfigError(
        f"cannot canonicalize {type(value).__name__!r} for a cache key; "
        "only dataclasses and plain data may live in a MissionConfig"
    )


def fingerprint(value: Any, *, stage: str = "") -> str:
    """Hex BLAKE2b digest of the canonical form of ``value``.

    The digest covers :data:`SCHEMA_VERSION` and the ``stage`` label, so
    truth and sensing artifacts of the same config never share a key.
    """
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "stage": stage, "value": canonical(value)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def truth_fingerprint(cfg: MissionConfig) -> str:
    """Cache key of the ground-truth stage (:data:`TRUTH_FIELDS` only)."""
    subset = {name: canonical(getattr(cfg, name)) for name in TRUTH_FIELDS}
    return fingerprint(subset, stage="truth")


def sensing_fingerprint(cfg: MissionConfig) -> str:
    """Cache key of the sensing stage (the full config, fault plan included)."""
    return fingerprint(cfg, stage="sensing")


def truth_compatible(cfg: MissionConfig, other: MissionConfig) -> bool:
    """Whether a truth simulated under ``other`` is valid for ``cfg``.

    True exactly when the two configs agree on every truth-stage field;
    the deterministic crew simulation then produces identical traces, so
    the cached/supplied truth can stand in for ``simulate_mission(cfg)``.
    """
    return truth_fingerprint(cfg) == truth_fingerprint(other)
