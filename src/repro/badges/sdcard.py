"""On-board SD-card storage accounting.

"Because of the novelty and unpredictability of the deployment, we
decided to collect frequently sampled raw data and store them on an
on-board SD card for offline analyses" — yielding about 150 GiB over the
13 instrumented days.  The accountant tracks bytes written per badge per
day from per-sensor logging rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.core.units import GIB

#: Raw logging rates while active, bytes per second.  Audio features and
#: high-rate IMU dominate, matching the paper's ~150 GiB total.
DEFAULT_RATES_BPS: dict[str, float] = {
    "microphone": 34_000.0,
    "imu": 7_200.0,
    "ble_scans": 1_400.0,
    "subghz": 400.0,
    "environment": 150.0,
    "infrared": 60.0,
}

#: SD card capacity per badge, bytes.
CARD_CAPACITY_BYTES = 64 * GIB


@dataclass
class SdCardAccountant:
    """Accumulates bytes written across the fleet.

    Totals are maintained as running per-badge and fleet counters, so
    :meth:`badge_total` and :meth:`total_bytes` are O(1) regardless of
    mission length (they used to re-sum the ``written`` dict on every
    query).  Re-recording a ``(badge, day)`` entry adjusts the counters
    by the delta, so overwrites (fault-injection masking a day after the
    fact) stay exact.
    """

    rates_bps: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES_BPS))
    capacity_bytes: float = CARD_CAPACITY_BYTES
    #: (badge_id, day) -> bytes written that day.
    written: dict[tuple[int, int], float] = field(default_factory=dict)
    #: Per-badge capacity overrides (fault injection: a worn-out card).
    capacity_overrides: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(rate < 0 for rate in self.rates_bps.values()):
            raise ConfigError("logging rates must be non-negative")
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        if any(cap <= 0 for cap in self.capacity_overrides.values()):
            raise ConfigError("capacity must be positive")
        self._badge_totals: dict[int, float] = {}
        self._fleet_total = 0.0
        for (badge_id, _), value in self.written.items():
            self._badge_totals[badge_id] = self._badge_totals.get(badge_id, 0.0) + value
            self._fleet_total += value

    @property
    def total_rate_bps(self) -> float:
        """Aggregate logging rate while active."""
        return sum(self.rates_bps.values())

    def record_day(self, badge_id: int, day: int, active_seconds: float) -> float:
        """Account one badge-day of logging; returns bytes written."""
        if active_seconds < 0:
            raise ConfigError("active_seconds must be non-negative")
        written = active_seconds * self.total_rate_bps
        previous = self.written.get((badge_id, day), 0.0)
        self.written[(badge_id, day)] = written
        self._badge_totals[badge_id] = (
            self._badge_totals.get(badge_id, 0.0) + written - previous
        )
        self._fleet_total += written - previous
        return written

    def badge_total(self, badge_id: int) -> float:
        """Total bytes a badge has written so far.  O(1)."""
        return self._badge_totals.get(badge_id, 0.0)

    def total_bytes(self) -> float:
        """Total bytes across the fleet.  O(1)."""
        return self._fleet_total

    def total_gib(self) -> float:
        """Fleet total in GiB (the paper reports ~150 GiB)."""
        return self.total_bytes() / GIB

    def capacity_for(self, badge_id: int) -> float:
        """Card capacity of one badge (override or fleet default)."""
        return self.capacity_overrides.get(badge_id, self.capacity_bytes)

    def set_capacity(self, badge_id: int, capacity_bytes: float) -> None:
        """Override one badge's card capacity (fault injection)."""
        if capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity_overrides[badge_id] = capacity_bytes

    def remaining(self, badge_id: int) -> float:
        """Free card space on one badge (0 when exhausted)."""
        return max(0.0, self.capacity_for(badge_id) - self.badge_total(badge_id))

    def over_capacity(self) -> list[int]:
        """Badges whose cumulative writes exceed their card capacity."""
        return sorted(
            b for b, total in self._badge_totals.items()
            if total > self.capacity_for(b)
        )
