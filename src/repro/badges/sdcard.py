"""On-board SD-card storage accounting.

"Because of the novelty and unpredictability of the deployment, we
decided to collect frequently sampled raw data and store them on an
on-board SD card for offline analyses" — yielding about 150 GiB over the
13 instrumented days.  The accountant tracks bytes written per badge per
day from per-sensor logging rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.core.units import GIB

#: Raw logging rates while active, bytes per second.  Audio features and
#: high-rate IMU dominate, matching the paper's ~150 GiB total.
DEFAULT_RATES_BPS: dict[str, float] = {
    "microphone": 34_000.0,
    "imu": 7_200.0,
    "ble_scans": 1_400.0,
    "subghz": 400.0,
    "environment": 150.0,
    "infrared": 60.0,
}

#: SD card capacity per badge, bytes.
CARD_CAPACITY_BYTES = 64 * GIB


@dataclass
class SdCardAccountant:
    """Accumulates bytes written across the fleet."""

    rates_bps: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES_BPS))
    capacity_bytes: float = CARD_CAPACITY_BYTES
    #: (badge_id, day) -> bytes written that day.
    written: dict[tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(rate < 0 for rate in self.rates_bps.values()):
            raise ConfigError("logging rates must be non-negative")
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")

    @property
    def total_rate_bps(self) -> float:
        """Aggregate logging rate while active."""
        return sum(self.rates_bps.values())

    def record_day(self, badge_id: int, day: int, active_seconds: float) -> float:
        """Account one badge-day of logging; returns bytes written."""
        if active_seconds < 0:
            raise ConfigError("active_seconds must be non-negative")
        written = active_seconds * self.total_rate_bps
        self.written[(badge_id, day)] = written
        return written

    def badge_total(self, badge_id: int) -> float:
        """Total bytes a badge has written so far."""
        return sum(v for (b, _), v in self.written.items() if b == badge_id)

    def total_bytes(self) -> float:
        """Total bytes across the fleet."""
        return sum(self.written.values())

    def total_gib(self) -> float:
        """Fleet total in GiB (the paper reports ~150 GiB)."""
        return self.total_bytes() / GIB

    def over_capacity(self) -> list[int]:
        """Badges whose cumulative writes exceed their card capacity."""
        badges = {b for b, _ in self.written}
        return sorted(b for b in badges if self.badge_total(b) > self.capacity_bytes)
