"""Badge battery model.

Raw-data logging "inherently led to increased energy consumption; we
required each badge to be charged overnight".  Overnight charging is
imperfect, so a badge starts the day with 75-100% charge, drains while
recording, and either tops up at the charging station mid-day (the badge
is off the neck and not recording during the stint) or dies before the
evening.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.units import HOUR


@dataclass(frozen=True)
class BatteryModel:
    """Daily battery behaviour parameters.

    Attributes:
        full_runtime_s: recording time a full charge supports.
        morning_charge_lo/hi: uniform range of the day-start charge level.
        topup_threshold: charge fraction below which the wearer docks the
            badge for a top-up stint.
        topup_duration_s: length of a mid-day charging stint.
    """

    full_runtime_s: float = 15.0 * HOUR
    morning_charge_lo: float = 0.75
    morning_charge_hi: float = 1.0
    topup_threshold: float = 0.15
    topup_duration_s: float = 1.2 * HOUR
    #: Probability the wearer actually notices and docks the badge when
    #: the threshold is crossed (otherwise it runs until it dies).
    topup_diligence: float = 0.85

    def __post_init__(self) -> None:
        if self.full_runtime_s <= 0 or self.topup_duration_s <= 0:
            raise ConfigError("runtimes must be positive")
        if not 0 < self.morning_charge_lo <= self.morning_charge_hi <= 1.0:
            raise ConfigError("invalid morning charge range")
        if not 0 < self.topup_threshold < 1:
            raise ConfigError("topup_threshold must be in (0, 1)")

    def plan_day(
        self, daytime_s: float, rng: np.random.Generator
    ) -> list[tuple[float, float]]:
        """Inactive windows (relative seconds within daytime) for one day.

        Returns a list of ``(start, end)`` windows during which the badge
        is not recording: a charging stint and/or a dead tail.
        """
        charge = rng.uniform(self.morning_charge_lo, self.morning_charge_hi)
        windows: list[tuple[float, float]] = []
        t = 0.0
        while t < daytime_s:
            runtime_left = charge * self.full_runtime_s
            threshold_in = (charge - self.topup_threshold) * self.full_runtime_s
            if t + runtime_left >= daytime_s and t + threshold_in >= daytime_s:
                break  # makes it to the evening without intervention
            if rng.random() < self.topup_diligence:
                # People dock opportunistically somewhere before the low
                # battery warning, not all at the same instant -- this
                # staggers outages so fleet-wide coverage gaps are rare.
                dock_at = t + max(threshold_in, 0.0) * rng.uniform(0.35, 0.95)
                dock_end = min(dock_at + self.topup_duration_s, daytime_s)
                if dock_at < daytime_s:
                    windows.append((dock_at, dock_end))
                charge_at_dock = charge - (dock_at - t) / self.full_runtime_s
                charge = min(
                    1.0,
                    charge_at_dock
                    + (dock_end - dock_at) / self.topup_duration_s * 0.8,
                )
                t = dock_end
            else:
                died_at = t + runtime_left
                if died_at < daytime_s:
                    windows.append((died_at, daytime_s))
                break
        return windows
