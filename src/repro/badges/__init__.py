"""Badge substrate: the wearable sociometric badge fleet.

Device model, badge-to-astronaut assignment (including the real
deployment's swap and reuse anomalies), the wear-compliance model,
battery and SD-card accounting, per-sensor synthesis, and the day-level
sensing pipeline that turns ground truth into observations.
"""

from repro.badges.assignment import BadgeAssignment, REFERENCE_BADGE_ID
from repro.badges.badge import Badge, badge_fleet
from repro.badges.pipeline import BadgeDayObservations, PairwiseDay, SensingModels, sense_day
from repro.badges.sdcard import SdCardAccountant
from repro.badges.wear import WearDay, WearModel

__all__ = [
    "Badge",
    "BadgeAssignment",
    "BadgeDayObservations",
    "PairwiseDay",
    "REFERENCE_BADGE_ID",
    "SdCardAccountant",
    "SensingModels",
    "WearDay",
    "WearModel",
    "badge_fleet",
    "sense_day",
]
