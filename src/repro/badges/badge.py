"""The badge device.

"Its dimensions are 140 mm x 84 mm x 10 mm and its weight, including all
electronics, a battery, a 3D-printed casing, and a cord, is just 111 g"
— worn on a neck cord.  Each badge has its own drifting clock, battery,
and SD card; six primary badges were assigned to the crew, six backups
waited in storage, and a permanently-charged reference badge sat at the
charging station.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import ClockModel
from repro.core.errors import ConfigError

#: Physical constants from the paper.
BADGE_DIMENSIONS_MM = (140.0, 84.0, 10.0)
BADGE_WEIGHT_G = 111.0

#: Crystal drift spread across the fleet, ppm.
DRIFT_SIGMA_PPM = 12.0
#: Initial clock offset spread at deployment, seconds.
INITIAL_OFFSET_SIGMA_S = 4.0


@dataclass
class Badge:
    """One physical badge."""

    badge_id: int
    clock: ClockModel = field(default_factory=ClockModel)
    is_reference: bool = False
    is_backup: bool = False
    #: Day on which the badge permanently failed, or ``None``.
    failed_on_day: int | None = None

    def __post_init__(self) -> None:
        if self.badge_id < 0:
            raise ConfigError("badge_id must be non-negative")

    def alive_on(self, day: int) -> bool:
        """Whether the badge still works on ``day``."""
        return self.failed_on_day is None or day < self.failed_on_day


def badge_fleet(
    n_primary: int,
    rng: np.random.Generator,
    n_backup: int | None = None,
) -> dict[int, Badge]:
    """Create the deployed fleet: primaries, backups, and the reference.

    Badge ids ``0 .. n_primary-1`` are the primary badges (id ``i``
    nominally belongs to crew member ``i``); the next ``n_backup`` ids
    are backups; the highest id is the reference badge, whose clock is
    by definition the time standard (zero offset/drift).
    """
    if n_backup is None:
        n_backup = n_primary  # the deployment carried one backup each
    fleet: dict[int, Badge] = {}
    for i in range(n_primary + n_backup):
        clock = ClockModel(
            offset_s=float(rng.normal(0.0, INITIAL_OFFSET_SIGMA_S)),
            drift_ppm=float(rng.normal(0.0, DRIFT_SIGMA_PPM)),
        )
        fleet[i] = Badge(badge_id=i, clock=clock, is_backup=i >= n_primary)
    ref_id = n_primary + n_backup
    fleet[ref_id] = Badge(badge_id=ref_id, clock=ClockModel(), is_reference=True)
    return fleet
