"""Per-sensor observation synthesis for the badge.

Each module turns ground truth plus wear state into the feature stream
the real badge firmware logged: motion features from the IMU, voice-band
levels and pitch from the microphone (never raw audio — recording
conversations was prohibited), and environmental readings.
"""

from repro.badges.sensors.accelerometer import AccelerometerModel
from repro.badges.sensors.environment import EnvironmentSensors
from repro.badges.sensors.imu import ImuModel
from repro.badges.sensors.microphone import MicrophoneModel, SpeechSources

__all__ = [
    "AccelerometerModel",
    "EnvironmentSensors",
    "ImuModel",
    "MicrophoneModel",
    "SpeechSources",
]
