"""Gyroscope and magnetometer feature synthesis.

The localization pipeline deliberately does *not* use the inertial
sensors ("the accuracy was high even without employing the inertial
sensors of a badge"), but the firmware logged them and the ablation
benchmarks exercise them, so the features exist: per-frame gyroscope RMS
(turn intensity) and a magnetometer heading that random-walks while the
wearer moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ImuModel:
    """Gyro/magnetometer synthesis parameters."""

    gyro_walk_mean: float = 0.9     # rad/s RMS while walking (turning)
    gyro_walk_sigma: float = 0.3
    gyro_still_mean: float = 0.08
    gyro_still_sigma: float = 0.04
    heading_step_walk_rad: float = 0.35
    heading_noise_rad: float = 0.02

    def synthesize(
        self,
        walking: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(gyro_rms, heading_rad)`` per frame; NaN when inactive."""
        n = walking.shape[0]
        gyro = np.full(n, np.nan, dtype=np.float32)
        still = active & ~(worn & walking)
        gyro[still] = np.abs(
            rng.normal(self.gyro_still_mean, self.gyro_still_sigma, int(still.sum()))
        )
        moving = active & worn & walking
        gyro[moving] = np.abs(
            rng.normal(self.gyro_walk_mean, self.gyro_walk_sigma, int(moving.sum()))
        )

        steps = np.where(
            worn & walking,
            rng.normal(0.0, self.heading_step_walk_rad, n),
            rng.normal(0.0, self.heading_noise_rad, n),
        )
        heading = np.mod(np.cumsum(steps), 2.0 * np.pi).astype(np.float32)
        heading[~active] = np.nan
        return gyro, heading

    def synthesize_fleet(
        self,
        walking: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fleet-batched synthesis over ``(badges, frames)`` inputs.

        Heading is a per-badge cumulative random walk, so each badge's
        draws stay sequential on its own stream; batching across badges
        cannot change any per-stream draw order.

        Returns:
            ``(gyro_rms, heading_rad)``, each ``(badges, frames)``.
        """
        results = [
            self.synthesize(walking[b], worn[b], active[b], rngs[b])
            for b in range(active.shape[0])
        ]
        return (
            np.stack([gyro for gyro, _ in results]),
            np.stack([heading for _, heading in results]),
        )
