"""Thermometer, barometer, and light-sensor synthesis.

Environmental readings come from the room the *badge* is in (not the
wearer — a badge on a desk reports the desk's room), plus sensor noise.
The reference badge at the charging station sampled these continuously,
giving the fleet a common baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.habitat.environment import Environment
from repro.habitat.floorplan import FloorPlan


@dataclass(frozen=True)
class EnvironmentSensors:
    """Noise parameters of the badge's environmental sensors."""

    temp_noise_c: float = 0.15
    pressure_noise_hpa: float = 0.4
    light_noise_rel: float = 0.08
    #: Light multiplier when the badge lies face-up on a desk vs on a
    #: chest (cord shadowing) -- worn badges read slightly darker.
    worn_light_factor: float = 0.8

    def synthesize(
        self,
        env: Environment,
        plan: FloorPlan,
        badge_room: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        t_abs: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(temperature_c, pressure_hpa, light_lux)`` per frame.

        NaN wherever the badge is inactive.  Deprecated thin wrapper
        (batch of 1) around :meth:`synthesize_fleet`; prefer the fleet
        call when synthesizing several badges.
        """
        temp, pressure, light = self.synthesize_fleet(
            env, plan, badge_room[None], worn[None], active[None], t_abs, (rng,)
        )
        return temp[0], pressure[0], light[0]

    def synthesize_fleet(
        self,
        env: Environment,
        plan: FloorPlan,
        badge_room: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        t_abs: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Environmental readings for a whole badge fleet in one call.

        The per-room field evaluation runs once over the stacked
        ``badges x frames`` grid; the draws stay per badge, in the order
        temperature normals, light normals, pressure normals, so a batch
        of one is bit-identical to the same badge's row in a larger
        batch.

        Args:
            env: the habitat's environmental fields.
            plan: floor plan.
            badge_room: ``(badges, frames)`` badge room indices.
            worn: ``(badges, frames)`` worn masks.
            active: ``(badges, frames)`` recording masks.
            t_abs: ``(frames,)`` absolute mission times (shared).
            rngs: one random stream per badge, aligned with axis 0.

        Returns:
            ``(temperature_c, pressure_hpa, light_lux)``, each a
            ``(badges, frames)`` float32 array, NaN where inactive.
        """
        n_badges, n = badge_room.shape
        temp = np.full((n_badges, n), np.nan, dtype=np.float32)
        light = np.full((n_badges, n), np.nan, dtype=np.float32)
        t_grid = np.broadcast_to(t_abs, (n_badges, n))

        for room_idx in np.unique(badge_room):
            if room_idx < 0:
                continue
            mask = active & (badge_room == room_idx)
            if not mask.any():
                continue
            name = plan.name_of(int(room_idx))
            temp[mask] = env.temperature_c(name, t_grid[mask])
            light[mask] = env.light_lux(name, t_grid[mask])

        pressure_base = env.pressure_hpa(t_abs)
        light_out = np.empty((n_badges, n), dtype=np.float32)
        pressure = np.full((n_badges, n), np.nan, dtype=np.float32)
        for b in range(n_badges):
            rng = rngs[b]
            act = active[b]
            temp[b, act] += rng.normal(0.0, self.temp_noise_c, int(act.sum()))
            light_factor = np.where(worn[b], self.worn_light_factor, 1.0)
            noisy = light[b] * light_factor * (
                1.0 + rng.normal(0.0, self.light_noise_rel, n)
            )
            light_out[b] = np.where(act, np.maximum(noisy, 0.0), np.nan)
            pressure[b, act] = (
                pressure_base[act]
                + rng.normal(0.0, self.pressure_noise_hpa, int(act.sum()))
            )
        return temp, pressure, light_out
