"""Thermometer, barometer, and light-sensor synthesis.

Environmental readings come from the room the *badge* is in (not the
wearer — a badge on a desk reports the desk's room), plus sensor noise.
The reference badge at the charging station sampled these continuously,
giving the fleet a common baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.habitat.environment import Environment
from repro.habitat.floorplan import FloorPlan


@dataclass(frozen=True)
class EnvironmentSensors:
    """Noise parameters of the badge's environmental sensors."""

    temp_noise_c: float = 0.15
    pressure_noise_hpa: float = 0.4
    light_noise_rel: float = 0.08
    #: Light multiplier when the badge lies face-up on a desk vs on a
    #: chest (cord shadowing) -- worn badges read slightly darker.
    worn_light_factor: float = 0.8

    def synthesize(
        self,
        env: Environment,
        plan: FloorPlan,
        badge_room: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        t_abs: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(temperature_c, pressure_hpa, light_lux)`` per frame.

        NaN wherever the badge is inactive.
        """
        n = badge_room.shape[0]
        temp = np.full(n, np.nan, dtype=np.float32)
        light = np.full(n, np.nan, dtype=np.float32)

        for room_idx in np.unique(badge_room):
            if room_idx < 0:
                continue
            mask = active & (badge_room == room_idx)
            if not mask.any():
                continue
            name = plan.name_of(int(room_idx))
            temp[mask] = env.temperature_c(name, t_abs[mask])
            light[mask] = env.light_lux(name, t_abs[mask])

        temp[active] += rng.normal(0.0, self.temp_noise_c, int(active.sum()))
        light_factor = np.where(worn, self.worn_light_factor, 1.0)
        noisy = light * light_factor * (
            1.0 + rng.normal(0.0, self.light_noise_rel, n)
        )
        light = np.where(active, np.maximum(noisy, 0.0), np.nan).astype(np.float32)

        pressure = np.full(n, np.nan, dtype=np.float32)
        pressure[active] = (
            env.pressure_hpa(t_abs[active])
            + rng.normal(0.0, self.pressure_noise_hpa, int(active.sum()))
        )
        return temp, pressure, light
