"""Accelerometer feature synthesis.

The firmware logs a per-frame RMS of the dynamic (gravity-removed)
acceleration.  Walking produces a strong rhythmic signature; seated work
produces micro-motion; a badge on a desk is almost perfectly still.  The
walking analysis (paper Fig. 4) thresholds this feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.crew.tasks import Activity


@dataclass(frozen=True)
class AccelerometerModel:
    """Gaussian activity-conditioned RMS acceleration, m/s^2.

    Attributes:
        walk_mean/walk_sigma: level while the wearer walks.
        still_mean/still_sigma: level while worn but stationary.
        desk_mean/desk_sigma: level while off the neck on a surface.
        bump_prob: per-frame probability of a spurious knock while
            stationary (tools, table bumps) that can fool the classifier.
    """

    walk_mean: float = 2.2
    walk_sigma: float = 0.35
    still_mean: float = 0.30
    still_sigma: float = 0.12
    desk_mean: float = 0.03
    desk_sigma: float = 0.015
    bump_prob: float = 0.004
    bump_level: float = 1.8

    def __post_init__(self) -> None:
        if min(self.walk_mean, self.still_mean, self.desk_mean) < 0:
            raise ConfigError("acceleration means must be non-negative")
        if not 0 <= self.bump_prob < 1:
            raise ConfigError("bump_prob must be in [0, 1)")

    def synthesize(
        self,
        walking: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        activity: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-frame RMS acceleration; NaN where the badge is inactive."""
        n = walking.shape[0]
        out = np.full(n, np.nan, dtype=np.float32)
        desk = active & ~worn
        out[desk] = rng.normal(self.desk_mean, self.desk_sigma, int(desk.sum()))
        still = active & worn & ~walking
        values = rng.normal(self.still_mean, self.still_sigma, int(still.sum()))
        # Exercise shakes the wearer even between steps.
        exercising = activity[still] == int(Activity.EXERCISE)
        values[exercising] += 1.2
        bumps = rng.random(values.shape) < self.bump_prob
        values[bumps] += self.bump_level
        out[still] = values
        moving = active & worn & walking
        out[moving] = rng.normal(self.walk_mean, self.walk_sigma, int(moving.sum()))
        np.clip(out, 0.0, None, out=out)
        return out

    def synthesize_fleet(
        self,
        walking: np.ndarray,
        worn: np.ndarray,
        active: np.ndarray,
        activity: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Fleet-batched synthesis over ``(badges, frames)`` inputs.

        The draw counts are data-dependent per badge (desk/still/walk
        partitions differ), so each badge's draws necessarily come from
        its own stream in sequence; batching across badges cannot change
        any per-stream draw order.

        Returns:
            ``(badges, frames)`` float32 RMS acceleration.
        """
        return np.stack([
            self.synthesize(walking[b], worn[b], active[b], activity[b], rngs[b])
            for b in range(active.shape[0])
        ])
