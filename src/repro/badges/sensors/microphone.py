"""Microphone feature synthesis.

The badge microphone was used "to detect the presence of human speech,
its loudness, and frequency, notably for identifying the speaker during
a multi-person conversation and distinguishing between male and female
speakers; we did not, however, record raw data from conversations."
Accordingly the synthesized stream contains only features: per-frame
voice-band level, dominant-speaker pitch, a pitch-stability feature
(assistive TTS speech is conspicuously monotone), and the overall sound
level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import DataError
from repro.crew.conversation import TTS_LOUDNESS_DB

#: Speech attenuation per wall, dB (speech barely crosses the metal walls).
SPEECH_WALL_DB = 28.0
#: Near-field clamp for source distance, m.
MIN_SOURCE_DISTANCE_M = 0.3
#: Pitch of the screen-reader voice, Hz (synthesized, very stable).
TTS_PITCH_HZ = 150.0
#: Pitch-stability feature levels (1.0 = perfectly monotone).
HUMAN_STABILITY_MEAN, HUMAN_STABILITY_SIGMA = 0.40, 0.12
TTS_STABILITY_MEAN, TTS_STABILITY_SIGMA = 0.93, 0.03
#: Level below which no pitch is reported.
PITCH_FLOOR_DB = 40.0


@dataclass
class SpeechSources:
    """All speech sources in the habitat for one day.

    Human rows come straight from ground truth; each impaired astronaut
    using a screen reader contributes an extra machine source co-located
    with them.
    """

    xy: np.ndarray          # (sources, frames, 2)
    room: np.ndarray        # (sources, frames)
    speaking: np.ndarray    # (sources, frames) bool
    loudness: np.ndarray    # (sources, frames) float32, dB at 1 m
    pitch_hz: np.ndarray    # (sources,)
    is_machine: np.ndarray  # (sources,) bool

    def __post_init__(self) -> None:
        n_sources = self.xy.shape[0]
        for name in ("room", "speaking", "loudness"):
            if getattr(self, name).shape[0] != n_sources:
                raise DataError(f"{name} rows do not match sources")

    @classmethod
    def from_truth(cls, truth, day: int) -> "SpeechSources":
        """Collect the day's sources from a mission's ground truth."""
        xs, rooms, speaking, loudness, pitches, machine = [], [], [], [], [], []
        for astro in truth.roster.ids:
            trace = truth.trace(astro, day)
            profile = truth.roster.profile(astro)
            pos = np.stack([trace.x, trace.y], axis=1)
            xs.append(pos)
            rooms.append(trace.room)
            speaking.append(trace.speaking)
            loudness.append(trace.loudness)
            pitches.append(profile.voice_pitch_hz)
            machine.append(False)
            if trace.machine_speech.any():
                xs.append(pos)
                rooms.append(trace.room)
                speaking.append(trace.machine_speech)
                loudness.append(
                    np.where(trace.machine_speech, TTS_LOUDNESS_DB, 0.0).astype(np.float32)
                )
                pitches.append(TTS_PITCH_HZ)
                machine.append(True)
        return cls(
            xy=np.stack(xs),
            room=np.stack(rooms),
            speaking=np.stack(speaking),
            loudness=np.stack(loudness),
            pitch_hz=np.asarray(pitches, dtype=np.float64),
            is_machine=np.asarray(machine, dtype=bool),
        )


@dataclass
class MicrophoneOutput:
    """Per-frame microphone features for one badge-day."""

    voice_db: np.ndarray        # received voice-band level; -inf = silence
    dominant_pitch_hz: np.ndarray  # NaN when no usable voice signal
    pitch_stability: np.ndarray    # NaN when no usable voice signal
    sound_db: np.ndarray        # overall level including ambient noise


class MicrophoneModel:
    """Synthesizes microphone features at a badge's position."""

    def __init__(self, wall_db: float = SPEECH_WALL_DB):
        self.wall_db = float(wall_db)

    def synthesize(
        self,
        sources: SpeechSources,
        badge_xy: np.ndarray,
        badge_room: np.ndarray,
        active: np.ndarray,
        wall_matrix: np.ndarray,
        noise_floor_by_room: np.ndarray,
        rng: np.random.Generator,
    ) -> MicrophoneOutput:
        """Compute one badge-day of microphone features.

        Deprecated thin wrapper (batch of 1) around
        :meth:`synthesize_fleet`; prefer the fleet call when synthesizing
        several badges.

        Args:
            sources: the day's speech sources.
            badge_xy: ``(frames, 2)`` badge positions.
            badge_room: ``(frames,)`` badge room indices.
            active: ``(frames,)`` recording mask.
            wall_matrix: ``(rooms, rooms)`` wall counts.
            noise_floor_by_room: ``(rooms,)`` ambient floor per room, dB.
            rng: random stream.
        """
        fleet = self.synthesize_fleet(
            sources, badge_xy[None], badge_room[None], active[None],
            wall_matrix, noise_floor_by_room, (rng,),
        )
        return MicrophoneOutput(
            voice_db=fleet.voice_db[0],
            dominant_pitch_hz=fleet.dominant_pitch_hz[0],
            pitch_stability=fleet.pitch_stability[0],
            sound_db=fleet.sound_db[0],
        )

    def synthesize_fleet(
        self,
        sources: SpeechSources,
        badge_xy: np.ndarray,
        badge_room: np.ndarray,
        active: np.ndarray,
        wall_matrix: np.ndarray,
        noise_floor_by_room: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> MicrophoneOutput:
        """Microphone features for a whole badge fleet in one call.

        The source-accumulation sweep runs once over the flattened
        ``badges x frames`` grid; the draws stay per badge, in the order
        pitch normals, stability normals, noise-floor normals, so a batch
        of one is bit-identical to the same badge's row in a larger
        batch.

        Args:
            sources: the day's speech sources.
            badge_xy: ``(badges, frames, 2)`` badge positions.
            badge_room: ``(badges, frames)`` badge room indices.
            active: ``(badges, frames)`` recording masks.
            wall_matrix: ``(rooms, rooms)`` wall counts.
            noise_floor_by_room: ``(rooms,)`` ambient floor per room, dB.
            rngs: one random stream per badge, aligned with axis 0.

        Returns:
            :class:`MicrophoneOutput` of ``(badges, frames)`` arrays.
        """
        n_badges, n = badge_room.shape
        total = n_badges * n
        xy_flat = np.ascontiguousarray(badge_xy).reshape(total, 2)
        room_flat = np.ascontiguousarray(badge_room).reshape(total)
        active_flat = np.ascontiguousarray(active).reshape(total)
        power = np.zeros(total, dtype=np.float64)
        best_level = np.full(total, -np.inf, dtype=np.float64)
        best_src = np.full(total, -1, dtype=np.int32)
        in_room = room_flat >= 0
        base = active & (badge_room >= 0)

        for s in range(sources.xy.shape[0]):
            speaking = (sources.speaking[s] & (sources.room[s] >= 0))[None, :] & base
            idx = np.flatnonzero(speaking.reshape(total))
            if idx.size == 0:
                continue
            fidx = idx % n
            dx = xy_flat[idx, 0] - sources.xy[s, fidx, 0]
            dy = xy_flat[idx, 1] - sources.xy[s, fidx, 1]
            d2 = np.maximum(
                dx * dx + dy * dy, MIN_SOURCE_DISTANCE_M * MIN_SOURCE_DISTANCE_M
            )
            walls = wall_matrix[room_flat[idx], sources.room[s, fidx]]
            level = (
                sources.loudness[s, fidx].astype(np.float64)
                - 10.0 * np.log10(d2)
                - walls * self.wall_db
            )
            power[idx] += 10.0 ** (level / 10.0)
            better = level > best_level[idx]
            best_level[idx[better]] = level[better]
            best_src[idx[better]] = s

        with np.errstate(divide="ignore"):
            voice_db = 10.0 * np.log10(power)
        voice_db[~active_flat] = np.nan

        pitch = np.full(total, np.nan, dtype=np.float32)
        stability = np.full(total, np.nan, dtype=np.float32)
        audible = active_flat & (best_level >= PITCH_FLOOR_DB)
        floor_db = np.where(
            in_room, noise_floor_by_room[np.maximum(room_flat, 0)], 30.0
        )
        for b in range(n_badges):
            rng = rngs[b]
            lo = b * n
            idx = np.flatnonzero(audible[lo:lo + n]) + lo
            if idx.size:
                src = best_src[idx]
                pitch[idx] = sources.pitch_hz[src] + rng.normal(0.0, 6.0, idx.size)
                machine = sources.is_machine[src]
                values = np.where(
                    machine,
                    rng.normal(TTS_STABILITY_MEAN, TTS_STABILITY_SIGMA, idx.size),
                    rng.normal(HUMAN_STABILITY_MEAN, HUMAN_STABILITY_SIGMA, idx.size),
                ).astype(np.float32)
                stability[idx] = np.clip(values, 0.0, 1.0)
            floor_db[lo:lo + n] += rng.normal(0.0, 1.0, n)

        total_power = power + 10.0 ** (floor_db / 10.0)
        sound_db = 10.0 * np.log10(total_power)
        sound_db[~active_flat] = np.nan

        return MicrophoneOutput(
            voice_db=voice_db.astype(np.float32).reshape(n_badges, n),
            dominant_pitch_hz=pitch.reshape(n_badges, n),
            pitch_stability=stability.reshape(n_badges, n),
            sound_db=sound_db.astype(np.float32).reshape(n_badges, n),
        )
