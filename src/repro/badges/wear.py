"""Wear-compliance model.

"An average badge was worn for 63% of daytime and for 84% of daytime it
was active but not necessarily worn on the neck" — the gap comes from
EVAs (no badges under spacesuits), restrooms, physical exercise, mid-day
charging stints, and, increasingly as the mission wore on, badges simply
left on desks ("the fraction of daytime when the analog astronauts wore
our badges dropped from about 80% to about 50%").  The model reproduces
all of these, and tracks where an unworn badge physically rests — an
unworn-but-active badge keeps recording from wherever it was set down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import MissionConfig
from repro.core.errors import SimulationError
from repro.core.units import MINUTE
from repro.badges.battery import BatteryModel
from repro.crew.tasks import Activity
from repro.crew.trace import DayTrace
from repro.habitat.floorplan import FloorPlan
from repro.habitat.geometry import Point

#: Length bounds of a voluntary "left on the desk" episode.
DESK_EPISODE_MIN_S = 20 * MINUTE
DESK_EPISODE_MAX_S = 70 * MINUTE
#: Compliance tolerance when inserting desk episodes.
COMPLIANCE_TOL = 0.02
#: Minimum time settled in a room before a badge may be set down.
SETTLED_S = 12 * MINUTE


@dataclass
class WearDay:
    """One badge-day of wear state and badge whereabouts."""

    worn: np.ndarray       # (frames,) bool -- on the wearer's neck
    active: np.ndarray     # (frames,) bool -- powered and recording
    badge_xy: np.ndarray   # (frames, 2) float32 -- where the badge is
    badge_room: np.ndarray  # (frames,) int8

    @property
    def worn_fraction(self) -> float:
        return float(self.worn.mean())

    @property
    def active_fraction(self) -> float:
        return float(self.active.mean())


class WearModel:
    """Simulates daily wear state for a badge on one astronaut."""

    def __init__(
        self,
        cfg: MissionConfig,
        plan: FloorPlan,
        battery: BatteryModel | None = None,
        station_xy: Point | None = None,
    ):
        self.cfg = cfg
        self.plan = plan
        self.battery = battery if battery is not None else BatteryModel()
        self.station_xy = (
            station_xy if station_xy is not None else plan.room("main").rect.center
        )
        self.station_room = int(plan.locate(self.station_xy))

    def compliance_on(self, day: int) -> float:
        """Target worn fraction for a day (linear decay across the mission)."""
        cfg = self.cfg
        span = max(cfg.days - cfg.badges_from_day, 1)
        frac = np.clip((day - cfg.badges_from_day) / span, 0.0, 1.0)
        return float(
            cfg.wear_compliance_start
            + (cfg.wear_compliance_end - cfg.wear_compliance_start) * frac
        )

    def simulate_day(
        self,
        trace: DayTrace,
        rng: np.random.Generator,
        diligence: float = 1.0,
    ) -> WearDay:
        """Wear state of the badge worn by ``trace``'s astronaut that day.

        ``diligence`` scales the day's compliance target per wearer.
        """
        n = trace.n_frames
        dt = trace.dt
        active = np.ones(n, dtype=bool)

        # Battery: charging stints / dead tails.
        battery_windows = self.battery.plan_day(n * dt, rng)
        at_station = np.zeros(n, dtype=bool)
        for start, end in battery_windows:
            i0, i1 = int(start / dt), int(np.ceil(end / dt))
            is_dead_tail = end >= n * dt - dt
            active[i0:i1] = False
            if not is_dead_tail:
                at_station[i0:i1] = True  # docked at the charging station

        # Hard non-wear: activities that forbid the badge.
        wearable = np.array(
            [Activity(int(a)).badge_wearable for a in range(int(trace.activity.max()) + 1)]
        )
        worn = active & trace.present() & wearable[trace.activity] & ~at_station

        # Voluntary desk episodes to meet the day's compliance target.
        target = self.compliance_on(trace.day) * diligence
        self._insert_desk_episodes(worn, trace, target, dt, rng)

        badge_xy, badge_room = self._badge_whereabouts(trace, worn, at_station)
        return WearDay(worn=worn, active=active, badge_xy=badge_xy, badge_room=badge_room)

    def simulate_fleet(
        self,
        traces: "Sequence[DayTrace]",
        rngs: "Sequence[np.random.Generator]",
        diligences: "Sequence[float]",
    ) -> list[WearDay]:
        """Wear state for a whole fleet of badges, one per trace.

        Battery planning and desk-episode insertion draw data-dependent
        counts, so each badge's draws necessarily come from its own
        stream in sequence; batching across badges cannot change any
        per-stream draw order.
        """
        return [
            self.simulate_day(trace, rng, diligence=diligence)
            for trace, rng, diligence in zip(traces, rngs, diligences)
        ]

    # -- internals -------------------------------------------------------

    def _insert_desk_episodes(
        self,
        worn: np.ndarray,
        trace: DayTrace,
        target: float,
        dt: float,
        rng: np.random.Generator,
    ) -> None:
        """Clear chunks of ``worn`` until the day's fraction meets target.

        Badges are set down at one's own workplace, not mid-visit: an
        episode may only start after the wearer has been settled in the
        current room for a while, so a colleague's desk never strands
        the badge.
        """
        n = worn.shape[0]
        settled = self._settled_mask(trace.room, int(round(SETTLED_S / dt)))
        for _ in range(200):
            if worn.mean() <= target + COMPLIANCE_TOL:
                return
            candidates = np.flatnonzero(
                worn & settled & (trace.activity == int(Activity.WORK))
            )
            if candidates.size == 0:
                return
            start = int(candidates[int(rng.integers(candidates.size))])
            length = int(rng.uniform(DESK_EPISODE_MIN_S, DESK_EPISODE_MAX_S) / dt)
            end = min(start + length, n)
            # One puts the badge back on when leaving the room (so a badge
            # on a desk never misses the meeting its wearer rushes off to).
            departures = np.flatnonzero(trace.room[start:end] != trace.room[start])
            if departures.size:
                end = start + int(departures[0])
            worn[start:end] = False
        # Compliance is a behavioral target, not an invariant: on days
        # packed with short stays there may be too few settled stretches
        # to shed enough wear time; best effort is the right model.

    @staticmethod
    def _settled_mask(room: np.ndarray, min_frames: int) -> np.ndarray:
        """Frames where the wearer has been in the same room >= min_frames."""
        n = room.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        change = np.concatenate([[True], room[1:] != room[:-1]])
        run_start = np.maximum.accumulate(np.where(change, np.arange(n), 0))
        return (np.arange(n) - run_start) >= min_frames

    def _badge_whereabouts(
        self,
        trace: DayTrace,
        worn: np.ndarray,
        at_station: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Where the badge is each frame: on the neck, on a desk, or docked."""
        n = trace.n_frames
        xy = np.column_stack([trace.x, trace.y]).astype(np.float32)
        # Forward-fill from the last worn frame (badge stays where set down).
        idx = np.where(worn, np.arange(n), -1)
        last_worn = np.maximum.accumulate(idx)
        badge_xy = np.empty((n, 2), dtype=np.float32)
        has_prior = last_worn >= 0
        badge_xy[has_prior] = xy[last_worn[has_prior]]
        badge_xy[~has_prior] = np.float32(self.station_xy)  # overnight dock
        badge_xy[worn] = xy[worn]
        badge_xy[at_station] = np.float32(self.station_xy)
        # NaN positions can only come from a worn badge outside (EVA), where
        # the badge is actually left in the airlock; forward-fill covers it,
        # but guard against a worn+outside combination slipping through.
        nan_rows = np.isnan(badge_xy).any(axis=1)
        if nan_rows.any():
            badge_xy[nan_rows] = np.float32(self.plan.room("airlock").rect.center)
        badge_room = self.plan.locate_many(badge_xy.astype(np.float64))
        return badge_xy, badge_room
