"""Day-level sensing pipeline: ground truth -> badge observations.

For each instrumented day this module works out who wears which badge
(:mod:`repro.badges.assignment`), simulates wear state and badge
whereabouts, and synthesizes every sensor stream plus the pairwise radio
links.  The output is exactly what the offline analytics consume — the
analytics never see ground truth.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.badges.assignment import BadgeAssignment
from repro.badges.badge import Badge, badge_fleet
from repro.badges.battery import BatteryModel
from repro.badges.sdcard import SdCardAccountant
from repro.badges.sensors.accelerometer import AccelerometerModel
from repro.badges.sensors.environment import EnvironmentSensors
from repro.badges.sensors.imu import ImuModel
from repro.badges.sensors.microphone import MicrophoneModel, MicrophoneOutput, SpeechSources
from repro.badges.wear import WearDay, WearModel
from repro.core.config import MissionConfig
from repro.core.rng import (
    RngRegistry,
    badge_day_stream,
    fleet_stream,
    pairwise_day_stream,
)
from repro.core.units import DAY
from repro.crew.trace import MissionTruth
from repro.habitat.beacons import Beacon, place_beacons
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs import span
from repro.habitat.environment import Environment
from repro.habitat.floorplan import FloorPlan
from repro.radio.ble import BleScanModel
from repro.radio.infrared import IrModel
from repro.radio.subghz import SubGhzModel
from repro.radio.timesync import SyncEvent, TimeSyncSimulator


@dataclass
class BadgeDayObservations:
    """Everything one badge logged on one day."""

    badge_id: int
    day: int
    t0: float
    dt: float
    active: np.ndarray
    worn: np.ndarray
    ble_rssi: np.ndarray          # (frames, n_beacons); NaN = not heard
    accel_rms: np.ndarray
    gyro_rms: np.ndarray
    heading_rad: np.ndarray
    voice_db: np.ndarray
    dominant_pitch_hz: np.ndarray
    pitch_stability: np.ndarray
    sound_db: np.ndarray
    temperature_c: np.ndarray
    pressure_hpa: np.ndarray
    light_lux: np.ndarray
    clock_error_s: np.ndarray
    sync_events: list[SyncEvent]
    bytes_recorded: float
    #: Ground-truth badge room (simulator-only; used to *evaluate* the
    #: localization pipeline, never as its input).
    true_room: np.ndarray | None = None

    def drop_ble(self) -> None:
        """Free the (large) scan matrix once localization has consumed it."""
        self.ble_rssi = np.empty((0, 0), dtype=np.float32)


@dataclass
class PairwiseDay:
    """Badge-to-badge observations for one day (keys ``(i, j)``, i < j)."""

    day: int
    ir_contact: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    subghz_rssi: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)


@dataclass
class SensingModels:
    """The bundle of device/channel models used for synthesis."""

    plan: FloorPlan
    beacons: list[Beacon]
    env: Environment = field(default_factory=Environment)
    ble: BleScanModel = field(default_factory=BleScanModel)
    subghz: SubGhzModel = field(default_factory=SubGhzModel)
    ir: IrModel = field(default_factory=IrModel)
    microphone: MicrophoneModel = field(default_factory=MicrophoneModel)
    accelerometer: AccelerometerModel = field(default_factory=AccelerometerModel)
    imu: ImuModel = field(default_factory=ImuModel)
    env_sensors: EnvironmentSensors = field(default_factory=EnvironmentSensors)
    battery: BatteryModel = field(default_factory=BatteryModel)

    @classmethod
    def default(cls, cfg: MissionConfig, plan: FloorPlan) -> "SensingModels":
        return cls(plan=plan, beacons=place_beacons(plan, cfg.n_beacons))


def sense_day(
    truth: MissionTruth,
    day: int,
    assignment: BadgeAssignment,
    models: SensingModels,
    fleet: dict[int, Badge],
    rngs: RngRegistry,
    sdcard: SdCardAccountant | None = None,
) -> tuple[dict[int, BadgeDayObservations], PairwiseDay]:
    """Synthesize all badge observations for one day.

    Badge clocks in ``fleet`` are mutated (drift accumulates, syncs
    apply), but the overnight dock sync at the start of every day zeroes
    each clock's error at ``t0``, so a day's output does not depend on
    which days (if any) were sensed before it.  Combined with the
    day-scoped RNG streams (:func:`repro.core.rng.badge_day_stream`)
    this makes ``sense_day`` safe to replay out of order or in parallel
    workers — everything that reaches a :class:`BadgeDaySummary` is
    bit-identical either way.
    """
    with span("sensing.day", day=day):
        return _sense_day(truth, day, assignment, models, fleet, rngs, sdcard)


def sense_day_badgewise(
    truth: MissionTruth,
    day: int,
    assignment: BadgeAssignment,
    models: SensingModels,
    fleet: dict[int, Badge],
    rngs: RngRegistry,
    sdcard: SdCardAccountant | None = None,
) -> tuple[dict[int, BadgeDayObservations], PairwiseDay]:
    """Legacy per-badge driver kept for one release alongside the wrappers.

    Runs the same synthesis as :func:`sense_day` but through the
    deprecated batch-of-one model methods, one badge at a time.  Output
    is bit-identical to the fleet-batched path (the golden test in
    ``tests/integration/test_batched_equivalence.py`` enforces this);
    the only reason to call it is to cross-check that invariant.
    """
    warnings.warn(
        "sense_day_badgewise is deprecated; use sense_day",
        DeprecationWarning, stacklevel=2,
    )
    cfg = truth.cfg
    plan = models.plan
    wear_model = WearModel(cfg, plan, battery=models.battery)
    timesync = TimeSyncSimulator(station_xy=wear_model.station_xy)
    n = cfg.frames_per_day
    t0 = cfg.daytime_start_s
    dt = cfg.frame_dt
    t_abs = (day - 1) * DAY + t0 + np.arange(n) * dt
    wall_matrix = plan.wall_matrix()
    noise_floors = np.array(
        [models.env.noise_floor_db(room.name) for room in plan.rooms]
    )
    sources = SpeechSources.from_truth(truth, day)

    mapping = assignment.actual(day)
    observations: dict[int, BadgeDayObservations] = {}
    wear_days: dict[int, WearDay] = {}

    for badge_id, astro in sorted(mapping.items()):
        badge = fleet[badge_id]
        if not badge.alive_on(day):
            continue
        trace = truth.trace(astro, day)
        rng = rngs.get(badge_day_stream(badge_id, day))
        wear = wear_model.simulate_day(
            trace, rng, diligence=truth.roster.profile(astro).wear_diligence
        )
        wear_days[badge_id] = wear
        badge.clock.correct(reference_local=t0, own_local=badge.clock.local_time(t0))
        clock_errors, sync_events = timesync.run_day(
            badge.clock, wear.badge_xy, wear.active, t0, dt
        )
        ble_rssi = models.ble.scan(
            plan, models.beacons, wear.badge_xy, wear.badge_room, wear.active, rng
        )
        accel = models.accelerometer.synthesize(
            trace.walking, wear.worn, wear.active, trace.activity, rng
        )
        gyro, heading = models.imu.synthesize(trace.walking, wear.worn, wear.active, rng)
        mic = models.microphone.synthesize(
            sources, wear.badge_xy, wear.badge_room, wear.active,
            wall_matrix, noise_floors, rng,
        )
        temp, pressure, light = models.env_sensors.synthesize(
            models.env, plan, wear.badge_room, wear.worn, wear.active, t_abs, rng
        )
        bytes_recorded = 0.0
        if sdcard is not None:
            bytes_recorded = sdcard.record_day(badge_id, day, float(wear.active.sum()) * dt)
        observations[badge_id] = BadgeDayObservations(
            badge_id=badge_id, day=day, t0=t0, dt=dt,
            active=wear.active, worn=wear.worn,
            ble_rssi=ble_rssi,
            accel_rms=accel, gyro_rms=gyro, heading_rad=heading,
            voice_db=mic.voice_db, dominant_pitch_hz=mic.dominant_pitch_hz,
            pitch_stability=mic.pitch_stability, sound_db=mic.sound_db,
            temperature_c=temp, pressure_hpa=pressure, light_lux=light,
            clock_error_s=clock_errors, sync_events=sync_events,
            bytes_recorded=bytes_recorded,
            true_room=wear.badge_room,
        )

    ref_id = assignment.reference_id
    ref_rng = rngs.get(badge_day_stream(ref_id, day))
    ref_active = np.ones(n, dtype=bool)
    ref_xy = np.tile(np.float32(wear_model.station_xy), (n, 1))
    ref_room = np.full(n, wear_model.station_room, dtype=np.int8)
    ref_worn = np.zeros(n, dtype=bool)
    ref_mic = models.microphone.synthesize(
        sources, ref_xy, ref_room, ref_active, wall_matrix, noise_floors, ref_rng
    )
    ref_temp, ref_pressure, ref_light = models.env_sensors.synthesize(
        models.env, plan, ref_room, ref_worn, ref_active, t_abs, ref_rng
    )
    ref_bytes = (
        sdcard.record_day(ref_id, day, float(n) * dt) if sdcard is not None else 0.0
    )
    observations[ref_id] = BadgeDayObservations(
        badge_id=ref_id, day=day, t0=t0, dt=dt,
        active=ref_active, worn=ref_worn,
        ble_rssi=models.ble.scan(plan, models.beacons, ref_xy, ref_room, ref_active, ref_rng),
        accel_rms=models.accelerometer.synthesize(
            np.zeros(n, dtype=bool), ref_worn, ref_active, np.zeros(n, dtype=np.int8), ref_rng
        ),
        gyro_rms=np.full(n, 0.01, dtype=np.float32),
        heading_rad=np.zeros(n, dtype=np.float32),
        voice_db=ref_mic.voice_db, dominant_pitch_hz=ref_mic.dominant_pitch_hz,
        pitch_stability=ref_mic.pitch_stability, sound_db=ref_mic.sound_db,
        temperature_c=ref_temp, pressure_hpa=ref_pressure, light_lux=ref_light,
        clock_error_s=np.zeros(n), sync_events=[],
        bytes_recorded=ref_bytes,
    )

    pairwise = _pairwise_day(truth, day, mapping, wear_days, models, rngs)
    return observations, pairwise


def _sense_day(
    truth: MissionTruth,
    day: int,
    assignment: BadgeAssignment,
    models: SensingModels,
    fleet: dict[int, Badge],
    rngs: RngRegistry,
    sdcard: SdCardAccountant | None = None,
) -> tuple[dict[int, BadgeDayObservations], PairwiseDay]:
    cfg = truth.cfg
    plan = models.plan
    wear_model = WearModel(cfg, plan, battery=models.battery)
    timesync = TimeSyncSimulator(station_xy=wear_model.station_xy)
    n = cfg.frames_per_day
    t0 = cfg.daytime_start_s
    dt = cfg.frame_dt
    t_abs = (day - 1) * DAY + t0 + np.arange(n) * dt
    wall_matrix = plan.wall_matrix()
    noise_floors = np.array(
        [models.env.noise_floor_db(room.name) for room in plan.rooms]
    )
    sources = SpeechSources.from_truth(truth, day)

    mapping = assignment.actual(day)
    observations: dict[int, BadgeDayObservations] = {}
    wear_days: dict[int, WearDay] = {}

    # Phase 1 -- per badge: wear state and clock evolution.  Both are
    # inherently sequential per badge (data-dependent draw counts, a
    # mutating clock), and the wear draws must come first on each
    # badge-day stream to preserve the stream order contract
    # (wear -> ble -> accel -> imu -> mic -> env).
    live: list[tuple[int, str]] = []
    traces = []
    badge_rngs = []
    clock_results = []
    for badge_id, astro in sorted(mapping.items()):
        badge = fleet[badge_id]
        if not badge.alive_on(day):
            if _obs.enabled:
                _metrics.counter(
                    "sensing.badge_days_skipped", "badge-days skipped (dead badge)"
                ).inc(badge=badge_id)
            continue
        trace = truth.trace(astro, day)
        rng = rngs.get(badge_day_stream(badge_id, day))
        with span("sensing.badge_day", badge=badge_id, day=day, astro=astro):
            with span("sensing.wear", badge=badge_id, day=day):
                wear = wear_model.simulate_day(
                    trace, rng, diligence=truth.roster.profile(astro).wear_diligence
                )
            wear_days[badge_id] = wear

            with span("sensing.clock", badge=badge_id, day=day):
                # Clock: overnight dock syncs at day start, then drifts/syncs.
                badge.clock.correct(
                    reference_local=t0, own_local=badge.clock.local_time(t0)
                )
                clock_errors, sync_events = timesync.run_day(
                    badge.clock, wear.badge_xy, wear.active, t0, dt
                )
        live.append((badge_id, astro))
        traces.append(trace)
        badge_rngs.append(rng)
        clock_results.append((clock_errors, sync_events))

    # Phase 2 -- fleet-batched sensor synthesis: inputs are stacked once
    # and each model runs a single batched call over (badges, frames)
    # arrays.  Draws stay per badge on the streams gathered above, so
    # each badge's row is bit-identical to a batch-of-one wrapper call.
    if live:
        wear_list = [wear_days[badge_id] for badge_id, _ in live]
        fleet_xy = np.stack([w.badge_xy for w in wear_list])
        fleet_room = np.stack([w.badge_room for w in wear_list])
        fleet_active = np.stack([w.active for w in wear_list])
        fleet_worn = np.stack([w.worn for w in wear_list])
        fleet_walking = np.stack([t.walking for t in traces])
        fleet_activity = np.stack([t.activity for t in traces])
        with span("sensing.ble", day=day, badges=len(live)):
            ble_all = models.ble.scan_fleet(
                plan, models.beacons, fleet_xy, fleet_room, fleet_active, badge_rngs
            )
        with span("sensing.motion", day=day, badges=len(live)):
            accel_all = models.accelerometer.synthesize_fleet(
                fleet_walking, fleet_worn, fleet_active, fleet_activity, badge_rngs
            )
            gyro_all, heading_all = models.imu.synthesize_fleet(
                fleet_walking, fleet_worn, fleet_active, badge_rngs
            )
        with span("sensing.microphone", day=day, badges=len(live)):
            mic_all: MicrophoneOutput = models.microphone.synthesize_fleet(
                sources, fleet_xy, fleet_room, fleet_active,
                wall_matrix, noise_floors, badge_rngs,
            )
        with span("sensing.environment", day=day, badges=len(live)):
            temp_all, pressure_all, light_all = models.env_sensors.synthesize_fleet(
                models.env, plan, fleet_room, fleet_worn, fleet_active, t_abs, badge_rngs
            )

    # Phase 3 -- per badge: SD-card accounting, metrics, assembly.
    for b, (badge_id, astro) in enumerate(live):
        wear = wear_days[badge_id]
        clock_errors, sync_events = clock_results[b]
        bytes_recorded = 0.0
        if sdcard is not None:
            bytes_recorded = sdcard.record_day(badge_id, day, float(wear.active.sum()) * dt)
        if _obs.enabled:
            _metrics.counter(
                "sensing.badge_days", "badge-days synthesized"
            ).inc()
            _metrics.counter(
                "sensing.bytes_recorded", "SD-card bytes recorded"
            ).inc(bytes_recorded, badge=badge_id)
            _metrics.histogram(
                "sensing.active_fraction", "fraction of frames recording"
            ).observe(float(wear.active.mean()))

        observations[badge_id] = BadgeDayObservations(
            badge_id=badge_id, day=day, t0=t0, dt=dt,
            active=wear.active, worn=wear.worn,
            ble_rssi=ble_all[b],
            accel_rms=accel_all[b], gyro_rms=gyro_all[b], heading_rad=heading_all[b],
            voice_db=mic_all.voice_db[b], dominant_pitch_hz=mic_all.dominant_pitch_hz[b],
            pitch_stability=mic_all.pitch_stability[b], sound_db=mic_all.sound_db[b],
            temperature_c=temp_all[b], pressure_hpa=pressure_all[b], light_lux=light_all[b],
            clock_error_s=clock_errors, sync_events=sync_events,
            bytes_recorded=bytes_recorded,
            true_room=wear.badge_room,
        )

    # Reference badge: permanently charged and recording at the station.
    ref_id = assignment.reference_id
    ref_rng = rngs.get(badge_day_stream(ref_id, day))
    ref_active = np.ones(n, dtype=bool)
    ref_xy = np.tile(np.float32(wear_model.station_xy), (n, 1))
    ref_room = np.full(n, wear_model.station_room, dtype=np.int8)
    ref_worn = np.zeros(n, dtype=bool)
    ref_mic = models.microphone.synthesize(
        sources, ref_xy, ref_room, ref_active, wall_matrix, noise_floors, ref_rng
    )
    ref_temp, ref_pressure, ref_light = models.env_sensors.synthesize(
        models.env, plan, ref_room, ref_worn, ref_active, t_abs, ref_rng
    )
    if sdcard is not None:
        ref_bytes = sdcard.record_day(ref_id, day, float(n) * dt)
    else:
        ref_bytes = 0.0
    observations[ref_id] = BadgeDayObservations(
        badge_id=ref_id, day=day, t0=t0, dt=dt,
        active=ref_active, worn=ref_worn,
        ble_rssi=models.ble.scan_fleet(
            plan, models.beacons, ref_xy[None], ref_room[None],
            ref_active[None], (ref_rng,),
        )[0],
        accel_rms=models.accelerometer.synthesize(
            np.zeros(n, dtype=bool), ref_worn, ref_active, np.zeros(n, dtype=np.int8), ref_rng
        ),
        gyro_rms=np.full(n, 0.01, dtype=np.float32),
        heading_rad=np.zeros(n, dtype=np.float32),
        voice_db=ref_mic.voice_db, dominant_pitch_hz=ref_mic.dominant_pitch_hz,
        pitch_stability=ref_mic.pitch_stability, sound_db=ref_mic.sound_db,
        temperature_c=ref_temp, pressure_hpa=ref_pressure, light_lux=ref_light,
        clock_error_s=np.zeros(n), sync_events=[],
        bytes_recorded=ref_bytes,
    )

    with span("sensing.pairwise", day=day):
        pairwise = _pairwise_day(truth, day, mapping, wear_days, models, rngs)
    return observations, pairwise


def _pairwise_day(
    truth: MissionTruth,
    day: int,
    mapping: dict[int, str],
    wear_days: dict[int, WearDay],
    models: SensingModels,
    rngs: RngRegistry,
) -> PairwiseDay:
    """Synthesize IR and sub-GHz badge-to-badge observations."""
    rng = rngs.get(pairwise_day_stream(day))
    badge_xy = {b: w.badge_xy.astype(np.float64) for b, w in wear_days.items()}
    badge_room = {b: w.badge_room for b, w in wear_days.items()}
    active = {b: w.active for b, w in wear_days.items()}
    worn = {b: w.worn for b, w in wear_days.items()}
    walking = {
        b: truth.trace(mapping[b], day).walking & wear_days[b].worn
        for b in wear_days
    }
    pairwise = PairwiseDay(day=day)
    if len(wear_days) >= 2:
        pairwise.subghz_rssi = models.subghz.pairwise(
            models.plan, badge_xy, badge_room, active, rng
        )
        pairwise.ir_contact = models.ir.pairwise(badge_xy, badge_room, worn, walking, rng)
    return pairwise


def make_fleet(assignment: BadgeAssignment, rngs: RngRegistry) -> dict[int, Badge]:
    """Create the mission's badge fleet, applying scripted failures.

    F's own badge fails on the morning of the reuse day, which is why F
    picked up C's.
    """
    fleet = badge_fleet(assignment.roster.size, rngs.get(fleet_stream()))
    cfg = assignment.cfg
    if cfg.events is not None and cfg.event_active("badge_reuse_day") and "F" in assignment.roster.ids:
        f_badge = assignment.roster.index("F")
        fleet[f_badge].failed_on_day = cfg.events.badge_reuse_day
    return fleet
