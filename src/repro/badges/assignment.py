"""Badge-to-astronaut assignment, including the deployment's anomalies.

The analysis pipeline *assumed* "that each device can be assigned to one
owner only", but reality disagreed twice:

* impaired astronaut A, unable to read the e-ink id display,
  "accidentally swapped their badge for one day with B";
* after C's departure, "astronaut F reused a badge that had belonged to
  deceased astronaut C" (F's own badge had failed).

``BadgeAssignment`` exposes both the naive static mapping and the true
per-day mapping, so the analytics can be run in "assumed" mode (and
mislabel those days, as the original pipeline initially did) or in
"actual" mode after the correction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MissionConfig
from repro.core.errors import ConfigError
from repro.crew.roster import Roster

#: Default reference badge id for a 6-person crew (6 primary + 6 backup).
REFERENCE_BADGE_ID = 12


@dataclass(frozen=True)
class BadgeAssignment:
    """Maps badges to wearers, day by day."""

    cfg: MissionConfig
    roster: Roster

    @property
    def primary_ids(self) -> tuple[int, ...]:
        """Primary badge ids, in roster order."""
        return tuple(range(self.roster.size))

    @property
    def reference_id(self) -> int:
        """Id of the reference badge (primaries + backups precede it)."""
        return 2 * self.roster.size

    def assumed(self) -> dict[int, str]:
        """The static badge->astronaut mapping the pipeline assumed."""
        return {i: astro for i, astro in enumerate(self.roster.ids)}

    def actual(self, day: int) -> dict[int, str]:
        """Who actually wore each badge on ``day``.

        Badges without a wearer that day (backups, retired badges, the
        deceased's badge before reuse) are simply absent from the map.
        """
        if day < 1:
            raise ConfigError("day must be >= 1")
        mapping = self.assumed()
        events = self.cfg.events
        if events is None:
            return mapping

        deceased = "C"
        if deceased in self.roster.ids:
            c_badge = self.roster.index(deceased)
            f_badge = self.roster.index("F") if "F" in self.roster.ids else None
            if self.cfg.event_active("death_day") and day > events.death_day:
                del mapping[c_badge]  # C is gone; badge idle at the station
            if (
                f_badge is not None
                and self.cfg.event_active("badge_reuse_day")
                and day >= events.badge_reuse_day
            ):
                # F's badge failed; F picked up C's.
                mapping.pop(f_badge, None)
                mapping[c_badge] = "F"

        if (
            self.cfg.event_active("badge_swap_day")
            and day == events.badge_swap_day
            and "A" in self.roster.ids
            and "B" in self.roster.ids
        ):
            a_badge, b_badge = self.roster.index("A"), self.roster.index("B")
            if mapping.get(a_badge) == "A" and mapping.get(b_badge) == "B":
                mapping[a_badge], mapping[b_badge] = "B", "A"
        return mapping

    def wearer_days(self, badge_id: int) -> dict[int, str]:
        """Per-day wearer of one badge across the instrumented mission."""
        out: dict[int, str] = {}
        for day in self.cfg.instrumented_days:
            wearer = self.actual(day).get(badge_id)
            if wearer is not None:
                out[day] = wearer
        return out

    def mislabeled_days(self) -> dict[int, dict[int, str]]:
        """Days where the assumed mapping is wrong: day -> {badge: actual}."""
        out: dict[int, dict[int, str]] = {}
        assumed = self.assumed()
        for day in self.cfg.instrumented_days:
            actual = self.actual(day)
            wrong = {
                badge: astro
                for badge, astro in actual.items()
                if assumed.get(badge) != astro
            }
            if wrong:
                out[day] = wrong
        return out
