"""The faulted support-stack scenario behind mission reliability runs.

Builds the Section-VI support system — message bus, primary/backup
replicated service, badge-data relay, and the 20-minute-delayed Earth
link — runs a mission-shaped workload over it (periodic reliable sensor
batches into the replicated service, reliable status uplinks to Earth,
fire-and-forget mission-control commands), replays the configured
:class:`~repro.faults.plan.FaultPlan` on top, and reduces the outcome to
a :class:`~repro.faults.report.ReliabilityReport`.

Everything is seeded off the mission config, so the same config (and
plan) produces byte-identical reports.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MissionConfig
from repro.core.engine import Simulator
from repro.core.rng import RngRegistry
from repro.core.units import DAY, HOUR
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.report import (
    ReliabilityReport,
    aggregate_delivery,
    availability_from_downtime,
)
from repro.obs import span
from repro.support.bus import Network, Node
from repro.support.mission_control import EarthLink
from repro.support.replication import ReplicatedService

#: Habitat-internal link latency for the scenario bus, seconds.
LINK_LATENCY_S = 0.05
#: Reliable sensor-batch cadence from the relay into the service.
BATCH_PERIOD_S = 600.0
#: Reliable habitat -> Earth status cadence.
STATUS_PERIOD_S = 2 * HOUR
#: Fire-and-forget mission-control command cadence.
COMMAND_PERIOD_S = 6 * HOUR
#: Replica heartbeat / failover tuning at mission timescales.
HEARTBEAT_S = 60.0
FAILOVER_TIMEOUT_S = 210.0


class Relay(Node):
    """The habitat-side collector pushing sensor batches to the service."""


def run_support_scenario(cfg: MissionConfig, plan: FaultPlan) -> ReliabilityReport:
    """Run the faulted support-system scenario for one mission config."""
    horizon = cfg.days * DAY
    rngs = RngRegistry(cfg.seed).spawn("faults")
    sim = Simulator()
    network = Network(sim, default_latency_s=LINK_LATENCY_S, rng=rngs.get("network"))
    link = EarthLink.build(network, sim, one_way_delay_s=cfg.earth_link_delay_s)
    service = ReplicatedService.build(
        network, sim, heartbeat_s=HEARTBEAT_S, failover_timeout_s=FAILOVER_TIMEOUT_S
    )
    relay = Relay("relay", sim)
    network.register(relay)

    # The Earth link is slow (40-minute RTT) and occasionally dark: trip
    # the breaker after two consecutive timeouts and retry after ~2 h.
    earth_rtt = 2 * cfg.earth_link_delay_s
    status_timeout_s = earth_rtt + 120.0
    link.habitat_agent.configure_breaker(
        "earth", failure_threshold=2, cooldown_s=max(2 * HOUR, earth_rtt)
    )

    injector = FaultInjector(network, earth_link=link)
    injector.schedule(sim, plan)

    def send_batch(k: int) -> None:
        primary = service.current_primary()
        target = primary.name if primary is not None else service.primary.name
        relay.send_reliable(target, "submit", f"batch-{k}", max_attempts=5)

    def send_status(k: int) -> None:
        link.habitat_agent.send_reliable(
            "earth", "status", f"status-{k}",
            max_attempts=3, ack_timeout_s=status_timeout_s,
        )

    # Finite, precomputed workload schedules keep the drained queue
    # terminating (only the replica heartbeats are unbounded).
    for k, t in enumerate(np.arange(BATCH_PERIOD_S, horizon, BATCH_PERIOD_S)):
        sim.schedule_at(float(t), send_batch, k)
    for k, t in enumerate(np.arange(STATUS_PERIOD_S, horizon, STATUS_PERIOD_S)):
        sim.schedule_at(float(t), send_status, k)
    for k, t in enumerate(np.arange(COMMAND_PERIOD_S, horizon, COMMAND_PERIOD_S)):
        sim.schedule_at(
            float(t), link.mission_control.issue, f"ops-topic-{k % 4}", f"action-{k}"
        )

    with span("faults.scenario", days=cfg.days, events=len(plan.events)):
        sim.run_until(horizon)
        # Stop the heartbeat loops, then drain in-flight retries/acks so
        # every reliable message resolves to acked or dead-lettered.
        service.primary.stop()
        service.backup.stop()
        sim.run()

    return _build_report(cfg, horizon, network, service, injector)


def _build_report(
    cfg: MissionConfig,
    horizon: float,
    network: Network,
    service: ReplicatedService,
    injector: FaultInjector,
) -> ReliabilityReport:
    delivery, totals, duplicates, dead_letters, pending = aggregate_delivery(network)
    # Raw intervals, open ends intact: outages that never repaired within
    # the horizon (including recoveries that only fired during the
    # post-horizon drain) are right-censored, not fake short repairs.
    availability, mttr, n_outages, n_censored = availability_from_downtime(
        injector.downtime, network.nodes(), horizon
    )
    transitions = sorted(
        [(t, replica.name, what)
         for replica in (service.primary, service.backup)
         for t, what in replica.transitions],
        key=lambda item: (item[0], item[1]),
    )
    primaries = [r.name for r in (service.primary, service.backup)
                 if r.is_primary and not r.crashed]
    return ReliabilityReport(
        horizon_s=horizon,
        availability=availability,
        mttr_s=mttr,
        n_outages=n_outages,
        n_censored_outages=n_censored,
        delivery=delivery,
        retries=totals.retries,
        duplicates_suppressed=duplicates,
        dead_letters=dead_letters,
        pending=pending,
        bus_sent=network.sent,
        bus_delivered=network.delivered,
        bus_dropped=network.dropped,
        transitions=transitions,
        primary_at_end=primaries[0] if primaries else None,
        split_brain_at_end=len(primaries) > 1,
        faults_injected=injector.injected,
        faults_skipped=injector.skipped,
    )
