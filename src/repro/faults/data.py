"""Data-corruption fault application.

:func:`apply_data_faults` replays a plan's :data:`~repro.faults.plan.DATA_ACTIONS`
events onto an assembled :class:`~repro.analytics.dataset.MissionSensing`,
producing the kind of damage a real deployment's storage and clock layer
inflicts *after* sensing: bit-rot in stored arrays, truncated badge-days,
frame duplication, stuck-at sensor values, and clock desync beyond what
the time-sync simulator corrects.

Corruption is copy-on-write — the struck summaries are replaced with
corrupted copies and the input dataset is never mutated (its arrays may
be shared with cached/journaled day outcomes).  Every event's damage is
seeded from ``(cfg.seed, event index)``, so the same config + plan
always corrupts identically, which is what lets a seeded corruption
campaign reproduce the identical
:class:`~repro.quality.report.DataQualityReport` byte for byte.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analytics.dataset import BadgeDaySummary, MissionSensing
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics

log = get_logger("repro.faults.data")

#: Seed-stream constant separating corruption draws from every other
#: consumer of the mission seed.
_STREAM = 0xDA7AFA17

#: Float channels bit-rot garbles (mirrors the summary's sensor streams).
_CORRUPTIBLE = (
    "x", "y", "accel_rms", "voice_db", "dominant_pitch_hz",
    "pitch_stability", "sound_db",
)
_ALL_ARRAYS = ("active", "worn", "room") + _CORRUPTIBLE

#: Garbage values bit-rot writes (NaN runs, infinities, absurd numbers).
_GARBAGE = (float("nan"), float("inf"), -float("inf"), -1e9, 1e9)


def _copy_arrays(summary: BadgeDaySummary) -> dict[str, np.ndarray]:
    return {name: getattr(summary, name).copy() for name in _ALL_ARRAYS}


def _corrupt_bitrot(arrays: dict[str, np.ndarray], event: FaultEvent,
                    rng: np.random.Generator) -> None:
    """Garbage written over a random fraction of frames."""
    n = arrays["active"].shape[0]
    struck = max(1, int(event.value * n))
    frames = rng.choice(n, size=min(struck, n), replace=False)
    for frame in frames:
        channel = _CORRUPTIBLE[int(rng.integers(len(_CORRUPTIBLE)))]
        arrays[channel][frame] = _GARBAGE[int(rng.integers(len(_GARBAGE)))]
    # A few frames lose their room estimate to an impossible index too.
    rooms = frames[: max(1, len(frames) // 4)]
    arrays["room"][rooms] = 127


def _corrupt_truncate(arrays: dict[str, np.ndarray], event: FaultEvent,
                      rng: np.random.Generator) -> None:
    """The tail of the day never makes it to storage."""
    n = arrays["active"].shape[0]
    keep = int(event.value * n)
    for name in _ALL_ARRAYS:
        arrays[name] = arrays[name][:keep]


def _corrupt_duplicate(arrays: dict[str, np.ndarray], event: FaultEvent,
                       rng: np.random.Generator) -> None:
    """A segment of frames is written twice (and lands out of order)."""
    n = arrays["active"].shape[0]
    seg = max(1, int(event.value * n))
    start = int(rng.integers(max(1, n - seg)))
    for name in _ALL_ARRAYS:
        a = arrays[name]
        arrays[name] = np.concatenate(
            [a[: start + seg], a[start : start + seg], a[start + seg :]]
        )


def _corrupt_stuck(arrays: dict[str, np.ndarray], event: FaultEvent,
                   rng: np.random.Generator) -> None:
    """The accelerometer latches to a constant for a stretch of the day."""
    n = arrays["active"].shape[0]
    run = max(1, int(event.value * n))
    start = int(rng.integers(max(1, n - run)))
    accel = arrays["accel_rms"]
    stuck_value = accel[start]
    if not np.isfinite(stuck_value):
        stuck_value = np.float32(0.123)
    accel[start : start + run] = stuck_value


_CORRUPTIONS = {
    "data-bitrot": _corrupt_bitrot,
    "data-truncate": _corrupt_truncate,
    "data-duplicate": _corrupt_duplicate,
    "data-stuck": _corrupt_stuck,
}


def apply_data_faults(sensing: MissionSensing, plan: FaultPlan,
                      seed: int) -> MissionSensing:
    """Replay the plan's data-corruption events onto a copy of the dataset.

    Events striking a badge-day that does not exist (dead badge, day out
    of range) are no-ops, like bit-rot in a file never written.  Returns
    the input unchanged (same object) when the plan has no data events.
    """
    by_key = plan.data_events_by_badge_day()
    if not by_key:
        return sensing
    order = {id(e): k for k, e in enumerate(plan.data_events())}
    summaries = dict(sensing.summaries)
    struck = 0
    for key in sorted(by_key):
        if key not in summaries:
            continue
        summary = summaries[key]
        arrays = _copy_arrays(summary)
        t0 = summary.t0
        for event in by_key[key]:
            rng = np.random.default_rng((seed, _STREAM, order[id(event)]))
            if event.action == "data-clock-skew":
                t0 += event.value
            else:
                _CORRUPTIONS[event.action](arrays, event, rng)
            if _obs.enabled:
                _metrics.counter(
                    "faults.data_events", "data-corruption events applied, by kind"
                ).inc(kind=event.action)
        # true_room is the simulator's evaluation aid, not stored data —
        # keep it aligned with the (possibly resized) corrupted arrays.
        true_room = summary.true_room
        if true_room is not None and arrays["active"].shape[0] != true_room.shape[0]:
            n = arrays["active"].shape[0]
            if n <= true_room.shape[0]:
                true_room = true_room[:n]
            else:
                true_room = np.concatenate([
                    true_room,
                    np.full(n - true_room.shape[0], -1, dtype=true_room.dtype),
                ])
        summaries[key] = dataclasses.replace(
            summary, t0=t0, true_room=true_room, **arrays
        )
        struck += 1
        log.info("badge-day-corrupted", badge=key[0], day=key[1],
                 events=len(by_key[key]))
    if _obs.enabled and struck:
        _metrics.counter(
            "faults.data_badge_days", "badge-days struck by data corruption"
        ).inc(struck)
    return MissionSensing(
        cfg=sensing.cfg, plan=sensing.plan, assignment=sensing.assignment,
        summaries=summaries, pairwise=sensing.pairwise,
        quality=sensing.quality,
    )
