"""Service-level crash injection.

The rest of :mod:`repro.faults` injects failures *into the mission* —
bus partitions, dead batteries, corrupted badge-days.  This module aims
at the layer above: the fleet service process itself
(:mod:`repro.service`), whose crash-survival contract (durable registry,
lease recovery, journal resume) is exactly what the chaos suite must be
able to violate on demand.

:class:`ServiceChaos` is deterministic by construction — it keys on the
count of durably acknowledged completions, not on wall-clock timing —
so a chaos test can say "die after the third job" and assert exact
recovery behaviour instead of racing a timer against the drain.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigError
from repro.obs import get_logger

log = get_logger("repro.faults.service")


@dataclass(frozen=True)
class ServiceChaos:
    """Crash plan for one fleet-service process.

    Attributes:
        kill_after_completions: SIGKILL the whole service process the
            moment this many job completions have been durably
            acknowledged (``None`` disables).  The registry commit
            happens *before* the kill fires, mirroring the worst real
            ordering: state says done, process is gone mid-drain.
    """

    kill_after_completions: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.kill_after_completions is not None
                and self.kill_after_completions < 1):
            raise ConfigError("kill_after_completions must be >= 1 or None")

    def on_completion(self, completions: int) -> None:
        """Hook the service calls after each acknowledged completion."""
        if (self.kill_after_completions is not None
                and completions >= self.kill_after_completions):
            log.warning("chaos-self-sigkill", completions=completions)
            os.kill(os.getpid(), signal.SIGKILL)
