"""Replaying a fault plan onto the running support stack.

The :class:`FaultInjector` schedules a plan's bus-level events on the
discrete-event simulator — node crash/restart, link flaps, lossy-channel
windows, Earth-link blackouts — against a live
:class:`~repro.support.bus.Network` (and optionally an
:class:`~repro.support.mission_control.EarthLink`), tracking per-node
downtime intervals so availability and MTTR can be computed afterwards.
Unknown targets are skipped and counted, so one plan can run against
differently-shaped stacks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Simulator
from repro.core.errors import ProtocolError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.support.bus import Network
from repro.support.mission_control import EarthLink

log = get_logger("repro.faults.injector")


class FaultInjector:
    """Applies bus-level fault events to a network / Earth link."""

    def __init__(self, network: Network, earth_link: Optional[EarthLink] = None):
        self.network = network
        self.earth_link = earth_link
        self.injected = 0
        self.skipped = 0
        #: node -> list of (down_at, up_at | None) intervals, in order.
        self.downtime: dict[str, list[tuple[float, Optional[float]]]] = {}
        self._base_loss_prob = network.loss_prob
        self._lossy_depth = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, sim: Simulator, plan: FaultPlan) -> int:
        """Queue every bus-level event of ``plan`` on ``sim``.

        Returns the number of events scheduled.  Events in the past
        (before ``sim.now``) fire immediately.
        """
        scheduled = 0
        for event in plan.bus_events():
            sim.schedule_at(max(sim.now, event.time_s), self._apply, event)
            scheduled += 1
        return scheduled

    # -- application ------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        now = self.network.sim.now
        try:
            getattr(self, f"_do_{event.action.replace('-', '_')}")(event)
        except ProtocolError:
            # Target not present in this stack (campaign reuse): skip.
            self.skipped += 1
            log.info("fault-skipped", action=event.action, target=event.target,
                     sim_time=now)
            return
        self.injected += 1
        if _obs.enabled:
            _metrics.counter(
                "faults.injected", "fault events applied, by action"
            ).inc(action=event.action)

    def _do_crash(self, event: FaultEvent) -> None:
        node = event.target
        self.network.node(node)  # raises ProtocolError if unknown
        if self.network.is_down(node):
            return  # already down; overlapping windows collapse
        self.network.crash(node)
        self.downtime.setdefault(node, []).append((self.network.sim.now, None))
        if event.duration_s is not None:
            self.network.sim.schedule(
                event.duration_s, self._do_recover_target, node
            )

    def _do_recover(self, event: FaultEvent) -> None:
        self._do_recover_target(event.target)

    def _do_recover_target(self, node: str) -> None:
        if not self.network.is_down(node):
            return
        self.network.recover(node)
        intervals = self.downtime.get(node, [])
        if intervals and intervals[-1][1] is None:
            intervals[-1] = (intervals[-1][0], self.network.sim.now)

    def _do_link_down(self, event: FaultEvent) -> None:
        src, dst, both = event.link_endpoints()
        self.network.partition(src, dst, bidirectional=both)
        if event.duration_s is not None:
            self.network.sim.schedule(
                event.duration_s, self.network.heal, src, dst, both
            )

    def _do_link_up(self, event: FaultEvent) -> None:
        src, dst, both = event.link_endpoints()
        self.network.heal(src, dst, bidirectional=both)

    def _do_lossy(self, event: FaultEvent) -> None:
        self._lossy_depth += 1
        self.network.set_loss_prob(max(self.network.loss_prob, event.value))
        if event.duration_s is not None:
            self.network.sim.schedule(event.duration_s, self._end_lossy)

    def _end_lossy(self) -> None:
        self._lossy_depth = max(0, self._lossy_depth - 1)
        if self._lossy_depth == 0:
            self.network.set_loss_prob(self._base_loss_prob)

    def _do_blackout(self, event: FaultEvent) -> None:
        if self.earth_link is None:
            raise ProtocolError("no Earth link in this stack")
        self.earth_link.blackout()
        if event.duration_s is not None:
            self.network.sim.schedule(event.duration_s, self.earth_link.restore)

    # -- reliability inputs ----------------------------------------------

    def closed_downtime(self, horizon_s: float) -> dict[str, list[tuple[float, float]]]:
        """Downtime intervals with still-open outages closed at the horizon."""
        return {
            node: [(start, end if end is not None else horizon_s)
                   for start, end in intervals]
            for node, intervals in self.downtime.items()
        }
