"""Seeded randomized fault campaigns.

A :class:`FaultCampaign` turns per-day fault *rates* into a concrete
:class:`~repro.faults.plan.FaultPlan` with a single NumPy generator, so
the same campaign (including seed) always produces the same plan — the
chaos-testing analogue of the mission's master-seed reproducibility.
Counts are Poisson in the horizon, times uniform, and window durations
exponential, following the CTMC-style reliability modeling of habitat
monitoring systems (exponentially distributed failure/repair times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.units import DAY, HOUR
from repro.faults.plan import FaultEvent, FaultPlan


@dataclass(frozen=True)
class FaultCampaign:
    """Generator parameters for a randomized fault campaign.

    Rates are events per *day* per category (not per node), chosen so a
    14-day mission sees a handful of each fault class by default.
    """

    seed: int = 0
    #: Campaign horizon, seconds (mission length).
    horizon_s: float = 14 * DAY
    #: Crashable bus nodes (replicas, relays — not the Earth endpoints).
    nodes: tuple[str, ...] = ()
    #: Links eligible for flaps, as ``(src, dst)`` pairs.
    links: tuple[tuple[str, str], ...] = ()
    #: Deployed beacon count (outages pick random beacons).
    n_beacons: int = 0
    #: Badge ids eligible for battery / SD-card faults.
    badge_ids: tuple[int, ...] = ()

    crashes_per_day: float = 0.5
    mean_downtime_s: float = 30 * 60.0
    flaps_per_day: float = 1.0
    mean_flap_s: float = 180.0
    lossy_windows_per_day: float = 0.5
    lossy_prob: float = 0.3
    mean_lossy_s: float = 900.0
    blackouts_per_day: float = 0.25
    mean_blackout_s: float = 2 * HOUR
    beacon_outages_per_day: float = 0.5
    mean_beacon_outage_s: float = 6 * HOUR
    #: Whole-mission counts (not rates) for the rarer hardware faults.
    battery_depletions: int = 1
    sdcard_exhaustions: int = 0
    #: Capacity override applied by an SD-card exhaustion, bytes.
    sdcard_cap_bytes: float = 4e9
    #: Whole-mission count of executor-level worker crashes (the pool
    #: worker computing the struck day is SIGKILLed; the supervisor must
    #: recover).  Drawn after every other fault class, so campaigns with
    #: ``worker_crashes=0`` reproduce their historical plans exactly.
    worker_crashes: int = 0
    #: Whole-mission counts of data-corruption faults striking assembled
    #: badge-days (exercising the ``repro.quality`` ingest gate).  Drawn
    #: after every class above — including ``worker_crashes`` — so
    #: campaigns without them reproduce their historical plans exactly.
    bitrot_days: int = 0
    truncated_days: int = 0
    duplicated_days: int = 0
    stuck_days: int = 0
    clock_desyncs: int = 0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        if not 0.0 <= self.lossy_prob < 1.0:
            raise ConfigError("lossy_prob must be in [0, 1)")
        for name in ("crashes_per_day", "flaps_per_day", "lossy_windows_per_day",
                     "blackouts_per_day", "beacon_outages_per_day"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        for name in ("mean_downtime_s", "mean_flap_s", "mean_lossy_s",
                     "mean_blackout_s", "mean_beacon_outage_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.battery_depletions < 0 or self.sdcard_exhaustions < 0 \
                or self.worker_crashes < 0:
            raise ConfigError("fault counts must be non-negative")
        for name in ("bitrot_days", "truncated_days", "duplicated_days",
                     "stuck_days", "clock_desyncs"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    @property
    def days(self) -> float:
        return self.horizon_s / DAY

    def generate(self) -> FaultPlan:
        """Draw a concrete fault plan (deterministic in the seed)."""
        rng = np.random.default_rng(self.seed)
        events: list[FaultEvent] = []

        def windows(rate_per_day: float, mean_s: float):
            count = int(rng.poisson(rate_per_day * self.days))
            starts = np.sort(rng.uniform(0.0, self.horizon_s, size=count))
            durations = rng.exponential(mean_s, size=count) + 1.0
            return zip(starts, durations)

        if self.nodes:
            for start, duration in windows(self.crashes_per_day, self.mean_downtime_s):
                node = self.nodes[int(rng.integers(len(self.nodes)))]
                events.append(FaultEvent(
                    time_s=float(start), action="crash", target=node,
                    duration_s=float(duration),
                ))
        if self.links:
            for start, duration in windows(self.flaps_per_day, self.mean_flap_s):
                src, dst = self.links[int(rng.integers(len(self.links)))]
                events.append(FaultEvent(
                    time_s=float(start), action="link-down",
                    target=f"{src}<->{dst}", duration_s=float(duration),
                ))
        for start, duration in windows(self.lossy_windows_per_day, self.mean_lossy_s):
            events.append(FaultEvent(
                time_s=float(start), action="lossy",
                duration_s=float(duration), value=self.lossy_prob,
            ))
        for start, duration in windows(self.blackouts_per_day, self.mean_blackout_s):
            events.append(FaultEvent(
                time_s=float(start), action="blackout", duration_s=float(duration),
            ))
        if self.n_beacons > 0:
            for start, duration in windows(self.beacon_outages_per_day,
                                           self.mean_beacon_outage_s):
                beacon = int(rng.integers(self.n_beacons))
                events.append(FaultEvent(
                    time_s=float(start), action="beacon-outage",
                    target=str(beacon), duration_s=float(duration),
                ))
        if self.badge_ids:
            for _ in range(self.battery_depletions):
                badge = self.badge_ids[int(rng.integers(len(self.badge_ids)))]
                events.append(FaultEvent(
                    time_s=float(rng.uniform(0.0, self.horizon_s)),
                    action="badge-battery", target=str(badge),
                ))
            for _ in range(self.sdcard_exhaustions):
                badge = self.badge_ids[int(rng.integers(len(self.badge_ids)))]
                events.append(FaultEvent(
                    time_s=0.0, action="sdcard-cap", target=str(badge),
                    value=self.sdcard_cap_bytes,
                ))
        # Executor-level crashes are drawn after every bus/sensing class:
        # adding them to a campaign never perturbs the draw sequence of
        # the classes above, so existing seeded plans stay byte-stable.
        for _ in range(self.worker_crashes):
            events.append(FaultEvent(
                time_s=float(rng.uniform(0.0, self.horizon_s)),
                action="worker-crash",
            ))
        # Data-corruption faults are drawn last of all, for the same
        # byte-stability guarantee.
        if self.badge_ids:
            def data_event(action: str, lo: float, hi: float) -> FaultEvent:
                badge = self.badge_ids[int(rng.integers(len(self.badge_ids)))]
                return FaultEvent(
                    time_s=float(rng.uniform(0.0, self.horizon_s)),
                    action=action, target=str(badge),
                    value=float(rng.uniform(lo, hi)),
                )

            for _ in range(self.bitrot_days):
                events.append(data_event("data-bitrot", 0.02, 0.25))
            for _ in range(self.truncated_days):
                events.append(data_event("data-truncate", 0.2, 0.9))
            for _ in range(self.duplicated_days):
                events.append(data_event("data-duplicate", 0.05, 0.3))
            for _ in range(self.stuck_days):
                events.append(data_event("data-stuck", 0.1, 0.5))
            for _ in range(self.clock_desyncs):
                event = data_event("data-clock-skew", 300.0, 4 * HOUR)
                if rng.uniform() < 0.5:  # drift runs both ways
                    event = FaultEvent(
                        time_s=event.time_s, action=event.action,
                        target=event.target, value=-event.value,
                    )
                events.append(event)
        return FaultPlan.build(*events)

    @classmethod
    def corruption(cls, days: int = 14, seed: int = 0,
                   n_badges: int = 7) -> "FaultCampaign":
        """A data-corruption-only campaign (exercises the quality gate).

        No bus/sensing/executor faults: every event damages assembled
        badge-day data, so the mission content itself is clean and any
        analytics deviation is attributable to the gate's repairs.
        """
        return cls(
            seed=seed,
            horizon_s=days * DAY,
            badge_ids=tuple(range(n_badges)),
            crashes_per_day=0.0, flaps_per_day=0.0,
            lossy_windows_per_day=0.0, blackouts_per_day=0.0,
            beacon_outages_per_day=0.0,
            battery_depletions=0, sdcard_exhaustions=0,
            bitrot_days=max(1, days // 4),
            truncated_days=max(1, days // 5),
            duplicated_days=max(1, days // 7),
            stuck_days=max(1, days // 5),
            clock_desyncs=max(1, days // 7),
        )

    @classmethod
    def coverage_reference(cls, days: int = 14, seed: int = 0,
                           n_beacons: int = 27,
                           crew_size: int = 3) -> "FaultCampaign":
        """The sensing-fault reference campaign for the coverage model.

        Only the fault classes that degrade *data coverage* are active —
        data corruption, battery depletion, SD-card caps, and beacon
        outages; the bus classes are silenced so the quality gate is the
        sole judge of the damage.  ``badge_ids`` are the primary badges
        of a ``crew_size`` mission, so every drawn event strikes a
        badge-day the mission actually assembles (the coverage model's
        hit probability stays exact instead of estimated).
        """
        return cls(
            seed=seed,
            horizon_s=days * DAY,
            n_beacons=n_beacons,
            badge_ids=tuple(range(crew_size)),
            crashes_per_day=0.0, flaps_per_day=0.0,
            lossy_windows_per_day=0.0, blackouts_per_day=0.0,
            beacon_outages_per_day=0.5,
            battery_depletions=1, sdcard_exhaustions=1,
            bitrot_days=max(1, days // 4),
            truncated_days=max(1, days // 5),
            duplicated_days=max(1, days // 7),
            stuck_days=max(1, days // 5),
            clock_desyncs=max(1, days // 7),
        )

    @classmethod
    def reference(cls, days: int = 14, seed: int = 0,
                  n_beacons: int = 27, n_badges: int = 7) -> "FaultCampaign":
        """The reference campaign used by benchmarks and the CLI.

        Covers every fault class at moderate rates over ``days`` against
        the standard support-stack node set (replica pair + relay).
        """
        return cls(
            seed=seed,
            horizon_s=days * DAY,
            nodes=("svc-a", "svc-b", "relay"),
            links=(("relay", "svc-a"), ("relay", "svc-b"), ("svc-a", "svc-b")),
            n_beacons=n_beacons,
            badge_ids=tuple(range(n_badges)),
            battery_depletions=1,
            sdcard_exhaustions=1,
        )
